//! # pim-stm-suite — facade crate of the PIM-STM reproduction
//!
//! This crate re-exports the individual workspace members so that examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`sim`] — the UPMEM DPU simulator substrate (`pim-sim`);
//! * [`stm`] — the PIM-STM library itself (`pim-stm`);
//! * [`workloads`] — the paper's evaluation workloads (`pim-workloads`);
//! * [`host`] — the CPU-side NOrec baseline (`host-stm`);
//! * [`fleet`] — the measured multi-DPU sharded runtime and its host
//!   orchestration layer (`pim-fleet`);
//! * [`service`] — the open-loop traffic generator, request admission and
//!   latency-under-load accounting layer (`pim-service`);
//! * [`exp`] — the experiment harness that regenerates every figure
//!   (`pim-exp`).
//!
//! See the repository README for a tour and DESIGN.md / EXPERIMENTS.md for
//! the reproduction methodology and results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use host_stm as host;
pub use pim_exp as exp;
pub use pim_fleet as fleet;
pub use pim_service as service;
pub use pim_sim as sim;
pub use pim_stm as stm;
pub use pim_workloads as workloads;
