//! Skew-adaptive shard rebalancing: when and how the fleet recuts the
//! range partition between rounds.
//!
//! The runtime feeds every *dispatched* transaction's keys into a
//! [`Rebalancer`] as it routes a round — so the load window is known
//! **before** the shards compute, which keeps the trigger decision
//! deterministic and compatible with the double-buffered round pipeline
//! (the host never has to wait for round `k`'s results to decide whether
//! round `k+1`'s partition changes). After each dispatch the runtime asks
//! [`Rebalancer::plan`] for a recut; a triggered recut calls
//! [`ShardMap::rebalanced`] on the windowed per-key loads and the window
//! resets, so each migration is judged on the traffic since the last one.
//!
//! The policy itself is deliberately simple:
//!
//! * [`RebalancePolicy::Off`] — never recut (the static baseline).
//! * [`RebalancePolicy::Threshold`] — recut when the window's per-shard
//!   load imbalance (max/mean over the *current* map) exceeds a factor.
//! * [`RebalancePolicy::Periodic`] — recut every `every` rounds
//!   regardless of the signal (useful to bound staleness under
//!   phase-changing streams).
//!
//! What a recut *costs* is owned by the runtime, not this module: moved
//! key ranges are charged as real `gather` + `scatter` bytes through the
//! [`TransferLedger`](crate::TransferLedger) (8 bytes per moved key each
//! direction), so rebalancing pays for itself inside the same cost model
//! it is trying to beat.

use pim_workloads::sharded::{GlobalTx, ShardMap};
use serde::{Deserialize, Serialize};
use std::fmt;

/// When the fleet recuts its range partition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum RebalancePolicy {
    /// Never recut: the seed fleet's static partition.
    #[default]
    Off,
    /// Recut when windowed per-shard load `max/mean` exceeds the factor.
    Threshold {
        /// Trigger factor; `1.0` recuts on any imbalance, larger values
        /// tolerate more skew before paying a migration.
        max_over_mean: f64,
    },
    /// Recut unconditionally every `every` rounds.
    Periodic {
        /// Rounds between recuts (`>= 1`).
        every: u32,
    },
}

/// The default trigger factor for `--rebalance threshold`.
pub const DEFAULT_THRESHOLD: f64 = 1.25;

impl RebalancePolicy {
    /// Parses `"off"`, `"threshold"`, `"threshold:<factor>"`, `"periodic"`
    /// or `"periodic:<rounds>"`.
    ///
    /// # Errors
    ///
    /// Returns a description of the accepted forms when `text` matches
    /// none of them or carries an out-of-range parameter.
    pub fn parse(text: &str) -> Result<Self, String> {
        let text = text.trim();
        if text.eq_ignore_ascii_case("off") {
            return Ok(RebalancePolicy::Off);
        }
        if text.eq_ignore_ascii_case("threshold") {
            return Ok(RebalancePolicy::Threshold { max_over_mean: DEFAULT_THRESHOLD });
        }
        if let Some(factor) = text.strip_prefix("threshold:") {
            let max_over_mean: f64 = factor
                .parse()
                .map_err(|_| format!("invalid threshold factor {factor:?} (want e.g. 1.25)"))?;
            if !max_over_mean.is_finite() || max_over_mean < 1.0 {
                return Err(format!("threshold factor must be >= 1, got {max_over_mean}"));
            }
            return Ok(RebalancePolicy::Threshold { max_over_mean });
        }
        if text.eq_ignore_ascii_case("periodic") {
            return Ok(RebalancePolicy::Periodic { every: 1 });
        }
        if let Some(every) = text.strip_prefix("periodic:") {
            let every: u32 = every
                .parse()
                .map_err(|_| format!("invalid period {every:?} (want a round count)"))?;
            if every == 0 {
                return Err("periodic rebalance period must be >= 1".to_string());
            }
            return Ok(RebalancePolicy::Periodic { every });
        }
        Err(format!(
            "unknown rebalance policy {text:?} \
             (want off, threshold[:<factor>] or periodic[:<rounds>])"
        ))
    }

    /// True unless the policy is [`RebalancePolicy::Off`].
    pub fn is_enabled(self) -> bool {
        !matches!(self, RebalancePolicy::Off)
    }
}

impl fmt::Display for RebalancePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RebalancePolicy::Off => write!(f, "off"),
            RebalancePolicy::Threshold { max_over_mean } => write!(f, "threshold:{max_over_mean}"),
            RebalancePolicy::Periodic { every } => write!(f, "periodic:{every}"),
        }
    }
}

/// Sliding-window per-key load tracker that decides when to recut.
///
/// Deterministic by construction: the window only sees the dispatch-order
/// key stream, which is itself independent of host worker count.
#[derive(Debug, Clone)]
pub struct Rebalancer {
    policy: RebalancePolicy,
    /// Accesses per key since the last recut (reads and updates count
    /// equally — both pin the key's owner during the round).
    window: Vec<u64>,
    /// Rounds dispatched since the last recut.
    rounds_since: u32,
}

impl Rebalancer {
    /// Creates a tracker for a `total_keys`-sized keyspace.
    pub fn new(policy: RebalancePolicy, total_keys: u32) -> Self {
        Rebalancer { policy, window: vec![0; total_keys as usize], rounds_since: 0 }
    }

    /// The policy this tracker evaluates.
    pub fn policy(&self) -> RebalancePolicy {
        self.policy
    }

    /// Records one dispatched transaction's key accesses.
    pub fn note(&mut self, tx: &GlobalTx) {
        for &key in tx.reads.iter().chain(&tx.updates) {
            self.window[key as usize] += 1;
        }
    }

    /// Called once per dispatched round, after all [`Rebalancer::note`]
    /// calls for that round. Returns the recut map when the policy fires
    /// *and* the recut actually moves a boundary; `None` otherwise. On a
    /// recut the load window and round counter reset.
    ///
    /// `more_work` should be false on the final round — a migration that
    /// no future round can amortize is never worth paying for.
    pub fn plan(&mut self, map: &ShardMap, more_work: bool) -> Option<ShardMap> {
        self.rounds_since += 1;
        if !more_work || !self.triggered(map) {
            return None;
        }
        let recut = map.rebalanced(&self.window);
        self.window.iter_mut().for_each(|load| *load = 0);
        self.rounds_since = 0;
        (recut != *map).then_some(recut)
    }

    fn triggered(&self, map: &ShardMap) -> bool {
        match self.policy {
            RebalancePolicy::Off => false,
            RebalancePolicy::Periodic { every } => self.rounds_since >= every,
            RebalancePolicy::Threshold { max_over_mean } => {
                let mut per_shard = vec![0u64; map.shards() as usize];
                for (key, &load) in self.window.iter().enumerate() {
                    per_shard[map.owner(key as u32) as usize] += load;
                }
                let total: u64 = per_shard.iter().sum();
                if total == 0 {
                    return false;
                }
                let max = *per_shard.iter().max().unwrap() as f64;
                let mean = total as f64 / per_shard.len() as f64;
                max / mean > max_over_mean
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(id: u32, updates: &[u32]) -> GlobalTx {
        GlobalTx { id, reads: Vec::new(), updates: updates.to_vec() }
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!(RebalancePolicy::parse("off").unwrap(), RebalancePolicy::Off);
        assert_eq!(
            RebalancePolicy::parse("threshold").unwrap(),
            RebalancePolicy::Threshold { max_over_mean: DEFAULT_THRESHOLD }
        );
        assert_eq!(
            RebalancePolicy::parse("threshold:2.5").unwrap(),
            RebalancePolicy::Threshold { max_over_mean: 2.5 }
        );
        assert_eq!(
            RebalancePolicy::parse(" periodic:4 ").unwrap(),
            RebalancePolicy::Periodic { every: 4 }
        );
        assert_eq!(
            RebalancePolicy::parse("periodic").unwrap(),
            RebalancePolicy::Periodic { every: 1 }
        );
        assert!(RebalancePolicy::parse("threshold:0.5").is_err());
        assert!(RebalancePolicy::parse("periodic:0").is_err());
        assert!(RebalancePolicy::parse("sometimes").is_err());
        assert_eq!(RebalancePolicy::parse("threshold:2.5").unwrap().to_string(), "threshold:2.5");
        assert_eq!(RebalancePolicy::Off.to_string(), "off");
        assert!(!RebalancePolicy::Off.is_enabled());
        assert!(RebalancePolicy::default() == RebalancePolicy::Off);
    }

    #[test]
    fn threshold_fires_only_past_the_factor() {
        let map = ShardMap::new(64, 4);
        let mut even = Rebalancer::new(RebalancePolicy::Threshold { max_over_mean: 1.5 }, 64);
        // One access per shard: max/mean == 1, below the factor.
        even.note(&tx(0, &[0, 16, 32, 48]));
        assert!(even.plan(&map, true).is_none());
        // Pile everything on shard 0: max/mean == 4, fires and recuts.
        let mut hot = Rebalancer::new(RebalancePolicy::Threshold { max_over_mean: 1.5 }, 64);
        for id in 0..32 {
            hot.note(&tx(id, &[id % 16]));
        }
        let recut = hot.plan(&map, true).expect("hot window must trigger a recut");
        assert!(recut.span(0) < map.span(0), "hot shard must shrink");
        // The window reset: the same tracker stays quiet until new load arrives.
        assert!(hot.plan(&recut, true).is_none());
    }

    #[test]
    fn periodic_fires_on_schedule_and_final_round_never_migrates() {
        let map = ShardMap::new(64, 4);
        let mut rb = Rebalancer::new(RebalancePolicy::Periodic { every: 2 }, 64);
        rb.note(&tx(0, &[1, 2, 3]));
        assert!(rb.plan(&map, true).is_none(), "round 1 of 2: not yet");
        assert!(rb.plan(&map, true).is_some(), "round 2 of 2: fires");
        rb.note(&tx(1, &[5]));
        assert!(rb.plan(&map, true).is_none());
        assert!(rb.plan(&map, false).is_none(), "no future work, no migration");
        // A recut that would not move any boundary is suppressed.
        let mut flat = Rebalancer::new(RebalancePolicy::Periodic { every: 1 }, 64);
        for id in 0..64 {
            flat.note(&tx(id, &[id]));
        }
        assert!(flat.plan(&map, true).is_none(), "uniform load keeps the even cut");
    }

    #[test]
    fn off_never_fires() {
        let map = ShardMap::new(16, 2);
        let mut rb = Rebalancer::new(RebalancePolicy::Off, 16);
        for id in 0..100 {
            rb.note(&tx(id, &[0]));
            assert!(rb.plan(&map, true).is_none());
        }
    }
}
