//! The host↔DPU communication primitives and their cost accounting.
//!
//! The fleet host moves data with three SimplePIM-style primitives, each
//! charged against the same [`CpuTransferModel`] the analytic multi-DPU
//! plan uses (one source of truth for transfer cost):
//!
//! * [`TransferLedger::broadcast`] — one buffer replicated to every DPU.
//!   The buffer crosses the host bus **once** (the rank hardware fans it
//!   out), so the charge is one bulk transfer of the buffer size,
//!   regardless of the DPU count.
//! * [`TransferLedger::scatter`] — a distinct payload per DPU, pushed in
//!   one rank-parallel bulk operation: one fixed software overhead plus
//!   the *summed* payload bytes over the bulk bandwidth.
//! * [`TransferLedger::gather`] — the mirror image, DPU→host.
//!
//! Every call records `(calls, bytes, seconds)` per primitive in the
//! ledger so a fleet report can show exactly where the transfer time went,
//! and so the analytic cross-check can rebuild the same per-round byte
//! counts.
//!
//! [`HostCostModel`] covers the host CPU work that is *not* data movement:
//! routing each dispatched sub-transaction and merging each active shard's
//! round results. Both are deterministic modeled costs — the fleet never
//! reads a wall clock, so a seeded run produces bit-identical reports on
//! any machine and any host worker count.

use pim_sim::CpuTransferModel;
use serde::{Deserialize, Serialize};

/// Deterministic model of per-round host CPU work (everything the host
/// does besides moving bytes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostCostModel {
    /// Routing/dispatch work per dispatched sub-transaction, in seconds.
    pub dispatch_seconds_per_tx: f64,
    /// Result-merge work per active shard per round, in seconds.
    pub merge_seconds_per_shard: f64,
}

impl Default for HostCostModel {
    fn default() -> Self {
        HostCostModel { dispatch_seconds_per_tx: 2e-8, merge_seconds_per_shard: 1e-7 }
    }
}

impl HostCostModel {
    /// Pre-barrier host seconds: routing `subtxns` dispatched
    /// sub-transactions to their shards. This is the half of the host work
    /// the round pipeline can hide behind the previous round's compute.
    pub fn route_seconds(&self, subtxns: u64) -> f64 {
        self.dispatch_seconds_per_tx * subtxns as f64
    }

    /// Post-barrier host seconds: merging `active_shards` shards' round
    /// results. Merge depends on the round's own outputs, so the pipeline
    /// can never hide it.
    pub fn merge_seconds(&self, active_shards: u64) -> f64 {
        self.merge_seconds_per_shard * active_shards as f64
    }

    /// Host seconds for one round that dispatched `subtxns` sub-transactions
    /// to `active_shards` shards (route + merge).
    pub fn round_seconds(&self, subtxns: u64, active_shards: u64) -> f64 {
        self.route_seconds(subtxns) + self.merge_seconds(active_shards)
    }
}

/// Running totals for one primitive kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PrimitiveStats {
    /// Invocations of the primitive.
    pub calls: u64,
    /// Bytes that crossed the host bus (for broadcast: the buffer size,
    /// once per call — not multiplied by the DPU count).
    pub bytes: u64,
    /// Modeled seconds spent in the primitive.
    pub seconds: f64,
}

impl PrimitiveStats {
    fn charge(&mut self, bytes: u64, seconds: f64) -> f64 {
        self.calls += 1;
        self.bytes += bytes;
        self.seconds += seconds;
        seconds
    }
}

/// Charges every host↔DPU primitive against one [`CpuTransferModel`] and
/// keeps per-primitive totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferLedger {
    transfer: CpuTransferModel,
    /// Totals for `broadcast` calls.
    pub broadcast: PrimitiveStats,
    /// Totals for `scatter` calls.
    pub scatter: PrimitiveStats,
    /// Totals for `gather` calls.
    pub gather: PrimitiveStats,
}

impl TransferLedger {
    /// Creates an empty ledger over `transfer`.
    pub fn new(transfer: CpuTransferModel) -> Self {
        TransferLedger {
            transfer,
            broadcast: PrimitiveStats::default(),
            scatter: PrimitiveStats::default(),
            gather: PrimitiveStats::default(),
        }
    }

    /// The cost model every primitive is charged against.
    pub fn transfer_model(&self) -> &CpuTransferModel {
        &self.transfer
    }

    /// Replicates one `bytes`-sized buffer to every DPU. Returns the
    /// modeled seconds (one bulk transfer of `bytes`; the rank hardware
    /// fans the buffer out, so the cost is DPU-count independent).
    pub fn broadcast(&mut self, bytes: u64) -> f64 {
        let seconds = self.transfer.bulk_transfer_seconds(bytes);
        self.broadcast.charge(bytes, seconds)
    }

    /// Pushes per-DPU payloads host→DPUs in one rank-parallel bulk
    /// operation; `bytes_per_dpu[i]` is DPU `i`'s payload. Returns the
    /// modeled seconds (one overhead + summed bytes over bulk bandwidth).
    pub fn scatter(&mut self, bytes_per_dpu: &[u64]) -> f64 {
        let total: u64 = bytes_per_dpu.iter().sum();
        let seconds = self.transfer.bulk_transfer_seconds(total);
        self.scatter.charge(total, seconds)
    }

    /// Pulls per-DPU payloads DPUs→host in one rank-parallel bulk
    /// operation (the mirror of [`TransferLedger::scatter`]).
    pub fn gather(&mut self, bytes_per_dpu: &[u64]) -> f64 {
        let total: u64 = bytes_per_dpu.iter().sum();
        let seconds = self.transfer.bulk_transfer_seconds(total);
        self.gather.charge(total, seconds)
    }

    /// Total modeled seconds across all primitives.
    pub fn total_seconds(&self) -> f64 {
        self.broadcast.seconds + self.scatter.seconds + self.gather.seconds
    }

    /// Total bytes that crossed the host bus, both directions.
    pub fn total_bytes(&self) -> u64 {
        self.broadcast.bytes + self.scatter.bytes + self.gather.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_charge_the_shared_transfer_model() {
        let transfer = CpuTransferModel::default();
        let mut ledger = TransferLedger::new(transfer);
        let b = ledger.broadcast(64);
        let s = ledger.scatter(&[100, 200, 300]);
        let g = ledger.gather(&[32, 32]);
        assert!((b - transfer.bulk_transfer_seconds(64)).abs() < 1e-18);
        assert!((s - transfer.bulk_transfer_seconds(600)).abs() < 1e-18);
        assert!((g - transfer.bulk_transfer_seconds(64)).abs() < 1e-18);
        assert_eq!(ledger.broadcast.calls, 1);
        assert_eq!(ledger.scatter.bytes, 600);
        assert_eq!(ledger.total_bytes(), 64 + 600 + 64);
        assert!((ledger.total_seconds() - (b + s + g)).abs() < 1e-18);
    }

    #[test]
    fn empty_transfers_are_free() {
        let mut ledger = TransferLedger::new(CpuTransferModel::default());
        assert_eq!(ledger.scatter(&[]), 0.0);
        assert_eq!(ledger.gather(&[0, 0]), 0.0);
        assert_eq!(ledger.total_seconds(), 0.0);
    }

    #[test]
    fn host_cost_model_is_linear_in_work() {
        let host = HostCostModel::default();
        let one = host.round_seconds(1, 1);
        let ten = host.round_seconds(10, 10);
        assert!((ten - 10.0 * one).abs() < 1e-15);
        assert_eq!(host.round_seconds(0, 0), 0.0);
        // round = route + merge, exactly.
        assert_eq!(host.round_seconds(7, 3), host.route_seconds(7) + host.merge_seconds(3));
    }
}
