//! # pim-fleet — a multi-DPU sharded runtime with a host orchestration layer
//!
//! The PIM-STM paper's multi-DPU study extrapolates from one simulated
//! DPU. This crate replaces that extrapolation with *measurement*: it
//! partitions a workload's data across N simulated DPUs (N scaling to
//! thousands — each shard DPU's MRAM is sized to its slice, and the shard
//! simulators run in parallel across host worker threads), drives them
//! with a round-structured host dispatcher, and merges the per-DPU
//! results into one fleet report. The analytic
//! [`pim_sim::MultiDpuPlan`] stays available as a cross-check baseline
//! ([`FleetReport::analytic_plan`]).
//!
//! ## The host-API contract
//!
//! **Primitive semantics** (SimplePIM-shaped, see [`host`]): the host owns
//! three data-movement primitives, each charged against the same
//! [`pim_sim::CpuTransferModel`] the analytic model uses —
//!
//! * `broadcast(bytes)` — one buffer replicated to all DPUs; the buffer
//!   crosses the host bus once (rank hardware fans out), so cost is
//!   DPU-count independent;
//! * `scatter(bytes_per_dpu)` — per-DPU payloads pushed in one
//!   rank-parallel bulk operation: one fixed overhead plus summed bytes
//!   over bulk bandwidth;
//! * `gather(bytes_per_dpu)` — the DPU→host mirror of scatter.
//!
//! Every invocation is recorded per primitive (calls/bytes/seconds) in a
//! [`TransferLedger`], so transfer cost is *explicit and attributable*
//! rather than folded into a constant.
//!
//! **Barrier/round model** (see [`runtime`]): the dispatcher cuts the
//! global transaction stream into rounds of at most
//! [`FleetConfig::txns_per_round`] transactions. One round is
//!
//! ```text
//! host routing → broadcast(descriptor) → scatter(batches)
//!   → [ all active shards run to completion, in parallel ]   ← barrier
//!   → gather(summaries) → host merge
//! ```
//!
//! The barrier means a round costs the *slowest* shard's DPU time; a
//! skewed shard therefore stalls the whole fleet, which is exactly what
//! the imbalance statistics ([`Imbalance`]) quantify. Transactions whose
//! keys span shards are handled by the configured
//! [`pim_workloads::RoutingPolicy`]: split up front (`route-to-owner`) or
//! dispatched home, rejected by the DPU via an explicit abort, and
//! re-dispatched split in the **next** round (`abort-retry`).
//!
//! **Transfer-cost accounting**: a round's modeled serial time is
//! `pre + compute + post` with
//! `pre = broadcast + scatter + host routing`,
//! `compute = max(shard DPU seconds)` and
//! `post = gather + host merge + migration`, summed into
//! [`FleetReport::makespan_seconds`]. All host costs are modeled
//! ([`HostCostModel`]), never measured — a seeded fleet run is
//! bit-identical on any machine and any `host_workers` setting.
//!
//! **Pipeline round model** (opt-in via [`FleetConfig::overlap`]): the
//! host double-buffers rounds — while round *k*'s shards compute, it
//! routes and scatters round *k+1*. Execution order and results never
//! change; the cost model changes to
//!
//! ```text
//! round k contributes   pre_k − hidden_k + compute_k + post_k
//! hidden_k            = min(pre_k, compute_{k−1})   if overlap-eligible
//!                     = 0                            otherwise
//! ```
//!
//! which is the `max(compute_{k−1}, pre_k)` double-buffering identity
//! written as a per-round credit. A round is overlap-eligible iff its
//! inputs needed nothing from the previous round: not round 0, no
//! deferred abort-retry re-dispatches entering it (those are discovered
//! *during* the previous compute), and no migration at the previous
//! boundary. [`PipelineStats`] reports hidden vs exposed pre-work.
//!
//! **Rebalance migration-cost accounting** (opt-in via
//! [`FleetConfig::rebalance`]): between rounds a [`RebalancePolicy`] may
//! recut the range partition toward the *dispatched* key-load window
//! (dispatch-side data only, so the trigger is deterministic and does
//! not stall the pipeline decision). A recut that moves keys pays for
//! itself inside the model: each moved key's 8-byte counter is charged
//! through the ledger as a real `gather` (old owner → host) plus
//! `scatter` (host → new owner). The migration seconds land in the
//! boundary round's `post`; the byte counts fold into the analytic
//! cross-check as documented on [`RoundStats::bytes_to_dpus`]. The next
//! round is never overlap-eligible, and deferred sub-transactions are
//! re-routed under the new map. [`RebalanceStats`] totals what moved and
//! what it cost, and [`FleetReport::cumulative_throughput_series`]
//! exposes the break-even round.
//!
//! **Fleet reports vs single-DPU profiles**: every shard produces
//! ordinary cycle-domain [`pim_stm::ExecProfile`]s; the fleet merges them
//! unchanged ([`FleetReport::profile`]), so per-`AbortReason` histograms,
//! per-phase cycles and DMA counters aggregate across the fleet with the
//! same schema as a single-DPU run. Per-shard placement of that work
//! lives alongside in [`FleetReport::shards`].
//!
//! [`baseline`] holds the CPU-baseline extrapolation constants shared
//! with the analytic Fig. 7/8 path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod host;
pub mod rebalance;
pub mod report;
pub mod runtime;

pub use host::{HostCostModel, PrimitiveStats, TransferLedger};
pub use rebalance::{RebalancePolicy, Rebalancer};
pub use report::{FleetReport, Imbalance, PipelineStats, RebalanceStats, RoundStats, ShardStats};
pub use runtime::{
    resolve_host_workers, run, FleetConfig, GATHER_SUMMARY_BYTES, MIGRATION_BYTES_PER_KEY,
    ROUND_DESCRIPTOR_BYTES,
};
