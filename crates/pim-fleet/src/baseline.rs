//! The per-workload CPU-baseline extrapolation constants of the §4.3
//! multi-DPU study — the **single source of truth** shared by the analytic
//! path (`pim-exp`'s Fig. 7/8 model) and the real fleet runtime.
//!
//! These used to live privately inside `pim-exp`'s `multi_dpu` module;
//! they are fleet configuration (how much work each DPU owns, how the CPU
//! baseline parallelises) and both the analytic `MultiDpuPlan` and the
//! measured fleet must agree on them, so they live here.

/// Points per DPU in the multi-DPU KMeans experiment (the paper assigns
/// 200 k input points to every DPU).
pub const KMEANS_POINTS_PER_DPU: u64 = 200_000;

/// Assignment rounds in the multi-DPU KMeans experiment.
pub const KMEANS_ROUNDS: usize = 3;

/// Host threads used by the CPU KMeans baseline (paper: 4).
pub const KMEANS_CPU_THREADS: usize = 4;

/// Parallel host processes used by the CPU Labyrinth baseline (paper: 4
/// processes of 8 threads each).
pub const LABYRINTH_CPU_PROCESSES: usize = 4;

/// Threads per host Labyrinth process (paper: 8).
pub const LABYRINTH_CPU_THREADS: usize = 8;
