//! The fleet-level report: merged execution profiles, per-shard load
//! statistics, per-round accounting, and the analytic cross-check hook.
//!
//! A fleet run produces one [`FleetReport`]. Its relationship to the
//! single-DPU instrumentation is strictly compositional:
//!
//! * every shard DPU's tasklets produce ordinary cycle-domain
//!   [`ExecProfile`]s, exactly as a single-DPU run would;
//! * the shard accumulates them across rounds, and the fleet merges the
//!   shard accumulators with [`ExecProfile::merged`] — so
//!   [`FleetReport::profile`] has the same schema (abort histogram keyed by
//!   `AbortReason`, per-phase cycles, DMA setup/word counters) as any
//!   single-DPU profile, just summed over the whole fleet;
//! * what a merged profile *cannot* express — which shard did the work —
//!   lives in [`ShardStats`] and the derived [`Imbalance`] summary.
//!
//! [`FleetReport::analytic_plan`] rebuilds the measured run as a
//! [`MultiDpuPlan`], the analytic model `pim-exp --fig7` uses, from the
//! per-round stats. See the method docs for the exact (small, documented)
//! divergence between the two accountings — the cross-check regression
//! test in the repository root pins it.

use pim_sim::{MultiDpuPlan, RoundPlan};
use pim_stm::ExecProfile;
use pim_workloads::RoutingPolicy;
use serde::{Deserialize, Serialize};

use crate::host::TransferLedger;

/// Per-shard totals over a whole fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard (= DPU) index.
    pub shard: u32,
    /// Global keys this shard owns.
    pub keys: u32,
    /// Sub-transactions dispatched to this shard (probes included).
    pub dispatched: u64,
    /// Transactions this shard committed.
    pub commits: u64,
    /// Aborted attempts (probe rejections included).
    pub aborts: u64,
    /// Probe transactions rejected back to the host
    /// (`AbortReason::Explicit`).
    pub rejected: u64,
    /// Cycles this shard's DPU spent across all its rounds.
    pub busy_cycles: u64,
}

/// Per-round accounting: what was dispatched and where the time went.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Round index (0-based).
    pub round: usize,
    /// Sub-transactions dispatched this round (probes included).
    pub dispatched_subtxns: u64,
    /// Shards that received work this round.
    pub active_shards: u64,
    /// Commits this round, fleet-wide.
    pub commits: u64,
    /// Probe rejections this round, fleet-wide.
    pub rejected: u64,
    /// Seconds in the round-descriptor broadcast.
    pub broadcast_seconds: f64,
    /// Seconds scattering transaction descriptors to the shards.
    pub scatter_seconds: f64,
    /// Slowest shard's DPU compute this round, in seconds — the barrier
    /// waits for it.
    pub dpu_seconds: f64,
    /// Mean DPU compute over the *active* shards this round, in seconds.
    pub dpu_mean_seconds: f64,
    /// Seconds gathering per-shard result summaries.
    pub gather_seconds: f64,
    /// Modeled host CPU seconds (routing + merge) this round.
    pub host_seconds: f64,
    /// Bytes moved host→DPUs this round (broadcast + scatter).
    pub bytes_to_dpus: u64,
    /// Bytes moved DPUs→host this round (gather).
    pub bytes_from_dpus: u64,
}

impl RoundStats {
    /// End-to-end seconds of this round: transfers + the DPU barrier +
    /// host work.
    pub fn total_seconds(&self) -> f64 {
        self.broadcast_seconds
            + self.scatter_seconds
            + self.dpu_seconds
            + self.gather_seconds
            + self.host_seconds
    }
}

/// Load/commit imbalance across the shards of one fleet run.
///
/// `max/mean` ratios answer "how much slower is the hottest shard than the
/// average" (1.0 = perfectly balanced); the coefficient of variation
/// (stddev/mean) summarises the whole distribution. Both are computed over
/// **all** shards — an idle shard is imbalance, not a statistical nuisance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Imbalance {
    /// Hottest shard by committed transactions.
    pub hottest_shard: u32,
    /// Fraction of all commits the hottest shard performed.
    pub hottest_commit_share: f64,
    /// Max-over-mean of per-shard commits (1.0 = balanced).
    pub max_over_mean_commits: f64,
    /// Coefficient of variation of per-shard commits.
    pub cv_commits: f64,
    /// Max-over-mean of per-shard busy cycles.
    pub max_over_mean_busy: f64,
    /// Coefficient of variation of per-shard busy cycles.
    pub cv_busy: f64,
}

impl Imbalance {
    /// Computes the summary from per-shard totals. All-zero inputs (an
    /// empty run) yield ratios of 1.0 and CVs of 0.0.
    pub fn from_shards(shards: &[ShardStats]) -> Self {
        fn spread(values: impl Iterator<Item = u64> + Clone) -> (f64, f64) {
            let n = values.clone().count().max(1) as f64;
            let mean = values.clone().sum::<u64>() as f64 / n;
            let max = values.clone().max().unwrap_or(0) as f64;
            if mean == 0.0 {
                return (1.0, 0.0);
            }
            let var = values.map(|v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
            (max / mean, var.sqrt() / mean)
        }
        let (max_over_mean_commits, cv_commits) = spread(shards.iter().map(|s| s.commits));
        let (max_over_mean_busy, cv_busy) = spread(shards.iter().map(|s| s.busy_cycles));
        let hottest = shards.iter().max_by_key(|s| s.commits).map(|s| s.shard).unwrap_or(0);
        let total_commits: u64 = shards.iter().map(|s| s.commits).sum();
        let hottest_commits = shards.iter().map(|s| s.commits).max().unwrap_or(0);
        Imbalance {
            hottest_shard: hottest,
            hottest_commit_share: if total_commits == 0 {
                0.0
            } else {
                hottest_commits as f64 / total_commits as f64
            },
            max_over_mean_commits,
            cv_commits,
            max_over_mean_busy,
            cv_busy,
        }
    }
}

/// Everything one fleet run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// DPUs (= shards) in the fleet.
    pub n_dpus: usize,
    /// Tasklets per shard DPU.
    pub tasklets: usize,
    /// Cross-shard routing policy the dispatcher used.
    pub routing: RoutingPolicy,
    /// Transactions in the global stream.
    pub global_txns: u64,
    /// Sub-transactions dispatched in total (probes and re-dispatches
    /// included — under abort-and-retry this exceeds the commit count).
    pub dispatched_subtxns: u64,
    /// Committed transactions, fleet-wide.
    pub total_commits: u64,
    /// Aborted attempts, fleet-wide (probe rejections included).
    pub total_aborts: u64,
    /// Probe transactions rejected back to the host.
    pub total_rejected: u64,
    /// Sum of all shard counters after the run — each committed
    /// sub-transaction contributes its update count, so conservation is
    /// checkable against the stream.
    pub total_increments: u64,
    /// FNV-1a fingerprint of the global counter array in key order —
    /// partition-invariant for this commutative workload.
    pub fingerprint: u64,
    /// Per-round accounting, in dispatch order.
    pub rounds: Vec<RoundStats>,
    /// Per-shard totals.
    pub shards: Vec<ShardStats>,
    /// Load/commit imbalance summary over [`FleetReport::shards`].
    pub imbalance: Imbalance,
    /// All per-tasklet profiles of every shard, merged (cycle domain) —
    /// same schema as a single-DPU run's merged profile.
    pub profile: ExecProfile,
    /// Per-primitive transfer accounting.
    pub ledger: TransferLedger,
    /// End-to-end modeled seconds: every round's transfers + DPU barrier +
    /// host work, summed.
    pub makespan_seconds: f64,
}

impl FleetReport {
    /// Committed transactions per modeled second.
    pub fn throughput_tx_per_sec(&self) -> f64 {
        if self.makespan_seconds == 0.0 {
            0.0
        } else {
            self.total_commits as f64 / self.makespan_seconds
        }
    }

    /// Seconds the DPU barrier contributed across all rounds (the slowest
    /// shard of each round).
    pub fn dpu_barrier_seconds(&self) -> f64 {
        self.rounds.iter().map(|r| r.dpu_seconds).sum()
    }

    /// Modeled host CPU seconds across all rounds.
    pub fn host_seconds(&self) -> f64 {
        self.rounds.iter().map(|r| r.host_seconds).sum()
    }

    /// Rebuilds this run as an analytic [`MultiDpuPlan`] — one
    /// [`RoundPlan`] per measured round, with the measured per-round DPU
    /// barrier time as the round's compute time and the measured byte
    /// counts as its transfer sizes.
    ///
    /// The plan's accounting differs from the fleet's in exactly one way:
    /// the fleet issues **two** host→DPU bulk operations per round
    /// (broadcast + scatter) where the plan charges one combined bulk
    /// transfer, so the plan is cheaper by one
    /// [`pim_sim::CpuTransferModel::bulk_overhead_s`] per round. The
    /// cross-check test asserts agreement to exactly that documented
    /// tolerance.
    pub fn analytic_plan(&self) -> MultiDpuPlan {
        let mut plan = MultiDpuPlan::new(self.n_dpus);
        for round in &self.rounds {
            plan.push_round(RoundPlan {
                dpu_compute_seconds: round.dpu_seconds,
                bytes_to_dpus: round.bytes_to_dpus,
                bytes_from_dpus: round.bytes_from_dpus,
                cpu_merge_seconds: round.host_seconds,
            });
        }
        plan
    }

    /// Executes [`FleetReport::analytic_plan`] against this run's own
    /// transfer model and returns its end-to-end seconds. Differs from
    /// [`FleetReport::makespan_seconds`] by exactly one bulk-transfer
    /// overhead per round (see [`FleetReport::analytic_plan`]).
    pub fn analytic_total_seconds(&self) -> f64 {
        self.analytic_plan().execute(self.ledger.transfer_model()).total_seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(shard: u32, commits: u64, busy: u64) -> ShardStats {
        ShardStats {
            shard,
            keys: 10,
            dispatched: commits,
            commits,
            aborts: 0,
            rejected: 0,
            busy_cycles: busy,
        }
    }

    #[test]
    fn balanced_shards_have_unit_ratios() {
        let shards = [shard(0, 50, 1000), shard(1, 50, 1000)];
        let imb = Imbalance::from_shards(&shards);
        assert!((imb.max_over_mean_commits - 1.0).abs() < 1e-12);
        assert!(imb.cv_commits.abs() < 1e-12);
        assert!((imb.hottest_commit_share - 0.5).abs() < 1e-12);
    }

    #[test]
    fn skewed_shards_show_up_in_every_statistic() {
        let shards = [shard(0, 90, 9000), shard(1, 10, 1000)];
        let imb = Imbalance::from_shards(&shards);
        assert_eq!(imb.hottest_shard, 0);
        assert!((imb.max_over_mean_commits - 1.8).abs() < 1e-12);
        assert!(imb.cv_commits > 0.5);
        assert!(imb.max_over_mean_busy > 1.5);
        assert!((imb.hottest_commit_share - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_fleet_degenerates_gracefully() {
        let imb = Imbalance::from_shards(&[]);
        assert_eq!(imb.max_over_mean_commits, 1.0);
        assert_eq!(imb.cv_commits, 0.0);
        assert_eq!(imb.hottest_commit_share, 0.0);
    }
}
