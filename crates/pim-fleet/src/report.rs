//! The fleet-level report: merged execution profiles, per-shard load
//! statistics, per-round accounting, and the analytic cross-check hook.
//!
//! A fleet run produces one [`FleetReport`]. Its relationship to the
//! single-DPU instrumentation is strictly compositional:
//!
//! * every shard DPU's tasklets produce ordinary cycle-domain
//!   [`ExecProfile`]s, exactly as a single-DPU run would;
//! * the shard accumulates them across rounds, and the fleet merges the
//!   shard accumulators with [`ExecProfile::merged`] — so
//!   [`FleetReport::profile`] has the same schema (abort histogram keyed by
//!   `AbortReason`, per-phase cycles, DMA setup/word counters) as any
//!   single-DPU profile, just summed over the whole fleet;
//! * what a merged profile *cannot* express — which shard did the work —
//!   lives in [`ShardStats`] and the derived [`Imbalance`] summary.
//!
//! [`FleetReport::analytic_plan`] rebuilds the measured run as a
//! [`MultiDpuPlan`], the analytic model `pim-exp --fig7` uses, from the
//! per-round stats. See the method docs for the exact (small, documented)
//! divergence between the two accountings — the cross-check regression
//! test in the repository root pins it.

use pim_sim::{MultiDpuPlan, RoundPlan};
use pim_stm::ExecProfile;
use pim_workloads::RoutingPolicy;
use serde::{Deserialize, Serialize};

use crate::host::TransferLedger;
use crate::rebalance::RebalancePolicy;

/// Per-shard totals over a whole fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard (= DPU) index.
    pub shard: u32,
    /// Global keys this shard owns.
    pub keys: u32,
    /// Sub-transactions dispatched to this shard (probes included).
    pub dispatched: u64,
    /// Transactions this shard committed.
    pub commits: u64,
    /// Aborted attempts (probe rejections included).
    pub aborts: u64,
    /// Probe transactions rejected back to the host
    /// (`AbortReason::Explicit`).
    pub rejected: u64,
    /// Cycles this shard's DPU spent across all its rounds.
    pub busy_cycles: u64,
    /// Online-tuner signal windows this shard's tasklets evaluated across
    /// all rounds (0 when tuning is off).
    pub tune_windows: u64,
    /// Online-tuner knob switches this shard's tasklets applied across all
    /// rounds.
    pub tune_switches: u64,
    /// Tasklet 0's final tuned knob values after the last round this shard
    /// ran (`None` when tuning is off) — a representative sample of where
    /// this shard's per-tasklet tuners settled, since every tasklet of a
    /// shard sees a round-robin slice of the same batches.
    pub tuned_knobs: Option<pim_stm::TuneKnobs>,
}

/// Per-round accounting: what was dispatched and where the time went.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Round index (0-based).
    pub round: usize,
    /// Sub-transactions dispatched this round (probes included).
    pub dispatched_subtxns: u64,
    /// Shards that received work this round.
    pub active_shards: u64,
    /// Commits this round, fleet-wide.
    pub commits: u64,
    /// Probe rejections this round, fleet-wide.
    pub rejected: u64,
    /// Seconds in the round-descriptor broadcast.
    pub broadcast_seconds: f64,
    /// Seconds scattering transaction descriptors to the shards.
    pub scatter_seconds: f64,
    /// Slowest shard's DPU compute this round, in seconds — the barrier
    /// waits for it.
    pub dpu_seconds: f64,
    /// Mean DPU compute over the *active* shards this round, in seconds.
    pub dpu_mean_seconds: f64,
    /// Seconds gathering per-shard result summaries.
    pub gather_seconds: f64,
    /// Modeled host routing seconds this round (pre-barrier work).
    pub host_route_seconds: f64,
    /// Modeled host merge seconds this round (post-barrier work).
    pub host_merge_seconds: f64,
    /// Bytes attributable to this round, host→DPUs. Broadcast + scatter,
    /// plus — when the *previous* round boundary migrated keys — the
    /// migration's scatter bytes (the recut state arrives with this
    /// round's inputs, so the analytic plan charges it here).
    pub bytes_to_dpus: u64,
    /// Bytes attributable to this round, DPUs→host. Gather, plus the
    /// migration gather bytes when this round's boundary migrated keys.
    pub bytes_from_dpus: u64,
    /// Keys whose owner changed at this round's trailing boundary.
    pub migrated_keys: u64,
    /// Seconds spent migrating those keys (gather + scatter of 8 bytes
    /// per key each way), charged at this round's trailing boundary.
    pub migration_seconds: f64,
    /// True when the pipeline overlapped this round's pre-work with the
    /// previous round's compute (never true for round 0, for a round
    /// consuming deferred cross-shard work, or directly after a
    /// migration).
    pub overlapped: bool,
    /// Pre-work seconds the pipeline hid behind the previous round's
    /// compute: `min(pre_seconds, previous dpu_seconds)` when
    /// [`RoundStats::overlapped`], else 0.
    pub hidden_seconds: f64,
}

impl RoundStats {
    /// Pre-barrier seconds: the work the host does *before* this round's
    /// shards can start (descriptor broadcast + payload scatter + host
    /// routing). This is exactly the portion the pipeline may overlap
    /// with the previous round's compute.
    pub fn pre_seconds(&self) -> f64 {
        self.broadcast_seconds + self.scatter_seconds + self.host_route_seconds
    }

    /// Post-barrier seconds: result gather + host merge + any migration
    /// at this round's trailing boundary. Never hideable — it depends on
    /// this round's own outputs.
    pub fn post_seconds(&self) -> f64 {
        self.gather_seconds + self.host_merge_seconds + self.migration_seconds
    }

    /// Modeled host CPU seconds (routing + merge) this round.
    pub fn host_seconds(&self) -> f64 {
        self.host_route_seconds + self.host_merge_seconds
    }

    /// End-to-end serial seconds of this round: transfers + the DPU
    /// barrier + host work + migration, with no pipeline credit.
    pub fn total_seconds(&self) -> f64 {
        self.pre_seconds() + self.dpu_seconds + self.post_seconds()
    }

    /// Seconds this round contributes to the pipelined makespan:
    /// [`RoundStats::total_seconds`] minus the pre-work hidden behind the
    /// previous round's compute.
    pub fn pipelined_seconds(&self) -> f64 {
        self.total_seconds() - self.hidden_seconds
    }
}

/// What the double-buffered round pipeline achieved over a whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Whether pipelining was enabled for the run.
    pub enabled: bool,
    /// Rounds whose pre-work overlapped the previous round's compute.
    pub overlapped_rounds: u64,
    /// Rounds that paid their pre-work on the critical path (round 0,
    /// rounds consuming deferred cross-shard work, rounds directly after
    /// a migration — and every round when the pipeline is off).
    pub stalled_rounds: u64,
    /// Pre-work seconds hidden behind compute, summed over all rounds.
    pub hidden_seconds: f64,
    /// Pre-work seconds that stayed on the critical path
    /// (`Σ pre_seconds − hidden_seconds`).
    pub exposed_pre_seconds: f64,
}

/// What skew-adaptive rebalancing did and what it cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RebalanceStats {
    /// The policy the run used.
    pub policy: RebalancePolicy,
    /// Boundary recuts that actually migrated keys.
    pub rebalances: u64,
    /// Keys whose owner changed, summed over all recuts.
    pub migrated_keys: u64,
    /// Bytes the migrations moved through the transfer ledger
    /// (8 per moved key in each direction: gather old owner → host,
    /// scatter host → new owner).
    pub migration_bytes: u64,
    /// Modeled seconds those migrations cost.
    pub migration_seconds: f64,
}

/// Load/commit imbalance across the shards of one fleet run.
///
/// `max/mean` ratios answer "how much slower is the hottest shard than the
/// average" (1.0 = perfectly balanced); the coefficient of variation
/// (stddev/mean) summarises the whole distribution. Both are computed over
/// **all** shards — an idle shard is imbalance, not a statistical nuisance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Imbalance {
    /// Hottest shard by committed transactions.
    pub hottest_shard: u32,
    /// Fraction of all commits the hottest shard performed.
    pub hottest_commit_share: f64,
    /// Max-over-mean of per-shard commits (1.0 = balanced).
    pub max_over_mean_commits: f64,
    /// Coefficient of variation of per-shard commits.
    pub cv_commits: f64,
    /// Max-over-mean of per-shard busy cycles.
    pub max_over_mean_busy: f64,
    /// Coefficient of variation of per-shard busy cycles.
    pub cv_busy: f64,
}

impl Imbalance {
    /// The all-zero summary: what a run with no commits reports. Every
    /// field is 0 — including the ratios, which would otherwise be a
    /// 0/0 division dressed up as "balanced".
    pub fn zero() -> Self {
        Imbalance {
            hottest_shard: 0,
            hottest_commit_share: 0.0,
            max_over_mean_commits: 0.0,
            cv_commits: 0.0,
            max_over_mean_busy: 0.0,
            cv_busy: 0.0,
        }
    }

    /// Computes the summary from per-shard totals.
    ///
    /// A fleet where **no shard commits** (an empty shard list, or an
    /// all-reject round stream) has no load signal to summarise: the
    /// result is [`Imbalance::zero`] rather than a fabricated ratio.
    pub fn from_shards(shards: &[ShardStats]) -> Self {
        let total_commits: u64 = shards.iter().map(|s| s.commits).sum();
        if total_commits == 0 {
            return Imbalance::zero();
        }
        fn spread(values: impl Iterator<Item = u64> + Clone) -> (f64, f64) {
            let n = values.clone().count().max(1) as f64;
            let mean = values.clone().sum::<u64>() as f64 / n;
            let max = values.clone().max().unwrap_or(0) as f64;
            if mean == 0.0 {
                return (0.0, 0.0);
            }
            let var = values.map(|v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
            (max / mean, var.sqrt() / mean)
        }
        let (max_over_mean_commits, cv_commits) = spread(shards.iter().map(|s| s.commits));
        let (max_over_mean_busy, cv_busy) = spread(shards.iter().map(|s| s.busy_cycles));
        let hottest = shards.iter().max_by_key(|s| s.commits).map(|s| s.shard).unwrap_or(0);
        let hottest_commits = shards.iter().map(|s| s.commits).max().unwrap_or(0);
        Imbalance {
            hottest_shard: hottest,
            hottest_commit_share: hottest_commits as f64 / total_commits as f64,
            max_over_mean_commits,
            cv_commits,
            max_over_mean_busy,
            cv_busy,
        }
    }
}

/// Everything one fleet run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// DPUs (= shards) in the fleet.
    pub n_dpus: usize,
    /// Tasklets per shard DPU.
    pub tasklets: usize,
    /// Cross-shard routing policy the dispatcher used.
    pub routing: RoutingPolicy,
    /// Transactions in the global stream.
    pub global_txns: u64,
    /// Sub-transactions dispatched in total (probes and re-dispatches
    /// included — under abort-and-retry this exceeds the commit count).
    pub dispatched_subtxns: u64,
    /// Committed transactions, fleet-wide.
    pub total_commits: u64,
    /// Aborted attempts, fleet-wide (probe rejections included).
    pub total_aborts: u64,
    /// Probe transactions rejected back to the host.
    pub total_rejected: u64,
    /// Sum of all shard counters after the run — each committed
    /// sub-transaction contributes its update count, so conservation is
    /// checkable against the stream.
    pub total_increments: u64,
    /// FNV-1a fingerprint of the global counter array in key order —
    /// partition-invariant for this commutative workload.
    pub fingerprint: u64,
    /// Per-round accounting, in dispatch order.
    pub rounds: Vec<RoundStats>,
    /// Per-shard totals.
    pub shards: Vec<ShardStats>,
    /// Load/commit imbalance summary over [`FleetReport::shards`].
    pub imbalance: Imbalance,
    /// All per-tasklet profiles of every shard, merged (cycle domain) —
    /// same schema as a single-DPU run's merged profile.
    pub profile: ExecProfile,
    /// Per-primitive transfer accounting.
    pub ledger: TransferLedger,
    /// What the double-buffered round pipeline hid (all-zero when off).
    pub pipeline: PipelineStats,
    /// What skew-adaptive rebalancing did and cost (all-zero when off).
    pub rebalance: RebalanceStats,
    /// End-to-end modeled seconds: every round's
    /// [`RoundStats::pipelined_seconds`], summed. With the pipeline off
    /// this is the plain serial sum of round totals.
    pub makespan_seconds: f64,
}

impl FleetReport {
    /// Committed transactions per modeled second.
    pub fn throughput_tx_per_sec(&self) -> f64 {
        if self.makespan_seconds == 0.0 {
            0.0
        } else {
            self.total_commits as f64 / self.makespan_seconds
        }
    }

    /// Seconds the DPU barrier contributed across all rounds (the slowest
    /// shard of each round).
    pub fn dpu_barrier_seconds(&self) -> f64 {
        self.rounds.iter().map(|r| r.dpu_seconds).sum()
    }

    /// Modeled host CPU seconds across all rounds.
    pub fn host_seconds(&self) -> f64 {
        self.rounds.iter().map(|r| r.host_seconds()).sum()
    }

    /// Per-round throughput series: committed transactions per pipelined
    /// second, round by round. This is what makes a rebalance break-even
    /// visible — the rounds before a recut run at the skewed rate, the
    /// migration round absorbs the transfer cost, and later rounds run at
    /// the recovered rate.
    pub fn round_throughput_series(&self) -> Vec<f64> {
        self.rounds
            .iter()
            .map(|r| {
                let s = r.pipelined_seconds();
                if s == 0.0 {
                    0.0
                } else {
                    r.commits as f64 / s
                }
            })
            .collect()
    }

    /// Cumulative throughput after each round: commits so far over
    /// pipelined seconds so far. The rebalance break-even round is the
    /// first index where this series overtakes the static baseline's.
    pub fn cumulative_throughput_series(&self) -> Vec<f64> {
        let mut commits = 0u64;
        let mut seconds = 0.0f64;
        self.rounds
            .iter()
            .map(|r| {
                commits += r.commits;
                seconds += r.pipelined_seconds();
                if seconds == 0.0 {
                    0.0
                } else {
                    commits as f64 / seconds
                }
            })
            .collect()
    }

    /// Rebuilds this run as an analytic [`MultiDpuPlan`] — one
    /// [`RoundPlan`] per measured round, with the measured per-round DPU
    /// barrier time as the round's compute time, the measured byte counts
    /// (migration bytes folded in, as documented on
    /// [`RoundStats::bytes_to_dpus`]) as its transfer sizes, and the
    /// round's overlap eligibility as [`RoundPlan::overlappable`].
    ///
    /// The plan's accounting differs from the fleet's in exactly one way:
    /// bulk-operation *count*. The fleet issues **two** host→DPU bulk
    /// operations per round (broadcast + scatter) where the plan charges
    /// one combined transfer, and each migration issues two more (its
    /// gather + scatter) whose bytes the plan folds into adjacent rounds.
    /// The plan is therefore cheaper by exactly
    /// `(rounds + 2 · rebalances) ×`
    /// [`pim_sim::CpuTransferModel::bulk_overhead_s`] in the serial case;
    /// with the pipeline on, part of that gap may itself be hidden, so the
    /// cross-check pins `0 ≤ makespan − analytic ≤` the same bound.
    pub fn analytic_plan(&self) -> MultiDpuPlan {
        let mut plan = MultiDpuPlan::new(self.n_dpus);
        for round in &self.rounds {
            plan.push_round(RoundPlan {
                dpu_compute_seconds: round.dpu_seconds,
                bytes_to_dpus: round.bytes_to_dpus,
                bytes_from_dpus: round.bytes_from_dpus,
                cpu_route_seconds: round.host_route_seconds,
                cpu_merge_seconds: round.host_merge_seconds,
                overlappable: round.overlapped,
            });
        }
        plan
    }

    /// Executes [`FleetReport::analytic_plan`] against this run's own
    /// transfer model — pipelined when this run pipelined — and returns
    /// its end-to-end seconds. See [`FleetReport::analytic_plan`] for the
    /// exact divergence from [`FleetReport::makespan_seconds`].
    pub fn analytic_total_seconds(&self) -> f64 {
        let plan = self.analytic_plan();
        let model = self.ledger.transfer_model();
        if self.pipeline.enabled {
            plan.execute_pipelined(model).total_seconds()
        } else {
            plan.execute(model).total_seconds()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(shard: u32, commits: u64, busy: u64) -> ShardStats {
        ShardStats {
            shard,
            keys: 10,
            dispatched: commits,
            commits,
            aborts: 0,
            rejected: 0,
            busy_cycles: busy,
            tune_windows: 0,
            tune_switches: 0,
            tuned_knobs: None,
        }
    }

    #[test]
    fn balanced_shards_have_unit_ratios() {
        let shards = [shard(0, 50, 1000), shard(1, 50, 1000)];
        let imb = Imbalance::from_shards(&shards);
        assert!((imb.max_over_mean_commits - 1.0).abs() < 1e-12);
        assert!(imb.cv_commits.abs() < 1e-12);
        assert!((imb.hottest_commit_share - 0.5).abs() < 1e-12);
    }

    #[test]
    fn skewed_shards_show_up_in_every_statistic() {
        let shards = [shard(0, 90, 9000), shard(1, 10, 1000)];
        let imb = Imbalance::from_shards(&shards);
        assert_eq!(imb.hottest_shard, 0);
        assert!((imb.max_over_mean_commits - 1.8).abs() < 1e-12);
        assert!(imb.cv_commits > 0.5);
        assert!(imb.max_over_mean_busy > 1.5);
        assert!((imb.hottest_commit_share - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_fleet_degenerates_gracefully() {
        let imb = Imbalance::from_shards(&[]);
        assert_eq!(imb, Imbalance::zero());
        assert_eq!(imb.max_over_mean_commits, 0.0);
        assert_eq!(imb.cv_commits, 0.0);
        assert_eq!(imb.hottest_commit_share, 0.0);
    }

    #[test]
    fn commitless_fleet_reports_zero_imbalance() {
        // An all-reject round stream: shards were busy but nothing
        // committed. No load signal → the zero summary, not a 0/0 ratio.
        let shards = [
            ShardStats {
                shard: 0,
                keys: 10,
                dispatched: 40,
                commits: 0,
                aborts: 40,
                rejected: 40,
                busy_cycles: 5000,
                tune_windows: 0,
                tune_switches: 0,
                tuned_knobs: None,
            },
            ShardStats {
                shard: 1,
                keys: 10,
                dispatched: 10,
                commits: 0,
                aborts: 10,
                rejected: 10,
                busy_cycles: 800,
                tune_windows: 0,
                tune_switches: 0,
                tuned_knobs: None,
            },
        ];
        assert_eq!(Imbalance::from_shards(&shards), Imbalance::zero());
    }

    fn round(round: usize, commits: u64, dpu: f64, hidden: f64) -> RoundStats {
        RoundStats {
            round,
            dispatched_subtxns: commits,
            active_shards: 2,
            commits,
            rejected: 0,
            broadcast_seconds: 0.001,
            scatter_seconds: 0.004,
            dpu_seconds: dpu,
            dpu_mean_seconds: dpu,
            gather_seconds: 0.002,
            host_route_seconds: 0.003,
            host_merge_seconds: 0.001,
            bytes_to_dpus: 100,
            bytes_from_dpus: 64,
            migrated_keys: 0,
            migration_seconds: 0.0,
            overlapped: hidden > 0.0,
            hidden_seconds: hidden,
        }
    }

    #[test]
    fn round_stats_split_pre_and_post_work() {
        let r = round(1, 10, 0.5, 0.008);
        assert!((r.pre_seconds() - 0.008).abs() < 1e-15);
        assert!((r.post_seconds() - 0.003).abs() < 1e-15);
        assert!((r.host_seconds() - 0.004).abs() < 1e-15);
        assert!((r.total_seconds() - (0.008 + 0.5 + 0.003)).abs() < 1e-15);
        // Fully hidden pre-work leaves compute + post on the critical path.
        assert!((r.pipelined_seconds() - (0.5 + 0.003)).abs() < 1e-15);
    }

    #[test]
    fn throughput_series_expose_the_per_round_rate() {
        let rounds = vec![round(0, 10, 1.0, 0.0), round(1, 30, 1.0, 0.008)];
        let report = FleetReport {
            n_dpus: 2,
            tasklets: 1,
            routing: RoutingPolicy::AbortAndRetry,
            global_txns: 40,
            dispatched_subtxns: 40,
            total_commits: 40,
            total_aborts: 0,
            total_rejected: 0,
            total_increments: 40,
            fingerprint: 0,
            rounds,
            shards: Vec::new(),
            imbalance: Imbalance::zero(),
            profile: ExecProfile::new(pim_stm::profile::TimeDomain::Cycles),
            ledger: TransferLedger::new(pim_sim::CpuTransferModel::default()),
            pipeline: PipelineStats::default(),
            rebalance: RebalanceStats::default(),
            makespan_seconds: 2.0,
        };
        let per_round = report.round_throughput_series();
        assert_eq!(per_round.len(), 2);
        assert!((per_round[0] - 10.0 / report.rounds[0].pipelined_seconds()).abs() < 1e-9);
        assert!(per_round[1] > per_round[0], "round 1 commits more in less time");
        let cumulative = report.cumulative_throughput_series();
        let total: f64 = report.rounds.iter().map(|r| r.pipelined_seconds()).sum();
        assert!((cumulative[1] - 40.0 / total).abs() < 1e-9);
        assert!(cumulative[1] > cumulative[0]);
    }
}
