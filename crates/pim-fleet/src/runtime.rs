//! The fleet runtime: N simulated shard DPUs behind one host dispatcher.
//!
//! [`run`] executes one sharded workload on a fleet described by
//! [`FleetConfig`]:
//!
//! 1. **Partition** — the global keyspace is range-partitioned over the N
//!    shard DPUs ([`ShardMap`]); each shard DPU is sized to its slice plus
//!    its STM metadata, so fleets of thousands of DPUs do not allocate
//!    thousands of 64 MB MRAM banks.
//! 2. **Dispatch rounds** — the host takes up to
//!    [`FleetConfig::txns_per_round`] transactions off the global stream,
//!    routes them ([`RoutingPolicy`]), `broadcast`s the round descriptor,
//!    `scatter`s each shard's batch, runs every active shard's simulator
//!    — in parallel across host worker threads — to completion (the
//!    inter-round **barrier**: the round ends when its slowest shard
//!    does), `gather`s the per-shard summaries, and pays the modeled host
//!    routing/merge cost. Probe rejections re-enter the stream as split
//!    sub-transactions in the *next* round.
//! 3. **Rebalance (optional)** — with a [`RebalancePolicy`] other than
//!    `Off`, the host tracks the dispatched key stream and recuts the
//!    range partition between rounds; moved key ranges are paid for as
//!    real `gather` + `scatter` bytes through the ledger, and deferred
//!    sub-transactions are re-routed under the new map.
//! 4. **Pipeline (optional)** — with [`FleetConfig::overlap`] the host
//!    routes and scatters round *k+1* while round *k*'s shards compute.
//!    Execution order never changes; only the *cost model* does: an
//!    overlap-eligible round's pre-work (broadcast + scatter + routing)
//!    is hidden up to the previous round's compute time.
//! 5. **Report** — per-shard stats, per-round stats, the merged
//!    cycle-domain [`pim_stm::ExecProfile`], the transfer ledger,
//!    pipeline/rebalance panels and the partition-invariant fingerprint
//!    land in one [`FleetReport`].
//!
//! Determinism: shard simulators are deterministic, the stream is seeded,
//! and all host costs are modeled (never measured) — so the report is
//! bit-identical regardless of `host_workers` and of the machine it runs
//! on. The worker threads only decide *wall-clock* speed of the
//! simulation itself. Rebalancing keeps this property because its trigger
//! reads only the dispatch-order key window, and pipelining keeps it
//! because hiding is pure arithmetic over modeled costs.

use std::collections::VecDeque;

use pim_sim::{CpuTransferModel, Dpu, DpuConfig, Scheduler, TaskletProgram};
use pim_stm::profile::TimeDomain;
use pim_stm::{
    algorithm_for, var, AbortReason, ExecProfile, MetadataPlacement, StmConfig, StmKind, StmShared,
    TunePolicy, Tuner, TxSlot,
};
use pim_workloads::sharded::{
    deal_batch, generate_stream, route, ShardData, ShardProgram, ShardTx, FINGERPRINT_SEED,
};
use pim_workloads::{RoutingPolicy, ShardMap, ShardedWorkloadConfig, TxMachine};

use crate::host::{HostCostModel, TransferLedger};
use crate::rebalance::{RebalancePolicy, Rebalancer};
use crate::report::{
    FleetReport, Imbalance, PipelineStats, RebalanceStats, RoundStats, ShardStats,
};

/// Bytes of the per-round control block the host broadcasts to every DPU
/// (round number, batch length, flags).
pub const ROUND_DESCRIPTOR_BYTES: u64 = 64;

/// Bytes of the per-shard result summary the host gathers after each round
/// (commits, aborts, rejections, checksum).
pub const GATHER_SUMMARY_BYTES: u64 = 32;

/// Bytes a migrated key costs in **each** direction (its 8-byte counter
/// word): gathered from the old owner, scattered to the new owner.
pub const MIGRATION_BYTES_PER_KEY: u64 = 8;

/// Everything that defines one fleet run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Shard DPUs in the fleet.
    pub n_dpus: usize,
    /// Tasklets per shard DPU.
    pub tasklets: usize,
    /// STM design every shard runs.
    pub kind: StmKind,
    /// Metadata placement on every shard.
    pub placement: MetadataPlacement,
    /// The global workload (keyspace, stream length, skew) — shard-count
    /// independent by construction.
    pub workload: ShardedWorkloadConfig,
    /// Cross-shard routing policy.
    pub routing: RoutingPolicy,
    /// Global transactions the host dispatches per round (the round
    /// granularity of the barrier).
    pub txns_per_round: usize,
    /// Seed of the global stream.
    pub seed: u64,
    /// Transfer-cost model every host primitive is charged against.
    pub transfer: CpuTransferModel,
    /// Modeled host CPU costs (routing, merge).
    pub host: HostCostModel,
    /// Host worker threads simulating shards in parallel; `0` = one per
    /// available core. Affects wall-clock speed only, never results.
    pub host_workers: usize,
    /// When to recut the range partition between rounds (default `Off` —
    /// the static partition of every previous fleet).
    pub rebalance: RebalancePolicy,
    /// Double-buffered round pipeline: model round *k+1*'s pre-work as
    /// overlapping round *k*'s compute (default `false` — the serial
    /// round structure of every previous fleet).
    pub overlap: bool,
    /// Online self-tuning policy every shard's tasklets run (default
    /// `Static` — fixed knobs, the behaviour of every previous fleet).
    /// Each shard DPU tunes independently: tuner state persists across
    /// that shard's rounds and survives rebalance recuts.
    pub tune: TunePolicy,
}

impl FleetConfig {
    /// A fleet of `n_dpus` over `workload`, with the defaults the `--fleet`
    /// sweep uses: 8 tasklets, NOrec with MRAM metadata, route-to-owner,
    /// four dispatch rounds.
    pub fn new(n_dpus: usize, workload: ShardedWorkloadConfig) -> Self {
        FleetConfig {
            n_dpus,
            tasklets: 8,
            kind: StmKind::Norec,
            placement: MetadataPlacement::Mram,
            workload,
            routing: RoutingPolicy::RouteToOwner,
            txns_per_round: (workload.total_txns as usize).div_ceil(4).max(1),
            seed: 42,
            transfer: CpuTransferModel::default(),
            host: HostCostModel::default(),
            host_workers: 0,
            rebalance: RebalancePolicy::Off,
            overlap: false,
            tune: TunePolicy::Static,
        }
    }

    /// Replaces the routing policy.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Replaces the stream seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the rebalance policy.
    pub fn with_rebalance(mut self, rebalance: RebalancePolicy) -> Self {
        self.rebalance = rebalance;
        self
    }

    /// Enables or disables the double-buffered round pipeline.
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Replaces the online self-tuning policy.
    pub fn with_tune(mut self, tune: TunePolicy) -> Self {
        self.tune = tune;
        self
    }

    /// Caps the host worker threads that simulate shards in parallel
    /// (`0` = one per available core). Results never depend on it, so an
    /// outer experiment runner holding a machine-wide thread budget (e.g.
    /// `pim_exp::pool::WorkerPool::inner_budget`) plants its per-job quota
    /// here to keep `outer jobs × shard workers` within that budget.
    pub fn with_host_workers(mut self, host_workers: usize) -> Self {
        self.host_workers = host_workers;
        self
    }

    /// The STM configuration every shard allocates, with transaction-set
    /// capacities sized to the workload.
    pub fn stm_config(&self) -> StmConfig {
        StmConfig::new(self.kind, self.placement)
            .with_read_set_capacity((self.workload.keys_per_tx() + 8).next_power_of_two())
            .with_write_set_capacity((self.workload.updates_per_tx + 8).next_power_of_two())
            .with_tune(self.tune)
    }

    fn validate(&self) {
        assert!(self.n_dpus > 0, "a fleet needs at least one DPU");
        assert!(
            self.tasklets >= 1 && self.tasklets <= DpuConfig::default().max_tasklets,
            "tasklets per shard must lie in 1..=24"
        );
        assert!(self.txns_per_round > 0, "txns_per_round must be positive");
        assert!(self.workload.total_txns > 0, "the global stream must be non-empty");
        assert!(self.workload.keys_per_tx() > 0, "transactions must touch at least one key");
    }
}

/// One shard's persistent state across rounds.
struct ShardState {
    dpu: Dpu,
    shared: StmShared,
    data: ShardData,
    slots: Vec<TxSlot>,
    profile: ExecProfile,
    dispatched: u64,
    commits: u64,
    aborts: u64,
    rejected: u64,
    busy_cycles: u64,
    /// Per-tasklet tuner state, persisted across rounds (and across
    /// rebalance recuts): `TxMachine`s are rebuilt fresh every round, so
    /// the shard re-installs each tasklet's tuner into its machine before
    /// the round and harvests it back afterwards. `None` entries mean the
    /// tasklet has not run a tuned round yet (or tuning is off).
    tuners: Vec<Option<Tuner>>,
    /// Outcome of the round that just ran (drained by the orchestrator).
    last_round: Option<RoundOutcome>,
}

#[derive(Debug, Clone, Copy)]
struct RoundOutcome {
    seconds: f64,
    commits: u64,
    rejected: u64,
}

impl ShardState {
    /// Builds one shard: a DPU sized to its key slice + STM metadata, the
    /// STM instance, the counter slice, and one registered slot per
    /// tasklet (registered once; fresh transaction machines wrap them
    /// every round).
    fn new(config: &FleetConfig, base: u32, span: u32) -> Self {
        let stm_cfg = config.stm_config();
        let mram_words = span.max(1)
            + stm_cfg.shared_metadata_words()
            + stm_cfg.per_tasklet_metadata_words() * config.tasklets as u32
            + 2048;
        let mut dpu = Dpu::new(DpuConfig { mram_words, ..DpuConfig::default() });
        let shared = StmShared::allocate(&mut dpu, stm_cfg)
            .expect("shard STM metadata must fit the sized DPU");
        let data = ShardData::allocate(&mut dpu, base, span);
        let slots = (0..config.tasklets)
            .map(|t| {
                shared
                    .register_tasklet(&mut dpu, t)
                    .expect("per-tasklet STM logs must fit the sized DPU")
            })
            .collect();
        ShardState {
            dpu,
            shared,
            data,
            slots,
            profile: ExecProfile::new(TimeDomain::Cycles),
            dispatched: 0,
            commits: 0,
            aborts: 0,
            rejected: 0,
            busy_cycles: 0,
            tuners: (0..config.tasklets).map(|_| None).collect(),
            last_round: None,
        }
    }

    /// Runs one round's batch to completion on this shard's simulator and
    /// folds the results into the shard accumulators.
    fn run_round(&mut self, batch: Vec<ShardTx>) {
        self.dispatched += batch.len() as u64;
        let alg = algorithm_for(self.shared.config().kind);
        // Per-tasklet tuners outlive the round's machines: each machine
        // starts from the tuner its tasklet ended the previous round with
        // and deposits it back through the stash when the scheduler drops
        // the program. The stashes never leave this shard's worker thread.
        let mut stashes: Vec<std::rc::Rc<std::cell::RefCell<Option<Tuner>>>> = Vec::new();
        let programs: Vec<Box<dyn TaskletProgram>> = deal_batch(batch, self.slots.len())
            .into_iter()
            .enumerate()
            .map(|(t, hand)| {
                let mut machine = TxMachine::new(self.shared.clone(), self.slots[t].clone(), alg);
                if let Some(prev) = self.tuners[t].take() {
                    machine.install_tuner(prev);
                }
                let stash = std::rc::Rc::new(std::cell::RefCell::new(None));
                stashes.push(std::rc::Rc::clone(&stash));
                Box::new(ShardProgram::new(machine, self.data, hand).with_tuner_stash(stash))
                    as Box<dyn TaskletProgram>
            })
            .collect();
        let report = Scheduler::new().run(&mut self.dpu, programs);
        for (t, stash) in stashes.into_iter().enumerate() {
            self.tuners[t] = stash.borrow_mut().take();
        }
        let mut rejected = 0;
        for stats in &report.tasklet_stats {
            rejected += stats.profile.abort_codes[AbortReason::Explicit.index()];
            self.profile.merge(&ExecProfile::from_sim(stats));
        }
        self.commits += report.total_commits();
        self.aborts += report.total_aborts();
        self.rejected += rejected;
        self.busy_cycles += report.makespan_cycles;
        self.last_round = Some(RoundOutcome {
            seconds: report.makespan_seconds(),
            commits: report.total_commits(),
            rejected,
        });
    }

    fn stats(&self, shard: u32) -> ShardStats {
        ShardStats {
            shard,
            keys: self.data.span(),
            dispatched: self.dispatched,
            commits: self.commits,
            aborts: self.aborts,
            rejected: self.rejected,
            busy_cycles: self.busy_cycles,
            tune_windows: self.profile.core.tune_windows,
            tune_switches: self.profile.core.tune_switches,
            tuned_knobs: self.tuners.iter().flatten().next().map(Tuner::knobs),
        }
    }
}

/// Applies a recut: rebuilds every shard whose slice changed (counter
/// values move with their keys; the shard's cumulative accumulators are
/// carried over) and returns `(moved_keys, gather_bytes, scatter_bytes)` —
/// the per-shard byte vectors the caller charges through the ledger
/// ([`MIGRATION_BYTES_PER_KEY`] per moved key in each direction).
fn migrate(
    config: &FleetConfig,
    shards: &mut [ShardState],
    old: &ShardMap,
    new: &ShardMap,
) -> (u64, Vec<u64>, Vec<u64>) {
    let mut moved = 0u64;
    let mut gather_bytes = vec![0u64; shards.len()];
    let mut scatter_bytes = vec![0u64; shards.len()];
    for key in 0..old.total_keys() {
        let from = old.owner(key);
        let to = new.owner(key);
        if from != to {
            moved += 1;
            gather_bytes[from as usize] += MIGRATION_BYTES_PER_KEY;
            scatter_bytes[to as usize] += MIGRATION_BYTES_PER_KEY;
        }
    }
    // Snapshot every counter host-side, then rebuild the shards whose
    // slice changed and replay the values into the new owners.
    let mut counters = vec![0u64; old.total_keys() as usize];
    for (s, state) in shards.iter().enumerate() {
        let s = s as u32;
        for key in old.base(s)..old.base(s) + old.span(s) {
            counters[key as usize] = var::peek_var(&state.dpu, state.data.counter(key));
        }
    }
    for (s, state) in shards.iter_mut().enumerate() {
        let s_id = s as u32;
        if new.base(s_id) == old.base(s_id) && new.span(s_id) == old.span(s_id) {
            continue;
        }
        let mut fresh = ShardState::new(config, new.base(s_id), new.span(s_id));
        fresh.profile = state.profile;
        fresh.dispatched = state.dispatched;
        fresh.commits = state.commits;
        fresh.aborts = state.aborts;
        fresh.rejected = state.rejected;
        fresh.busy_cycles = state.busy_cycles;
        fresh.tuners = std::mem::take(&mut state.tuners);
        for key in new.base(s_id)..new.base(s_id) + new.span(s_id) {
            var::poke_var(&mut fresh.dpu, fresh.data.counter(key), counters[key as usize]);
        }
        *state = fresh;
    }
    (moved, gather_bytes, scatter_bytes)
}

/// Re-splits deferred sub-transactions under a recut map: each deferred
/// `ShardTx` was split by the old owners, so its keys may now live on
/// different shards. Emits per-new-owner parts (ascending shard order per
/// origin, preserving the deferred order otherwise) — pure function of
/// its inputs, so determinism is preserved.
fn reroute(deferred: Vec<(u32, ShardTx)>, map: &ShardMap) -> Vec<(u32, ShardTx)> {
    let mut out: Vec<(u32, ShardTx)> = Vec::new();
    for (_, tx) in deferred {
        let mut parts: Vec<(u32, ShardTx)> = Vec::new();
        let part = |parts: &mut Vec<(u32, ShardTx)>, shard: u32| -> usize {
            match parts.iter().position(|(s, _)| *s == shard) {
                Some(i) => i,
                None => {
                    parts.push((
                        shard,
                        ShardTx {
                            origin: tx.origin,
                            reads: Vec::new(),
                            updates: Vec::new(),
                            probe: tx.probe,
                        },
                    ));
                    parts.len() - 1
                }
            }
        };
        for &key in &tx.reads {
            let i = part(&mut parts, map.owner(key));
            parts[i].1.reads.push(key);
        }
        for &key in &tx.updates {
            let i = part(&mut parts, map.owner(key));
            parts[i].1.updates.push(key);
        }
        parts.sort_by_key(|(s, _)| *s);
        out.extend(parts);
    }
    out
}

/// The shard-worker thread count a `host_workers` setting resolves to:
/// itself, or one per available core for `0`. This — not the raw field —
/// is what [`run`] spawns at most per round, and what budget-holding
/// callers audit against their quota.
pub fn resolve_host_workers(host_workers: usize) -> usize {
    if host_workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        host_workers
    }
}

/// Runs the fleet to completion and returns its report.
///
/// # Panics
///
/// Panics on an inconsistent configuration (zero DPUs, zero-length
/// stream, more tasklets than the hardware supports) or if a shard's STM
/// metadata does not fit the DPU the sizing formula produced — both are
/// configuration bugs, not runtime conditions.
pub fn run(config: &FleetConfig) -> FleetReport {
    config.validate();
    let mut map = ShardMap::new(config.workload.total_keys, config.n_dpus as u32);
    let stream = generate_stream(&config.workload, config.seed);
    let global_txns = stream.len() as u64;
    let mut pending: VecDeque<_> = stream.into();
    let mut shards: Vec<ShardState> = (0..config.n_dpus as u32)
        .map(|s| ShardState::new(config, map.base(s), map.span(s)))
        .collect();
    let mut ledger = TransferLedger::new(config.transfer);
    let mut rebalancer = Rebalancer::new(config.rebalance, config.workload.total_keys);
    let mut rebalance_stats =
        RebalanceStats { policy: config.rebalance, ..RebalanceStats::default() };
    let mut deferred: Vec<(u32, ShardTx)> = Vec::new();
    let mut rounds: Vec<RoundStats> = Vec::new();
    let mut makespan = 0.0f64;
    // Migration scatter bytes from the previous round boundary: the recut
    // state arrives with the next round's inputs, so the byte count is
    // attributed there (the ledger charged it at migration time).
    let mut carry_to_dpus = 0u64;
    let mut migrated_last_boundary = false;
    let mut prev_dpu_seconds = 0.0f64;
    let workers = resolve_host_workers(config.host_workers);

    while !pending.is_empty() || !deferred.is_empty() {
        // Migration scatter bytes from the previous boundary belong to
        // this round's host→DPU byte count.
        let carry_in = carry_to_dpus;
        carry_to_dpus = 0;

        // --- Host dispatch: deferred re-dispatches first, then the stream.
        let deferred_in = deferred.len() as u64;
        let mut batches: Vec<Vec<ShardTx>> = (0..config.n_dpus).map(|_| Vec::new()).collect();
        let mut dispatched = 0u64;
        for (shard, tx) in deferred.drain(..) {
            dispatched += 1;
            batches[shard as usize].push(tx);
        }
        let mut next_deferred = Vec::new();
        for _ in 0..config.txns_per_round.min(pending.len()) {
            let tx = pending.pop_front().expect("bounded by pending.len()");
            rebalancer.note(&tx);
            let routed = route(&tx, &map, config.routing);
            for (shard, sub) in routed.now {
                dispatched += 1;
                batches[shard as usize].push(sub);
            }
            next_deferred.extend(routed.deferred);
        }

        // --- Primitives: round descriptor to everyone, batches to owners.
        let broadcast_seconds = ledger.broadcast(ROUND_DESCRIPTOR_BYTES);
        let scatter_bytes: Vec<u64> =
            batches.iter().map(|b| b.iter().map(ShardTx::wire_bytes).sum()).collect();
        let scatter_seconds = ledger.scatter(&scatter_bytes);
        let active: Vec<bool> = batches.iter().map(|b| !b.is_empty()).collect();
        let host_route_seconds = config.host.route_seconds(dispatched);

        // --- Pipeline eligibility: this round's pre-work can overlap the
        // previous round's compute only if routing it needed nothing from
        // that round — no deferred re-dispatches (discovered *during* the
        // previous compute) and no migration at the previous boundary
        // (the recut state is only available after that compute).
        let overlapped =
            config.overlap && !rounds.is_empty() && deferred_in == 0 && !migrated_last_boundary;
        let pre_seconds = broadcast_seconds + scatter_seconds + host_route_seconds;
        let hidden_seconds = if overlapped { pre_seconds.min(prev_dpu_seconds) } else { 0.0 };

        // --- Barrier: run every active shard, in parallel host workers.
        let mut work: Vec<(&mut ShardState, Vec<ShardTx>)> =
            shards.iter_mut().zip(batches).filter(|(_, batch)| !batch.is_empty()).collect();
        std::thread::scope(|scope| {
            let mut bins: Vec<Vec<(&mut ShardState, Vec<ShardTx>)>> =
                (0..workers.max(1)).map(|_| Vec::new()).collect();
            let bin_count = bins.len();
            for (i, item) in work.drain(..).enumerate() {
                bins[i % bin_count].push(item);
            }
            for bin in bins {
                if bin.is_empty() {
                    continue;
                }
                scope.spawn(move || {
                    for (state, batch) in bin {
                        state.run_round(batch);
                    }
                });
            }
        });

        // --- Collect the barrier: the round waits for its slowest shard.
        let outcomes: Vec<RoundOutcome> =
            shards.iter_mut().filter_map(|s| s.last_round.take()).collect();
        let active_shards = outcomes.len() as u64;
        let dpu_seconds = outcomes.iter().map(|o| o.seconds).fold(0.0, f64::max);
        let dpu_mean_seconds = if outcomes.is_empty() {
            0.0
        } else {
            outcomes.iter().map(|o| o.seconds).sum::<f64>() / outcomes.len() as f64
        };
        let round_commits: u64 = outcomes.iter().map(|o| o.commits).sum();
        let round_rejected: u64 = outcomes.iter().map(|o| o.rejected).sum();

        let gather_bytes: Vec<u64> =
            active.iter().map(|&a| if a { GATHER_SUMMARY_BYTES } else { 0 }).collect();
        let gather_seconds = ledger.gather(&gather_bytes);
        let host_merge_seconds = config.host.merge_seconds(active_shards);

        // --- Rebalance boundary: recut the partition if the policy fires
        // (trigger data is dispatch-side only, so this stays deterministic)
        // and there is future work to amortize the migration.
        let more_work = !pending.is_empty() || !next_deferred.is_empty();
        let mut migrated_keys = 0u64;
        let mut migration_seconds = 0.0f64;
        let mut migration_from_dpus = 0u64;
        migrated_last_boundary = false;
        if let Some(new_map) = rebalancer.plan(&map, more_work) {
            let (moved, from_bytes, to_bytes) = migrate(config, &mut shards, &map, &new_map);
            migrated_keys = moved;
            migration_from_dpus = from_bytes.iter().sum();
            carry_to_dpus = to_bytes.iter().sum();
            migration_seconds = ledger.gather(&from_bytes) + ledger.scatter(&to_bytes);
            next_deferred = reroute(next_deferred, &new_map);
            map = new_map;
            rebalance_stats.rebalances += 1;
            rebalance_stats.migrated_keys += migrated_keys;
            rebalance_stats.migration_bytes += migration_from_dpus + carry_to_dpus;
            rebalance_stats.migration_seconds += migration_seconds;
            migrated_last_boundary = true;
        }

        let stats = RoundStats {
            round: rounds.len(),
            dispatched_subtxns: dispatched,
            active_shards,
            commits: round_commits,
            rejected: round_rejected,
            broadcast_seconds,
            scatter_seconds,
            dpu_seconds,
            dpu_mean_seconds,
            gather_seconds,
            host_route_seconds,
            host_merge_seconds,
            bytes_to_dpus: ROUND_DESCRIPTOR_BYTES + scatter_bytes.iter().sum::<u64>() + carry_in,
            bytes_from_dpus: gather_bytes.iter().sum::<u64>() + migration_from_dpus,
            migrated_keys,
            migration_seconds,
            overlapped,
            hidden_seconds,
        };
        makespan += stats.pipelined_seconds();
        rounds.push(stats);
        deferred = next_deferred;
        prev_dpu_seconds = dpu_seconds;
    }

    // --- Fold the fleet report.
    let shard_stats: Vec<ShardStats> =
        shards.iter().enumerate().map(|(i, s)| s.stats(i as u32)).collect();
    let fingerprint =
        shards.iter().fold(FINGERPRINT_SEED, |hash, s| s.data.fold_fingerprint(&s.dpu, hash));
    let total_increments: u64 = shards.iter().map(|s| s.data.counter_sum(&s.dpu)).sum();
    let profile = ExecProfile::merged(shards.iter().map(|s| &s.profile))
        .unwrap_or_else(|| ExecProfile::new(TimeDomain::Cycles));
    let imbalance = Imbalance::from_shards(&shard_stats);
    let hidden_total: f64 = rounds.iter().map(|r| r.hidden_seconds).sum();
    let overlapped_rounds = rounds.iter().filter(|r| r.overlapped).count() as u64;
    let pipeline = PipelineStats {
        enabled: config.overlap,
        overlapped_rounds,
        stalled_rounds: rounds.len() as u64 - overlapped_rounds,
        hidden_seconds: hidden_total,
        exposed_pre_seconds: rounds.iter().map(RoundStats::pre_seconds).sum::<f64>() - hidden_total,
    };

    FleetReport {
        n_dpus: config.n_dpus,
        tasklets: config.tasklets,
        routing: config.routing,
        global_txns,
        dispatched_subtxns: shard_stats.iter().map(|s| s.dispatched).sum(),
        total_commits: shard_stats.iter().map(|s| s.commits).sum(),
        total_aborts: shard_stats.iter().map(|s| s.aborts).sum(),
        total_rejected: shard_stats.iter().map(|s| s.rejected).sum(),
        total_increments,
        fingerprint,
        rounds,
        shards: shard_stats,
        imbalance,
        profile,
        ledger,
        pipeline,
        rebalance: rebalance_stats,
        makespan_seconds: makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::KeyDist;

    fn small_workload() -> ShardedWorkloadConfig {
        ShardedWorkloadConfig::new(256, 96)
    }

    #[test]
    fn a_fleet_run_commits_every_transaction_exactly_once() {
        let config = FleetConfig::new(4, small_workload());
        let report = run(&config);
        // Route-to-owner: every global transaction's updates land exactly
        // once, so increments are conserved against the stream.
        assert_eq!(
            report.total_increments,
            u64::from(config.workload.updates_per_tx) * report.global_txns
        );
        assert!(report.total_commits >= report.global_txns, "splits add commits");
        assert_eq!(report.total_rejected, 0, "route-to-owner never probes");
        assert!(report.makespan_seconds > 0.0);
        assert!(report.throughput_tx_per_sec() > 0.0);
        assert_eq!(report.rounds.len(), 4);
        assert_eq!(report.shards.len(), 4);
    }

    #[test]
    fn results_are_independent_of_host_worker_count() {
        let base = FleetConfig::new(8, small_workload());
        let serial = run(&FleetConfig { host_workers: 1, ..base });
        let parallel = run(&FleetConfig { host_workers: 4, ..base });
        assert_eq!(serial, parallel, "host workers must not affect results");
        // The same holds with both new mechanisms switched on.
        let tuned = FleetConfig::new(8, small_workload().with_dist(KeyDist::Zipf { theta: 1.2 }))
            .with_rebalance(RebalancePolicy::Threshold { max_over_mean: 1.25 })
            .with_overlap(true);
        let serial = run(&FleetConfig { host_workers: 1, ..tuned });
        let parallel = run(&FleetConfig { host_workers: 4, ..tuned });
        assert_eq!(serial, parallel, "rebalance + overlap must stay deterministic");
    }

    #[test]
    fn rebalancing_pays_for_itself_and_preserves_results() {
        let workload = small_workload().with_dist(KeyDist::Zipf { theta: 1.2 });
        let static_run = run(&FleetConfig::new(8, workload));
        let adaptive = run(&FleetConfig::new(8, workload)
            .with_rebalance(RebalancePolicy::Threshold { max_over_mean: 1.25 }));
        assert!(adaptive.rebalance.rebalances > 0, "skewed stream must trigger a recut");
        assert!(adaptive.rebalance.migrated_keys > 0);
        assert_eq!(
            adaptive.rebalance.migration_bytes,
            2 * MIGRATION_BYTES_PER_KEY * adaptive.rebalance.migrated_keys
        );
        // Results are partition-invariant: same fingerprint and increments.
        assert_eq!(adaptive.fingerprint, static_run.fingerprint);
        assert_eq!(adaptive.total_increments, static_run.total_increments);
        // The recut spreads later rounds' load off the head shard.
        assert!(
            adaptive.imbalance.max_over_mean_busy < static_run.imbalance.max_over_mean_busy,
            "recut must flatten busy-cycle imbalance ({} vs {})",
            adaptive.imbalance.max_over_mean_busy,
            static_run.imbalance.max_over_mean_busy
        );
    }

    #[test]
    fn overlap_changes_only_the_cost_accounting() {
        let base = FleetConfig::new(8, small_workload());
        let serial = run(&base);
        let pipelined = run(&base.with_overlap(true));
        assert!(pipelined.pipeline.enabled);
        assert!(!serial.pipeline.enabled);
        assert_eq!(serial.pipeline.hidden_seconds, 0.0);
        assert!(pipelined.pipeline.hidden_seconds > 0.0, "some pre-work must hide");
        assert!(pipelined.pipeline.overlapped_rounds > 0);
        assert!(pipelined.makespan_seconds < serial.makespan_seconds);
        assert!(
            (serial.makespan_seconds
                - pipelined.makespan_seconds
                - pipelined.pipeline.hidden_seconds)
                .abs()
                < 1e-12,
            "makespan shrinks by exactly the hidden seconds"
        );
        // Execution results are untouched: only the cost model changed.
        assert_eq!(pipelined.fingerprint, serial.fingerprint);
        assert_eq!(pipelined.total_commits, serial.total_commits);
        assert_eq!(pipelined.ledger, serial.ledger);
    }

    #[test]
    fn abort_and_retry_probes_then_commits_the_same_state() {
        let owner = run(&FleetConfig::new(4, small_workload()));
        let retry =
            run(&FleetConfig::new(4, small_workload()).with_routing(RoutingPolicy::AbortAndRetry));
        assert!(retry.total_rejected > 0, "cross-shard txns must probe under abort-retry");
        assert_eq!(
            retry.profile.aborts_for(AbortReason::Explicit),
            retry.total_rejected,
            "every rejection is an Explicit abort in the merged histogram"
        );
        // Both policies apply the same global increments.
        assert_eq!(owner.fingerprint, retry.fingerprint);
        assert_eq!(owner.total_increments, retry.total_increments);
        // The probe round costs extra dispatches and rounds.
        assert!(retry.dispatched_subtxns > owner.dispatched_subtxns);
        assert!(retry.rounds.len() > owner.rounds.len());
    }

    #[test]
    fn skew_concentrates_load_on_the_head_shard() {
        let workload = small_workload().with_dist(KeyDist::Zipf { theta: 1.2 });
        let uniform = run(&FleetConfig::new(8, small_workload()));
        let skewed = run(&FleetConfig::new(8, workload));
        assert_eq!(skewed.imbalance.hottest_shard, 0, "zipf head keys live on shard 0");
        assert!(
            skewed.imbalance.cv_commits > uniform.imbalance.cv_commits,
            "skew must raise commit imbalance ({} vs {})",
            skewed.imbalance.cv_commits,
            uniform.imbalance.cv_commits
        );
    }

    #[test]
    fn per_shard_tuners_persist_across_rounds_and_stay_deterministic() {
        let workload = ShardedWorkloadConfig::new(256, 384).with_dist(KeyDist::Zipf { theta: 1.2 });
        let static_run = run(&FleetConfig::new(4, workload));
        // A short window so the hot shard's tasklets complete several
        // signal windows within this small stream.
        let tuned_cfg = FleetConfig::new(4, workload).with_tune(TunePolicy::Windowed { window: 8 });
        let tuned = run(&tuned_cfg);
        // Tuning moves timing knobs, never outcomes: same fingerprint and
        // the same conserved increment count as the static fleet.
        assert_eq!(tuned.fingerprint, static_run.fingerprint);
        assert_eq!(tuned.total_increments, static_run.total_increments);
        // The tuners actually ran and their state surfaced in the report.
        assert!(
            tuned.shards.iter().any(|s| s.tune_windows > 0),
            "some shard must evaluate at least one tuning window"
        );
        assert!(tuned.profile.core.tune_windows > 0, "merged profile carries tuner counters");
        assert!(
            tuned.shards.iter().filter(|s| s.tune_windows > 0).all(|s| s.tuned_knobs.is_some()),
            "every shard that tuned reports its settled knobs"
        );
        // The static fleet reports no tuner state at all.
        assert!(static_run
            .shards
            .iter()
            .all(|s| s.tune_windows == 0 && s.tune_switches == 0 && s.tuned_knobs.is_none()));
        // Tuner decisions are part of the deterministic state machine:
        // host worker count still must not affect any result.
        let serial = run(&FleetConfig { host_workers: 1, ..tuned_cfg });
        let parallel = run(&FleetConfig { host_workers: 4, ..tuned_cfg });
        assert_eq!(serial, parallel, "tuned fleets must stay worker-count invariant");
    }

    #[test]
    fn more_shards_than_keys_still_conserves() {
        let workload = ShardedWorkloadConfig::new(16, 24);
        let report = run(&FleetConfig::new(32, workload));
        assert_eq!(report.total_increments, 2 * 24);
        assert!(report.shards.iter().filter(|s| s.keys == 0).count() > 0);
    }
}
