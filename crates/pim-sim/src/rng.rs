//! A small deterministic pseudo-random number generator (SplitMix64 seeding
//! into xoshiro256**), used by workload generators so that simulated runs are
//! reproducible without depending on global RNG state.

/// Deterministic PRNG with a 256-bit state (xoshiro256**), seeded via
/// SplitMix64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let state =
            [splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s)];
        SimRng { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style rejection-free multiply-shift (slight bias acceptable
        // for workload generation).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Derives an independent generator (e.g. one per tasklet) from this one.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ stream.wrapping_mul(0xa076_1d64_78bd_642f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn range_is_respected() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            assert!(rng.next_range(13) < 13);
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SimRng::new(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} not near 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut base = SimRng::new(9);
        let mut s1 = base.fork(1);
        let mut s2 = base.fork(2);
        let same = (0..64).filter(|_| s1.next_u64() == s2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SimRng::new(0).next_range(0);
    }
}
