//! The DPU timing model.
//!
//! The constants here were chosen so that the *relative* costs that drive the
//! paper's conclusions hold:
//!
//! * a WRAM access is an ordinary pipeline instruction;
//! * a single-word MRAM access costs ≈ 231 ns (the paper's measured local
//!   MRAM read latency) — with a 350 MHz clock that is ~81 cycles;
//! * the pipeline has an effective depth of 11, so per-tasklet instruction
//!   throughput is constant for 1–11 tasklets (linear DPU scaling) and the
//!   issue rate is shared beyond 11;
//! * the MRAM DMA port is a single shared resource, so memory-bound
//!   workloads (Labyrinth) stop scaling well before 11 tasklets.

use serde::{Deserialize, Serialize};

use crate::mem::Tier;

/// Virtual time unit of the simulator: DPU clock cycles.
pub type Cycles = u64;

/// Latency/bandwidth parameters of one DPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// DPU clock frequency in Hz (UPMEM DPUs run at 350–450 MHz).
    pub clock_hz: u64,
    /// Effective pipeline depth: a tasklet can have one instruction in
    /// flight, so each instruction occupies the tasklet for this many cycles.
    /// DPU throughput therefore scales linearly up to this many tasklets.
    pub pipeline_depth: u64,
    /// Fixed cost of issuing an MRAM DMA transfer (row activation, command
    /// latency), in cycles.
    pub mram_setup_cycles: u64,
    /// Additional streaming cost per 64-bit word transferred to/from MRAM.
    pub mram_word_cycles: u64,
    /// Cost of an acquire/release on the hardware atomic bit register. The
    /// register is on-core (no WRAM/MRAM access), so this is a single
    /// instruction slot.
    pub atomic_op_instructions: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            clock_hz: 350_000_000,
            pipeline_depth: 11,
            mram_setup_cycles: 64,
            mram_word_cycles: 16,
            atomic_op_instructions: 1,
        }
    }
}

impl LatencyModel {
    /// Cycles a single instruction occupies its tasklet, given the number of
    /// tasklets currently competing for the issue stage.
    ///
    /// For `active_tasklets <= pipeline_depth` the revolver scheduler hides
    /// the other tasklets entirely, so the cost is `pipeline_depth`. Beyond
    /// that, issue slots are shared round-robin and each tasklet only gets a
    /// slot every `active_tasklets` cycles.
    pub fn instruction_cycles(&self, active_tasklets: usize) -> Cycles {
        self.pipeline_depth.max(active_tasklets as u64)
    }

    /// Pure DMA latency (excluding the issuing instruction and excluding port
    /// queueing) of transferring `words` 64-bit words between MRAM and WRAM.
    pub fn mram_transfer_cycles(&self, words: u32) -> Cycles {
        self.mram_setup_cycles + self.mram_word_cycles * u64::from(words.max(1))
    }

    /// Cost of a single-word access to `tier`, excluding port queueing.
    /// Returns `(instruction_cycles, dma_cycles)`.
    pub fn word_access_cycles(&self, tier: Tier, active_tasklets: usize) -> (Cycles, Cycles) {
        match tier {
            Tier::Wram => (self.instruction_cycles(active_tasklets), 0),
            Tier::Mram => (self.instruction_cycles(active_tasklets), self.mram_transfer_cycles(1)),
        }
    }

    /// Converts a cycle count into seconds using the DPU clock.
    pub fn cycles_to_seconds(&self, cycles: Cycles) -> f64 {
        cycles as f64 / self.clock_hz as f64
    }

    /// Converts seconds into cycles (rounding up), useful for modelling fixed
    /// host-side latencies inside DPU timelines.
    pub fn seconds_to_cycles(&self, seconds: f64) -> Cycles {
        (seconds * self.clock_hz as f64).ceil() as Cycles
    }

    /// The latency, in seconds, of a single-word MRAM read issued by one
    /// tasklet on an otherwise idle DPU. The paper reports 231 ns.
    pub fn local_mram_read_seconds(&self) -> f64 {
        let cycles = self.instruction_cycles(1) + self.mram_transfer_cycles(1);
        self.cycles_to_seconds(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_local_read_latency() {
        let m = LatencyModel::default();
        let ns = m.local_mram_read_seconds() * 1e9;
        // Paper: 231 ns. Accept a modest modelling tolerance.
        assert!((200.0..280.0).contains(&ns), "local MRAM read latency {ns} ns out of range");
    }

    #[test]
    fn instruction_cost_is_flat_up_to_pipeline_depth() {
        let m = LatencyModel::default();
        assert_eq!(m.instruction_cycles(1), 11);
        assert_eq!(m.instruction_cycles(11), 11);
        assert_eq!(m.instruction_cycles(16), 16);
        assert_eq!(m.instruction_cycles(24), 24);
    }

    #[test]
    fn wram_access_has_no_dma_component() {
        let m = LatencyModel::default();
        let (instr, dma) = m.word_access_cycles(Tier::Wram, 4);
        assert_eq!(dma, 0);
        assert_eq!(instr, 11);
        let (_, dma_mram) = m.word_access_cycles(Tier::Mram, 4);
        assert!(dma_mram > 0);
    }

    #[test]
    fn cycle_second_roundtrip() {
        let m = LatencyModel::default();
        let s = m.cycles_to_seconds(350_000_000);
        assert!((s - 1.0).abs() < 1e-9);
        assert_eq!(m.seconds_to_cycles(1.0), 350_000_000);
    }

    #[test]
    fn bulk_transfer_scales_with_words() {
        let m = LatencyModel::default();
        assert!(m.mram_transfer_cycles(64) > m.mram_transfer_cycles(1));
        // Zero-word transfers still pay the setup cost for at least one word.
        assert_eq!(m.mram_transfer_cycles(0), m.mram_transfer_cycles(1));
    }
}
