//! [`LatencyHistogram`]: a mergeable log-bucketed histogram for latency
//! samples.
//!
//! The service layer records one sample per committed transaction (queueing
//! delay, service time, total sojourn) and needs percentiles that survive
//! aggregation across tasklets, worker threads and fleet shards **without**
//! keeping every sample. The histogram here is the shared, time-domain-
//! agnostic core (samples are plain `u64`s — simulator cycles or wall
//! nanoseconds); the service layer wraps it in a [`crate::stats`]-style
//! domain-tagged type the same way `ExecProfile` wraps `ProfileCore`.
//!
//! # Bucketing
//!
//! HDR-histogram-style log-linear buckets: values below 16 get exact unit
//! buckets; above that, each power-of-two octave is split into 8 linear
//! sub-buckets, bounding the relative quantile error at 12.5% while keeping
//! the bucket array small (496 entries) and fixed-size for all values up to
//! `u64::MAX`.
//!
//! # Merge contract
//!
//! [`LatencyHistogram::merge`] is element-wise addition, so
//! `hist(A ∪ B) == merge(hist(A), hist(B))` **exactly** — not approximately.
//! Merging is therefore associative and commutative (pinned by proptest in
//! `tests/proptest_invariants.rs`), which is what makes fleet-merged
//! percentiles independent of worker count and shard count.

use serde::{Deserialize, Serialize};

/// Sub-buckets per power-of-two octave (8 ⇒ ≤ 12.5% relative error).
const SUB: usize = 8;
/// log2 of [`SUB`].
const SUB_BITS: u32 = 3;
/// Total bucket count: unit buckets for `[0, 16)` plus 8 sub-buckets for
/// each octave up to 2^63.
const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// A mergeable log-bucketed histogram of `u64` latency samples.
///
/// See the [module documentation](self) for the bucketing scheme and the
/// exact-merge contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { counts: vec![0; NUM_BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Index of the bucket holding `value`.
    pub fn bucket_of(value: u64) -> usize {
        if value < (2 * SUB) as u64 {
            value as usize
        } else {
            let msb = 63 - value.leading_zeros();
            let sub = ((value >> (msb - SUB_BITS)) as usize) & (SUB - 1);
            (msb as usize - SUB_BITS as usize + 1) * SUB + sub
        }
    }

    /// Smallest value landing in bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn bucket_low(index: usize) -> u64 {
        assert!(index < NUM_BUCKETS, "bucket index {index} out of range");
        if index < 2 * SUB {
            index as u64
        } else {
            let octave = index / SUB;
            let sub = (index % SUB) as u64;
            let msb = (octave + SUB_BITS as usize - 1) as u32;
            (1u64 << msb) + (sub << (msb - SUB_BITS))
        }
    }

    /// Largest value landing in bucket `index` (inclusive).
    pub fn bucket_high(index: usize) -> u64 {
        if index + 1 < NUM_BUCKETS {
            Self::bucket_low(index + 1) - 1
        } else {
            u64::MAX
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::bucket_of(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q ∈ [0, 1]`: an upper bound for the `ceil(q·n)`-th
    /// smallest sample, clamped to the exact maximum. Monotone in `q`, so
    /// `p99 ≥ p95 ≥ p50` always holds. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Self::bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`LatencyHistogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds `other` into `self` by element-wise bucket addition, so the
    /// result equals the histogram of the union of both sample sets exactly.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets as `(low, high, count)` ranges (inclusive
    /// bounds), lowest first — the compact form the JSON report emits.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_low(i), Self::bucket_high(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        // Unit buckets below 16: every quantile is the true order statistic.
        let mut h = LatencyHistogram::new();
        for v in [3u64, 1, 4, 1, 5, 9, 2, 6] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), 9);
        assert_eq!(h.quantile(0.5), 3); // 4th smallest of [1,1,2,3,4,5,6,9]
        assert_eq!(h.quantile(1.0), 9);
        assert_eq!(h.sum(), 31);
    }

    #[test]
    fn bucket_bounds_partition_the_u64_line() {
        // low(0) == 0, buckets are contiguous, and every value maps into a
        // bucket whose [low, high] range contains it.
        assert_eq!(LatencyHistogram::bucket_low(0), 0);
        for i in 0..NUM_BUCKETS - 1 {
            assert_eq!(
                LatencyHistogram::bucket_high(i) + 1,
                LatencyHistogram::bucket_low(i + 1),
                "buckets {i} and {} must be contiguous",
                i + 1
            );
        }
        for v in [0u64, 1, 7, 8, 15, 16, 17, 18, 1000, u64::MAX / 2, u64::MAX] {
            let b = LatencyHistogram::bucket_of(v);
            assert!(LatencyHistogram::bucket_low(b) <= v, "low({b}) > {v}");
            assert!(v <= LatencyHistogram::bucket_high(b), "{v} > high({b})");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 1_000, 123_456, 1 << 40] {
            let mut h = LatencyHistogram::new();
            h.record(v);
            let p = h.quantile(0.5);
            assert!(p >= v, "quantile must upper-bound the sample");
            assert!(p as f64 <= v as f64 * 1.125 + 1.0, "error beyond 12.5%: {v} -> {p}");
        }
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            h.record(x >> 40);
        }
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
        assert!(h.p99() <= h.max());
    }

    #[test]
    fn merge_equals_union() {
        let samples_a = [5u64, 80, 1 << 20, 3, 999];
        let samples_b = [12u64, 7_000, 1 << 30];
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut union = LatencyHistogram::new();
        for v in samples_a {
            a.record(v);
            union.record(v);
        }
        for v in samples_b {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        assert_eq!(a, union, "merge must equal the histogram of the union");
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_n(42, 5);
        for _ in 0..5 {
            b.record(42);
        }
        assert_eq!(a, b);
        a.record_n(7, 0);
        assert_eq!(a, b, "recording zero samples must be a no-op");
    }

    #[test]
    fn nonzero_buckets_cover_all_samples() {
        let mut h = LatencyHistogram::new();
        h.record(3);
        h.record_n(100, 4);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets.iter().map(|&(_, _, c)| c).sum::<u64>(), 5);
        for (low, high, _) in buckets {
            assert!(low <= high);
        }
    }
}
