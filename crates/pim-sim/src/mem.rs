//! Word-addressed memory tiers of a DPU and the bump allocators on top of
//! them.
//!
//! UPMEM exposes two data memories per DPU with very different
//! latency/capacity trade-offs:
//!
//! * **WRAM** — 64 KB scratchpad, accessed like a register file from the
//!   pipeline (a load/store is an ordinary instruction).
//! * **MRAM** — the 64 MB DRAM bank, accessed through a DMA engine with a
//!   fixed setup latency plus a per-word streaming cost.
//!
//! The STM library is *word based* (like TinySTM and NOrec), so the simulator
//! stores both tiers as arrays of 64-bit words and addresses them with
//! [`Addr`] = (tier, word index).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which memory tier a word lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Tier {
    /// 64 KB fast scratchpad memory.
    Wram,
    /// 64 MB DRAM bank accessed via DMA.
    Mram,
}

impl Tier {
    /// All tiers, useful for parameter sweeps.
    pub const ALL: [Tier; 2] = [Tier::Wram, Tier::Mram];

    /// Short lowercase name used by the experiment harness CLI.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Wram => "wram",
            Tier::Mram => "mram",
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A word address inside one DPU: a tier plus a word index within that tier.
///
/// Addresses are 8-byte-word granular because every STM design studied in the
/// paper is word based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Addr {
    /// The memory tier the word lives in.
    pub tier: Tier,
    /// Word index (not byte offset) within the tier.
    pub word: u32,
}

impl Addr {
    /// Creates an address in WRAM.
    pub fn wram(word: u32) -> Self {
        Addr { tier: Tier::Wram, word }
    }

    /// Creates an address in MRAM.
    pub fn mram(word: u32) -> Self {
        Addr { tier: Tier::Mram, word }
    }

    /// Returns the address `offset` words after `self` (same tier).
    ///
    /// # Panics
    ///
    /// Panics if the resulting word index overflows `u32`.
    pub fn offset(self, offset: u32) -> Self {
        Addr { tier: self.tier, word: self.word.checked_add(offset).expect("address overflow") }
    }

    /// Byte offset corresponding to this word address, as the UPMEM runtime
    /// would see it.
    pub fn byte_offset(self) -> u64 {
        u64::from(self.word) * 8
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:#x}", self.tier, self.word)
    }
}

/// Error returned when a bump allocation does not fit in the tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocError {
    /// Tier in which the allocation was attempted.
    pub tier: Tier,
    /// Number of words requested.
    pub requested_words: u32,
    /// Number of words still available in the tier.
    pub available_words: u32,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "allocation of {} words does not fit in {} ({} words free)",
            self.requested_words, self.tier, self.available_words
        )
    }
}

impl std::error::Error for AllocError {}

/// One memory tier: backing words plus a bump allocator.
#[derive(Debug, Clone)]
pub struct Memory {
    tier: Tier,
    words: Vec<u64>,
    next_free: u32,
}

impl Memory {
    /// Creates a zero-initialised memory of `capacity_words` words.
    pub fn new(tier: Tier, capacity_words: u32) -> Self {
        Memory { tier, words: vec![0; capacity_words as usize], next_free: 0 }
    }

    /// The tier this memory represents.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Total capacity in words.
    pub fn capacity_words(&self) -> u32 {
        self.words.len() as u32
    }

    /// Words not yet handed out by the bump allocator.
    pub fn free_words(&self) -> u32 {
        self.capacity_words() - self.next_free
    }

    /// Words already handed out by the bump allocator.
    pub fn used_words(&self) -> u32 {
        self.next_free
    }

    /// Reads a word. Does not charge cycles — timing is the responsibility of
    /// [`crate::TaskletCtx`].
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of bounds.
    pub fn read(&self, word: u32) -> u64 {
        self.words[word as usize]
    }

    /// Writes a word. Does not charge cycles.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of bounds.
    pub fn write(&mut self, word: u32, value: u64) {
        self.words[word as usize] = value;
    }

    /// Bump-allocates `words` consecutive words and returns the index of the
    /// first one.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the allocation does not fit.
    pub fn alloc(&mut self, words: u32) -> Result<u32, AllocError> {
        if words > self.free_words() {
            return Err(AllocError {
                tier: self.tier,
                requested_words: words,
                available_words: self.free_words(),
            });
        }
        let base = self.next_free;
        self.next_free += words;
        Ok(base)
    }

    /// Resets the allocator and zeroes the whole tier.
    pub fn reset(&mut self) {
        self.next_free = 0;
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Read-only view of the backing words (for debugging / checkpointing).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_display_and_offset() {
        let a = Addr::wram(4);
        assert_eq!(a.offset(3), Addr::wram(7));
        assert_eq!(a.byte_offset(), 32);
        assert_eq!(format!("{a}"), "wram:0x4");
        assert_eq!(format!("{}", Addr::mram(16)), "mram:0x10");
    }

    #[test]
    fn tier_names() {
        assert_eq!(Tier::Wram.name(), "wram");
        assert_eq!(Tier::Mram.name(), "mram");
        assert_eq!(Tier::ALL.len(), 2);
    }

    #[test]
    fn memory_read_write_roundtrip() {
        let mut m = Memory::new(Tier::Wram, 16);
        m.write(3, 0xdead_beef);
        assert_eq!(m.read(3), 0xdead_beef);
        assert_eq!(m.read(4), 0);
        assert_eq!(m.capacity_words(), 16);
    }

    #[test]
    fn bump_allocator_hands_out_disjoint_ranges() {
        let mut m = Memory::new(Tier::Mram, 10);
        let a = m.alloc(4).unwrap();
        let b = m.alloc(6).unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 4);
        assert_eq!(m.free_words(), 0);
        let err = m.alloc(1).unwrap_err();
        assert_eq!(err.requested_words, 1);
        assert_eq!(err.available_words, 0);
        assert!(err.to_string().contains("does not fit"));
    }

    #[test]
    fn reset_clears_contents_and_allocator() {
        let mut m = Memory::new(Tier::Wram, 8);
        let base = m.alloc(8).unwrap();
        m.write(base + 2, 7);
        m.reset();
        assert_eq!(m.read(2), 0);
        assert_eq!(m.free_words(), 8);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let m = Memory::new(Tier::Wram, 2);
        let _ = m.read(5);
    }
}
