//! Multi-DPU system model: CPU-mediated transfers and round-structured
//! orchestration across up to 2560 DPUs.
//!
//! Two facts about the UPMEM system shape this module (§2.1/§3.1 of the
//! paper):
//!
//! * DPUs cannot talk to each other; all inter-DPU communication is staged
//!   through the host CPU, and a CPU-mediated read of a single 64-bit word
//!   costs ≈ 331 µs versus ≈ 231 ns for a local MRAM read.
//! * The CPU can only move data while the target DPU is idle, so computation
//!   and communication never overlap; a multi-DPU application alternates
//!   *rounds* of DPU compute with host-side transfer + merge work.
//!
//! The multi-DPU benchmarks of §4.3 follow exactly that round structure
//! (KMeans: scatter points / compute / gather centroids / merge; Labyrinth:
//! scatter independent problem instances / compute / gather grids), which is
//! what [`MultiDpuPlan`] models.

use serde::{Deserialize, Serialize};

/// Cost model of host↔DPU data movement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuTransferModel {
    /// Latency of a CPU-mediated single-word (64-bit) read from a DPU's MRAM,
    /// in seconds. The paper measures 331 µs.
    pub mediated_word_latency_s: f64,
    /// Aggregate host↔PIM DIMM copy bandwidth in bytes/second for bulk,
    /// rank-parallel transfers.
    pub bulk_bandwidth_bytes_per_s: f64,
    /// Fixed software overhead per bulk transfer call (librarary + driver), in
    /// seconds.
    pub bulk_overhead_s: f64,
    /// Latency of a local (same-DPU) MRAM 64-bit read, in seconds, used for
    /// the local-vs-mediated comparison (paper: 231 ns).
    pub local_word_latency_s: f64,
}

impl Default for CpuTransferModel {
    fn default() -> Self {
        CpuTransferModel {
            mediated_word_latency_s: 331e-6,
            bulk_bandwidth_bytes_per_s: 6.0e9,
            bulk_overhead_s: 30e-6,
            local_word_latency_s: 231e-9,
        }
    }
}

impl CpuTransferModel {
    /// Seconds to read `words` individual 64-bit words from remote DPUs via
    /// the CPU (no batching).
    pub fn mediated_read_seconds(&self, words: u64) -> f64 {
        self.mediated_word_latency_s * words as f64
    }

    /// Seconds to move `bytes` between the host and the PIM DIMMs as one bulk
    /// transfer (parallel across ranks, bandwidth-bound).
    pub fn bulk_transfer_seconds(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            0.0
        } else {
            self.bulk_overhead_s + bytes as f64 / self.bulk_bandwidth_bytes_per_s
        }
    }

    /// Ratio between a CPU-mediated remote word read and a local MRAM read —
    /// the paper reports roughly three orders of magnitude (331 µs vs 231 ns
    /// ≈ 1433×).
    pub fn mediated_to_local_ratio(&self) -> f64 {
        self.mediated_word_latency_s / self.local_word_latency_s
    }
}

/// One compute round of a multi-DPU application.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundPlan {
    /// Seconds of DPU compute in this round (the slowest DPU; DPUs execute in
    /// parallel).
    pub dpu_compute_seconds: f64,
    /// Bytes scattered from the host to all DPUs before the round.
    pub bytes_to_dpus: u64,
    /// Bytes gathered from all DPUs to the host after the round.
    pub bytes_from_dpus: u64,
    /// Host-side routing / batch-preparation work *before* the round, in
    /// seconds. Together with the scatter of `bytes_to_dpus` this is the
    /// round's pre-work — the part a double-buffered pipeline can hide
    /// under the previous round's DPU compute.
    pub cpu_route_seconds: f64,
    /// Host-side merge / scheduling work after the round, in seconds.
    pub cpu_merge_seconds: f64,
    /// Whether a pipelined execution may prepare this round's pre-work
    /// (scatter + routing) while the *previous* round computes. False when
    /// this round's inputs depend on the previous round's outputs (e.g. a
    /// re-dispatch after a probe rejection, or a repartitioning between
    /// the rounds). The first round is never overlappable — there is
    /// nothing to hide it under — regardless of this flag.
    pub overlappable: bool,
}

/// A round-structured multi-DPU execution plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiDpuPlan {
    /// Number of DPUs used.
    pub n_dpus: usize,
    /// The rounds executed in sequence.
    pub rounds: Vec<RoundPlan>,
}

impl MultiDpuPlan {
    /// Creates a plan over `n_dpus` DPUs with no rounds yet.
    pub fn new(n_dpus: usize) -> Self {
        MultiDpuPlan { n_dpus, rounds: Vec::new() }
    }

    /// Appends a round.
    pub fn push_round(&mut self, round: RoundPlan) -> &mut Self {
        self.rounds.push(round);
        self
    }

    /// Executes the plan against a transfer model, producing per-component
    /// timings. DPU compute and host work never overlap (a UPMEM
    /// restriction on any *one* DPU), so components simply add up.
    pub fn execute(&self, transfer: &CpuTransferModel) -> MultiDpuReport {
        let mut report = MultiDpuReport { n_dpus: self.n_dpus, ..MultiDpuReport::default() };
        for round in &self.rounds {
            report.dpu_compute_seconds += round.dpu_compute_seconds;
            report.transfer_seconds += transfer.bulk_transfer_seconds(round.bytes_to_dpus)
                + transfer.bulk_transfer_seconds(round.bytes_from_dpus);
            report.cpu_seconds += round.cpu_route_seconds + round.cpu_merge_seconds;
            report.rounds += 1;
        }
        report
    }

    /// Executes the plan with a double-buffered round pipeline: while round
    /// `k` computes on the DPUs, the host prepares round `k+1` (routing +
    /// scatter), so an [`RoundPlan::overlappable`] round `k` only *exposes*
    ///
    /// ```text
    /// exposed_pre_k = max(0, pre_k - compute_{k-1})
    /// pre_k         = bulk(bytes_to_dpus_k) + cpu_route_seconds_k
    /// ```
    ///
    /// on the critical path; the rest — `hidden_k = min(pre_k,
    /// compute_{k-1})` — is accounted in
    /// [`MultiDpuReport::hidden_seconds`] and subtracted from
    /// [`MultiDpuReport::total_seconds`]. Equivalently, per round the
    /// model charges `max(compute_{k-1}, pre_k)` instead of their sum.
    /// Post-round work (gather + merge) still follows the barrier, and a
    /// non-overlappable round pays its pre-work in full. With every round
    /// non-overlappable this reduces exactly to [`MultiDpuPlan::execute`].
    pub fn execute_pipelined(&self, transfer: &CpuTransferModel) -> MultiDpuReport {
        let mut report = self.execute(transfer);
        let mut prev_compute = 0.0f64;
        for (k, round) in self.rounds.iter().enumerate() {
            let pre = transfer.bulk_transfer_seconds(round.bytes_to_dpus) + round.cpu_route_seconds;
            if k > 0 && round.overlappable {
                report.hidden_seconds += pre.min(prev_compute);
            }
            prev_compute = round.dpu_compute_seconds;
        }
        report
    }
}

/// Timing result of executing a [`MultiDpuPlan`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MultiDpuReport {
    /// Number of DPUs used.
    pub n_dpus: usize,
    /// Rounds executed.
    pub rounds: usize,
    /// Seconds the DPUs spent computing (critical path over rounds).
    pub dpu_compute_seconds: f64,
    /// Seconds spent moving data between host and DPUs.
    pub transfer_seconds: f64,
    /// Seconds of host-side routing/merge/scheduling work.
    pub cpu_seconds: f64,
    /// Pre-round transfer + routing seconds hidden under the previous
    /// round's DPU compute by the double-buffered pipeline
    /// ([`MultiDpuPlan::execute_pipelined`]); `0.0` for a serial
    /// execution.
    pub hidden_seconds: f64,
}

impl MultiDpuReport {
    /// End-to-end execution time in seconds: every component, minus the
    /// pre-work the pipeline hid under DPU compute.
    pub fn total_seconds(&self) -> f64 {
        self.dpu_compute_seconds + self.transfer_seconds + self.cpu_seconds - self.hidden_seconds
    }

    /// Speed-up of this execution relative to a baseline time (e.g. the
    /// CPU-only implementation): `baseline / self`.
    pub fn speedup_vs(&self, baseline_seconds: f64) -> f64 {
        baseline_seconds / self.total_seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mediated_read_is_three_orders_slower_than_local() {
        let t = CpuTransferModel::default();
        let ratio = t.mediated_to_local_ratio();
        assert!((1000.0..2000.0).contains(&ratio), "ratio {ratio} not ~1433x");
        assert!((t.mediated_read_seconds(10) - 3.31e-3).abs() < 1e-9);
    }

    #[test]
    fn bulk_transfer_scales_with_bytes_and_has_overhead() {
        let t = CpuTransferModel::default();
        assert_eq!(t.bulk_transfer_seconds(0), 0.0);
        let small = t.bulk_transfer_seconds(8);
        let large = t.bulk_transfer_seconds(64 * 1024 * 1024);
        assert!(small >= t.bulk_overhead_s);
        assert!(large > 10.0 * small);
    }

    #[test]
    fn plan_accumulates_rounds() {
        let mut plan = MultiDpuPlan::new(128);
        for _ in 0..3 {
            plan.push_round(RoundPlan {
                dpu_compute_seconds: 0.5,
                bytes_to_dpus: 1 << 20,
                bytes_from_dpus: 1 << 16,
                cpu_merge_seconds: 0.01,
                ..RoundPlan::default()
            });
        }
        let report = plan.execute(&CpuTransferModel::default());
        assert_eq!(report.rounds, 3);
        assert_eq!(report.n_dpus, 128);
        assert!((report.dpu_compute_seconds - 1.5).abs() < 1e-12);
        assert!((report.cpu_seconds - 0.03).abs() < 1e-12);
        assert!(report.transfer_seconds > 0.0);
        assert_eq!(report.hidden_seconds, 0.0, "serial execution hides nothing");
        assert!(report.total_seconds() > 1.53);
    }

    #[test]
    fn speedup_is_relative_to_baseline() {
        let mut plan = MultiDpuPlan::new(1);
        plan.push_round(RoundPlan {
            dpu_compute_seconds: 2.0,
            bytes_to_dpus: 0,
            bytes_from_dpus: 0,
            cpu_merge_seconds: 0.0,
            ..RoundPlan::default()
        });
        let report = plan.execute(&CpuTransferModel::default());
        assert!((report.speedup_vs(4.0) - 2.0).abs() < 1e-12);
        assert!(report.speedup_vs(1.0) < 1.0);
    }

    #[test]
    fn pipelined_execution_hides_overlappable_prework() {
        let transfer = CpuTransferModel::default();
        let mut plan = MultiDpuPlan::new(8);
        for _ in 0..4 {
            plan.push_round(RoundPlan {
                dpu_compute_seconds: 0.5,
                bytes_to_dpus: 1 << 20,
                bytes_from_dpus: 1 << 10,
                cpu_route_seconds: 1e-4,
                cpu_merge_seconds: 1e-5,
                overlappable: true,
            });
        }
        let serial = plan.execute(&transfer);
        let pipelined = plan.execute_pipelined(&transfer);
        // Rounds 1..3 hide their whole pre-work (it is far smaller than
        // 0.5 s of compute); round 0 has nothing to hide under.
        let pre = transfer.bulk_transfer_seconds(1 << 20) + 1e-4;
        assert!((pipelined.hidden_seconds - 3.0 * pre).abs() < 1e-12);
        assert!((serial.total_seconds() - pipelined.total_seconds() - 3.0 * pre).abs() < 1e-12);
        // Pre-work larger than the compute window only hides the window.
        let mut long = MultiDpuPlan::new(8);
        for _ in 0..2 {
            long.push_round(RoundPlan {
                dpu_compute_seconds: 1e-6,
                bytes_to_dpus: 1 << 26,
                bytes_from_dpus: 0,
                overlappable: true,
                ..RoundPlan::default()
            });
        }
        let report = long.execute_pipelined(&transfer);
        assert!((report.hidden_seconds - 1e-6).abs() < 1e-15, "capped by the compute window");
        // Non-overlappable rounds reduce the pipeline to the serial sum.
        for round in &mut plan.rounds {
            round.overlappable = false;
        }
        let stalled = plan.execute_pipelined(&transfer);
        assert_eq!(stalled.hidden_seconds, 0.0);
        assert!((stalled.total_seconds() - serial.total_seconds()).abs() < 1e-15);
    }
}
