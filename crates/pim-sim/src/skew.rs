//! Seeded, executor-agnostic key-skew generators.
//!
//! Fleet-scale studies (and the open-loop traffic generators they feed)
//! need reproducible *skewed* key streams: a handful of hot keys
//! concentrating load on whichever shard owns them. This module provides
//! the two classic shapes behind every key-value benchmark —
//!
//! * **uniform** — every key equally likely; the no-skew baseline, and
//! * **zipfian** — key of rank `r` (0-based) drawn with probability
//!   proportional to `1 / (r + 1)^θ`. `θ = 0` degenerates to uniform;
//!   `θ ≈ 0.99` is the YCSB default; larger values concentrate virtually
//!   all probability on the first few ranks.
//!
//! Sampling is table-driven: [`KeySampler::new`] precomputes the CDF once
//! (`O(n)` memory, `O(log n)` per draw via binary search), and every draw
//! consumes exactly one [`SimRng::next_f64`] — so a seeded stream is
//! reproducible across executors, shard counts and host thread counts.
//! Ranks map to keys identity-style (`rank r` → key `r`): under a
//! range-partitioned keyspace the hottest keys therefore cluster on the
//! first shard, which is exactly the imbalance a skew sweep wants to
//! provoke and measure.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::rng::SimRng;

/// Shape of a key-popularity distribution over a keyspace `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Zipfian with exponent `theta`: rank `r` has weight `1/(r+1)^theta`.
    Zipf {
        /// Skew exponent `θ ≥ 0`; `0` is uniform, `0.99` the YCSB default.
        theta: f64,
    },
}

impl KeyDist {
    /// Parses `"uniform"` or `"zipf:<theta>"` (e.g. `zipf:0.99`).
    ///
    /// # Errors
    ///
    /// Returns a description of the accepted forms when `text` matches
    /// neither, or when the exponent is negative or not a finite number.
    pub fn parse(text: &str) -> Result<Self, String> {
        let text = text.trim();
        if text.eq_ignore_ascii_case("uniform") {
            return Ok(KeyDist::Uniform);
        }
        if let Some(theta) = text.strip_prefix("zipf:") {
            let theta: f64 = theta
                .parse()
                .map_err(|_| format!("invalid zipf exponent {theta:?} (want e.g. zipf:0.99)"))?;
            if !theta.is_finite() || theta < 0.0 {
                return Err(format!("zipf exponent must be finite and >= 0, got {theta}"));
            }
            return Ok(KeyDist::Zipf { theta });
        }
        Err(format!("unknown key distribution {text:?} (want uniform or zipf:<theta>)"))
    }

    /// The skew exponent: `0` for uniform, `θ` for zipfian.
    pub fn theta(self) -> f64 {
        match self {
            KeyDist::Uniform => 0.0,
            KeyDist::Zipf { theta } => theta,
        }
    }
}

impl fmt::Display for KeyDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyDist::Uniform => write!(f, "uniform"),
            KeyDist::Zipf { theta } => write!(f, "zipf:{theta}"),
        }
    }
}

/// Process-wide memo of normalised zipf CDF tables, keyed by
/// `(theta bit pattern, keyspace size)`.
///
/// The table for a given `(θ, n)` is a pure function of its key, so sharing
/// one `Arc` across samplers changes nothing observable — but it turns the
/// `O(n)` construction into a one-time cost per distinct distribution
/// instead of a per-run cost: a `--repeat` loop, every cell of a `--grid`
/// sweep and every round of a fleet run re-create their `KeySampler` from
/// the same `(θ, n)` and now share one table.
fn cdf_cache() -> &'static Mutex<CdfCache> {
    static CACHE: OnceLock<Mutex<CdfCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Memo table behind [`cdf_cache`]: `(theta bits, keys)` → shared CDF.
type CdfCache = HashMap<(u64, u64), Arc<[f64]>>;

/// Number of zipf CDF tables actually *constructed* (cache misses) since
/// process start.
static CDF_BUILDS: AtomicU64 = AtomicU64::new(0);

/// How many zipf CDF tables have been built (not served from the cache)
/// since process start. Tests use this to assert that repeated sampler
/// construction over the same distribution does not redo the `O(n)` work.
pub fn cdf_builds() -> u64 {
    CDF_BUILDS.load(Ordering::Relaxed)
}

/// A sampler for one [`KeyDist`] over the keyspace `0..keys`.
///
/// Zipfian sampling precomputes the normalised CDF once and binary-searches
/// it per draw; uniform sampling skips the table entirely. Either way a
/// draw consumes exactly one `next_f64` from the caller's [`SimRng`], so
/// streams are reproducible and executor-agnostic. CDF tables are memoised
/// process-wide (see [`cdf_builds`]), so constructing the same sampler
/// repeatedly — across `--repeat` iterations, grid cells or fleet rounds —
/// pays the `O(n)` table construction only once.
#[derive(Debug, Clone)]
pub struct KeySampler {
    keys: u64,
    /// `cdf[r]` = P(rank <= r); empty for the uniform fast path. Shared
    /// with every other sampler of the same `(θ, keys)`.
    cdf: Arc<[f64]>,
}

impl KeySampler {
    /// Builds a sampler over `0..keys`.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero — an empty keyspace has nothing to draw.
    pub fn new(dist: KeyDist, keys: u64) -> Self {
        assert!(keys > 0, "key sampler needs a non-empty keyspace");
        let cdf = match dist {
            // theta == 0 degenerates to the uniform fast path.
            KeyDist::Uniform | KeyDist::Zipf { theta: 0.0 } => Arc::from(Vec::<f64>::new()),
            KeyDist::Zipf { theta } => {
                let cache_key = (theta.to_bits(), keys);
                let mut cache = cdf_cache().lock().expect("cdf cache poisoned");
                cache.entry(cache_key).or_insert_with(|| Self::build_cdf(theta, keys)).clone()
            }
        };
        KeySampler { keys, cdf }
    }

    /// The `O(n)` zipf table construction (cache-miss path).
    fn build_cdf(theta: f64, keys: u64) -> Arc<[f64]> {
        CDF_BUILDS.fetch_add(1, Ordering::Relaxed);
        let mut cdf = Vec::with_capacity(keys as usize);
        let mut total = 0.0f64;
        for rank in 0..keys {
            total += 1.0 / ((rank + 1) as f64).powf(theta);
            cdf.push(total);
        }
        for value in &mut cdf {
            *value /= total;
        }
        Arc::from(cdf)
    }

    /// Size of the keyspace this sampler draws from.
    pub fn keys(&self) -> u64 {
        self.keys
    }

    /// The precomputed normalised CDF (`cdf[r]` = P(rank <= r)); empty on
    /// the uniform fast path. Exposed so tests can check monotonicity.
    pub fn cdf(&self) -> &[f64] {
        &self.cdf
    }

    /// Draws one key in `0..keys`, consuming one `next_f64`.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.next_f64();
        if self.cdf.is_empty() {
            // Uniform fast path; `u < 1.0` keeps the result in range.
            ((u * self.keys as f64) as u64).min(self.keys - 1)
        } else {
            // First rank whose cumulative probability reaches `u`.
            self.cdf.partition_point(|&p| p < u).min(self.cdf.len() - 1) as u64
        }
    }

    /// Draws one key with the rank→key mapping rotated by `offset`
    /// (modulo the keyspace), consuming exactly one `next_f64` — the same
    /// draw discipline as [`KeySampler::sample`], so shifted and unshifted
    /// streams stay in lockstep on the same [`SimRng`].
    ///
    /// A phase-changing workload uses this to move the hot ranks to a
    /// different region of the keyspace mid-stream: with `offset = 0` the
    /// result is identical to `sample`.
    pub fn sample_shifted(&self, rng: &mut SimRng, offset: u64) -> u64 {
        (self.sample(rng) + offset % self.keys) % self.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(dist: KeyDist, keys: u64, draws: usize, seed: u64) -> Vec<u64> {
        let sampler = KeySampler::new(dist, keys);
        let mut rng = SimRng::new(seed);
        let mut counts = vec![0u64; keys as usize];
        for _ in 0..draws {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn draws_stay_in_range_and_are_seed_deterministic() {
        for dist in [KeyDist::Uniform, KeyDist::Zipf { theta: 0.99 }] {
            let sampler = KeySampler::new(dist, 100);
            let mut a = SimRng::new(7);
            let mut b = SimRng::new(7);
            for _ in 0..1000 {
                let x = sampler.sample(&mut a);
                assert!(x < 100);
                assert_eq!(x, sampler.sample(&mut b), "{dist}: same seed, same stream");
            }
        }
    }

    #[test]
    fn uniform_spreads_and_zipf_concentrates() {
        let uniform = histogram(KeyDist::Uniform, 50, 20_000, 11);
        let zipf = histogram(KeyDist::Zipf { theta: 1.2 }, 50, 20_000, 11);
        // Uniform: no key should dominate (expected 400 per key).
        assert!(*uniform.iter().max().unwrap() < 800);
        // Zipf 1.2: rank 0 takes a large multiple of the uniform share.
        assert!(zipf[0] > 4 * uniform[0], "zipf head {} vs uniform {}", zipf[0], uniform[0]);
        // Higher theta concentrates more mass on the head.
        let hotter = histogram(KeyDist::Zipf { theta: 2.0 }, 50, 20_000, 11);
        assert!(hotter[0] > zipf[0]);
    }

    #[test]
    fn theta_zero_zipf_is_uniform() {
        let a = histogram(KeyDist::Zipf { theta: 0.0 }, 10, 5_000, 3);
        let b = histogram(KeyDist::Uniform, 10, 5_000, 3);
        assert_eq!(a, b, "zipf theta=0 must take the uniform fast path");
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!(KeyDist::parse("uniform").unwrap(), KeyDist::Uniform);
        assert_eq!(KeyDist::parse("zipf:0.99").unwrap(), KeyDist::Zipf { theta: 0.99 });
        assert_eq!(KeyDist::parse(" Zipf:1.5 ".to_lowercase().trim()).unwrap().theta(), 1.5);
        assert!(KeyDist::parse("zipf:-1").is_err());
        assert!(KeyDist::parse("zipf:abc").is_err());
        assert!(KeyDist::parse("pareto").is_err());
        assert_eq!(KeyDist::Zipf { theta: 0.9 }.to_string(), "zipf:0.9");
        assert_eq!(KeyDist::Uniform.to_string(), "uniform");
    }

    #[test]
    #[should_panic(expected = "non-empty keyspace")]
    fn empty_keyspace_is_rejected() {
        let _ = KeySampler::new(KeyDist::Uniform, 0);
    }

    #[test]
    fn repeated_construction_reuses_the_cached_cdf() {
        // A distribution distinct from every other test's, so parallel test
        // execution cannot interfere with the build count.
        let dist = KeyDist::Zipf { theta: 1.017_25 };
        let first = KeySampler::new(dist, 777);
        let builds_after_first = cdf_builds();
        for _ in 0..10 {
            // Repeated builds — the shape every `--repeat` loop and grid
            // sweep has — must be served from the cache.
            let again = KeySampler::new(dist, 777);
            assert!(Arc::ptr_eq(&first.cdf, &again.cdf), "same (θ, n) must share one table");
        }
        assert_eq!(cdf_builds(), builds_after_first, "no rebuilds for a cached distribution");
        // A different keyspace is a different table.
        let other = KeySampler::new(dist, 778);
        assert!(!Arc::ptr_eq(&first.cdf, &other.cdf));
        // The cached table still samples correctly and deterministically.
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        let fresh = KeySampler::new(dist, 777);
        for _ in 0..200 {
            assert_eq!(first.sample(&mut a), fresh.sample(&mut b));
        }
    }

    #[test]
    fn uniform_samplers_skip_the_cache_entirely() {
        let builds_before = cdf_builds();
        let _ = KeySampler::new(KeyDist::Uniform, 123_457);
        let _ = KeySampler::new(KeyDist::Zipf { theta: 0.0 }, 123_457);
        assert_eq!(cdf_builds(), builds_before, "the uniform fast path builds no table");
    }

    #[test]
    fn shifted_sampling_rotates_the_keyspace() {
        let sampler = KeySampler::new(KeyDist::Zipf { theta: 1.2 }, 64);
        let mut a = SimRng::new(5);
        let mut b = SimRng::new(5);
        for _ in 0..500 {
            let plain = sampler.sample(&mut a);
            let shifted = sampler.sample_shifted(&mut b, 16);
            assert_eq!(shifted, (plain + 16) % 64, "shift is a pure rotation of the same draw");
            assert!(shifted < 64);
        }
        // Offset 0 degenerates to plain sampling, even past the keyspace.
        let mut c = SimRng::new(5);
        let mut d = SimRng::new(5);
        assert_eq!(sampler.sample_shifted(&mut c, 0), sampler.sample(&mut d));
        assert_eq!(sampler.sample_shifted(&mut c, 64), sampler.sample(&mut d));
    }
}
