//! # pim-sim — a cycle-accounted simulator of the UPMEM PIM architecture
//!
//! The PIM-STM paper evaluates its STM designs on UPMEM hardware: DRAM DIMMs
//! whose chips embed *Data Processing Units* (DPUs). Each DPU owns a 64 MB
//! DRAM bank (**MRAM**), a 64 KB scratchpad (**WRAM**), a 24-thread in-order
//! core whose pipeline reaches full utilisation at **11 tasklets**, and a
//! 256-entry **atomic bit register** used to build locks. This crate provides
//! a deterministic, discrete-event model of exactly those resources so that
//! the STM library in `pim-stm` and the workloads in `pim-workloads` can be
//! executed and *timed* without the hardware.
//!
//! The simulator is organised around four ideas:
//!
//! 1. [`Dpu`] owns the two memory tiers, the atomic register and the bump
//!    allocators ([`mem`], [`atomic_reg`]).
//! 2. [`TaskletCtx`] is the handle a running tasklet uses to touch memory.
//!    Every access charges virtual cycles according to the latency model in
//!    [`latency`], attributed to an execution [`Phase`] so the paper's
//!    time-breakdown plots can be regenerated.
//! 3. [`Scheduler`] interleaves [`TaskletProgram`]s in lowest-virtual-time
//!    order, one transactional operation per step, which yields reproducible
//!    contention between concurrent transactions.
//! 4. [`system`] and [`energy`] model the multi-DPU system (CPU-mediated
//!    transfers, per-round orchestration) and the energy accounting used by
//!    the paper's §4.3 study.
//!
//! ## Quick example
//!
//! ```
//! use pim_sim::{Dpu, DpuConfig, Scheduler, TaskletProgram, TaskletCtx, StepStatus, Tier};
//!
//! /// A tasklet that increments a counter in MRAM a few times.
//! struct Incr { counter: pim_sim::Addr, remaining: u32 }
//!
//! impl TaskletProgram for Incr {
//!     fn step(&mut self, ctx: &mut TaskletCtx<'_>) -> StepStatus {
//!         if self.remaining == 0 {
//!             return StepStatus::Finished;
//!         }
//!         let v = ctx.load(self.counter);
//!         ctx.store(self.counter, v + 1);
//!         self.remaining -= 1;
//!         StepStatus::Running
//!     }
//! }
//!
//! let mut dpu = Dpu::new(DpuConfig::default());
//! let counter = dpu.alloc_zeroed(Tier::Mram, 1).expect("allocation fits");
//! let programs: Vec<Box<dyn TaskletProgram>> = (0..4)
//!     .map(|_| Box::new(Incr { counter, remaining: 10 }) as Box<dyn TaskletProgram>)
//!     .collect();
//! let report = Scheduler::new().run(&mut dpu, programs);
//! assert_eq!(dpu.peek(counter), 40);
//! assert!(report.makespan_cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic_reg;
pub mod ctx;
pub mod dpu;
pub mod energy;
pub mod histogram;
pub mod latency;
pub mod mem;
pub mod program;
pub mod rng;
pub mod scheduler;
pub mod skew;
pub mod stats;
pub mod system;

pub use atomic_reg::AtomicBitRegister;
pub use ctx::TaskletCtx;
pub use dpu::{Dpu, DpuConfig};
pub use energy::EnergyModel;
pub use histogram::LatencyHistogram;
pub use latency::{Cycles, LatencyModel};
pub use mem::{Addr, AllocError, Tier};
pub use program::{StepStatus, TaskletProgram};
pub use rng::SimRng;
pub use scheduler::{DpuRunReport, Scheduler};
pub use skew::{KeyDist, KeySampler};
pub use stats::{
    Phase, PhaseBreakdown, ProfileCore, TaskletStats, TuneEvent, ABORT_CODE_SLOTS, PHASES,
};
pub use system::{CpuTransferModel, MultiDpuPlan, MultiDpuReport, RoundPlan};
