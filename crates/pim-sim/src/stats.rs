//! Execution phases and per-tasklet statistics.
//!
//! The paper's time-breakdown plots (Fig. 4/5 bottom rows, Fig. 9/10) divide
//! transaction time into reading, writing, validation (during execution and
//! at commit), other execution work, other commit work, and time wasted on
//! attempts that eventually aborted. The simulator attributes every cycle a
//! tasklet spends to one of those categories; the STM library switches the
//! current [`Phase`] as it moves through a transaction.
//!
//! The bookkeeping itself — commit/abort tallies, the abort-code histogram,
//! the per-phase attempt buffer, DMA and back-off counters — lives in
//! [`ProfileCore`], which is executor-agnostic: the simulator charges cycles
//! into it (via [`TaskletStats`], a thin adapter that adds the
//! simulator-only finish time), while the threaded executor charges
//! wall-clock nanoseconds into the same structure (see `pim_stm::profile`,
//! which wraps a core together with the time-domain tag).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Deref, DerefMut};

use crate::latency::Cycles;

/// Number of phase categories tracked.
pub const PHASES: usize = 7;

/// Slots reserved for abort-reason codes in [`ProfileCore`].
///
/// The simulator substrate does not know *what* the codes mean — the STM
/// layer assigns them (`pim_stm::AbortReason::index`) and guarantees it uses
/// fewer than this many.
pub const ABORT_CODE_SLOTS: usize = 8;

/// Execution-time categories used in the paper's breakdown plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Executing transactional read operations.
    Reading,
    /// Executing transactional write operations.
    Writing,
    /// Validating the readset while the transaction is still executing.
    ValidatingExec,
    /// Non-STM work performed inside the transaction (application logic).
    OtherExec,
    /// Validating the readset during commit.
    ValidatingCommit,
    /// Commit work other than validation (lock acquisition, write-back,
    /// version updates, releases).
    OtherCommit,
    /// Cycles spent in attempts that aborted ("Time Wasted" in the paper).
    Wasted,
}

impl Phase {
    /// All phases, in the order used by reports.
    pub const ALL: [Phase; PHASES] = [
        Phase::Reading,
        Phase::Writing,
        Phase::ValidatingExec,
        Phase::OtherExec,
        Phase::ValidatingCommit,
        Phase::OtherCommit,
        Phase::Wasted,
    ];

    /// Stable index of the phase in breakdown arrays.
    pub fn index(self) -> usize {
        match self {
            Phase::Reading => 0,
            Phase::Writing => 1,
            Phase::ValidatingExec => 2,
            Phase::OtherExec => 3,
            Phase::ValidatingCommit => 4,
            Phase::OtherCommit => 5,
            Phase::Wasted => 6,
        }
    }

    /// Human-readable label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Reading => "Reading",
            Phase::Writing => "Writing",
            Phase::ValidatingExec => "Validating (Executing)",
            Phase::OtherExec => "Other (Executing)",
            Phase::ValidatingCommit => "Validating (Commit)",
            Phase::OtherCommit => "Other (Commit)",
            Phase::Wasted => "Time Wasted",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Time attributed to each [`Phase`], in an executor-native unit (simulator
/// cycles or wall-clock nanoseconds — the containing profile knows which).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    cycles: [Cycles; PHASES],
}

impl PhaseBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cycles` to `phase`.
    pub fn charge(&mut self, phase: Phase, cycles: Cycles) {
        self.cycles[phase.index()] += cycles;
    }

    /// Cycles attributed to `phase`.
    pub fn get(&self, phase: Phase) -> Cycles {
        self.cycles[phase.index()]
    }

    /// Sum over all phases.
    pub fn total(&self) -> Cycles {
        self.cycles.iter().sum()
    }

    /// Iterates over `(phase, cycles)` pairs in report order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, Cycles)> + '_ {
        Phase::ALL.iter().map(move |&p| (p, self.get(p)))
    }

    /// Fraction of total time spent in `phase` (0.0 if the breakdown is
    /// empty).
    pub fn fraction(&self, phase: Phase) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(phase) as f64 / total as f64
        }
    }

    /// Moves every recorded cycle into [`Phase::Wasted`]; used when a
    /// transaction attempt aborts.
    pub fn collapse_into_wasted(&mut self) {
        let total = self.total();
        self.cycles = [0; PHASES];
        self.cycles[Phase::Wasted.index()] = total;
    }
}

impl Add for PhaseBreakdown {
    type Output = PhaseBreakdown;

    fn add(mut self, rhs: PhaseBreakdown) -> PhaseBreakdown {
        self += rhs;
        self
    }
}

impl AddAssign for PhaseBreakdown {
    fn add_assign(&mut self, rhs: PhaseBreakdown) {
        for i in 0..PHASES {
            self.cycles[i] += rhs.cycles[i];
        }
    }
}

/// The executor-agnostic transaction-profiling core: one tasklet's attempt
/// tallies, abort-code histogram, per-phase time, DMA traffic and spin-wait
/// time.
///
/// Time values are in whatever unit the charging executor uses (simulator
/// cycles, wall-clock nanoseconds); the core itself is unit-blind. Abort
/// *codes* are equally opaque here — the STM layer maps its `AbortReason`
/// enum onto indices `< ABORT_CODE_SLOTS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileCore {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transaction attempts.
    pub aborts: u64,
    /// Aborted attempts per abort-reason code. Aborts resolved without a
    /// code count only in `aborts`.
    pub abort_codes: [u64; ABORT_CODE_SLOTS],
    /// Time attributed to resolved work, by phase.
    pub breakdown: PhaseBreakdown,
    /// Time charged in the current (not yet resolved) transaction attempt.
    pub attempt: PhaseBreakdown,
    /// MRAM DMA transfers issued (each pays one setup latency). A multi-word
    /// burst counts once — this is the metric that burst coalescing improves.
    pub mram_dma_setups: u64,
    /// Total words moved over the MRAM port by those transfers.
    pub mram_dma_words: u64,
    /// Time spent in bounded spin-waits: contention back-off after aborts
    /// and lock-wait loops (e.g. NOrec waiting for an even sequence lock).
    /// This is an *overlay* metric — the same time is also attributed to the
    /// phase buckets.
    pub backoff_time: u64,
    /// Online-tuner signal windows evaluated by this tasklet (each paying
    /// its evaluation cycle cost). Zero when no tuner runs.
    pub tune_windows: u64,
    /// Online-tuner knob switches applied by this tasklet (each paying its
    /// switch cycle cost). The detailed per-switch records live in
    /// [`TaskletStats::tune_events`] on the simulator.
    pub tune_switches: u64,
}

impl ProfileCore {
    /// Creates an empty core.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts started: commits + aborts.
    pub fn attempts(&self) -> u64 {
        self.commits + self.aborts
    }

    /// Abort rate in `[0, 1]`: aborts / (aborts + commits).
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.attempts();
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }

    /// Sum of the abort-code histogram (equals `aborts` when every abort was
    /// resolved with a code, as the STM retry core guarantees).
    pub fn coded_aborts(&self) -> u64 {
        self.abort_codes.iter().sum()
    }

    /// Charges time to the in-flight transaction attempt.
    pub fn charge_attempt(&mut self, phase: Phase, time: u64) {
        self.attempt.charge(phase, time);
    }

    /// Charges time directly to the resolved breakdown, bypassing the
    /// attempt buffer (used for non-transactional work).
    pub fn charge_direct(&mut self, phase: Phase, time: u64) {
        self.breakdown.charge(phase, time);
    }

    /// Resolves the in-flight attempt as committed: its time keeps its phase
    /// attribution.
    pub fn resolve_commit(&mut self) {
        self.commits += 1;
        let attempt = std::mem::take(&mut self.attempt);
        self.breakdown += attempt;
    }

    /// Resolves the in-flight attempt as aborted: all its time becomes
    /// wasted. `code`, when given, selects the histogram slot (the STM layer
    /// passes `AbortReason::index()`).
    ///
    /// # Panics
    ///
    /// Panics if `code` is outside the reserved slots.
    pub fn resolve_abort(&mut self, code: Option<usize>) {
        self.aborts += 1;
        if let Some(code) = code {
            self.abort_codes[code] += 1;
        }
        let mut attempt = std::mem::take(&mut self.attempt);
        attempt.collapse_into_wasted();
        self.breakdown += attempt;
    }

    /// Records one MRAM DMA transfer of `words` words (setup paid once).
    pub fn note_mram_dma(&mut self, words: u32) {
        self.mram_dma_setups += 1;
        self.mram_dma_words += u64::from(words);
    }

    /// Records `time` spent spin-waiting (back-off or lock waits).
    pub fn note_backoff(&mut self, time: u64) {
        self.backoff_time += time;
    }

    /// Records one evaluated online-tuner signal window.
    pub fn note_tune_window(&mut self) {
        self.tune_windows += 1;
    }

    /// Records one applied online-tuner knob switch.
    pub fn note_tune_switch(&mut self) {
        self.tune_switches += 1;
    }

    /// Merges another core into this one (tasklet → DPU aggregation).
    pub fn merge(&mut self, other: &ProfileCore) {
        self.commits += other.commits;
        self.aborts += other.aborts;
        for (mine, theirs) in self.abort_codes.iter_mut().zip(other.abort_codes.iter()) {
            *mine += theirs;
        }
        self.breakdown += other.breakdown;
        self.attempt += other.attempt;
        self.mram_dma_setups += other.mram_dma_setups;
        self.mram_dma_words += other.mram_dma_words;
        self.backoff_time += other.backoff_time;
        self.tune_windows += other.tune_windows;
        self.tune_switches += other.tune_switches;
    }
}

/// One online-tuner knob switch, recorded as a scheduler-level event of the
/// simulated run: *which* knob switched from *which* setting to *which*, at
/// which cycle of the tasklet's virtual clock.
///
/// Like abort codes, the simulator substrate is meaning-blind: the STM
/// layer assigns the `knob`/`from`/`to` codes (`pim_stm::tune`) and renders
/// them back into names for reports. The cycle *cost* of the decision is
/// charged separately through the regular compute path, so switches are
/// never free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TuneEvent {
    /// Tasklet virtual time at which the switch was applied.
    pub at_cycles: Cycles,
    /// Opaque knob code (the STM layer's `TunedKnob::code`).
    pub knob: u8,
    /// Opaque code of the setting switched away from.
    pub from: u8,
    /// Opaque code of the setting switched to.
    pub to: u8,
}

/// Statistics for one tasklet over one simulated run: the shared
/// [`ProfileCore`] (charged in cycles) plus the simulator-only finish time.
///
/// `TaskletStats` dereferences to its core, so the historical field accesses
/// (`stats.commits`, `stats.breakdown`, …) keep working; the simulator no
/// longer keeps any bookkeeping of its own beyond `finish_cycles`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskletStats {
    /// The executor-agnostic profiling core, charged in simulator cycles.
    pub profile: ProfileCore,
    /// Virtual time at which the tasklet finished its program.
    pub finish_cycles: Cycles,
    /// Cycle-stamped online-tuner knob switches, in the order they were
    /// applied (simulator-only detail; the cross-executor aggregate is
    /// [`ProfileCore::tune_switches`]).
    pub tune_events: Vec<TuneEvent>,
}

impl TaskletStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another tasklet's statistics into this one (used for DPU-level
    /// aggregation). Tune events are interleaved by cycle stamp so the
    /// merged record reads as one timeline.
    pub fn merge(&mut self, other: &TaskletStats) {
        self.profile.merge(&other.profile);
        self.finish_cycles = self.finish_cycles.max(other.finish_cycles);
        self.tune_events.extend(other.tune_events.iter().copied());
        self.tune_events.sort_by_key(|e| e.at_cycles);
    }
}

impl Deref for TaskletStats {
    type Target = ProfileCore;

    fn deref(&self) -> &ProfileCore {
        &self.profile
    }
}

impl DerefMut for TaskletStats {
    fn deref_mut(&mut self) -> &mut ProfileCore {
        &mut self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_are_stable_and_unique() {
        let mut seen = [false; PHASES];
        for p in Phase::ALL {
            assert!(!seen[p.index()], "duplicate index for {p}");
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn breakdown_charge_and_total() {
        let mut b = PhaseBreakdown::new();
        b.charge(Phase::Reading, 10);
        b.charge(Phase::Reading, 5);
        b.charge(Phase::OtherCommit, 20);
        assert_eq!(b.get(Phase::Reading), 15);
        assert_eq!(b.total(), 35);
        assert!((b.fraction(Phase::OtherCommit) - 20.0 / 35.0).abs() < 1e-12);
    }

    #[test]
    fn collapse_moves_everything_to_wasted() {
        let mut b = PhaseBreakdown::new();
        b.charge(Phase::Reading, 7);
        b.charge(Phase::Writing, 3);
        b.collapse_into_wasted();
        assert_eq!(b.get(Phase::Wasted), 10);
        assert_eq!(b.get(Phase::Reading), 0);
        assert_eq!(b.total(), 10);
    }

    #[test]
    fn commit_and_abort_resolution() {
        let mut s = TaskletStats::new();
        s.charge_attempt(Phase::Reading, 100);
        s.resolve_commit();
        assert_eq!(s.commits, 1);
        assert_eq!(s.breakdown.get(Phase::Reading), 100);

        s.charge_attempt(Phase::Writing, 40);
        s.resolve_abort(None);
        assert_eq!(s.aborts, 1);
        assert_eq!(s.breakdown.get(Phase::Wasted), 40);
        assert_eq!(s.breakdown.get(Phase::Writing), 0);
        assert!((s.abort_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coded_aborts_fill_the_histogram() {
        let mut core = ProfileCore::new();
        core.resolve_abort(Some(2));
        core.resolve_abort(Some(2));
        core.resolve_abort(Some(0));
        core.resolve_abort(None);
        assert_eq!(core.aborts, 4);
        assert_eq!(core.abort_codes[2], 2);
        assert_eq!(core.abort_codes[0], 1);
        assert_eq!(core.coded_aborts(), 3, "the uncoded abort stays out of the histogram");
        assert_eq!(core.attempts(), 4);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TaskletStats::new();
        a.charge_attempt(Phase::Reading, 10);
        a.resolve_commit();
        a.finish_cycles = 500;
        a.note_mram_dma(8);
        a.note_backoff(3);
        let mut b = TaskletStats::new();
        b.charge_attempt(Phase::Reading, 30);
        b.resolve_abort(Some(1));
        b.finish_cycles = 900;
        b.note_mram_dma(1);
        b.note_mram_dma(3);
        b.note_backoff(4);
        a.merge(&b);
        assert_eq!(a.commits, 1);
        assert_eq!(a.aborts, 1);
        assert_eq!(a.abort_codes[1], 1);
        assert_eq!(a.finish_cycles, 900);
        assert_eq!(a.breakdown.total(), 40);
        assert_eq!(a.mram_dma_setups, 3);
        assert_eq!(a.mram_dma_words, 12);
        assert_eq!(a.backoff_time, 7);
    }

    #[test]
    fn dma_bursts_count_one_setup_regardless_of_length() {
        let mut s = TaskletStats::new();
        s.note_mram_dma(64);
        assert_eq!(s.mram_dma_setups, 1);
        assert_eq!(s.mram_dma_words, 64);
    }

    #[test]
    fn empty_stats_have_zero_abort_rate() {
        assert_eq!(TaskletStats::new().abort_rate(), 0.0);
    }
}
