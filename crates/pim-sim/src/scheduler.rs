//! The lowest-virtual-time discrete-event scheduler that interleaves tasklet
//! programs on one DPU.

use serde::{Deserialize, Serialize};

use crate::atomic_reg::AtomicRegisterStats;
use crate::ctx::TaskletCtx;
use crate::dpu::Dpu;
use crate::latency::Cycles;
use crate::program::{StepStatus, TaskletProgram};
use crate::stats::{PhaseBreakdown, TaskletStats};

/// Deterministic tasklet scheduler.
///
/// On every iteration the runnable tasklet with the smallest virtual clock
/// executes one program step; the cycles the step charges advance that
/// tasklet's clock. Ties are broken by tasklet id, so runs are fully
/// reproducible.
#[derive(Debug, Clone)]
pub struct Scheduler {
    max_steps: u64,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler {
    /// Creates a scheduler with a large step budget (far above what any
    /// legitimate experiment needs, but small enough that a livelocked or
    /// non-terminating program fails fast instead of hanging the test
    /// suite).
    pub fn new() -> Self {
        Scheduler { max_steps: 200_000_000 }
    }

    /// Overrides the safety step budget.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Runs `programs` (one per tasklet) to completion on `dpu` and returns
    /// the run report.
    ///
    /// # Panics
    ///
    /// Panics if the number of programs exceeds the DPU's `max_tasklets`, or
    /// if the step budget is exhausted (which indicates a non-terminating
    /// program).
    pub fn run(&self, dpu: &mut Dpu, mut programs: Vec<Box<dyn TaskletProgram>>) -> DpuRunReport {
        assert!(
            programs.len() <= dpu.config().max_tasklets,
            "{} programs exceed the DPU's {} hardware threads",
            programs.len(),
            dpu.config().max_tasklets
        );
        let n = programs.len();
        let mut clocks: Vec<Cycles> = vec![0; n];
        let mut finished: Vec<bool> = vec![false; n];
        let mut stats: Vec<TaskletStats> = vec![TaskletStats::new(); n];
        let mut remaining = n;
        let mut steps: u64 = 0;

        while remaining > 0 {
            assert!(
                steps < self.max_steps,
                "scheduler step budget of {} exhausted; a tasklet program is not terminating",
                self.max_steps
            );
            steps += 1;

            // Pick the unfinished tasklet with the smallest clock (ties: id).
            let tid = (0..n)
                .filter(|&i| !finished[i])
                .min_by_key(|&i| (clocks[i], i))
                .expect("remaining > 0 implies an unfinished tasklet");

            let start = clocks[tid];
            let instr_floor = dpu.latency().instruction_cycles(remaining);
            let (status, end) = {
                let mut ctx = TaskletCtx::new(dpu, &mut stats[tid], tid, remaining, start);
                let status = programs[tid].step(&mut ctx);
                (status, ctx.finish())
            };
            // Guarantee forward progress even if a step charged nothing.
            clocks[tid] = if end > start { end } else { start + instr_floor };
            // An idle-until step additionally advances the clock to the
            // requested cycle without charging anything: the tasklet is
            // parked until its next request arrival, not burning issue slots.
            if let StepStatus::IdleUntil(target) = status {
                clocks[tid] = clocks[tid].max(target);
            }

            if status == StepStatus::Finished {
                finished[tid] = true;
                stats[tid].finish_cycles = clocks[tid];
                remaining -= 1;
            }
        }

        DpuRunReport::from_parts(dpu, stats)
    }
}

/// Aggregated result of running a set of tasklet programs on one DPU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DpuRunReport {
    /// Per-tasklet statistics, indexed by tasklet id.
    pub tasklet_stats: Vec<TaskletStats>,
    /// Virtual time at which the last tasklet finished.
    pub makespan_cycles: Cycles,
    /// DPU clock frequency used to convert cycles to seconds.
    pub clock_hz: u64,
    /// Usage statistics of the hardware atomic register.
    pub atomic_stats: AtomicRegisterStats,
}

impl DpuRunReport {
    fn from_parts(dpu: &Dpu, tasklet_stats: Vec<TaskletStats>) -> Self {
        let makespan_cycles = tasklet_stats.iter().map(|s| s.finish_cycles).max().unwrap_or(0);
        DpuRunReport {
            tasklet_stats,
            makespan_cycles,
            clock_hz: dpu.latency().clock_hz,
            atomic_stats: dpu.atomic_register().stats(),
        }
    }

    /// Total committed transactions across all tasklets.
    pub fn total_commits(&self) -> u64 {
        self.tasklet_stats.iter().map(|s| s.commits).sum()
    }

    /// Total aborted transaction attempts across all tasklets.
    pub fn total_aborts(&self) -> u64 {
        self.tasklet_stats.iter().map(|s| s.aborts).sum()
    }

    /// Abort rate in `[0, 1]` across all tasklets.
    pub fn abort_rate(&self) -> f64 {
        let commits = self.total_commits();
        let aborts = self.total_aborts();
        if commits + aborts == 0 {
            0.0
        } else {
            aborts as f64 / (commits + aborts) as f64
        }
    }

    /// Wall-clock duration of the run in (simulated) seconds.
    pub fn makespan_seconds(&self) -> f64 {
        self.makespan_cycles as f64 / self.clock_hz as f64
    }

    /// Committed transactions per simulated second — the paper's throughput
    /// metric.
    pub fn throughput_tx_per_sec(&self) -> f64 {
        let secs = self.makespan_seconds();
        if secs == 0.0 {
            0.0
        } else {
            self.total_commits() as f64 / secs
        }
    }

    /// Phase breakdown summed over all tasklets.
    pub fn breakdown(&self) -> PhaseBreakdown {
        self.tasklet_stats.iter().fold(PhaseBreakdown::new(), |acc, s| acc + s.breakdown)
    }

    /// MRAM DMA transfers issued across all tasklets (each pays one setup).
    /// Burst coalescing lowers this without changing the word count.
    pub fn total_mram_dma_setups(&self) -> u64 {
        self.tasklet_stats.iter().map(|s| s.mram_dma_setups).sum()
    }

    /// Words moved over the MRAM port across all tasklets.
    pub fn total_mram_dma_words(&self) -> u64 {
        self.tasklet_stats.iter().map(|s| s.mram_dma_words).sum()
    }

    /// Number of tasklets that took part in the run.
    pub fn tasklets(&self) -> usize {
        self.tasklet_stats.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpu::DpuConfig;
    use crate::mem::Tier;
    use crate::program::{FnProgram, IdleProgram};
    use crate::stats::Phase;

    #[test]
    fn empty_program_set_produces_empty_report() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let report = Scheduler::new().run(&mut dpu, Vec::new());
        assert_eq!(report.tasklets(), 0);
        assert_eq!(report.makespan_cycles, 0);
        assert_eq!(report.throughput_tx_per_sec(), 0.0);
    }

    #[test]
    fn single_tasklet_counter_increments_accumulate() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let counter = dpu.alloc(Tier::Mram, 1).unwrap();
        let mut remaining = 25u32;
        let prog = FnProgram::new(move |ctx: &mut TaskletCtx<'_>| {
            if remaining == 0 {
                return StepStatus::Finished;
            }
            let v = ctx.load(counter);
            ctx.store(counter, v + 1);
            remaining -= 1;
            StepStatus::Running
        });
        let report = Scheduler::new().run(&mut dpu, vec![Box::new(prog)]);
        assert_eq!(dpu.peek(counter), 25);
        assert!(report.makespan_cycles > 0);
    }

    #[test]
    fn interleaving_is_fair_and_deterministic() {
        // Two tasklets append their id to a log; with equal per-step costs the
        // scheduler must alternate them deterministically.
        fn run_once() -> Vec<u64> {
            let mut dpu = Dpu::new(DpuConfig::small());
            let log = dpu.alloc(Tier::Mram, 64).unwrap();
            let cursor = dpu.alloc(Tier::Mram, 1).unwrap();
            let mk = |id: u64| {
                let mut remaining = 8u32;
                FnProgram::new(move |ctx: &mut TaskletCtx<'_>| {
                    if remaining == 0 {
                        return StepStatus::Finished;
                    }
                    let c = ctx.load(cursor);
                    ctx.store(log.offset(c as u32), id);
                    ctx.store(cursor, c + 1);
                    remaining -= 1;
                    StepStatus::Running
                })
            };
            let report = Scheduler::new()
                .run(&mut dpu, vec![Box::new(mk(1)) as Box<dyn TaskletProgram>, Box::new(mk(2))]);
            assert_eq!(report.tasklets(), 2);
            dpu.peek_block(log, 16)
        }
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "scheduler must be deterministic");
        assert!(a.contains(&1) && a.contains(&2), "both tasklets must run");
    }

    #[test]
    fn makespan_grows_sublinearly_up_to_pipeline_depth() {
        // Pure-compute tasklets: per-tasklet time is independent of the
        // tasklet count up to the pipeline depth, so makespan stays flat while
        // total work scales — this is the linear-scaling property of the DPU.
        let run = |tasklets: usize| {
            let mut dpu = Dpu::new(DpuConfig::small());
            let programs: Vec<Box<dyn TaskletProgram>> = (0..tasklets)
                .map(|_| {
                    let mut remaining = 50u32;
                    Box::new(FnProgram::new(move |ctx: &mut TaskletCtx<'_>| {
                        if remaining == 0 {
                            return StepStatus::Finished;
                        }
                        ctx.compute(4);
                        remaining -= 1;
                        StepStatus::Running
                    })) as Box<dyn TaskletProgram>
                })
                .collect();
            Scheduler::new().run(&mut dpu, programs).makespan_cycles
        };
        let one = run(1);
        let eleven = run(11);
        let twentyfour = run(24);
        assert_eq!(one, eleven, "1..=11 tasklets of pure compute should not dilate each other");
        assert!(twentyfour > eleven, "beyond the pipeline depth issue slots are shared");
    }

    #[test]
    fn commits_and_phase_cycles_roll_up_into_report() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let word = dpu.alloc(Tier::Wram, 1).unwrap();
        let mk = || {
            let mut remaining = 5u32;
            FnProgram::new(move |ctx: &mut TaskletCtx<'_>| {
                if remaining == 0 {
                    return StepStatus::Finished;
                }
                ctx.begin_attempt();
                ctx.set_phase(Phase::Reading);
                ctx.load(word);
                ctx.commit_attempt();
                remaining -= 1;
                StepStatus::Running
            })
        };
        let report = Scheduler::new()
            .run(&mut dpu, vec![Box::new(mk()) as Box<dyn TaskletProgram>, Box::new(mk())]);
        assert_eq!(report.total_commits(), 10);
        assert_eq!(report.total_aborts(), 0);
        assert_eq!(report.abort_rate(), 0.0);
        assert!(report.breakdown().get(Phase::Reading) > 0);
        assert!(report.throughput_tx_per_sec() > 0.0);
    }

    #[test]
    fn zero_cost_steps_still_make_progress() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let mut remaining = 3u32;
        let prog = FnProgram::new(move |_ctx: &mut TaskletCtx<'_>| {
            if remaining == 0 {
                return StepStatus::Finished;
            }
            remaining -= 1;
            StepStatus::Running
        });
        let report =
            Scheduler::new().run(&mut dpu, vec![Box::new(prog) as Box<dyn TaskletProgram>]);
        assert!(report.makespan_cycles > 0, "scheduler must advance time even for no-op steps");
    }

    #[test]
    fn idle_until_advances_time_without_charging_cycles() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let mut state = 0u32;
        let prog = FnProgram::new(move |ctx: &mut TaskletCtx<'_>| {
            state += 1;
            match state {
                // Park until cycle 10_000 without doing any work.
                1 => StepStatus::IdleUntil(10_000),
                // Woken at (or after) the requested cycle.
                2 => {
                    assert!(ctx.now() >= 10_000, "woke too early at {}", ctx.now());
                    ctx.compute(1);
                    StepStatus::Running
                }
                // A target in the past must not rewind the clock.
                3 => StepStatus::IdleUntil(5),
                _ => StepStatus::Finished,
            }
        });
        let report =
            Scheduler::new().run(&mut dpu, vec![Box::new(prog) as Box<dyn TaskletProgram>]);
        assert!(report.makespan_cycles >= 10_000);
        // Only the single compute(1) charged cycles; idling charged nothing.
        let charged: u64 = report.tasklet_stats[0].breakdown.total();
        assert!(charged < 100, "idle waiting must not be charged as busy time, got {charged}");
    }

    #[test]
    fn idle_tasklet_yields_to_runnable_peers() {
        // One tasklet parks far in the future; another does real work. The
        // worker must finish long before the sleeper's wake-up time, i.e. the
        // sleeper never blocks the DPU.
        let mut dpu = Dpu::new(DpuConfig::small());
        let mut parked = false;
        let sleeper = FnProgram::new(move |_ctx: &mut TaskletCtx<'_>| {
            if parked {
                StepStatus::Finished
            } else {
                parked = true;
                StepStatus::IdleUntil(1_000_000)
            }
        });
        let mut remaining = 10u32;
        let worker = FnProgram::new(move |ctx: &mut TaskletCtx<'_>| {
            if remaining == 0 {
                return StepStatus::Finished;
            }
            ctx.compute(1);
            remaining -= 1;
            StepStatus::Running
        });
        let report = Scheduler::new()
            .run(&mut dpu, vec![Box::new(sleeper) as Box<dyn TaskletProgram>, Box::new(worker)]);
        assert!(report.tasklet_stats[1].finish_cycles < 1_000_000);
        assert!(report.tasklet_stats[0].finish_cycles >= 1_000_000);
    }

    #[test]
    #[should_panic(expected = "step budget")]
    fn runaway_program_hits_step_budget() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let prog = FnProgram::new(|ctx: &mut TaskletCtx<'_>| {
            ctx.compute(1);
            StepStatus::Running
        });
        Scheduler::new()
            .with_max_steps(100)
            .run(&mut dpu, vec![Box::new(prog) as Box<dyn TaskletProgram>]);
    }

    #[test]
    #[should_panic(expected = "hardware threads")]
    fn too_many_programs_panics() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let programs: Vec<Box<dyn TaskletProgram>> =
            (0..25).map(|_| Box::new(IdleProgram) as Box<dyn TaskletProgram>).collect();
        Scheduler::new().run(&mut dpu, programs);
    }
}
