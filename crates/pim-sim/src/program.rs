//! The [`TaskletProgram`] trait: how workloads are expressed for the
//! deterministic executor.
//!
//! A tasklet program is a small state machine. The scheduler calls
//! [`TaskletProgram::step`] repeatedly, handing the program a
//! [`TaskletCtx`]; each step should perform roughly one transactional
//! operation (a transactional read/write, a begin, a commit, a block of
//! non-transactional compute). Interleaving between tasklets happens at step
//! granularity in lowest-virtual-time order, so transactions of different
//! tasklets genuinely overlap and conflict.

use crate::ctx::TaskletCtx;
use crate::latency::Cycles;

/// Result of one program step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepStatus {
    /// The program has more work to do.
    Running,
    /// The program has no work until the given absolute cycle (an open-loop
    /// service tasklet waiting for its next request arrival). The scheduler
    /// advances the tasklet's clock to that cycle **without charging busy
    /// cycles** — idle waiting is not compute, back-off or queueing inside
    /// the STM — and steps the program again once it is due. A target in the
    /// past degrades to [`StepStatus::Running`].
    IdleUntil(Cycles),
    /// The program is finished and must not be stepped again.
    Finished,
}

/// A tasklet workload executed by the deterministic [`crate::Scheduler`].
pub trait TaskletProgram {
    /// Executes one step of the program, charging its cost to `ctx`.
    ///
    /// Implementations must guarantee progress: a program that returns
    /// [`StepStatus::Running`] forever without ever finishing will hit the
    /// scheduler's step limit and panic.
    fn step(&mut self, ctx: &mut TaskletCtx<'_>) -> StepStatus;

    /// Optional human-readable label used in diagnostics.
    fn label(&self) -> &str {
        "tasklet-program"
    }
}

impl<T: TaskletProgram + ?Sized> TaskletProgram for Box<T> {
    fn step(&mut self, ctx: &mut TaskletCtx<'_>) -> StepStatus {
        (**self).step(ctx)
    }

    fn label(&self) -> &str {
        (**self).label()
    }
}

/// A program that finishes immediately; useful for padding a DPU with idle
/// tasklets in tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdleProgram;

impl TaskletProgram for IdleProgram {
    fn step(&mut self, _ctx: &mut TaskletCtx<'_>) -> StepStatus {
        StepStatus::Finished
    }

    fn label(&self) -> &str {
        "idle"
    }
}

/// A program built from a closure, mainly for tests and small examples.
pub struct FnProgram<F> {
    f: F,
    label: &'static str,
}

impl<F> FnProgram<F>
where
    F: FnMut(&mut TaskletCtx<'_>) -> StepStatus,
{
    /// Wraps a closure as a program.
    pub fn new(f: F) -> Self {
        FnProgram { f, label: "fn-program" }
    }

    /// Wraps a closure with an explicit label.
    pub fn with_label(f: F, label: &'static str) -> Self {
        FnProgram { f, label }
    }
}

impl<F> TaskletProgram for FnProgram<F>
where
    F: FnMut(&mut TaskletCtx<'_>) -> StepStatus,
{
    fn step(&mut self, ctx: &mut TaskletCtx<'_>) -> StepStatus {
        (self.f)(ctx)
    }

    fn label(&self) -> &str {
        self.label
    }
}

impl<F> std::fmt::Debug for FnProgram<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnProgram").field("label", &self.label).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpu::{Dpu, DpuConfig};
    use crate::stats::TaskletStats;

    #[test]
    fn idle_program_finishes_immediately() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let mut stats = TaskletStats::new();
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
        assert_eq!(IdleProgram.step(&mut ctx), StepStatus::Finished);
        assert_eq!(IdleProgram.label(), "idle");
    }

    #[test]
    fn fn_program_runs_closure_until_done() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let mut stats = TaskletStats::new();
        let mut remaining = 3;
        let mut prog = FnProgram::with_label(
            move |ctx: &mut TaskletCtx<'_>| {
                ctx.compute(1);
                remaining -= 1;
                if remaining == 0 {
                    StepStatus::Finished
                } else {
                    StepStatus::Running
                }
            },
            "countdown",
        );
        let mut steps = 0;
        loop {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
            steps += 1;
            if prog.step(&mut ctx) == StepStatus::Finished {
                break;
            }
        }
        assert_eq!(steps, 3);
        assert_eq!(prog.label(), "countdown");
        assert!(format!("{prog:?}").contains("countdown"));
    }

    #[test]
    fn boxed_programs_delegate() {
        let mut boxed: Box<dyn TaskletProgram> = Box::new(IdleProgram);
        let mut dpu = Dpu::new(DpuConfig::small());
        let mut stats = TaskletStats::new();
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
        assert_eq!(boxed.step(&mut ctx), StepStatus::Finished);
        assert_eq!(boxed.label(), "idle");
    }
}
