//! The 256-entry hardware atomic bit register of a DPU.
//!
//! UPMEM DPUs do not provide compare-and-swap. The only intra-DPU atomic
//! primitives are `acquire` and `release`: the hardware hashes the supplied
//! address onto one of 256 "logical lock" bits and atomically sets/clears it.
//! Two different addresses may hash onto the same bit (*lock aliasing*),
//! which serialises unrelated critical sections; the paper argues (and we
//! track, so the claim can be checked) that this aliasing has negligible
//! impact because the protected critical sections are tiny.

use serde::{Deserialize, Serialize};

/// Number of logical lock bits in the hardware register.
pub const ATOMIC_REGISTER_BITS: usize = 256;

/// The hardware atomic bit register together with aliasing statistics.
#[derive(Debug, Clone)]
pub struct AtomicBitRegister {
    bits: [bool; ATOMIC_REGISTER_BITS],
    /// Which tasklet currently holds each bit (for debugging/invariants).
    holder: [Option<usize>; ATOMIC_REGISTER_BITS],
    stats: AtomicRegisterStats,
}

/// Counters describing how the register was used during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtomicRegisterStats {
    /// Total acquire operations performed.
    pub acquires: u64,
    /// Total release operations performed.
    pub releases: u64,
    /// Acquires that found the bit already held (by any tasklet) and had to
    /// wait — on hardware the tasklet would spin/block.
    pub contended_acquires: u64,
}

impl Default for AtomicBitRegister {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicBitRegister {
    /// Creates an all-clear register.
    pub fn new() -> Self {
        AtomicBitRegister {
            bits: [false; ATOMIC_REGISTER_BITS],
            holder: [None; ATOMIC_REGISTER_BITS],
            stats: AtomicRegisterStats::default(),
        }
    }

    /// The hardware hash from an address-like key to a bit index.
    ///
    /// The real hash is undocumented; we use a Fibonacci-style multiplicative
    /// hash which, like the hardware, maps distinct keys to the same bit with
    /// probability 1/256.
    pub fn hash(key: u64) -> usize {
        ((key.wrapping_mul(0x9e37_79b9_7f4a_7c15)) >> 56) as usize % ATOMIC_REGISTER_BITS
    }

    /// Attempts to acquire the logical lock for `key` on behalf of
    /// `tasklet_id`. Returns `true` on success, `false` if the bit is already
    /// held (the caller decides whether to spin, yield or abort).
    pub fn try_acquire(&mut self, key: u64, tasklet_id: usize) -> bool {
        let idx = Self::hash(key);
        self.stats.acquires += 1;
        if self.bits[idx] {
            self.stats.contended_acquires += 1;
            false
        } else {
            self.bits[idx] = true;
            self.holder[idx] = Some(tasklet_id);
            true
        }
    }

    /// Releases the logical lock for `key`.
    ///
    /// # Panics
    ///
    /// Panics if the bit is not currently held — releasing an unheld
    /// hardware lock is a programming error we want to surface in tests.
    pub fn release(&mut self, key: u64) {
        let idx = Self::hash(key);
        assert!(self.bits[idx], "release of unheld atomic bit {idx}");
        self.stats.releases += 1;
        self.bits[idx] = false;
        self.holder[idx] = None;
    }

    /// Whether the logical lock for `key` is currently held.
    pub fn is_held(&self, key: u64) -> bool {
        self.bits[Self::hash(key)]
    }

    /// Tasklet currently holding the logical lock for `key`, if any.
    pub fn holder(&self, key: u64) -> Option<usize> {
        self.holder[Self::hash(key)]
    }

    /// Number of bits currently set.
    pub fn held_count(&self) -> usize {
        self.bits.iter().filter(|b| **b).count()
    }

    /// Usage statistics accumulated so far.
    pub fn stats(&self) -> AtomicRegisterStats {
        self.stats
    }

    /// Clears all bits and statistics.
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_then_release_roundtrip() {
        let mut reg = AtomicBitRegister::new();
        assert!(reg.try_acquire(42, 0));
        assert!(reg.is_held(42));
        assert_eq!(reg.holder(42), Some(0));
        reg.release(42);
        assert!(!reg.is_held(42));
        assert_eq!(reg.held_count(), 0);
    }

    #[test]
    fn second_acquire_on_same_key_is_contended() {
        let mut reg = AtomicBitRegister::new();
        assert!(reg.try_acquire(7, 0));
        assert!(!reg.try_acquire(7, 1));
        let stats = reg.stats();
        assert_eq!(stats.acquires, 2);
        assert_eq!(stats.contended_acquires, 1);
    }

    #[test]
    fn aliasing_maps_distinct_keys_to_same_bit_sometimes() {
        // With 10_000 random keys over 256 bits, collisions are certain.
        let mut buckets = [0u32; ATOMIC_REGISTER_BITS];
        for key in 0..10_000u64 {
            buckets[AtomicBitRegister::hash(key * 0x1234_5678 + 1)] += 1;
        }
        assert!(buckets.iter().all(|&c| c > 0), "hash should spread keys over all bits");
    }

    #[test]
    #[should_panic(expected = "release of unheld")]
    fn releasing_unheld_bit_panics() {
        let mut reg = AtomicBitRegister::new();
        reg.release(3);
    }

    #[test]
    fn reset_clears_state() {
        let mut reg = AtomicBitRegister::new();
        reg.try_acquire(1, 0);
        reg.reset();
        assert_eq!(reg.held_count(), 0);
        assert_eq!(reg.stats(), AtomicRegisterStats::default());
    }
}
