//! [`TaskletCtx`]: the cycle-charging window through which running tasklet
//! code touches the DPU.
//!
//! Every memory access, compute block and atomic-register operation advances
//! the tasklet's virtual clock according to the [`crate::LatencyModel`] and
//! attributes the cycles to the current [`Phase`]. The STM library switches
//! phases as a transaction moves between reading, writing, validating and
//! committing, which is how the paper's time-breakdown plots are produced.

use crate::dpu::Dpu;
use crate::latency::Cycles;
use crate::mem::{Addr, Tier};
use crate::stats::{Phase, TaskletStats};

/// Execution context handed to a tasklet for the duration of one program
/// step.
#[derive(Debug)]
pub struct TaskletCtx<'a> {
    dpu: &'a mut Dpu,
    stats: &'a mut TaskletStats,
    tasklet_id: usize,
    active_tasklets: usize,
    now: Cycles,
    phase: Phase,
    transactional: bool,
}

impl<'a> TaskletCtx<'a> {
    /// Creates a context for `tasklet_id` whose clock currently reads `now`.
    ///
    /// `active_tasklets` is the number of tasklets still running on the DPU;
    /// it determines instruction-issue contention beyond the pipeline depth.
    pub fn new(
        dpu: &'a mut Dpu,
        stats: &'a mut TaskletStats,
        tasklet_id: usize,
        active_tasklets: usize,
        now: Cycles,
    ) -> Self {
        TaskletCtx {
            dpu,
            stats,
            tasklet_id,
            active_tasklets: active_tasklets.max(1),
            now,
            phase: Phase::OtherExec,
            transactional: false,
        }
    }

    /// Identifier of the tasklet executing this step (0-based).
    pub fn tasklet_id(&self) -> usize {
        self.tasklet_id
    }

    /// Number of tasklets still running on the DPU.
    pub fn active_tasklets(&self) -> usize {
        self.active_tasklets
    }

    /// Current virtual time of this tasklet, in cycles.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// The phase to which subsequent cycles will be attributed.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Switches the accounting phase, returning the previous one so callers
    /// can restore it.
    pub fn set_phase(&mut self, phase: Phase) -> Phase {
        std::mem::replace(&mut self.phase, phase)
    }

    /// Marks the start of a transaction attempt: subsequent cycles are
    /// buffered so they can be re-attributed to wasted time if the attempt
    /// aborts.
    pub fn begin_attempt(&mut self) {
        self.transactional = true;
    }

    /// Resolves the in-flight attempt as committed.
    pub fn commit_attempt(&mut self) {
        self.transactional = false;
        self.stats.resolve_commit();
    }

    /// Resolves the in-flight attempt as aborted: all buffered cycles become
    /// wasted time.
    pub fn abort_attempt(&mut self) {
        self.transactional = false;
        self.stats.resolve_abort(None);
    }

    /// Resolves the in-flight attempt as aborted under an abort-reason code
    /// (see [`crate::stats::ProfileCore::resolve_abort`]; the STM layer
    /// passes its `AbortReason::index()`).
    pub fn abort_attempt_coded(&mut self, code: usize) {
        self.transactional = false;
        self.stats.resolve_abort(Some(code));
    }

    /// Busy-waits for `instructions` instructions, recording the elapsed
    /// cycles as back-off / lock-wait time on top of the regular phase
    /// attribution.
    pub fn spin_wait(&mut self, instructions: u64) {
        let before = self.now;
        self.compute(instructions);
        let waited = self.now - before;
        self.stats.note_backoff(waited);
    }

    /// Whether a transaction attempt is currently being accounted.
    pub fn in_attempt(&self) -> bool {
        self.transactional
    }

    /// Records one evaluated online-tuner signal window (the evaluation's
    /// cycle cost is charged separately through [`TaskletCtx::compute`]).
    pub fn note_tune_window(&mut self) {
        self.stats.note_tune_window();
    }

    /// Records one applied online-tuner knob switch as a cycle-stamped
    /// scheduler-level event (see [`crate::stats::TuneEvent`]; codes are
    /// assigned by the STM layer).
    pub fn note_tune_switch(&mut self, knob: u8, from: u8, to: u8) {
        self.stats.note_tune_switch();
        let event = crate::stats::TuneEvent { at_cycles: self.now, knob, from, to };
        self.stats.tune_events.push(event);
    }

    /// Charges `cycles` to the current phase and advances the tasklet clock.
    pub fn charge(&mut self, cycles: Cycles) {
        self.now += cycles;
        if self.transactional {
            self.stats.charge_attempt(self.phase, cycles);
        } else {
            self.stats.charge_direct(self.phase, cycles);
        }
    }

    /// Charges `cycles` to an explicit phase (without changing the current
    /// phase), advancing the clock.
    pub fn charge_phase(&mut self, phase: Phase, cycles: Cycles) {
        let prev = self.set_phase(phase);
        self.charge(cycles);
        self.phase = prev;
    }

    /// Models `instructions` pipeline instructions of computation.
    pub fn compute(&mut self, instructions: u64) {
        let cost = self.dpu.latency().instruction_cycles(self.active_tasklets) * instructions;
        self.charge(cost);
    }

    fn access_cost(&mut self, tier: Tier, words: u32) -> Cycles {
        let latency = *self.dpu.latency();
        let instr = latency.instruction_cycles(self.active_tasklets);
        match tier {
            Tier::Wram => instr,
            Tier::Mram => {
                // The issuing instruction executes, then the DMA waits for the
                // shared MRAM port.
                self.stats.note_mram_dma(words);
                let issue_done = self.now + instr;
                let dma_start = issue_done.max(self.dpu.mram_port_free_at());
                let dma_done = dma_start + latency.mram_transfer_cycles(words);
                self.dpu.set_mram_port_free_at(dma_done);
                dma_done - self.now
            }
        }
    }

    /// Transactionally-timed load of one word.
    pub fn load(&mut self, addr: Addr) -> u64 {
        let cost = self.access_cost(addr.tier, 1);
        self.charge(cost);
        self.dpu.memory(addr.tier).read(addr.word)
    }

    /// Transactionally-timed store of one word.
    pub fn store(&mut self, addr: Addr, value: u64) {
        let cost = self.access_cost(addr.tier, 1);
        self.charge(cost);
        self.dpu.memory_mut(addr.tier).write(addr.word, value);
    }

    /// Transactionally-timed load of `out.len()` consecutive words starting
    /// at `addr`.
    ///
    /// An MRAM block is fetched as **one DMA burst** — the setup cost is paid
    /// once and the streaming cost per word — which is how the UPMEM
    /// `mram_read` helper moves multi-word records. A WRAM block still costs
    /// one instruction per word (the scratchpad has no DMA engine).
    pub fn load_block(&mut self, addr: Addr, out: &mut [u64]) {
        let words = out.len() as u32;
        if words == 0 {
            return;
        }
        let cost = self.block_access_cost(addr.tier, words);
        self.charge(cost);
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.dpu.memory(addr.tier).read(addr.word + i as u32);
        }
    }

    /// Transactionally-timed store of `values` to consecutive words starting
    /// at `addr`, charged like [`TaskletCtx::load_block`].
    pub fn store_block(&mut self, addr: Addr, values: &[u64]) {
        let words = values.len() as u32;
        if words == 0 {
            return;
        }
        let cost = self.block_access_cost(addr.tier, words);
        self.charge(cost);
        for (i, value) in values.iter().enumerate() {
            self.dpu.memory_mut(addr.tier).write(addr.word + i as u32, *value);
        }
    }

    fn block_access_cost(&mut self, tier: Tier, words: u32) -> Cycles {
        match tier {
            Tier::Wram => {
                self.dpu.latency().instruction_cycles(self.active_tasklets) * u64::from(words)
            }
            Tier::Mram => self.access_cost(Tier::Mram, words),
        }
    }

    /// Copies `words` words from `src` to `dst`, charging one block DMA per
    /// MRAM side touched (models the UPMEM `mram_read`/`mram_write` DMA
    /// helpers used to stage data into WRAM).
    pub fn copy_block(&mut self, src: Addr, dst: Addr, words: u32) {
        let mram_sides = u32::from(src.tier == Tier::Mram) + u32::from(dst.tier == Tier::Mram);
        let latency = *self.dpu.latency();
        let instr = latency.instruction_cycles(self.active_tasklets);
        let mut cost = instr;
        for _ in 0..mram_sides {
            self.stats.note_mram_dma(words);
            let issue_done = self.now + cost;
            let dma_start = issue_done.max(self.dpu.mram_port_free_at());
            let dma_done = dma_start + latency.mram_transfer_cycles(words);
            self.dpu.set_mram_port_free_at(dma_done);
            cost = dma_done - self.now;
        }
        // WRAM-to-WRAM copies still execute one instruction per word.
        if mram_sides == 0 {
            cost = instr * u64::from(words.max(1));
        }
        self.charge(cost);
        let values = self.dpu.peek_block(src, words);
        self.dpu.poke_block(dst, &values);
    }

    /// Attempts to acquire the hardware logical lock hashed from `key`.
    ///
    /// On real hardware a failed acquire blocks the tasklet; in the
    /// discrete-event simulator steps are atomic, so the caller (the STM
    /// library keeps its critical sections within a single operation) decides
    /// how to react to a `false` return.
    pub fn try_acquire(&mut self, key: u64) -> bool {
        let instr = self.dpu.latency().atomic_op_instructions
            * self.dpu.latency().instruction_cycles(self.active_tasklets);
        self.charge(instr);
        self.dpu.atomic_register_mut().try_acquire(key, self.tasklet_id)
    }

    /// Releases the hardware logical lock hashed from `key`.
    ///
    /// # Panics
    ///
    /// Panics if the lock is not held (see [`crate::AtomicBitRegister`]).
    pub fn release(&mut self, key: u64) {
        let instr = self.dpu.latency().atomic_op_instructions
            * self.dpu.latency().instruction_cycles(self.active_tasklets);
        self.charge(instr);
        self.dpu.atomic_register_mut().release(key);
    }

    /// Direct, *untimed* access to the DPU. Intended for assertions inside
    /// tests and for program bookkeeping that does not correspond to DPU
    /// instructions; regular workload code should use the timed accessors.
    pub fn dpu(&self) -> &Dpu {
        self.dpu
    }

    /// Direct, untimed mutable access to the DPU (see [`TaskletCtx::dpu`]).
    pub fn dpu_mut(&mut self) -> &mut Dpu {
        self.dpu
    }

    /// The statistics record of this tasklet.
    pub fn stats(&self) -> &TaskletStats {
        self.stats
    }

    /// Consumes the context, returning the advanced clock value.
    pub(crate) fn finish(self) -> Cycles {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpu::DpuConfig;

    fn setup() -> (Dpu, TaskletStats) {
        (Dpu::new(DpuConfig::small()), TaskletStats::new())
    }

    #[test]
    fn wram_access_is_cheaper_than_mram() {
        let (mut dpu, mut stats) = setup();
        let w = dpu.alloc(Tier::Wram, 1).unwrap();
        let m = dpu.alloc(Tier::Mram, 1).unwrap();
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
        ctx.store(w, 1);
        let wram_cost = ctx.now();
        ctx.store(m, 1);
        let mram_cost = ctx.now() - wram_cost;
        assert!(mram_cost > 3 * wram_cost, "MRAM ({mram_cost}) should dwarf WRAM ({wram_cost})");
    }

    #[test]
    fn loads_return_stored_values_and_charge_phase() {
        let (mut dpu, mut stats) = setup();
        let a = dpu.alloc(Tier::Mram, 2).unwrap();
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
        ctx.set_phase(Phase::Writing);
        ctx.store(a, 17);
        ctx.set_phase(Phase::Reading);
        assert_eq!(ctx.load(a), 17);
        assert!(stats.breakdown.get(Phase::Reading) > 0);
        assert!(stats.breakdown.get(Phase::Writing) > 0);
    }

    #[test]
    fn mram_port_is_a_shared_resource() {
        let (mut dpu, mut stats0) = setup();
        let mut stats1 = TaskletStats::new();
        let a = dpu.alloc(Tier::Mram, 2).unwrap();
        // Tasklet 0 issues an MRAM access at t=0.
        let mut ctx0 = TaskletCtx::new(&mut dpu, &mut stats0, 0, 2, 0);
        ctx0.load(a);
        let t0_done = ctx0.finish();
        // Tasklet 1 issues at t=0 too, but the port is busy until t0_done's
        // DMA finished, so it must finish strictly later.
        let mut ctx1 = TaskletCtx::new(&mut dpu, &mut stats1, 1, 2, 0);
        ctx1.load(a.offset(1));
        let t1_done = ctx1.finish();
        assert!(t1_done > t0_done);
    }

    #[test]
    fn attempt_buffering_reclassifies_aborted_work() {
        let (mut dpu, mut stats) = setup();
        let a = dpu.alloc(Tier::Wram, 1).unwrap();
        {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
            ctx.begin_attempt();
            ctx.set_phase(Phase::Reading);
            ctx.load(a);
            ctx.abort_attempt();
        }
        assert_eq!(stats.aborts, 1);
        assert_eq!(stats.breakdown.get(Phase::Reading), 0);
        assert!(stats.breakdown.get(Phase::Wasted) > 0);
    }

    #[test]
    fn atomic_register_ops_are_cheap_and_tracked() {
        let (mut dpu, mut stats) = setup();
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 3, 1, 0);
        assert!(ctx.try_acquire(0xabc));
        ctx.release(0xabc);
        let t_atomic = ctx.now();
        let m = ctx.dpu_mut().alloc(Tier::Mram, 1).unwrap();
        ctx.load(m);
        let t_mram = ctx.now() - t_atomic;
        assert!(t_atomic < t_mram, "register ops must be much cheaper than MRAM accesses");
        assert_eq!(ctx.dpu().atomic_register().stats().acquires, 1);
    }

    #[test]
    fn block_loads_pay_one_dma_setup_instead_of_n() {
        // Two fresh DPUs so the second measurement does not queue behind the
        // first one's DMA in the shared-port model.
        let (mut dpu, mut stats) = setup();
        let a = dpu.alloc(Tier::Mram, 8).unwrap();
        dpu.poke_block(a, &[1, 2, 3, 4, 5, 6, 7, 8]);
        // Eight single-word loads: eight DMA setups.
        let word_cost = {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
            for i in 0..8 {
                ctx.load(a.offset(i));
            }
            ctx.now()
        };
        let (mut dpu, mut stats) = setup();
        let a = dpu.alloc(Tier::Mram, 8).unwrap();
        dpu.poke_block(a, &[1, 2, 3, 4, 5, 6, 7, 8]);
        // One 8-word burst: one setup plus streaming.
        let mut buf = [0u64; 8];
        let block_cost = {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
            ctx.load_block(a, &mut buf);
            ctx.now()
        };
        assert_eq!(buf, [1, 2, 3, 4, 5, 6, 7, 8]);
        assert!(
            block_cost < word_cost / 2,
            "8-word burst ({block_cost}) must amortise setup vs 8 loads ({word_cost})"
        );
    }

    #[test]
    fn mram_dma_setups_are_counted_per_transfer_not_per_word() {
        let (mut dpu, mut stats) = setup();
        let a = dpu.alloc(Tier::Mram, 8).unwrap();
        let w = dpu.alloc(Tier::Wram, 8).unwrap();
        {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
            // Two single-word accesses: two setups, two words.
            ctx.load(a);
            ctx.store(a.offset(1), 5);
            // One 8-word burst: one setup, eight words.
            let mut buf = [0u64; 8];
            ctx.load_block(a, &mut buf);
            // WRAM traffic never touches the MRAM port.
            ctx.store(w, 1);
            ctx.store_block(w, &[1, 2]);
            // A copy with one MRAM side: one more setup.
            ctx.copy_block(a, w, 4);
        }
        assert_eq!(stats.mram_dma_setups, 4);
        assert_eq!(stats.mram_dma_words, 2 + 8 + 4);
    }

    #[test]
    fn block_stores_write_all_words_and_charge_the_port() {
        let (mut dpu, mut stats) = setup();
        let a = dpu.alloc(Tier::Mram, 4).unwrap();
        let free_before = dpu.mram_port_free_at();
        {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
            ctx.store_block(a, &[9, 8, 7, 6]);
            assert!(ctx.now() > 0);
        }
        assert_eq!(dpu.peek_block(a, 4), vec![9, 8, 7, 6]);
        assert!(dpu.mram_port_free_at() > free_before, "the burst must occupy the MRAM port");
    }

    #[test]
    fn wram_block_access_costs_one_instruction_per_word() {
        let (mut dpu, mut stats) = setup();
        let a = dpu.alloc(Tier::Wram, 4).unwrap();
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
        ctx.store_block(a, &[1, 2, 3, 4]);
        let instr = ctx.dpu().latency().instruction_cycles(1);
        assert_eq!(ctx.now(), 4 * instr);
    }

    #[test]
    fn copy_block_moves_data_and_charges_dma() {
        let (mut dpu, mut stats) = setup();
        let src = dpu.alloc(Tier::Mram, 8).unwrap();
        let dst = dpu.alloc(Tier::Wram, 8).unwrap();
        dpu.poke_block(src, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
        ctx.copy_block(src, dst, 8);
        assert!(ctx.now() > 0);
        assert_eq!(dpu.peek_block(dst, 8), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn compute_scales_with_instruction_count() {
        let (mut dpu, mut stats) = setup();
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
        ctx.compute(10);
        let ten = ctx.now();
        ctx.compute(20);
        assert_eq!(ctx.now() - ten, 2 * ten);
    }
}
