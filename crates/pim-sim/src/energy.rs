//! Energy model used by the §4.3 energy study.
//!
//! The UPMEM system has no energy counters, so the paper estimates PIM energy
//! as the system's thermal design power (370 W with all DPUs active)
//! multiplied by the workload's execution time, and measures CPU energy with
//! RAPL. RAPL is not available inside this reproduction environment, so the
//! CPU side uses the same TDP-style estimate with a configurable package +
//! DRAM power; the *ratio* methodology matches the paper.

use serde::{Deserialize, Serialize};

/// Power constants used to convert execution time into energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Thermal design power of the full UPMEM PIM system (all 2560 DPUs), in
    /// watts. The paper uses 370 W.
    pub upmem_system_watts: f64,
    /// Number of DPUs the TDP above corresponds to.
    pub upmem_system_dpus: usize,
    /// Host CPU package power (substitute for RAPL package domain), in watts.
    pub cpu_package_watts: f64,
    /// Host DRAM power (substitute for RAPL DRAM domain), in watts.
    pub cpu_dram_watts: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            upmem_system_watts: 370.0,
            upmem_system_dpus: 2560,
            cpu_package_watts: 125.0,
            cpu_dram_watts: 25.0,
        }
    }
}

impl EnergyModel {
    /// Energy, in joules, consumed by a PIM execution of `seconds` seconds
    /// using `n_dpus` DPUs. Power is scaled linearly with the number of
    /// active DPUs (the paper always uses all of them, in which case this is
    /// exactly TDP × time).
    pub fn pim_energy_joules(&self, seconds: f64, n_dpus: usize) -> f64 {
        let fraction = (n_dpus.min(self.upmem_system_dpus)) as f64 / self.upmem_system_dpus as f64;
        self.upmem_system_watts * fraction * seconds
    }

    /// Energy, in joules, consumed by a CPU execution of `seconds` seconds
    /// (package + DRAM).
    pub fn cpu_energy_joules(&self, seconds: f64) -> f64 {
        (self.cpu_package_watts + self.cpu_dram_watts) * seconds
    }

    /// Energy gain of PIM over CPU: `cpu_energy / pim_energy`, matching the
    /// paper's definition (values below 1.0 mean PIM consumed *more* energy,
    /// as happens for Labyrinth L).
    pub fn energy_gain(&self, cpu_seconds: f64, pim_seconds: f64, n_dpus: usize) -> f64 {
        self.cpu_energy_joules(cpu_seconds) / self.pim_energy_joules(pim_seconds, n_dpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_system_energy_is_tdp_times_time() {
        let m = EnergyModel::default();
        let e = m.pim_energy_joules(10.0, 2560);
        assert!((e - 3700.0).abs() < 1e-9);
    }

    #[test]
    fn partial_system_scales_linearly() {
        let m = EnergyModel::default();
        let half = m.pim_energy_joules(10.0, 1280);
        assert!((half - 1850.0).abs() < 1e-9);
        // Using more DPUs than exist does not inflate power.
        assert_eq!(m.pim_energy_joules(10.0, 100_000), m.pim_energy_joules(10.0, 2560));
    }

    #[test]
    fn cpu_energy_includes_dram() {
        let m = EnergyModel::default();
        assert!((m.cpu_energy_joules(2.0) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn energy_gain_matches_paper_definition() {
        let m = EnergyModel::default();
        // CPU takes 10 s, PIM takes 2 s on the full system:
        // gain = (150*10)/(370*2) ≈ 2.03
        let gain = m.energy_gain(10.0, 2.0, 2560);
        assert!((gain - 1500.0 / 740.0).abs() < 1e-9);
        // A slow PIM run can have gain < 1 (PIM consumes more energy).
        assert!(m.energy_gain(1.0, 1.0, 2560) < 1.0);
    }
}
