//! A single DPU: configuration, memory tiers, atomic register and the shared
//! MRAM DMA port.

use serde::{Deserialize, Serialize};

use crate::atomic_reg::AtomicBitRegister;
use crate::latency::{Cycles, LatencyModel};
use crate::mem::{Addr, AllocError, Memory, Tier};

/// Static configuration of a simulated DPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpuConfig {
    /// WRAM capacity in 64-bit words (64 KB on UPMEM → 8192 words).
    pub wram_words: u32,
    /// MRAM capacity in 64-bit words (64 MB on UPMEM → 8 388 608 words).
    pub mram_words: u32,
    /// Maximum number of hardware threads (24 on UPMEM).
    pub max_tasklets: usize,
    /// Timing parameters.
    pub latency: LatencyModel,
}

impl Default for DpuConfig {
    fn default() -> Self {
        DpuConfig {
            wram_words: 64 * 1024 / 8,
            mram_words: 64 * 1024 * 1024 / 8,
            max_tasklets: 24,
            latency: LatencyModel::default(),
        }
    }
}

impl DpuConfig {
    /// A configuration with reduced MRAM capacity, handy for unit tests that
    /// do not want to allocate 64 MB per DPU.
    pub fn small() -> Self {
        DpuConfig { mram_words: 64 * 1024, ..Default::default() }
    }

    /// WRAM capacity in bytes.
    pub fn wram_bytes(&self) -> u64 {
        u64::from(self.wram_words) * 8
    }

    /// MRAM capacity in bytes.
    pub fn mram_bytes(&self) -> u64 {
        u64::from(self.mram_words) * 8
    }
}

/// The state of one simulated DPU.
///
/// A `Dpu` owns its memory tiers and the hardware atomic register. Tasklet
/// code never touches a `Dpu` directly while running; it goes through
/// [`crate::TaskletCtx`], which charges cycles. Direct (`peek`/`poke`) access
/// is provided for test setup and for the host side of the experiment
/// harness, mirroring how the real host CPU can access MRAM while the DPU is
/// idle.
#[derive(Debug, Clone)]
pub struct Dpu {
    config: DpuConfig,
    wram: Memory,
    mram: Memory,
    atomic: AtomicBitRegister,
    /// Virtual time at which the shared MRAM DMA port becomes free.
    mram_port_free_at: Cycles,
}

impl Dpu {
    /// Creates a DPU with zeroed memories.
    pub fn new(config: DpuConfig) -> Self {
        Dpu {
            config,
            wram: Memory::new(Tier::Wram, config.wram_words),
            mram: Memory::new(Tier::Mram, config.mram_words),
            atomic: AtomicBitRegister::new(),
            mram_port_free_at: 0,
        }
    }

    /// The DPU's static configuration.
    pub fn config(&self) -> &DpuConfig {
        &self.config
    }

    /// The latency model in use.
    pub fn latency(&self) -> &LatencyModel {
        &self.config.latency
    }

    /// Borrow of a memory tier.
    pub fn memory(&self, tier: Tier) -> &Memory {
        match tier {
            Tier::Wram => &self.wram,
            Tier::Mram => &self.mram,
        }
    }

    /// Mutable borrow of a memory tier.
    pub fn memory_mut(&mut self, tier: Tier) -> &mut Memory {
        match tier {
            Tier::Wram => &mut self.wram,
            Tier::Mram => &mut self.mram,
        }
    }

    /// Borrow of the hardware atomic bit register.
    pub fn atomic_register(&self) -> &AtomicBitRegister {
        &self.atomic
    }

    /// Mutable borrow of the hardware atomic bit register.
    pub fn atomic_register_mut(&mut self) -> &mut AtomicBitRegister {
        &mut self.atomic
    }

    /// Bump-allocates `words` consecutive zero-initialised words in `tier`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the tier does not have enough free words —
    /// exactly the capacity pressure the paper discusses when deciding where
    /// to place STM metadata.
    pub fn alloc(&mut self, tier: Tier, words: u32) -> Result<Addr, AllocError> {
        let base = self.memory_mut(tier).alloc(words)?;
        Ok(Addr { tier, word: base })
    }

    /// Alias of [`Dpu::alloc`]; memory handed out by the bump allocator is
    /// always zeroed.
    pub fn alloc_zeroed(&mut self, tier: Tier, words: u32) -> Result<Addr, AllocError> {
        self.alloc(tier, words)
    }

    /// Reads a word without charging cycles (host-style access).
    pub fn peek(&self, addr: Addr) -> u64 {
        self.memory(addr.tier).read(addr.word)
    }

    /// Writes a word without charging cycles (host-style access).
    pub fn poke(&mut self, addr: Addr, value: u64) {
        self.memory_mut(addr.tier).write(addr.word, value);
    }

    /// Reads `words` consecutive words starting at `addr` without charging
    /// cycles.
    pub fn peek_block(&self, addr: Addr, words: u32) -> Vec<u64> {
        (0..words).map(|i| self.peek(addr.offset(i))).collect()
    }

    /// Writes a block of words starting at `addr` without charging cycles.
    pub fn poke_block(&mut self, addr: Addr, values: &[u64]) {
        for (i, &v) in values.iter().enumerate() {
            self.poke(addr.offset(i as u32), v);
        }
    }

    /// Virtual time at which the MRAM DMA port is next free.
    pub fn mram_port_free_at(&self) -> Cycles {
        self.mram_port_free_at
    }

    /// Updates the MRAM-port availability time (used by [`crate::TaskletCtx`]).
    pub fn set_mram_port_free_at(&mut self, cycles: Cycles) {
        self.mram_port_free_at = cycles;
    }

    /// Clears memories, allocators, the atomic register and the DMA port
    /// clock, keeping the configuration.
    pub fn reset(&mut self) {
        self.wram.reset();
        self.mram.reset();
        self.atomic.reset();
        self.mram_port_free_at = 0;
    }

    /// Free words remaining in `tier` (after bump allocations).
    pub fn free_words(&self, tier: Tier) -> u32 {
        self.memory(tier).free_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_upmem_capacities() {
        let c = DpuConfig::default();
        assert_eq!(c.wram_bytes(), 64 * 1024);
        assert_eq!(c.mram_bytes(), 64 * 1024 * 1024);
        assert_eq!(c.max_tasklets, 24);
    }

    #[test]
    fn alloc_respects_tier_capacity() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let a = dpu.alloc(Tier::Wram, 10).unwrap();
        assert_eq!(a.tier, Tier::Wram);
        // WRAM is only 8192 words; a 1 M-word allocation must fail.
        assert!(dpu.alloc(Tier::Wram, 1_000_000).is_err());
        // MRAM in the small config is 64 K words.
        assert!(dpu.alloc(Tier::Mram, 64 * 1024).is_ok());
        assert!(dpu.alloc(Tier::Mram, 1).is_err());
    }

    #[test]
    fn peek_poke_roundtrip_and_blocks() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let base = dpu.alloc(Tier::Mram, 4).unwrap();
        dpu.poke_block(base, &[1, 2, 3, 4]);
        assert_eq!(dpu.peek_block(base, 4), vec![1, 2, 3, 4]);
        dpu.poke(base.offset(2), 99);
        assert_eq!(dpu.peek(base.offset(2)), 99);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let a = dpu.alloc(Tier::Wram, 8).unwrap();
        dpu.poke(a, 42);
        dpu.set_mram_port_free_at(1000);
        dpu.atomic_register_mut().try_acquire(5, 0);
        dpu.reset();
        assert_eq!(dpu.peek(Addr::wram(0)), 0);
        assert_eq!(dpu.mram_port_free_at(), 0);
        assert_eq!(dpu.atomic_register().held_count(), 0);
        assert_eq!(dpu.free_words(Tier::Wram), dpu.config().wram_words);
    }
}
