//! Configuration of the STM library: which algorithm to use, where to place
//! its metadata, and how large the per-tasklet transaction logs are.
//!
//! The original C library selects the algorithm and metadata placement with
//! compile-time macros; the idiomatic Rust equivalent used here is a runtime
//! [`StmConfig`], which additionally lets a single experiment binary sweep
//! the whole design space.

use serde::{Deserialize, Serialize};
use std::fmt;

use pim_sim::Tier;

/// Where STM metadata (lock table, sequence lock, global clock, per-tasklet
/// read/write sets) is allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetadataPlacement {
    /// Fast 64 KB scratchpad — low latency but steals capacity from the
    /// application.
    Wram,
    /// 64 MB DRAM bank — plentiful but every metadata access pays DMA
    /// latency.
    Mram,
}

impl MetadataPlacement {
    /// Both placements, for sweeps.
    pub const ALL: [MetadataPlacement; 2] = [MetadataPlacement::Wram, MetadataPlacement::Mram];

    /// The memory tier this placement corresponds to.
    pub fn tier(self) -> Tier {
        match self {
            MetadataPlacement::Wram => Tier::Wram,
            MetadataPlacement::Mram => Tier::Mram,
        }
    }

    /// Short lowercase name used by the CLI.
    pub fn name(self) -> &'static str {
        match self {
            MetadataPlacement::Wram => "wram",
            MetadataPlacement::Mram => "mram",
        }
    }
}

impl fmt::Display for MetadataPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Conflict-detection metadata granularity (the top level of the paper's
/// taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetadataGranularity {
    /// Per-location ownership records (a hashed lock table).
    Orec,
    /// A single global sequence lock (the NOrec design).
    NoOrec,
}

/// Whether transactional reads are observable by other transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReadVisibility {
    /// Reads leave no trace; correctness relies on (re)validation.
    Invisible,
    /// Reads acquire a read-write lock in read mode.
    Visible,
}

/// When write locks are acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LockTiming {
    /// Encounter-time locking: at the first write to a location.
    Encounter,
    /// Commit-time locking: all locks are acquired during commit.
    Commit,
}

/// When written values become visible in shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WritePolicy {
    /// Writes are buffered in a redo log and applied at commit.
    WriteBack,
    /// Writes go straight to memory; an undo log restores old values on
    /// abort.
    WriteThrough,
}

/// How commit-time write-back publishes the redo log to memory.
///
/// Every write-back design ends its commit by copying the redo log into data
/// memory. Doing that word by word pays one MRAM DMA setup per word;
/// coalescing first sorts the log by address (cheap WRAM/pipeline work) and
/// then issues one [`crate::Platform::store_block`] burst per maximal run of
/// consecutive addresses, amortising the setup the way SimplePIM-style bulk
/// transfers do. Both strategies produce byte-identical memory contents —
/// the log holds at most one entry per address and every lock protecting the
/// written range is held for the duration of the publish.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WriteBackStrategy {
    /// One store per redo-log entry, in log order (the original PIM-STM
    /// behaviour; kept as the comparison baseline).
    WordWise,
    /// Sort the staged log by address and publish each contiguous run as one
    /// DMA burst.
    #[default]
    Coalesced,
}

impl WriteBackStrategy {
    /// Both strategies, for sweeps and A/B tests.
    pub const ALL: [WriteBackStrategy; 2] =
        [WriteBackStrategy::WordWise, WriteBackStrategy::Coalesced];

    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            WriteBackStrategy::WordWise => "word-wise",
            WriteBackStrategy::Coalesced => "coalesced",
        }
    }
}

impl fmt::Display for WriteBackStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How transactional record reads ([`crate::TmAlgorithm::read_record`])
/// move their data.
///
/// The metadata protocol is identical under both strategies — every word's
/// ownership record / lock / sequence-lock check still runs — the knob only
/// selects whether the *data* crosses the MRAM port word by word (one DMA
/// setup per word) or as one [`crate::Platform::load_block`] burst per
/// contiguous run (one setup per run, bounded by
/// [`StmConfig::max_burst_words`]). See [`crate::access`] for the soundness
/// argument and the per-design fallback rules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReadStrategy {
    /// One data access per record word, in record order (the original
    /// PIM-STM behaviour; kept as the comparison baseline).
    WordWise,
    /// Burst-load each contiguous run of record words, then run the
    /// per-word metadata checks against the staged words, falling back to
    /// the word-wise path for words whose metadata moved under the burst.
    #[default]
    Batched,
}

impl ReadStrategy {
    /// Both strategies, for sweeps and A/B tests.
    pub const ALL: [ReadStrategy; 2] = [ReadStrategy::WordWise, ReadStrategy::Batched];

    /// Short lowercase name used in reports and by the CLI.
    pub fn name(self) -> &'static str {
        match self {
            ReadStrategy::WordWise => "word-wise",
            ReadStrategy::Batched => "batched",
        }
    }

    /// Parses the CLI form (`word-wise`/`wordwise` or `batched`).
    pub fn parse(name: &str) -> Option<ReadStrategy> {
        let canon: String =
            name.to_ascii_lowercase().chars().filter(|c| c.is_ascii_alphanumeric()).collect();
        match canon.as_str() {
            "wordwise" => Some(ReadStrategy::WordWise),
            "batched" => Some(ReadStrategy::Batched),
            _ => None,
        }
    }
}

impl fmt::Display for ReadStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The seven viable STM designs of the paper's taxonomy (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StmKind {
    /// NOrec: global sequence lock, invisible reads, commit-time locking,
    /// write-back, value-based validation.
    Norec,
    /// Tiny (TinySTM-like) with commit-time locking and write-back.
    TinyCtlWb,
    /// Tiny with encounter-time locking and write-back.
    TinyEtlWb,
    /// Tiny with encounter-time locking and write-through.
    TinyEtlWt,
    /// Visible reads with commit-time locking and write-back.
    VrCtlWb,
    /// Visible reads with encounter-time locking and write-back.
    VrEtlWb,
    /// Visible reads with encounter-time locking and write-through.
    VrEtlWt,
}

impl StmKind {
    /// All seven designs in the order used by the paper's plots.
    pub const ALL: [StmKind; 7] = [
        StmKind::TinyCtlWb,
        StmKind::TinyEtlWb,
        StmKind::TinyEtlWt,
        StmKind::Norec,
        StmKind::VrEtlWt,
        StmKind::VrEtlWb,
        StmKind::VrCtlWb,
    ];

    /// The display name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            StmKind::Norec => "NOrec",
            StmKind::TinyCtlWb => "Tiny CTLWB",
            StmKind::TinyEtlWb => "Tiny ETLWB",
            StmKind::TinyEtlWt => "Tiny ETLWT",
            StmKind::VrCtlWb => "VR CTLWB",
            StmKind::VrEtlWb => "VR ETLWB",
            StmKind::VrEtlWt => "VR ETLWT",
        }
    }

    /// Parses the CLI form of a kind name (case-insensitive, `-`/`_`/space
    /// separators accepted), e.g. `norec`, `tiny-etlwb`, `vr_ctlwb`.
    pub fn parse(name: &str) -> Option<StmKind> {
        let canon: String =
            name.to_ascii_lowercase().chars().filter(|c| c.is_ascii_alphanumeric()).collect();
        match canon.as_str() {
            "norec" => Some(StmKind::Norec),
            "tinyctlwb" => Some(StmKind::TinyCtlWb),
            "tinyetlwb" => Some(StmKind::TinyEtlWb),
            "tinyetlwt" => Some(StmKind::TinyEtlWt),
            "vrctlwb" => Some(StmKind::VrCtlWb),
            "vretlwb" => Some(StmKind::VrEtlWb),
            "vretlwt" => Some(StmKind::VrEtlWt),
            _ => None,
        }
    }

    /// Position of this design in the metadata-granularity dimension.
    pub fn granularity(self) -> MetadataGranularity {
        match self {
            StmKind::Norec => MetadataGranularity::NoOrec,
            _ => MetadataGranularity::Orec,
        }
    }

    /// Position of this design in the read-visibility dimension.
    pub fn read_visibility(self) -> ReadVisibility {
        match self {
            StmKind::VrCtlWb | StmKind::VrEtlWb | StmKind::VrEtlWt => ReadVisibility::Visible,
            _ => ReadVisibility::Invisible,
        }
    }

    /// Position of this design in the lock-timing dimension.
    pub fn lock_timing(self) -> LockTiming {
        match self {
            StmKind::Norec | StmKind::TinyCtlWb | StmKind::VrCtlWb => LockTiming::Commit,
            _ => LockTiming::Encounter,
        }
    }

    /// Position of this design in the write-policy dimension.
    pub fn write_policy(self) -> WritePolicy {
        match self {
            StmKind::TinyEtlWt | StmKind::VrEtlWt => WritePolicy::WriteThrough,
            _ => WritePolicy::WriteBack,
        }
    }

    /// Whether this design needs a hashed lock table (all ORec designs do).
    pub fn uses_lock_table(self) -> bool {
        self.granularity() == MetadataGranularity::Orec
    }
}

impl fmt::Display for StmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Complete configuration of an STM instance on one DPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StmConfig {
    /// Which STM design to use.
    pub kind: StmKind,
    /// Tier in which STM metadata is allocated.
    pub placement: MetadataPlacement,
    /// Override for the lock table only (the paper's ArrayBench-A/WRAM runs
    /// keep the lock table in MRAM because it does not fit in WRAM).
    pub lock_table_placement: Option<MetadataPlacement>,
    /// Number of entries in the hashed ORec/rw-lock table.
    pub lock_table_entries: u32,
    /// Per-tasklet read-set capacity, in entries.
    pub read_set_capacity: u32,
    /// Per-tasklet write/undo-log capacity, in entries.
    pub write_set_capacity: u32,
    /// How write-back commits publish their redo log.
    pub write_back: WriteBackStrategy,
    /// How record reads move their data (see [`ReadStrategy`]).
    pub read_strategy: ReadStrategy,
    /// Longest run a coalesced write-back — or a batched record read —
    /// moves as a single DMA burst, in words: the size of the staging
    /// buffer a tasklet reserves in WRAM (the hardware also caps one DMA
    /// transfer at 2 KB = 256 words). Longer runs are split, never dropped.
    pub max_burst_words: u32,
}

/// Default coalesced-write-back burst cap, in words (a 512-byte WRAM staging
/// buffer, comfortably under the hardware's 2 KB DMA transfer limit).
pub const DEFAULT_BURST_WORDS: u32 = 64;

/// Largest burst one MRAM DMA transfer can carry: the UPMEM hardware caps a
/// transfer at 2 KB = 256 words. Configuring a larger staging buffer would
/// make the model count single setups for physically impossible transfers.
pub const HARDWARE_MAX_BURST_WORDS: u32 = 256;

impl StmConfig {
    /// Creates a configuration with the library defaults (1024-entry lock
    /// table, 256-entry read set, 64-entry write set, 64-word burst cap).
    pub fn new(kind: StmKind, placement: MetadataPlacement) -> Self {
        StmConfig {
            kind,
            placement,
            lock_table_placement: None,
            lock_table_entries: 1024,
            read_set_capacity: 256,
            write_set_capacity: 64,
            write_back: WriteBackStrategy::default(),
            read_strategy: ReadStrategy::default(),
            max_burst_words: DEFAULT_BURST_WORDS,
        }
    }

    /// A small WRAM-resident configuration shared by the unit-test suites:
    /// capacities large enough for every micro-scenario, small enough that a
    /// fixture DPU allocates instantly.
    pub fn small_wram(kind: StmKind) -> Self {
        StmConfig::new(kind, MetadataPlacement::Wram)
            .with_lock_table_entries(128)
            .with_read_set_capacity(64)
            .with_write_set_capacity(32)
    }

    /// Selects how write-back commits publish their redo log (the default is
    /// [`WriteBackStrategy::Coalesced`]).
    pub fn with_write_back(mut self, strategy: WriteBackStrategy) -> Self {
        self.write_back = strategy;
        self
    }

    /// Selects how record reads move their data (the default is
    /// [`ReadStrategy::Batched`]).
    pub fn with_read_strategy(mut self, strategy: ReadStrategy) -> Self {
        self.read_strategy = strategy;
        self
    }

    /// Caps the write-back and batched-read burst length (WRAM
    /// staging-buffer pressure; see [`StmConfig::max_burst_words`]).
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero (a burst must carry at least one word) or
    /// exceeds [`HARDWARE_MAX_BURST_WORDS`] (one DMA transfer cannot move
    /// more than 2 KB, so a larger cap would undercount DMA setups).
    pub fn with_max_burst_words(mut self, words: u32) -> Self {
        assert!(words > 0, "the write-back burst cap must be at least one word");
        assert!(
            words <= HARDWARE_MAX_BURST_WORDS,
            "the write-back burst cap must not exceed the hardware DMA transfer \
             limit of {HARDWARE_MAX_BURST_WORDS} words"
        );
        self.max_burst_words = words;
        self
    }

    /// Sets the per-tasklet read-set capacity.
    pub fn with_read_set_capacity(mut self, entries: u32) -> Self {
        self.read_set_capacity = entries;
        self
    }

    /// Sets the per-tasklet write/undo-log capacity.
    pub fn with_write_set_capacity(mut self, entries: u32) -> Self {
        self.write_set_capacity = entries;
        self
    }

    /// Sets the lock-table size (ignored by NOrec).
    pub fn with_lock_table_entries(mut self, entries: u32) -> Self {
        self.lock_table_entries = entries;
        self
    }

    /// Places the lock table in a different tier than the rest of the
    /// metadata.
    pub fn with_lock_table_placement(mut self, placement: MetadataPlacement) -> Self {
        self.lock_table_placement = Some(placement);
        self
    }

    /// Tier in which the lock table will be allocated.
    pub fn lock_table_tier(&self) -> Tier {
        self.lock_table_placement.unwrap_or(self.placement).tier()
    }

    /// Tier in which everything except the lock table will be allocated.
    pub fn metadata_tier(&self) -> Tier {
        self.placement.tier()
    }

    /// Words of metadata needed per tasklet (read set + write set), useful
    /// for checking WRAM capacity before allocating.
    pub fn per_tasklet_metadata_words(&self) -> u32 {
        self.read_set_capacity * crate::txslot::READ_ENTRY_WORDS
            + self.write_set_capacity * crate::txslot::WRITE_ENTRY_WORDS
    }

    /// Words of shared metadata (lock table and global words).
    pub fn shared_metadata_words(&self) -> u32 {
        let table = if self.kind.uses_lock_table() { self.lock_table_entries } else { 0 };
        table + 2 // sequence lock / global clock words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_covers_exactly_the_papers_seven_designs() {
        assert_eq!(StmKind::ALL.len(), 7);
        // NOrec is the only NoOrec design and must be CTL + WB + invisible,
        // since the other combinations are struck out in Fig. 2.
        for kind in StmKind::ALL {
            if kind.granularity() == MetadataGranularity::NoOrec {
                assert_eq!(kind, StmKind::Norec);
                assert_eq!(kind.lock_timing(), LockTiming::Commit);
                assert_eq!(kind.write_policy(), WritePolicy::WriteBack);
                assert_eq!(kind.read_visibility(), ReadVisibility::Invisible);
            }
            // Write-through is only viable with encounter-time locking.
            if kind.write_policy() == WritePolicy::WriteThrough {
                assert_eq!(kind.lock_timing(), LockTiming::Encounter);
            }
        }
    }

    #[test]
    fn names_roundtrip_through_parse() {
        for kind in StmKind::ALL {
            assert_eq!(StmKind::parse(kind.name()), Some(kind), "parse({})", kind.name());
        }
        assert_eq!(StmKind::parse("tiny_etlwb"), Some(StmKind::TinyEtlWb));
        assert_eq!(StmKind::parse("VR-CTLWB"), Some(StmKind::VrCtlWb));
        assert_eq!(StmKind::parse("bogus"), None);
    }

    #[test]
    fn placement_maps_to_tiers() {
        assert_eq!(MetadataPlacement::Wram.tier(), Tier::Wram);
        assert_eq!(MetadataPlacement::Mram.tier(), Tier::Mram);
        assert_eq!(MetadataPlacement::Wram.to_string(), "wram");
    }

    #[test]
    fn burst_cap_defaults_and_overrides() {
        let cfg = StmConfig::new(StmKind::Norec, MetadataPlacement::Wram);
        assert_eq!(cfg.max_burst_words, DEFAULT_BURST_WORDS);
        assert_eq!(cfg.with_max_burst_words(8).max_burst_words, 8);
    }

    #[test]
    fn read_strategy_defaults_to_batched_and_roundtrips_through_parse() {
        let cfg = StmConfig::new(StmKind::Norec, MetadataPlacement::Wram);
        assert_eq!(cfg.read_strategy, ReadStrategy::Batched);
        assert_eq!(
            cfg.with_read_strategy(ReadStrategy::WordWise).read_strategy,
            ReadStrategy::WordWise
        );
        for strategy in ReadStrategy::ALL {
            assert_eq!(ReadStrategy::parse(strategy.name()), Some(strategy));
        }
        assert_eq!(ReadStrategy::parse("WORD_WISE"), Some(ReadStrategy::WordWise));
        assert_eq!(ReadStrategy::parse("bogus"), None);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_burst_cap_is_rejected() {
        let _ = StmConfig::new(StmKind::Norec, MetadataPlacement::Wram).with_max_burst_words(0);
    }

    #[test]
    #[should_panic(expected = "hardware DMA transfer")]
    fn burst_caps_beyond_the_hardware_transfer_limit_are_rejected() {
        let _ = StmConfig::new(StmKind::Norec, MetadataPlacement::Wram)
            .with_max_burst_words(HARDWARE_MAX_BURST_WORDS + 1);
    }

    #[test]
    fn small_wram_is_wram_resident_with_reduced_capacities() {
        let cfg = StmConfig::small_wram(StmKind::TinyEtlWb);
        assert_eq!(cfg.metadata_tier(), Tier::Wram);
        assert!(cfg.read_set_capacity < StmConfig::new(cfg.kind, cfg.placement).read_set_capacity);
        assert!(cfg.per_tasklet_metadata_words() * 24 < 64 * 1024 / 8, "24 tasklets fit in WRAM");
    }

    #[test]
    fn lock_table_placement_override() {
        let cfg = StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Wram)
            .with_lock_table_placement(MetadataPlacement::Mram);
        assert_eq!(cfg.metadata_tier(), Tier::Wram);
        assert_eq!(cfg.lock_table_tier(), Tier::Mram);
        let plain = StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Wram);
        assert_eq!(plain.lock_table_tier(), Tier::Wram);
    }

    #[test]
    fn metadata_word_counts_reflect_capacities() {
        let cfg = StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Wram)
            .with_read_set_capacity(10)
            .with_write_set_capacity(5)
            .with_lock_table_entries(128);
        assert_eq!(
            cfg.per_tasklet_metadata_words(),
            10 * crate::txslot::READ_ENTRY_WORDS + 5 * crate::txslot::WRITE_ENTRY_WORDS
        );
        assert_eq!(cfg.shared_metadata_words(), 130);
        let norec = StmConfig::new(StmKind::Norec, MetadataPlacement::Wram);
        assert_eq!(norec.shared_metadata_words(), 2);
    }

    #[test]
    fn only_vr_designs_use_visible_reads() {
        let visible: Vec<_> = StmKind::ALL
            .into_iter()
            .filter(|k| k.read_visibility() == ReadVisibility::Visible)
            .collect();
        assert_eq!(visible, vec![StmKind::VrEtlWt, StmKind::VrEtlWb, StmKind::VrCtlWb]);
    }
}
