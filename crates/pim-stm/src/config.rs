//! Configuration of the STM library: which algorithm to use, where to place
//! its metadata, and how large the per-tasklet transaction logs are.
//!
//! The original C library selects the algorithm and metadata placement with
//! compile-time macros; the idiomatic Rust equivalent used here is a runtime
//! [`StmConfig`], which additionally lets a single experiment binary sweep
//! the whole design space.

use serde::{Deserialize, Serialize};
use std::fmt;

use pim_sim::Tier;

/// Where STM metadata (lock table, sequence lock, global clock, per-tasklet
/// read/write sets) is allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetadataPlacement {
    /// Fast 64 KB scratchpad — low latency but steals capacity from the
    /// application.
    Wram,
    /// 64 MB DRAM bank — plentiful but every metadata access pays DMA
    /// latency.
    Mram,
}

impl MetadataPlacement {
    /// Both placements, for sweeps.
    pub const ALL: [MetadataPlacement; 2] = [MetadataPlacement::Wram, MetadataPlacement::Mram];

    /// The memory tier this placement corresponds to.
    pub fn tier(self) -> Tier {
        match self {
            MetadataPlacement::Wram => Tier::Wram,
            MetadataPlacement::Mram => Tier::Mram,
        }
    }

    /// Short lowercase name used by the CLI.
    pub fn name(self) -> &'static str {
        match self {
            MetadataPlacement::Wram => "wram",
            MetadataPlacement::Mram => "mram",
        }
    }
}

impl fmt::Display for MetadataPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Conflict-detection metadata granularity (the top level of the paper's
/// taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetadataGranularity {
    /// Per-location ownership records (a hashed lock table).
    Orec,
    /// A single global sequence lock (the NOrec design).
    NoOrec,
}

/// Whether transactional reads are observable by other transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReadVisibility {
    /// Reads leave no trace; correctness relies on (re)validation.
    Invisible,
    /// Reads acquire a read-write lock in read mode.
    Visible,
}

/// The read-protocol axis of the policy grid: how a transaction observes
/// memory and how that observation is kept consistent. Each variant names
/// one [`crate::policy::ReadPolicy`] implementation.
///
/// This axis folds the paper's *metadata granularity* and *read visibility*
/// dimensions into one: the choice of read protocol dictates both (per-word
/// ORecs with invisible reads, per-word rw-locks with visible reads, or a
/// single global sequence lock with value-based validation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ReadPolicyKind {
    /// Invisible reads against per-word ownership records with a global
    /// version clock and snapshot extension (the Tiny family's protocol).
    Orec,
    /// Visible reads: every read acquires the covering read-write lock in
    /// read mode (the VR family's protocol).
    VisibleLocks,
    /// No per-word metadata at all: a single global sequence lock brackets
    /// commits and reads re-validate *by value* (NOrec's protocol).
    ValueValidation,
}

impl ReadPolicyKind {
    /// All read policies, in grid order.
    pub const ALL: [ReadPolicyKind; 3] =
        [ReadPolicyKind::Orec, ReadPolicyKind::VisibleLocks, ReadPolicyKind::ValueValidation];

    /// Short grid name (`orec` / `vr` / `norec`).
    pub fn name(self) -> &'static str {
        match self {
            ReadPolicyKind::Orec => "orec",
            ReadPolicyKind::VisibleLocks => "vr",
            ReadPolicyKind::ValueValidation => "norec",
        }
    }

    /// The metadata granularity this read protocol implies.
    pub fn granularity(self) -> MetadataGranularity {
        match self {
            ReadPolicyKind::ValueValidation => MetadataGranularity::NoOrec,
            _ => MetadataGranularity::Orec,
        }
    }

    /// The read visibility this read protocol implies.
    pub fn visibility(self) -> ReadVisibility {
        match self {
            ReadPolicyKind::VisibleLocks => ReadVisibility::Visible,
            _ => ReadVisibility::Invisible,
        }
    }
}

impl fmt::Display for ReadPolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// When write locks are acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LockTiming {
    /// Encounter-time locking: at the first write to a location.
    Encounter,
    /// Commit-time locking: all locks are acquired during commit.
    Commit,
}

/// When written values become visible in shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WritePolicy {
    /// Writes are buffered in a redo log and applied at commit.
    WriteBack,
    /// Writes go straight to memory; an undo log restores old values on
    /// abort.
    WriteThrough,
}

/// The retry axis of the policy grid: how a tasklet waits between an
/// aborted attempt and its retry. Unlike the read/lock/write axes this one
/// is *orthogonal to correctness* — every policy composes with every design
/// — so it is carried on [`StmConfig`] rather than baked into the engine.
///
/// The wait itself is charged through [`crate::Platform::spin_wait`], so it
/// shows up as back-off time in [`crate::ExecProfile`] on both executors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RetryPolicy {
    /// A constant-size wait window with per-tasklet jitter: cheap and
    /// predictable, but livelock-prone under sustained symmetric contention
    /// (the jitter is the only thing breaking duels).
    Fixed,
    /// Bounded randomised exponential back-off — the window doubles with
    /// every consecutive abort up to a saturation cap. This is the
    /// pre-policy-grid behaviour and the default.
    #[default]
    Exponential,
    /// Histogram-adaptive back-off: the saturation cap is tuned from the
    /// tasklet's own per-[`crate::AbortReason`] abort counts. Lock-shaped
    /// conflicts (a holder must drain) keep the full exponential window;
    /// validation failures (the conflicting commit has already finished)
    /// cap the window low so the tasklet retries promptly.
    Adaptive,
}

impl RetryPolicy {
    /// All retry policies, for sweeps.
    pub const ALL: [RetryPolicy; 3] =
        [RetryPolicy::Fixed, RetryPolicy::Exponential, RetryPolicy::Adaptive];

    /// Short lowercase name used by the CLI and in reports.
    pub fn name(self) -> &'static str {
        match self {
            RetryPolicy::Fixed => "fixed",
            RetryPolicy::Exponential => "exponential",
            RetryPolicy::Adaptive => "adaptive",
        }
    }

    /// Parses the CLI form (`fixed`, `exp`/`exponential`, `adaptive`).
    pub fn parse(name: &str) -> Option<RetryPolicy> {
        let canon: String =
            name.to_ascii_lowercase().chars().filter(|c| c.is_ascii_alphanumeric()).collect();
        match canon.as_str() {
            "fixed" => Some(RetryPolicy::Fixed),
            "exp" | "exponential" => Some(RetryPolicy::Exponential),
            "adaptive" => Some(RetryPolicy::Adaptive),
            _ => None,
        }
    }
}

impl fmt::Display for RetryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// In which order a multi-word [`crate::TmAlgorithm::write_record`] acquires
/// the ownership records covering the record (encounter-time-locking
/// compositions only; commit-time locking buffers unlocked and NOrec has no
/// per-word locks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LockOrder {
    /// One full per-word write per record word, in record order — locks are
    /// acquired interleaved with undo/redo logging and (for write-through)
    /// data stores, exactly like issuing the writes one by one. Kept as the
    /// comparison baseline.
    RecordOrder,
    /// Acquire every covering ORec **first**, sorted by lock-table address
    /// and deduplicated, then log and store the data. The global acquisition
    /// order turns symmetric lock-order duels (each transaction holding what
    /// the other wants, both aborting) into single losers, and the
    /// back-to-back acquisitions shrink the window in which a transaction
    /// holds a partial lock set.
    #[default]
    AddressSorted,
}

impl LockOrder {
    /// Both orders, for A/B tests.
    pub const ALL: [LockOrder; 2] = [LockOrder::RecordOrder, LockOrder::AddressSorted];

    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            LockOrder::RecordOrder => "record-order",
            LockOrder::AddressSorted => "address-sorted",
        }
    }
}

impl fmt::Display for LockOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How commit-time write-back publishes the redo log to memory.
///
/// Every write-back design ends its commit by copying the redo log into data
/// memory. Doing that word by word pays one MRAM DMA setup per word;
/// coalescing first sorts the log by address (cheap WRAM/pipeline work) and
/// then issues one [`crate::Platform::store_block`] burst per maximal run of
/// consecutive addresses, amortising the setup the way SimplePIM-style bulk
/// transfers do. Both strategies produce byte-identical memory contents —
/// the log holds at most one entry per address and every lock protecting the
/// written range is held for the duration of the publish.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WriteBackStrategy {
    /// One store per redo-log entry, in log order (the original PIM-STM
    /// behaviour; kept as the comparison baseline).
    WordWise,
    /// Sort the staged log by address and publish each contiguous run as one
    /// DMA burst.
    #[default]
    Coalesced,
}

impl WriteBackStrategy {
    /// Both strategies, for sweeps and A/B tests.
    pub const ALL: [WriteBackStrategy; 2] =
        [WriteBackStrategy::WordWise, WriteBackStrategy::Coalesced];

    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            WriteBackStrategy::WordWise => "word-wise",
            WriteBackStrategy::Coalesced => "coalesced",
        }
    }
}

impl fmt::Display for WriteBackStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How transactional record reads ([`crate::TmAlgorithm::read_record`])
/// move their data.
///
/// The metadata protocol is identical under both strategies — every word's
/// ownership record / lock / sequence-lock check still runs — the knob only
/// selects whether the *data* crosses the MRAM port word by word (one DMA
/// setup per word) or as one [`crate::Platform::load_block`] burst per
/// contiguous run (one setup per run, bounded by
/// [`StmConfig::max_burst_words`]). See [`crate::access`] for the soundness
/// argument and the per-design fallback rules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReadStrategy {
    /// One data access per record word, in record order (the original
    /// PIM-STM behaviour; kept as the comparison baseline).
    WordWise,
    /// Burst-load each contiguous run of record words, then run the
    /// per-word metadata checks against the staged words, falling back to
    /// the word-wise path for words whose metadata moved under the burst.
    #[default]
    Batched,
}

impl ReadStrategy {
    /// Both strategies, for sweeps and A/B tests.
    pub const ALL: [ReadStrategy; 2] = [ReadStrategy::WordWise, ReadStrategy::Batched];

    /// Short lowercase name used in reports and by the CLI.
    pub fn name(self) -> &'static str {
        match self {
            ReadStrategy::WordWise => "word-wise",
            ReadStrategy::Batched => "batched",
        }
    }

    /// Parses the CLI form (`word-wise`/`wordwise` or `batched`).
    pub fn parse(name: &str) -> Option<ReadStrategy> {
        let canon: String =
            name.to_ascii_lowercase().chars().filter(|c| c.is_ascii_alphanumeric()).collect();
        match canon.as_str() {
            "wordwise" => Some(ReadStrategy::WordWise),
            "batched" => Some(ReadStrategy::Batched),
            _ => None,
        }
    }
}

impl fmt::Display for ReadStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The seven viable STM designs of the paper's taxonomy (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StmKind {
    /// NOrec: global sequence lock, invisible reads, commit-time locking,
    /// write-back, value-based validation.
    Norec,
    /// Tiny (TinySTM-like) with commit-time locking and write-back.
    TinyCtlWb,
    /// Tiny with encounter-time locking and write-back.
    TinyEtlWb,
    /// Tiny with encounter-time locking and write-through.
    TinyEtlWt,
    /// Visible reads with commit-time locking and write-back.
    VrCtlWb,
    /// Visible reads with encounter-time locking and write-back.
    VrEtlWb,
    /// Visible reads with encounter-time locking and write-through.
    VrEtlWt,
}

impl StmKind {
    /// All seven designs in the order used by the paper's plots.
    pub const ALL: [StmKind; 7] = [
        StmKind::TinyCtlWb,
        StmKind::TinyEtlWb,
        StmKind::TinyEtlWt,
        StmKind::Norec,
        StmKind::VrEtlWt,
        StmKind::VrEtlWb,
        StmKind::VrCtlWb,
    ];

    /// The display name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            StmKind::Norec => "NOrec",
            StmKind::TinyCtlWb => "Tiny CTLWB",
            StmKind::TinyEtlWb => "Tiny ETLWB",
            StmKind::TinyEtlWt => "Tiny ETLWT",
            StmKind::VrCtlWb => "VR CTLWB",
            StmKind::VrEtlWb => "VR ETLWB",
            StmKind::VrEtlWt => "VR ETLWT",
        }
    }

    /// Parses the CLI form of a kind name (case-insensitive, `-`/`_`/space
    /// separators accepted): either a legacy name (`norec`, `tiny-etlwb`,
    /// `vr_ctlwb`) or a grid name composing the policy axes
    /// (`orec-etl-wb`, `vr-ctl-wb`, `norec-ctl-wb` — see
    /// [`StmKind::grid_name`]).
    pub fn parse(name: &str) -> Option<StmKind> {
        let canon: String =
            name.to_ascii_lowercase().chars().filter(|c| c.is_ascii_alphanumeric()).collect();
        let legacy = match canon.as_str() {
            "norec" => Some(StmKind::Norec),
            "tinyctlwb" => Some(StmKind::TinyCtlWb),
            "tinyetlwb" => Some(StmKind::TinyEtlWb),
            "tinyetlwt" => Some(StmKind::TinyEtlWt),
            "vrctlwb" => Some(StmKind::VrCtlWb),
            "vretlwb" => Some(StmKind::VrEtlWb),
            "vretlwt" => Some(StmKind::VrEtlWt),
            _ => None,
        };
        legacy.or_else(|| TmComposition::parse(name).and_then(TmComposition::kind))
    }

    /// The grid-style name of this design's policy composition:
    /// `<read>-<timing>-<write>` over the axes of [`TmComposition`].
    pub fn grid_name(self) -> &'static str {
        match self {
            StmKind::Norec => "norec-ctl-wb",
            StmKind::TinyCtlWb => "orec-ctl-wb",
            StmKind::TinyEtlWb => "orec-etl-wb",
            StmKind::TinyEtlWt => "orec-etl-wt",
            StmKind::VrCtlWb => "vr-ctl-wb",
            StmKind::VrEtlWb => "vr-etl-wb",
            StmKind::VrEtlWt => "vr-etl-wt",
        }
    }

    /// The policy composition this legacy kind resolves to. Every kind maps
    /// onto exactly one coherent cell of the read × lock × write grid; the
    /// actual engine ([`crate::policy::ComposedTm`]) is instantiated from
    /// these axes, so this mapping *is* the design's definition.
    pub fn composition(self) -> TmComposition {
        TmComposition {
            read: self.read_policy(),
            timing: self.lock_timing(),
            write: self.write_policy(),
        }
    }

    /// Position of this design on the read-protocol axis.
    pub fn read_policy(self) -> ReadPolicyKind {
        match self {
            StmKind::Norec => ReadPolicyKind::ValueValidation,
            StmKind::TinyCtlWb | StmKind::TinyEtlWb | StmKind::TinyEtlWt => ReadPolicyKind::Orec,
            StmKind::VrCtlWb | StmKind::VrEtlWb | StmKind::VrEtlWt => ReadPolicyKind::VisibleLocks,
        }
    }

    /// Position of this design in the metadata-granularity dimension.
    pub fn granularity(self) -> MetadataGranularity {
        match self {
            StmKind::Norec => MetadataGranularity::NoOrec,
            _ => MetadataGranularity::Orec,
        }
    }

    /// Position of this design in the read-visibility dimension.
    pub fn read_visibility(self) -> ReadVisibility {
        match self {
            StmKind::VrCtlWb | StmKind::VrEtlWb | StmKind::VrEtlWt => ReadVisibility::Visible,
            _ => ReadVisibility::Invisible,
        }
    }

    /// Position of this design in the lock-timing dimension.
    pub fn lock_timing(self) -> LockTiming {
        match self {
            StmKind::Norec | StmKind::TinyCtlWb | StmKind::VrCtlWb => LockTiming::Commit,
            _ => LockTiming::Encounter,
        }
    }

    /// Position of this design in the write-policy dimension.
    pub fn write_policy(self) -> WritePolicy {
        match self {
            StmKind::TinyEtlWt | StmKind::VrEtlWt => WritePolicy::WriteThrough,
            _ => WritePolicy::WriteBack,
        }
    }

    /// Whether this design needs a hashed lock table (all ORec designs do).
    pub fn uses_lock_table(self) -> bool {
        self.granularity() == MetadataGranularity::Orec
    }
}

impl fmt::Display for StmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One cell of the policy grid: a read protocol, a lock-acquisition time and
/// a write policy. This is the *descriptor* form of an STM design — the
/// engine itself is [`crate::policy::ComposedTm`], instantiated from these
/// axes — and the grammar behind grid-style CLI names like `orec-etl-wb`.
///
/// Not every cell is coherent; [`TmComposition::rejection_reason`] names the
/// constraint a cell violates and [`TmComposition::kind`] maps the seven
/// coherent cells back onto the paper's [`StmKind`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TmComposition {
    /// The read-protocol axis.
    pub read: ReadPolicyKind,
    /// The lock-timing axis.
    pub timing: LockTiming,
    /// The write-policy axis.
    pub write: WritePolicy,
}

impl TmComposition {
    /// Every cell of the 3 × 2 × 2 grid, coherent or not, in axis order.
    pub fn all() -> impl Iterator<Item = TmComposition> {
        ReadPolicyKind::ALL.into_iter().flat_map(|read| {
            [LockTiming::Encounter, LockTiming::Commit].into_iter().flat_map(move |timing| {
                [WritePolicy::WriteBack, WritePolicy::WriteThrough]
                    .into_iter()
                    .map(move |write| TmComposition { read, timing, write })
            })
        })
    }

    /// Whether this cell is a sound STM design (the unstruck cells of the
    /// paper's Fig. 2). `const` so [`crate::policy::ComposedTm`] can reject
    /// incoherent compositions when its statics are built.
    pub const fn is_coherent(self) -> bool {
        // Write-through exposes uncommitted stores, so the writer must
        // already hold the lock: commit-time locking cannot write through.
        if matches!(self.write, WritePolicy::WriteThrough)
            && matches!(self.timing, LockTiming::Commit)
        {
            return false;
        }
        // Value validation has no per-word locks: there is nothing to
        // acquire at encounter time, and nothing to hold while a
        // write-through store is exposed.
        if matches!(self.read, ReadPolicyKind::ValueValidation)
            && (matches!(self.timing, LockTiming::Encounter)
                || matches!(self.write, WritePolicy::WriteThrough))
        {
            return false;
        }
        true
    }

    /// Why this cell is incoherent, or `None` if it is a sound design.
    pub fn rejection_reason(self) -> Option<&'static str> {
        if self.is_coherent() {
            return None;
        }
        if self.read == ReadPolicyKind::ValueValidation {
            Some(
                "value validation (norec) has no per-word locks, so it composes only with \
                 commit-time locking and write-back (norec-ctl-wb)",
            )
        } else {
            Some(
                "write-through requires encounter-time locking: a commit-time-locking \
                 transaction may still abort after exposing its stores (Fig. 2)",
            )
        }
    }

    /// The legacy [`StmKind`] this cell corresponds to, or `None` for
    /// incoherent cells.
    pub fn kind(self) -> Option<StmKind> {
        StmKind::ALL.into_iter().find(|k| k.composition() == self)
    }

    /// The grid-style name of this cell, e.g. `orec-etl-wb` (rendered for
    /// incoherent cells too, so rejection messages can name them).
    pub fn grid_name(self) -> String {
        let timing = match self.timing {
            LockTiming::Encounter => "etl",
            LockTiming::Commit => "ctl",
        };
        let write = match self.write {
            WritePolicy::WriteBack => "wb",
            WritePolicy::WriteThrough => "wt",
        };
        format!("{}-{timing}-{write}", self.read.name())
    }

    /// Parses a grid-style cell name (`<read>-<timing>-<write>`,
    /// case-insensitive, separators optional). Incoherent cells parse too —
    /// callers reject them with [`TmComposition::rejection_reason`] so the
    /// user learns *why* the cell is struck out rather than just "unknown".
    pub fn parse(name: &str) -> Option<TmComposition> {
        let canon: String =
            name.to_ascii_lowercase().chars().filter(|c| c.is_ascii_alphanumeric()).collect();
        TmComposition::all().find(|c| {
            c.grid_name().chars().filter(|ch| ch.is_ascii_alphanumeric()).collect::<String>()
                == canon
        })
    }
}

impl fmt::Display for TmComposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.grid_name())
    }
}

/// Complete configuration of an STM instance on one DPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StmConfig {
    /// Which STM design to use.
    pub kind: StmKind,
    /// Tier in which STM metadata is allocated.
    pub placement: MetadataPlacement,
    /// Override for the lock table only (the paper's ArrayBench-A/WRAM runs
    /// keep the lock table in MRAM because it does not fit in WRAM).
    pub lock_table_placement: Option<MetadataPlacement>,
    /// Number of entries in the hashed ORec/rw-lock table.
    pub lock_table_entries: u32,
    /// Per-tasklet read-set capacity, in entries.
    pub read_set_capacity: u32,
    /// Per-tasklet write/undo-log capacity, in entries.
    pub write_set_capacity: u32,
    /// How write-back commits publish their redo log.
    pub write_back: WriteBackStrategy,
    /// How record reads move their data (see [`ReadStrategy`]).
    pub read_strategy: ReadStrategy,
    /// How aborted attempts back off before retrying (see [`RetryPolicy`]).
    pub retry: RetryPolicy,
    /// In which order multi-word record writes acquire their ownership
    /// records under encounter-time locking (see [`LockOrder`]).
    pub lock_order: LockOrder,
    /// Longest run a coalesced write-back — or a batched record read —
    /// moves as a single DMA burst, in words: the size of the staging
    /// buffer a tasklet reserves in WRAM (the hardware also caps one DMA
    /// transfer at 2 KB = 256 words). Longer runs are split, never dropped.
    pub max_burst_words: u32,
    /// Whether the engine tunes its runtime-switchable knobs online (see
    /// [`crate::tune`] for the knob-ownership contract). The default is
    /// [`crate::tune::TunePolicy::Static`]: knobs stay where the
    /// configuration put them.
    pub tune: crate::tune::TunePolicy,
}

/// Default coalesced-write-back burst cap, in words (a 512-byte WRAM staging
/// buffer, comfortably under the hardware's 2 KB DMA transfer limit).
pub const DEFAULT_BURST_WORDS: u32 = 64;

/// Largest burst one MRAM DMA transfer can carry: the UPMEM hardware caps a
/// transfer at 2 KB = 256 words. Configuring a larger staging buffer would
/// make the model count single setups for physically impossible transfers.
pub const HARDWARE_MAX_BURST_WORDS: u32 = 256;

impl StmConfig {
    /// Creates a configuration with the library defaults (1024-entry lock
    /// table, 256-entry read set, 64-entry write set, 64-word burst cap).
    pub fn new(kind: StmKind, placement: MetadataPlacement) -> Self {
        StmConfig {
            kind,
            placement,
            lock_table_placement: None,
            lock_table_entries: 1024,
            read_set_capacity: 256,
            write_set_capacity: 64,
            write_back: WriteBackStrategy::default(),
            read_strategy: ReadStrategy::default(),
            retry: RetryPolicy::default(),
            lock_order: LockOrder::default(),
            max_burst_words: DEFAULT_BURST_WORDS,
            tune: crate::tune::TunePolicy::Static,
        }
    }

    /// A small WRAM-resident configuration shared by the unit-test suites:
    /// capacities large enough for every micro-scenario, small enough that a
    /// fixture DPU allocates instantly.
    pub fn small_wram(kind: StmKind) -> Self {
        StmConfig::new(kind, MetadataPlacement::Wram)
            .with_lock_table_entries(128)
            .with_read_set_capacity(64)
            .with_write_set_capacity(32)
    }

    /// Selects how write-back commits publish their redo log (the default is
    /// [`WriteBackStrategy::Coalesced`]).
    pub fn with_write_back(mut self, strategy: WriteBackStrategy) -> Self {
        self.write_back = strategy;
        self
    }

    /// Selects how record reads move their data (the default is
    /// [`ReadStrategy::Batched`]).
    pub fn with_read_strategy(mut self, strategy: ReadStrategy) -> Self {
        self.read_strategy = strategy;
        self
    }

    /// Selects the retry/back-off policy (the default is
    /// [`RetryPolicy::Exponential`], the pre-policy-grid behaviour).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Selects the ORec acquisition order of multi-word record writes under
    /// encounter-time locking (the default is [`LockOrder::AddressSorted`]).
    pub fn with_lock_order(mut self, order: LockOrder) -> Self {
        self.lock_order = order;
        self
    }

    /// Caps the write-back and batched-read burst length (WRAM
    /// staging-buffer pressure; see [`StmConfig::max_burst_words`]).
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero (a burst must carry at least one word) or
    /// exceeds [`HARDWARE_MAX_BURST_WORDS`] (one DMA transfer cannot move
    /// more than 2 KB, so a larger cap would undercount DMA setups).
    pub fn with_max_burst_words(mut self, words: u32) -> Self {
        assert!(words > 0, "the write-back burst cap must be at least one word");
        assert!(
            words <= HARDWARE_MAX_BURST_WORDS,
            "the write-back burst cap must not exceed the hardware DMA transfer \
             limit of {HARDWARE_MAX_BURST_WORDS} words"
        );
        self.max_burst_words = words;
        self
    }

    /// Selects the online-tuning policy (the default is
    /// [`crate::tune::TunePolicy::Static`], i.e. no tuning). Under
    /// [`crate::tune::TunePolicy::Windowed`] each tasklet's engine
    /// re-evaluates its runtime-switchable knobs — retry policy, read
    /// strategy, burst cap (downward only) and lock order — every window of
    /// attempts; see [`crate::tune`].
    pub fn with_tune(mut self, policy: crate::tune::TunePolicy) -> Self {
        self.tune = policy;
        self
    }

    /// Sets the per-tasklet read-set capacity.
    pub fn with_read_set_capacity(mut self, entries: u32) -> Self {
        self.read_set_capacity = entries;
        self
    }

    /// Sets the per-tasklet write/undo-log capacity.
    pub fn with_write_set_capacity(mut self, entries: u32) -> Self {
        self.write_set_capacity = entries;
        self
    }

    /// Sets the lock-table size (ignored by NOrec).
    pub fn with_lock_table_entries(mut self, entries: u32) -> Self {
        self.lock_table_entries = entries;
        self
    }

    /// Places the lock table in a different tier than the rest of the
    /// metadata.
    pub fn with_lock_table_placement(mut self, placement: MetadataPlacement) -> Self {
        self.lock_table_placement = Some(placement);
        self
    }

    /// Tier in which the lock table will be allocated.
    pub fn lock_table_tier(&self) -> Tier {
        self.lock_table_placement.unwrap_or(self.placement).tier()
    }

    /// Tier in which everything except the lock table will be allocated.
    pub fn metadata_tier(&self) -> Tier {
        self.placement.tier()
    }

    /// Words of metadata needed per tasklet (read set + write set), useful
    /// for checking WRAM capacity before allocating.
    pub fn per_tasklet_metadata_words(&self) -> u32 {
        self.read_set_capacity * crate::txslot::READ_ENTRY_WORDS
            + self.write_set_capacity * crate::txslot::WRITE_ENTRY_WORDS
    }

    /// Words of shared metadata (lock table and global words).
    pub fn shared_metadata_words(&self) -> u32 {
        let table = if self.kind.uses_lock_table() { self.lock_table_entries } else { 0 };
        table + 2 // sequence lock / global clock words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_covers_exactly_the_papers_seven_designs() {
        assert_eq!(StmKind::ALL.len(), 7);
        // NOrec is the only NoOrec design and must be CTL + WB + invisible,
        // since the other combinations are struck out in Fig. 2.
        for kind in StmKind::ALL {
            if kind.granularity() == MetadataGranularity::NoOrec {
                assert_eq!(kind, StmKind::Norec);
                assert_eq!(kind.lock_timing(), LockTiming::Commit);
                assert_eq!(kind.write_policy(), WritePolicy::WriteBack);
                assert_eq!(kind.read_visibility(), ReadVisibility::Invisible);
            }
            // Write-through is only viable with encounter-time locking.
            if kind.write_policy() == WritePolicy::WriteThrough {
                assert_eq!(kind.lock_timing(), LockTiming::Encounter);
            }
        }
    }

    #[test]
    fn names_roundtrip_through_parse() {
        for kind in StmKind::ALL {
            assert_eq!(StmKind::parse(kind.name()), Some(kind), "parse({})", kind.name());
        }
        assert_eq!(StmKind::parse("tiny_etlwb"), Some(StmKind::TinyEtlWb));
        assert_eq!(StmKind::parse("VR-CTLWB"), Some(StmKind::VrCtlWb));
        assert_eq!(StmKind::parse("bogus"), None);
    }

    #[test]
    fn placement_maps_to_tiers() {
        assert_eq!(MetadataPlacement::Wram.tier(), Tier::Wram);
        assert_eq!(MetadataPlacement::Mram.tier(), Tier::Mram);
        assert_eq!(MetadataPlacement::Wram.to_string(), "wram");
    }

    #[test]
    fn burst_cap_defaults_and_overrides() {
        let cfg = StmConfig::new(StmKind::Norec, MetadataPlacement::Wram);
        assert_eq!(cfg.max_burst_words, DEFAULT_BURST_WORDS);
        assert_eq!(cfg.with_max_burst_words(8).max_burst_words, 8);
    }

    #[test]
    fn read_strategy_defaults_to_batched_and_roundtrips_through_parse() {
        let cfg = StmConfig::new(StmKind::Norec, MetadataPlacement::Wram);
        assert_eq!(cfg.read_strategy, ReadStrategy::Batched);
        assert_eq!(
            cfg.with_read_strategy(ReadStrategy::WordWise).read_strategy,
            ReadStrategy::WordWise
        );
        for strategy in ReadStrategy::ALL {
            assert_eq!(ReadStrategy::parse(strategy.name()), Some(strategy));
        }
        assert_eq!(ReadStrategy::parse("WORD_WISE"), Some(ReadStrategy::WordWise));
        assert_eq!(ReadStrategy::parse("bogus"), None);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_burst_cap_is_rejected() {
        let _ = StmConfig::new(StmKind::Norec, MetadataPlacement::Wram).with_max_burst_words(0);
    }

    #[test]
    #[should_panic(expected = "hardware DMA transfer")]
    fn burst_caps_beyond_the_hardware_transfer_limit_are_rejected() {
        let _ = StmConfig::new(StmKind::Norec, MetadataPlacement::Wram)
            .with_max_burst_words(HARDWARE_MAX_BURST_WORDS + 1);
    }

    #[test]
    fn small_wram_is_wram_resident_with_reduced_capacities() {
        let cfg = StmConfig::small_wram(StmKind::TinyEtlWb);
        assert_eq!(cfg.metadata_tier(), Tier::Wram);
        assert!(cfg.read_set_capacity < StmConfig::new(cfg.kind, cfg.placement).read_set_capacity);
        assert!(cfg.per_tasklet_metadata_words() * 24 < 64 * 1024 / 8, "24 tasklets fit in WRAM");
    }

    #[test]
    fn lock_table_placement_override() {
        let cfg = StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Wram)
            .with_lock_table_placement(MetadataPlacement::Mram);
        assert_eq!(cfg.metadata_tier(), Tier::Wram);
        assert_eq!(cfg.lock_table_tier(), Tier::Mram);
        let plain = StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Wram);
        assert_eq!(plain.lock_table_tier(), Tier::Wram);
    }

    #[test]
    fn metadata_word_counts_reflect_capacities() {
        let cfg = StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Wram)
            .with_read_set_capacity(10)
            .with_write_set_capacity(5)
            .with_lock_table_entries(128);
        assert_eq!(
            cfg.per_tasklet_metadata_words(),
            10 * crate::txslot::READ_ENTRY_WORDS + 5 * crate::txslot::WRITE_ENTRY_WORDS
        );
        assert_eq!(cfg.shared_metadata_words(), 130);
        let norec = StmConfig::new(StmKind::Norec, MetadataPlacement::Wram);
        assert_eq!(norec.shared_metadata_words(), 2);
    }

    #[test]
    fn the_coherent_grid_cells_are_exactly_the_papers_seven_designs() {
        let coherent: Vec<TmComposition> =
            TmComposition::all().filter(|c| c.is_coherent()).collect();
        assert_eq!(coherent.len(), 7, "the 3×2×2 grid has exactly 7 unstruck cells");
        for cell in TmComposition::all() {
            match cell.kind() {
                Some(kind) => {
                    assert!(cell.is_coherent(), "{cell} maps to {kind} but is incoherent");
                    assert_eq!(kind.composition(), cell);
                    assert_eq!(cell.rejection_reason(), None);
                }
                None => {
                    assert!(!cell.is_coherent(), "{cell} is coherent but maps to no kind");
                    assert!(cell.rejection_reason().is_some(), "{cell} needs a rejection message");
                }
            }
        }
    }

    #[test]
    fn grid_names_roundtrip_through_both_parsers() {
        for kind in StmKind::ALL {
            assert_eq!(StmKind::parse(kind.grid_name()), Some(kind), "{}", kind.grid_name());
            assert_eq!(kind.composition().grid_name(), kind.grid_name());
            assert_eq!(
                TmComposition::parse(kind.grid_name()),
                Some(kind.composition()),
                "{}",
                kind.grid_name()
            );
        }
        // Grid separators are flexible, like the legacy names.
        assert_eq!(StmKind::parse("OREC_ETL_WB"), Some(StmKind::TinyEtlWb));
        assert_eq!(StmKind::parse("vr ctl wb"), Some(StmKind::VrCtlWb));
        // Incoherent cells parse as compositions (for error messages) but
        // never as kinds.
        let struck = TmComposition::parse("norec-etl-wb").unwrap();
        assert_eq!(struck.kind(), None);
        assert_eq!(StmKind::parse("norec-etl-wb"), None);
        assert_eq!(StmKind::parse("orec-ctl-wt"), None);
    }

    #[test]
    fn retry_policies_default_parse_and_display() {
        let cfg = StmConfig::new(StmKind::Norec, MetadataPlacement::Wram);
        assert_eq!(cfg.retry, RetryPolicy::Exponential, "default must match legacy behaviour");
        assert_eq!(cfg.with_retry(RetryPolicy::Adaptive).retry, RetryPolicy::Adaptive);
        for policy in RetryPolicy::ALL {
            assert_eq!(RetryPolicy::parse(policy.name()), Some(policy));
        }
        assert_eq!(RetryPolicy::parse("exp"), Some(RetryPolicy::Exponential));
        assert_eq!(RetryPolicy::parse("bogus"), None);
    }

    #[test]
    fn lock_order_defaults_to_address_sorted() {
        let cfg = StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Wram);
        assert_eq!(cfg.lock_order, LockOrder::AddressSorted);
        assert_eq!(cfg.with_lock_order(LockOrder::RecordOrder).lock_order, LockOrder::RecordOrder);
        assert_ne!(LockOrder::RecordOrder.name(), LockOrder::AddressSorted.name());
    }

    #[test]
    fn read_policy_axis_implies_granularity_and_visibility() {
        for kind in StmKind::ALL {
            assert_eq!(kind.read_policy().granularity(), kind.granularity(), "{kind}");
            assert_eq!(kind.read_policy().visibility(), kind.read_visibility(), "{kind}");
        }
    }

    #[test]
    fn only_vr_designs_use_visible_reads() {
        let visible: Vec<_> = StmKind::ALL
            .into_iter()
            .filter(|k| k.read_visibility() == ReadVisibility::Visible)
            .collect();
        assert_eq!(visible, vec![StmKind::VrEtlWt, StmKind::VrEtlWb, StmKind::VrCtlWb]);
    }
}
