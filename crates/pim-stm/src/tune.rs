//! Online self-tuning: the engine picks its own runtime-switchable knobs.
//!
//! The design-space study (and the `--grid` sweep that automates it) shows
//! that no single composition wins everywhere — the best retry policy, read
//! strategy, burst cap and lock order shift with the workload's contention
//! and access shape, and a phase-changing workload shifts them *mid-run*.
//! This module closes the loop: a [`Tuner`] watches a windowed, decaying
//! per-[`AbortReason`] + DMA-rate signal and switches the knobs the engine
//! can legally change at run time, generalising the [`RetryPolicy::Adaptive`]
//! histogram machinery from a single hard-wired cap choice into a policy
//! over every runtime axis.
//!
//! # Knob-ownership contract
//!
//! [`crate::StmConfig`] carries two classes of knobs, and the tuner may only
//! ever touch the first:
//!
//! * **Runtime-switchable** — consulted afresh on every operation, with no
//!   allocated state keyed to their value, so switching them between
//!   transactions is always sound:
//!   - [`StmConfig::retry`] (the back-off policy, and through
//!     [`RetryPolicy::Adaptive`] its saturation cap),
//!   - [`StmConfig::read_strategy`] (word-wise vs batched record reads),
//!   - [`StmConfig::max_burst_words`] — **downward only**: the WRAM staging
//!     buffer is reserved at construction size, so the tuner may shrink the
//!     burst cap (and later restore it) but never exceed the construction
//!     value,
//!   - [`StmConfig::lock_order`] (record-order vs address-sorted ORec
//!     acquisition).
//! * **Construction-time** — baked into allocated metadata or the chosen
//!   algorithm, so changing them mid-run is meaningless or unsound: the
//!   design itself ([`StmConfig::kind`] / the R×L×W composition), metadata
//!   placement, lock-table size and placement, log capacities, and the
//!   write-back publish strategy (its staging layout is fixed when the
//!   redo-log area is sized).
//!
//! Tuning is **per tasklet**, like adaptive retry: each tasklet's engine
//! owns its descriptor, its abort histogram and its copy of the
//! configuration, so no cross-tasklet synchronisation (which real UPMEM
//! hardware would have to buy with a WRAM mutex) is needed, and simulated
//! runs stay deterministic. Decisions are **never free**: every evaluated
//! window charges [`TUNE_EVAL_INSTRUCTIONS`] and every applied switch
//! charges [`TUNE_SWITCH_INSTRUCTIONS`] through [`Platform::compute`], and
//! the simulator additionally records each switch as a cycle-stamped
//! scheduler-level event ([`pim_sim::TuneEvent`]).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::config::{LockOrder, ReadStrategy, RetryPolicy, StmConfig};
use crate::error::AbortReason;
use crate::platform::Platform;

/// Instructions charged for evaluating one signal window (reading the
/// histogram deltas, comparing shares, deciding whether to switch).
pub const TUNE_EVAL_INSTRUCTIONS: u64 = 48;

/// Instructions charged for applying one knob switch (rewriting the knob
/// and, for the burst cap, re-bounding the staging window).
pub const TUNE_SWITCH_INSTRUCTIONS: u64 = 24;

/// Default signal-window length, in transaction attempts. Small enough to
/// react to a phase change within a few hundred transactions, large enough
/// that one window's abort mix is not noise.
pub const DEFAULT_TUNE_WINDOW: u32 = 64;

/// Whether — and how — the engine tunes its runtime-switchable knobs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TunePolicy {
    /// No tuning: the knobs stay at their configured values (the default,
    /// and the pre-tuner behaviour).
    #[default]
    Static,
    /// Re-evaluate the decaying signal every `window` attempts and switch
    /// knobs when the evidence warrants it.
    Windowed {
        /// Signal-window length in transaction attempts (≥ 1).
        window: u32,
    },
}

impl TunePolicy {
    /// The windowed policy with the default window length.
    pub fn windowed() -> TunePolicy {
        TunePolicy::Windowed { window: DEFAULT_TUNE_WINDOW }
    }

    /// Whether this policy tunes at all.
    pub fn is_enabled(self) -> bool {
        matches!(self, TunePolicy::Windowed { .. })
    }

    /// Short lowercase name used by the CLI and in reports.
    pub fn name(self) -> &'static str {
        match self {
            TunePolicy::Static => "static",
            TunePolicy::Windowed { .. } => "windowed",
        }
    }

    /// Parses the CLI form: `static`/`off`, `windowed`, or `windowed:<N>`
    /// for an explicit window length.
    pub fn parse(text: &str) -> Option<TunePolicy> {
        let canon = text.trim().to_ascii_lowercase();
        match canon.as_str() {
            "static" | "off" => Some(TunePolicy::Static),
            "windowed" | "on" => Some(TunePolicy::windowed()),
            other => {
                let window: u32 = other.strip_prefix("windowed:")?.parse().ok()?;
                if window == 0 {
                    return None;
                }
                Some(TunePolicy::Windowed { window })
            }
        }
    }
}

impl fmt::Display for TunePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TunePolicy::Static => f.write_str("static"),
            TunePolicy::Windowed { window } => write!(f, "windowed:{window}"),
        }
    }
}

/// The runtime-switchable knobs a tuner owns (see the
/// [module documentation](self) for the ownership contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TunedKnob {
    /// [`StmConfig::retry`].
    Retry,
    /// [`StmConfig::read_strategy`].
    ReadStrategy,
    /// [`StmConfig::max_burst_words`] (downward from the construction cap).
    BurstCap,
    /// [`StmConfig::lock_order`].
    LockOrder,
}

impl TunedKnob {
    /// All tuned knobs, in reporting order.
    pub const ALL: [TunedKnob; 4] =
        [TunedKnob::Retry, TunedKnob::ReadStrategy, TunedKnob::BurstCap, TunedKnob::LockOrder];

    /// Short lowercase name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            TunedKnob::Retry => "retry",
            TunedKnob::ReadStrategy => "read-strategy",
            TunedKnob::BurstCap => "burst-cap",
            TunedKnob::LockOrder => "lock-order",
        }
    }

    /// Opaque knob code recorded in simulator tune events
    /// ([`pim_sim::TuneEvent::knob`]).
    pub fn code(self) -> u8 {
        match self {
            TunedKnob::Retry => 0,
            TunedKnob::ReadStrategy => 1,
            TunedKnob::BurstCap => 2,
            TunedKnob::LockOrder => 3,
        }
    }
}

impl fmt::Display for TunedKnob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A snapshot of the runtime-switchable knob values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TuneKnobs {
    /// Back-off policy.
    pub retry: RetryPolicy,
    /// Record-read data movement.
    pub read_strategy: ReadStrategy,
    /// DMA burst cap in words (≤ the construction cap).
    pub max_burst_words: u32,
    /// ORec acquisition order for encounter-time record writes.
    pub lock_order: LockOrder,
}

impl TuneKnobs {
    /// The knob values currently configured in `config`.
    pub fn from_config(config: &StmConfig) -> TuneKnobs {
        TuneKnobs {
            retry: config.retry,
            read_strategy: config.read_strategy,
            max_burst_words: config.max_burst_words,
            lock_order: config.lock_order,
        }
    }

    /// Writes these knob values back into `config`.
    pub fn apply_to(&self, config: &mut StmConfig) {
        config.retry = self.retry;
        config.read_strategy = self.read_strategy;
        config.max_burst_words = self.max_burst_words;
        config.lock_order = self.lock_order;
    }
}

/// Stable value codes for simulator tune events: enough to name any setting
/// of any tuned knob in one byte.
fn retry_code(policy: RetryPolicy) -> u8 {
    match policy {
        RetryPolicy::Fixed => 0,
        RetryPolicy::Exponential => 1,
        RetryPolicy::Adaptive => 2,
    }
}

fn read_code(strategy: ReadStrategy) -> u8 {
    match strategy {
        ReadStrategy::WordWise => 0,
        ReadStrategy::Batched => 1,
    }
}

fn order_code(order: LockOrder) -> u8 {
    match order {
        LockOrder::RecordOrder => 0,
        LockOrder::AddressSorted => 1,
    }
}

/// Burst caps are multiples of the 8-word minimum, so `cap / 8` names every
/// legal cap (8..=256) in one byte.
fn burst_code(cap: u32) -> u8 {
    (cap / MIN_TUNED_BURST_WORDS).min(255) as u8
}

/// One applied knob switch, with rendered setting names for reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TuneDecision {
    /// Index of the signal window (1-based) whose evaluation triggered the
    /// switch.
    pub window: u64,
    /// Which knob switched.
    pub knob: TunedKnob,
    /// Setting switched away from (rendered name; burst caps render as the
    /// word count).
    pub from: String,
    /// Setting switched to.
    pub to: String,
}

/// Internal form of a switch: the codes the simulator event carries.
#[derive(Debug, Clone, Copy)]
pub(crate) struct KnobSwitch {
    pub(crate) knob: TunedKnob,
    pub(crate) from_code: u8,
    pub(crate) to_code: u8,
}

/// The tuner never shrinks the burst cap below this many words: smaller
/// bursts cannot amortise even one DMA setup.
const MIN_TUNED_BURST_WORDS: u32 = 8;

/// The windowed, decaying signal a tuner reads: per-[`AbortReason`] abort
/// counts and commit counts with a half-life of one window, plus the DMA
/// counters' last window boundary snapshot for rate deltas.
///
/// The decay is what makes the tuner react to *phase changes*: after a
/// workload shifts its hot region, the pre-shift abort mix loses half its
/// weight every window, so within a few windows the decisions reflect the
/// new phase rather than the whole history (which is exactly what the
/// cumulative histogram behind [`RetryPolicy::Adaptive`] cannot do).
#[derive(Debug, Clone, Default)]
pub struct TuneSignal {
    decayed_reasons: [u64; AbortReason::COUNT],
    decayed_commits: u64,
    decayed_aborts: u64,
    window_reasons: [u64; AbortReason::COUNT],
    window_commits: u64,
    window_aborts: u64,
    last_dma_setups: u64,
    last_dma_words: u64,
    window_dma_setups: u64,
    window_dma_words: u64,
}

impl TuneSignal {
    fn observe_commit(&mut self) {
        self.window_commits += 1;
    }

    fn observe_abort(&mut self, reason: AbortReason) {
        self.window_aborts += 1;
        self.window_reasons[reason.index()] += 1;
    }

    /// Folds the finished window into the decayed tallies and snapshots the
    /// DMA counters; called at each window boundary.
    fn roll(&mut self, dma_setups: u64, dma_words: u64) {
        self.decayed_commits = self.decayed_commits / 2 + self.window_commits;
        self.decayed_aborts = self.decayed_aborts / 2 + self.window_aborts;
        for (decayed, window) in self.decayed_reasons.iter_mut().zip(self.window_reasons.iter()) {
            *decayed = *decayed / 2 + window;
        }
        self.window_commits = 0;
        self.window_aborts = 0;
        self.window_reasons = [0; AbortReason::COUNT];
        self.window_dma_setups = dma_setups.saturating_sub(self.last_dma_setups);
        self.window_dma_words = dma_words.saturating_sub(self.last_dma_words);
        self.last_dma_setups = dma_setups;
        self.last_dma_words = dma_words;
    }

    /// Decayed attempts (commits + aborts).
    fn attempts(&self) -> u64 {
        self.decayed_commits + self.decayed_aborts
    }

    /// Decayed aborts whose conflicter still holds something (lock-shaped).
    fn lock_shaped(&self) -> u64 {
        self.decayed_reasons[AbortReason::ReadConflict.index()]
            + self.decayed_reasons[AbortReason::WriteConflict.index()]
            + self.decayed_reasons[AbortReason::UpgradeConflict.index()]
    }

    /// Decayed aborts whose conflicter has already finished (validation
    /// failures, explicit cancels).
    fn drained(&self) -> u64 {
        self.decayed_reasons[AbortReason::ValidationFailed.index()]
            + self.decayed_reasons[AbortReason::Explicit.index()]
    }

    /// Decayed write/upgrade-conflict aborts — the duel-shaped kind that
    /// address-sorted lock acquisition turns into single losers.
    fn duels(&self) -> u64 {
        self.decayed_reasons[AbortReason::WriteConflict.index()]
            + self.decayed_reasons[AbortReason::UpgradeConflict.index()]
    }

    /// Average words per MRAM DMA transfer over the last window (`None`
    /// when the window issued no transfers).
    fn avg_burst_words(&self) -> Option<u64> {
        (self.window_dma_setups > 0).then(|| self.window_dma_words / self.window_dma_setups)
    }
}

/// The per-tasklet online tuner: owns the current knob values, the decaying
/// signal and the decision log. Driven by [`crate::TxEngine`] after every
/// resolved attempt; evaluation and switches are charged through the
/// platform so they cost cycles like everything else.
#[derive(Debug, Clone)]
pub struct Tuner {
    window: u32,
    attempts_in_window: u32,
    windows: u64,
    construction: TuneKnobs,
    knobs: TuneKnobs,
    signal: TuneSignal,
    decisions: Vec<TuneDecision>,
}

impl Tuner {
    /// Creates a tuner for `policy` starting from the knob values in
    /// `config`; `None` when the policy is [`TunePolicy::Static`].
    pub fn new(policy: TunePolicy, config: &StmConfig) -> Option<Tuner> {
        let TunePolicy::Windowed { window } = policy else { return None };
        let knobs = TuneKnobs::from_config(config);
        Some(Tuner {
            window: window.max(1),
            attempts_in_window: 0,
            windows: 0,
            construction: knobs,
            knobs,
            signal: TuneSignal::default(),
            decisions: Vec::new(),
        })
    }

    /// Current knob values.
    pub fn knobs(&self) -> TuneKnobs {
        self.knobs
    }

    /// Signal windows evaluated so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Knob switches applied so far.
    pub fn switches(&self) -> u64 {
        self.decisions.len() as u64
    }

    /// The decision log, in application order.
    pub fn decisions(&self) -> &[TuneDecision] {
        &self.decisions
    }

    /// Records a committed attempt. Returns `true` when the observation
    /// completed a signal window (the caller must then run
    /// `Tuner::evaluate`).
    pub fn observe_commit(&mut self) -> bool {
        self.signal.observe_commit();
        self.bump_attempt()
    }

    /// Records an aborted attempt (see [`Tuner::observe_commit`]).
    pub fn observe_abort(&mut self, reason: AbortReason) -> bool {
        self.signal.observe_abort(reason);
        self.bump_attempt()
    }

    fn bump_attempt(&mut self) -> bool {
        self.attempts_in_window += 1;
        self.attempts_in_window >= self.window
    }

    /// Evaluates the finished window against the DMA counters read from the
    /// platform and switches any knobs the evidence warrants, returning the
    /// applied switches (empty when everything stays put).
    pub(crate) fn evaluate(&mut self, dma_setups: u64, dma_words: u64) -> Vec<KnobSwitch> {
        self.attempts_in_window = 0;
        self.windows += 1;
        self.signal.roll(dma_setups, dma_words);
        let mut switches = Vec::new();
        self.tune_retry(&mut switches);
        self.tune_read_strategy(&mut switches);
        self.tune_burst_cap(&mut switches);
        self.tune_lock_order(&mut switches);
        switches
    }

    /// Retry axis: under light contention the cheap fixed window wins;
    /// under drained-conflicter aborts (validation failures, explicit
    /// cancels) the adaptive low cap wins; under lock-shaped contention the
    /// full exponential window is needed for holders to drain.
    fn tune_retry(&mut self, switches: &mut Vec<KnobSwitch>) {
        let attempts = self.signal.attempts();
        if attempts == 0 {
            return;
        }
        let aborts = self.signal.decayed_aborts;
        let target = if aborts * 8 < attempts {
            RetryPolicy::Fixed
        } else if self.signal.drained() >= self.signal.lock_shaped() {
            RetryPolicy::Adaptive
        } else {
            RetryPolicy::Exponential
        };
        if target != self.knobs.retry {
            self.push_switch(
                switches,
                TunedKnob::Retry,
                retry_code(self.knobs.retry),
                retry_code(target),
                self.knobs.retry.name().to_string(),
                target.name().to_string(),
            );
            self.knobs.retry = target;
        }
    }

    /// Read axis: when the window's DMA transfers average under two words,
    /// batching amortises nothing and the word-wise path skips the staging
    /// detour; genuine multi-word bursts keep the batched path.
    fn tune_read_strategy(&mut self, switches: &mut Vec<KnobSwitch>) {
        let Some(avg_burst) = self.signal.avg_burst_words() else { return };
        let target = if avg_burst < 2 { ReadStrategy::WordWise } else { ReadStrategy::Batched };
        if target != self.knobs.read_strategy {
            self.push_switch(
                switches,
                TunedKnob::ReadStrategy,
                read_code(self.knobs.read_strategy),
                read_code(target),
                self.knobs.read_strategy.name().to_string(),
                target.name().to_string(),
            );
            self.knobs.read_strategy = target;
        }
    }

    /// Burst-cap axis: long bursts widen the window in which a stale burst
    /// must be re-validated, so under heavy contention the cap shrinks
    /// (quarter at ≥ 1/2 abort share, half at ≥ 1/4) and under light
    /// contention it returns to the construction cap — never above it, since
    /// the WRAM staging buffer was reserved at construction size.
    fn tune_burst_cap(&mut self, switches: &mut Vec<KnobSwitch>) {
        let attempts = self.signal.attempts();
        if attempts == 0 {
            return;
        }
        let aborts = self.signal.decayed_aborts;
        let full = self.construction.max_burst_words;
        let target = if aborts * 2 >= attempts {
            (full / 4).max(MIN_TUNED_BURST_WORDS).min(full)
        } else if aborts * 4 >= attempts {
            (full / 2).max(MIN_TUNED_BURST_WORDS).min(full)
        } else {
            full
        };
        if target != self.knobs.max_burst_words {
            self.push_switch(
                switches,
                TunedKnob::BurstCap,
                burst_code(self.knobs.max_burst_words),
                burst_code(target),
                self.knobs.max_burst_words.to_string(),
                target.to_string(),
            );
            self.knobs.max_burst_words = target;
        }
    }

    /// Lock-order axis: write/upgrade duels are what the global sorted
    /// acquisition order resolves, so it engages when duels dominate the
    /// abort mix (≥ 1/2) and the plain record order returns when duels all
    /// but vanish (≤ 1/8) — with a hysteresis band between, so the knob does
    /// not flap on a mixed signal.
    fn tune_lock_order(&mut self, switches: &mut Vec<KnobSwitch>) {
        let aborts = self.signal.decayed_aborts;
        if aborts == 0 {
            return;
        }
        let duels = self.signal.duels();
        let target = if duels * 2 >= aborts {
            Some(LockOrder::AddressSorted)
        } else if duels * 8 <= aborts {
            Some(LockOrder::RecordOrder)
        } else {
            None // hysteresis: keep the current order
        };
        if let Some(target) = target {
            if target != self.knobs.lock_order {
                self.push_switch(
                    switches,
                    TunedKnob::LockOrder,
                    order_code(self.knobs.lock_order),
                    order_code(target),
                    self.knobs.lock_order.name().to_string(),
                    target.name().to_string(),
                );
                self.knobs.lock_order = target;
            }
        }
    }

    fn push_switch(
        &mut self,
        switches: &mut Vec<KnobSwitch>,
        knob: TunedKnob,
        from_code: u8,
        to_code: u8,
        from: String,
        to: String,
    ) {
        switches.push(KnobSwitch { knob, from_code, to_code });
        self.decisions.push(TuneDecision { window: self.windows, knob, from, to });
    }
}

/// Runs one post-attempt tuner pass for `engine`-side state: checks the
/// window, charges the evaluation, applies switches (charging each) and
/// reports them to the platform. Returns the new knob values when anything
/// switched.
///
/// Free-standing (rather than a [`Tuner`] method) because the caller must
/// also rewrite its own configuration copy — see
/// [`crate::TxEngine`]'s integration.
pub(crate) fn drive(
    tuner: &mut Tuner,
    window_complete: bool,
    p: &mut dyn Platform,
) -> Option<TuneKnobs> {
    if !window_complete {
        return None;
    }
    p.note_tune_window();
    p.compute(TUNE_EVAL_INSTRUCTIONS);
    let (dma_setups, dma_words) = p.dma_stats();
    let switches = tuner.evaluate(dma_setups, dma_words);
    if switches.is_empty() {
        return None;
    }
    for switch in &switches {
        p.note_tune_switch(switch.knob.code(), switch.from_code, switch.to_code);
        p.compute(TUNE_SWITCH_INSTRUCTIONS);
    }
    Some(tuner.knobs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MetadataPlacement, StmKind};

    fn config() -> StmConfig {
        StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Mram)
    }

    fn tuner(window: u32) -> Tuner {
        Tuner::new(TunePolicy::Windowed { window }, &config()).unwrap()
    }

    /// Feeds one window of `commits` commits and per-reason aborts, then
    /// evaluates it (with flat DMA counters unless given).
    fn run_window(t: &mut Tuner, commits: u64, aborts: &[(AbortReason, u64)]) {
        let mut complete = false;
        for _ in 0..commits {
            complete = t.observe_commit();
        }
        for &(reason, count) in aborts {
            for _ in 0..count {
                complete = t.observe_abort(reason);
            }
        }
        assert!(complete, "the feed must fill the window exactly");
        let _ = t.evaluate(0, 0);
    }

    #[test]
    fn static_policy_builds_no_tuner() {
        assert!(Tuner::new(TunePolicy::Static, &config()).is_none());
        assert!(!TunePolicy::Static.is_enabled());
        assert!(TunePolicy::windowed().is_enabled());
    }

    #[test]
    fn policy_parse_roundtrips() {
        assert_eq!(TunePolicy::parse("static"), Some(TunePolicy::Static));
        assert_eq!(TunePolicy::parse("off"), Some(TunePolicy::Static));
        assert_eq!(TunePolicy::parse("windowed"), Some(TunePolicy::windowed()));
        assert_eq!(TunePolicy::parse("windowed:32"), Some(TunePolicy::Windowed { window: 32 }));
        assert_eq!(TunePolicy::parse("windowed:0"), None);
        assert_eq!(TunePolicy::parse("bogus"), None);
        assert_eq!(TunePolicy::Windowed { window: 32 }.to_string(), "windowed:32");
    }

    #[test]
    fn light_contention_settles_on_fixed_retry() {
        let mut t = tuner(16);
        // One abort in sixteen attempts: back-off barely matters.
        for _ in 0..4 {
            run_window(&mut t, 15, &[(AbortReason::ValidationFailed, 1)]);
        }
        assert_eq!(t.knobs().retry, RetryPolicy::Fixed);
    }

    #[test]
    fn validation_dominated_contention_settles_on_adaptive_retry() {
        let mut t = tuner(16);
        for _ in 0..4 {
            run_window(&mut t, 8, &[(AbortReason::ValidationFailed, 8)]);
        }
        assert_eq!(t.knobs().retry, RetryPolicy::Adaptive);
        // ...and a lock-shaped mix pulls it back to exponential.
        for _ in 0..4 {
            run_window(&mut t, 8, &[(AbortReason::ReadConflict, 8)]);
        }
        assert_eq!(t.knobs().retry, RetryPolicy::Exponential);
    }

    #[test]
    fn decayed_signal_reacts_to_phase_changes_within_a_few_windows() {
        let mut t = tuner(16);
        // Long stationary phase: lock-shaped contention.
        for _ in 0..10 {
            run_window(&mut t, 8, &[(AbortReason::WriteConflict, 8)]);
        }
        assert_eq!(t.knobs().retry, RetryPolicy::Exponential);
        // Phase change: validation failures now dominate. The decay halves
        // the old mix every window, so the flip lands within three windows
        // even after ten windows of contrary history.
        let mut flipped_after = None;
        for window in 1..=4u32 {
            run_window(&mut t, 8, &[(AbortReason::ValidationFailed, 8)]);
            if t.knobs().retry == RetryPolicy::Adaptive {
                flipped_after = Some(window);
                break;
            }
        }
        assert!(
            flipped_after.is_some_and(|w| w <= 3),
            "tuner must react to the phase change within 3 windows, got {flipped_after:?}"
        );
    }

    #[test]
    fn burst_cap_shrinks_under_contention_and_recovers_but_never_exceeds_construction() {
        let mut t = tuner(16);
        for _ in 0..4 {
            run_window(&mut t, 2, &[(AbortReason::WriteConflict, 14)]);
        }
        let full = config().max_burst_words;
        assert_eq!(t.knobs().max_burst_words, (full / 4).max(8), "heavy contention quarters");
        for _ in 0..6 {
            run_window(&mut t, 16, &[]);
        }
        assert_eq!(t.knobs().max_burst_words, full, "calm windows restore the construction cap");
        assert!(
            t.decisions()
                .iter()
                .all(|d| { d.knob != TunedKnob::BurstCap || d.to.parse::<u32>().unwrap() <= full }),
            "the tuner must never exceed the construction-time burst cap"
        );
    }

    #[test]
    fn single_word_dma_windows_switch_reads_to_word_wise() {
        let mut t = tuner(8);
        for _ in 0..8 {
            let _ = t.observe_commit();
        }
        // 40 transfers moving 40 words: average burst of one word.
        let _ = t.evaluate(40, 40);
        assert_eq!(t.knobs().read_strategy, ReadStrategy::WordWise);
        for _ in 0..8 {
            let _ = t.observe_commit();
        }
        // 10 more transfers moving 160 more words: average burst of 16.
        let _ = t.evaluate(50, 200);
        assert_eq!(t.knobs().read_strategy, ReadStrategy::Batched);
    }

    #[test]
    fn lock_order_engages_on_duels_and_disengages_with_hysteresis() {
        let mut t = tuner(16);
        // Start from record order to watch the upgrade engage.
        let cfg = config().with_lock_order(LockOrder::RecordOrder);
        let mut t2 = Tuner::new(TunePolicy::Windowed { window: 16 }, &cfg).unwrap();
        for _ in 0..3 {
            run_window(&mut t2, 4, &[(AbortReason::UpgradeConflict, 12)]);
        }
        assert_eq!(t2.knobs().lock_order, LockOrder::AddressSorted);
        // A mixed signal (between 1/8 and 1/2 duels) keeps the current
        // order instead of flapping.
        run_window(
            &mut t,
            8,
            &[(AbortReason::ValidationFailed, 6), (AbortReason::WriteConflict, 2)],
        );
        assert_eq!(t.knobs().lock_order, config().lock_order, "hysteresis band holds");
        // Duel-free windows eventually fall back to record order.
        for _ in 0..6 {
            run_window(&mut t2, 4, &[(AbortReason::ValidationFailed, 12)]);
        }
        assert_eq!(t2.knobs().lock_order, LockOrder::RecordOrder);
    }

    #[test]
    fn decisions_are_logged_with_window_and_names() {
        let mut t = tuner(8);
        run_window(&mut t, 0, &[(AbortReason::ValidationFailed, 8)]);
        assert!(t.switches() >= 1);
        let d = &t.decisions()[0];
        assert_eq!(d.window, 1);
        assert!(!d.from.is_empty() && !d.to.is_empty());
        assert_eq!(t.windows(), 1);
    }

    #[test]
    fn knobs_apply_back_into_a_config() {
        let mut cfg = config();
        let knobs = TuneKnobs {
            retry: RetryPolicy::Adaptive,
            read_strategy: ReadStrategy::WordWise,
            max_burst_words: 16,
            lock_order: LockOrder::RecordOrder,
        };
        knobs.apply_to(&mut cfg);
        assert_eq!(cfg.retry, RetryPolicy::Adaptive);
        assert_eq!(cfg.read_strategy, ReadStrategy::WordWise);
        assert_eq!(cfg.max_burst_words, 16);
        assert_eq!(cfg.lock_order, LockOrder::RecordOrder);
        assert_eq!(TuneKnobs::from_config(&cfg), knobs);
    }

    #[test]
    fn knob_codes_are_distinct() {
        let codes: Vec<u8> = TunedKnob::ALL.iter().map(|k| k.code()).collect();
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len());
        assert_ne!(retry_code(RetryPolicy::Fixed), retry_code(RetryPolicy::Adaptive));
        assert_eq!(burst_code(64), 8);
        assert_eq!(burst_code(256), 32);
    }
}
