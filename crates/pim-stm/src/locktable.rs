//! Ownership-record (ORec) word encoding used by the Tiny designs.
//!
//! Each lock-table entry is a single word that is either
//!
//! * **unlocked** — the low bit is clear and the remaining bits hold the
//!   version (commit timestamp) of the locations covered by the entry, or
//! * **locked** — the low bit is set and the next bits identify the owning
//!   tasklet.
//!
//! The word is updated through [`crate::Platform::atomic_update`], which on
//! UPMEM maps onto the acquire/release bit register (there is no
//! compare-and-swap instruction).

/// Decoded view of an ORec word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrecWord(u64);

const LOCKED_BIT: u64 = 1;
const OWNER_SHIFT: u32 = 1;
const VERSION_SHIFT: u32 = 1;

impl OrecWord {
    /// Wraps a raw word read from the lock table.
    pub fn from_raw(raw: u64) -> Self {
        OrecWord(raw)
    }

    /// The raw word to store back into the lock table.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// An unlocked ORec carrying `version`.
    pub fn unlocked(version: u64) -> Self {
        OrecWord(version << VERSION_SHIFT)
    }

    /// An ORec locked by `owner`.
    pub fn locked_by(owner: usize) -> Self {
        OrecWord(LOCKED_BIT | ((owner as u64) << OWNER_SHIFT))
    }

    /// Whether the ORec is currently locked.
    pub fn is_locked(self) -> bool {
        self.0 & LOCKED_BIT != 0
    }

    /// Owner tasklet, if locked.
    pub fn owner(self) -> Option<usize> {
        if self.is_locked() {
            Some((self.0 >> OWNER_SHIFT) as usize)
        } else {
            None
        }
    }

    /// Whether the ORec is locked by `tasklet`.
    pub fn is_locked_by(self, tasklet: usize) -> bool {
        self.owner() == Some(tasklet)
    }

    /// Version carried by an unlocked ORec.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the ORec is locked — a locked word carries
    /// an owner, not a version.
    pub fn version(self) -> u64 {
        debug_assert!(!self.is_locked(), "version() called on a locked ORec");
        self.0 >> VERSION_SHIFT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlocked_roundtrips_version() {
        for v in [0u64, 1, 17, 1 << 40] {
            let w = OrecWord::unlocked(v);
            assert!(!w.is_locked());
            assert_eq!(w.version(), v);
            assert_eq!(OrecWord::from_raw(w.raw()), w);
        }
    }

    #[test]
    fn locked_roundtrips_owner() {
        for owner in 0..24 {
            let w = OrecWord::locked_by(owner);
            assert!(w.is_locked());
            assert_eq!(w.owner(), Some(owner));
            assert!(w.is_locked_by(owner));
            assert!(!w.is_locked_by(owner + 1));
        }
    }

    #[test]
    fn fresh_table_entry_is_unlocked_version_zero() {
        let w = OrecWord::from_raw(0);
        assert!(!w.is_locked());
        assert_eq!(w.version(), 0);
        assert_eq!(w.owner(), None);
    }

    #[test]
    fn locked_and_unlocked_words_never_collide() {
        // A locked word always has the low bit set; an unlocked word never
        // does, regardless of version.
        for v in 0..100u64 {
            assert_ne!(OrecWord::unlocked(v).raw() & 1, 1);
        }
        for t in 0..24usize {
            assert_eq!(OrecWord::locked_by(t).raw() & 1, 1);
        }
    }
}
