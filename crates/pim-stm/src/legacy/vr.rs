//! The Visible Reads (VR) design family: read-write lock based concurrency
//! control, adapted from classic DBMS lock-based protocols to provide
//! opacity (the paper's own contribution, §3.2.1).
//!
//! Every memory word is covered by a read-write lock in a hashed lock table
//! (see [`crate::rwlock`]). Transactions acquire the lock in read mode as
//! soon as they read — making reads *visible* to writers — and in write mode
//! either at encounter time or at commit time. Because writers can never
//! invalidate something a live reader depends on, **no read-set validation is
//! ever needed**; the price is the cost of tracking readers and spurious
//! aborts when read locks cannot be upgraded.
//!
//! Three variants cover the visible-reads subtree of the taxonomy: ETL-WT,
//! ETL-WB and CTL-WB.

use pim_sim::{Addr, Phase};

use crate::access::{RecordReader, WordCheck, WordPlan};
use crate::config::{LockTiming, StmKind, WritePolicy};
use crate::error::{Abort, AbortReason};
use crate::platform::Platform;
use crate::rwlock::RwLockWord;
use crate::shared::StmShared;
use crate::txslot::TxSlot;
use crate::TmAlgorithm;

/// Result of trying to take a lock-table entry in read mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadAcquire {
    /// We now hold (or already held) the lock in read mode.
    Held,
    /// We already hold the lock in write mode.
    OwnedWrite,
    /// Another transaction holds the lock in write mode.
    Conflict,
}

/// Result of trying to take a lock-table entry in write mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteAcquire {
    /// We now hold (or already held) the lock in write mode.
    Held,
    /// Another transaction holds the lock in write mode.
    Conflict,
    /// Other transactions hold the lock in read mode, so it cannot be
    /// upgraded.
    Upgrade,
}

/// A member of the VR family, parameterised by lock timing and write policy.
#[derive(Debug, Clone, Copy)]
pub struct Vr {
    timing: LockTiming,
    policy: WritePolicy,
}

impl Vr {
    /// Creates the variant with the given lock timing and write policy.
    ///
    /// As in [`crate::legacy::tiny::Tiny`], write-through with commit-time locking is
    /// rejected because it would expose uncommitted writes.
    pub const fn new(timing: LockTiming, policy: WritePolicy) -> Self {
        assert!(
            !(matches!(policy, WritePolicy::WriteThrough) && matches!(timing, LockTiming::Commit)),
            "write-through requires encounter-time locking (see Fig. 2 of the paper)"
        );
        Vr { timing, policy }
    }

    /// Lock timing of this variant.
    pub fn timing(&self) -> LockTiming {
        self.timing
    }

    /// Write policy of this variant.
    pub fn policy(&self) -> WritePolicy {
        self.policy
    }

    fn acquire_read(&self, shared: &StmShared, p: &mut dyn Platform, addr: Addr) -> ReadAcquire {
        let me = p.tasklet_id();
        let mut result = ReadAcquire::Held;
        p.atomic_update(shared.orec_addr(addr), &mut |raw| {
            let word = RwLockWord::from_raw(raw);
            match word.writer() {
                Some(owner) if owner == me => {
                    result = ReadAcquire::OwnedWrite;
                    None
                }
                Some(_) => {
                    result = ReadAcquire::Conflict;
                    None
                }
                None => {
                    result = ReadAcquire::Held;
                    if word.has_reader(me) {
                        None
                    } else {
                        Some(word.with_reader(me).raw())
                    }
                }
            }
        });
        result
    }

    fn acquire_write(&self, shared: &StmShared, p: &mut dyn Platform, addr: Addr) -> WriteAcquire {
        let me = p.tasklet_id();
        let mut result = WriteAcquire::Held;
        p.atomic_update(shared.orec_addr(addr), &mut |raw| {
            let word = RwLockWord::from_raw(raw);
            if word.is_write_locked_by(me) {
                result = WriteAcquire::Held;
                None
            } else if word.writer().is_some() {
                result = WriteAcquire::Conflict;
                None
            } else if word.is_free() || word.sole_reader_is(me) {
                // Free, or an upgrade of our own read lock.
                result = WriteAcquire::Held;
                Some(RwLockWord::write_locked_by(me).raw())
            } else {
                result = WriteAcquire::Upgrade;
                None
            }
        });
        result
    }

    /// Value of a word this transaction already write-locks (see
    /// [`crate::access::owned_value`], shared with Tiny and the batched
    /// plan).
    fn owned_value(&self, tx: &mut TxSlot, p: &mut dyn Platform, addr: Addr) -> u64 {
        crate::access::owned_value(self.policy, tx, p, addr)
    }

    /// Releases every lock this transaction holds: write locks named by the
    /// write/undo log and read locks named by the read set. Both operations
    /// are idempotent, so hash aliasing and duplicate log entries are
    /// harmless.
    fn release_locks(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform) {
        let me = p.tasklet_id();
        for i in 0..tx.write_set_len() {
            let entry = tx.write_entry(p, i);
            p.atomic_update(shared.orec_addr(entry.addr), &mut |raw| {
                let word = RwLockWord::from_raw(raw);
                if word.is_write_locked_by(me) {
                    Some(RwLockWord::free().raw())
                } else {
                    None
                }
            });
        }
        for i in 0..tx.read_set_len() {
            let entry = tx.read_entry(p, i);
            p.atomic_update(shared.orec_addr(entry.addr), &mut |raw| {
                let word = RwLockWord::from_raw(raw);
                if word.has_reader(me) {
                    Some(word.without_reader(me).raw())
                } else {
                    None
                }
            });
        }
    }

    /// Rolls back the attempt (undoing write-through stores) and releases all
    /// locks, then returns the abort to propagate.
    fn abort(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        reason: AbortReason,
    ) -> Abort {
        if self.policy == WritePolicy::WriteThrough {
            for i in (0..tx.write_set_len()).rev() {
                let entry = tx.write_entry(p, i);
                p.store(entry.addr, entry.value);
            }
        }
        self.release_locks(shared, tx, p);
        p.set_phase(Phase::OtherExec);
        Abort::new(reason)
    }
}

impl TmAlgorithm for Vr {
    fn kind(&self) -> StmKind {
        match (self.timing, self.policy) {
            (LockTiming::Commit, WritePolicy::WriteBack) => StmKind::VrCtlWb,
            (LockTiming::Encounter, WritePolicy::WriteBack) => StmKind::VrEtlWb,
            (LockTiming::Encounter, WritePolicy::WriteThrough) => StmKind::VrEtlWt,
            (LockTiming::Commit, WritePolicy::WriteThrough) => unreachable!("rejected by Vr::new"),
        }
    }

    fn begin(&self, _shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform) {
        p.set_phase(Phase::OtherExec);
        tx.reset_logs();
    }

    fn read(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
    ) -> Result<u64, Abort> {
        p.set_phase(Phase::Reading);

        // Commit-time locking buffers writes unlocked, so read-after-write
        // goes through the redo log.
        if self.timing == LockTiming::Commit {
            if let Some((_, value)) = tx.find_write(p, addr) {
                p.set_phase(Phase::OtherExec);
                return Ok(value);
            }
        }

        let value = match self.acquire_read(shared, p, addr) {
            ReadAcquire::Conflict => {
                return Err(self.abort(shared, tx, p, AbortReason::ReadConflict))
            }
            ReadAcquire::OwnedWrite => self.owned_value(tx, p, addr),
            ReadAcquire::Held => {
                let value = p.load(addr);
                tx.push_read(p, addr, 0);
                value
            }
        };
        p.set_phase(Phase::OtherExec);
        Ok(value)
    }

    fn write(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        value: u64,
    ) -> Result<(), Abort> {
        p.set_phase(Phase::Writing);
        match self.timing {
            LockTiming::Commit => {
                if let Some((index, _)) = tx.find_write(p, addr) {
                    tx.set_write_value(p, index, value);
                } else {
                    tx.push_write(p, addr, value, 0, false);
                }
            }
            LockTiming::Encounter => {
                match self.acquire_write(shared, p, addr) {
                    WriteAcquire::Conflict => {
                        return Err(self.abort(shared, tx, p, AbortReason::WriteConflict))
                    }
                    WriteAcquire::Upgrade => {
                        return Err(self.abort(shared, tx, p, AbortReason::UpgradeConflict))
                    }
                    WriteAcquire::Held => {}
                }
                match self.policy {
                    WritePolicy::WriteBack => {
                        if let Some((index, _)) = tx.find_write(p, addr) {
                            tx.set_write_value(p, index, value);
                        } else {
                            tx.push_write(p, addr, value, 0, false);
                        }
                    }
                    WritePolicy::WriteThrough => {
                        if tx.find_write(p, addr).is_none() {
                            let old = p.load(addr);
                            tx.push_write(p, addr, old, 0, false);
                        }
                        p.store(addr, value);
                    }
                }
            }
        }
        p.set_phase(Phase::OtherExec);
        Ok(())
    }

    fn commit(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
    ) -> Result<(), Abort> {
        p.set_phase(Phase::OtherCommit);

        // Commit-time locking acquires write locks for the whole redo log
        // now; encounter-time variants already hold them.
        if self.timing == LockTiming::Commit {
            for i in 0..tx.write_set_len() {
                let entry = tx.write_entry(p, i);
                match self.acquire_write(shared, p, entry.addr) {
                    WriteAcquire::Held => {}
                    WriteAcquire::Conflict => {
                        return Err(self.abort(shared, tx, p, AbortReason::WriteConflict))
                    }
                    WriteAcquire::Upgrade => {
                        return Err(self.abort(shared, tx, p, AbortReason::UpgradeConflict))
                    }
                }
            }
        }

        // Publish buffered writes. Thanks to visible reads no validation is
        // needed: every location we read is still read-locked by us, so no
        // writer can have changed it. Write locks cover the whole log, so
        // the shared publication pass may reorder and batch stores.
        if self.policy == WritePolicy::WriteBack {
            crate::writeback::publish_redo_log(tx, p, shared.config());
        }

        self.release_locks(shared, tx, p);
        p.set_phase(Phase::OtherExec);
        Ok(())
    }

    /// VR record reads run through the shared access layer. Visible reads
    /// make the batched path particularly clean: once every word's read
    /// lock is held no writer can touch the record, so the data burst is
    /// stable by construction and no post-burst re-check is needed.
    fn read_record(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        out: &mut [u64],
    ) -> Result<(), Abort> {
        crate::access::read_record_with(self, shared, tx, p, addr, out)
    }

    fn cancel(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform) {
        if self.policy == WritePolicy::WriteThrough {
            for i in (0..tx.write_set_len()).rev() {
                let entry = tx.write_entry(p, i);
                p.store(entry.addr, entry.value);
            }
        }
        self.release_locks(shared, tx, p);
        p.set_phase(Phase::OtherExec);
    }
}

impl RecordReader for Vr {
    /// Mirrors [`Vr::read`]'s lock protocol: serve redo-log / own-write-lock
    /// words locally, abort on a foreign write lock, and otherwise take the
    /// read lock — which *pins* the word for the rest of the transaction,
    /// so the read-set entry can be pushed before the data even moves.
    fn plan_word(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
    ) -> Result<WordPlan, Abort> {
        if self.timing == LockTiming::Commit {
            if let Some((_, value)) = tx.find_write(p, addr) {
                return Ok(WordPlan::Ready(value));
            }
        }
        match self.acquire_read(shared, p, addr) {
            ReadAcquire::Conflict => Err(self.abort(shared, tx, p, AbortReason::ReadConflict)),
            ReadAcquire::OwnedWrite => Ok(WordPlan::Ready(self.owned_value(tx, p, addr))),
            ReadAcquire::Held => {
                tx.push_read(p, addr, 0);
                Ok(WordPlan::Burst { token: 0 })
            }
        }
    }

    /// The read lock acquired at plan time blocks every writer, so the
    /// staged value is always consistent (the bookkeeping already happened
    /// in [`RecordReader::plan_word`]).
    fn accept_word(
        &self,
        _shared: &StmShared,
        _tx: &mut TxSlot,
        _p: &mut dyn Platform,
        _addr: Addr,
        _value: u64,
        _token: u64,
    ) -> Result<WordCheck, Abort> {
        Ok(WordCheck::Accept)
    }

    fn reread_word(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
    ) -> Result<u64, Abort> {
        self.read(shared, tx, p, addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StmConfig;
    use crate::rwlock::RwMode;
    use pim_sim::{Dpu, DpuConfig, TaskletCtx, TaskletStats, Tier};

    const VARIANTS: [StmKind; 3] = [StmKind::VrCtlWb, StmKind::VrEtlWb, StmKind::VrEtlWt];

    struct Fixture {
        dpu: Dpu,
        shared: StmShared,
        slots: Vec<TxSlot>,
        data: Addr,
    }

    fn fixture(kind: StmKind, tasklets: usize) -> (Fixture, Vr) {
        let mut dpu = Dpu::new(DpuConfig::small());
        let cfg = StmConfig::small_wram(kind);
        let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
        let slots = (0..tasklets).map(|t| shared.register_tasklet(&mut dpu, t).unwrap()).collect();
        let data = dpu.alloc(Tier::Mram, 16).unwrap();
        let vr = match kind {
            StmKind::VrCtlWb => Vr::new(LockTiming::Commit, WritePolicy::WriteBack),
            StmKind::VrEtlWb => Vr::new(LockTiming::Encounter, WritePolicy::WriteBack),
            StmKind::VrEtlWt => Vr::new(LockTiming::Encounter, WritePolicy::WriteThrough),
            _ => unreachable!(),
        };
        (Fixture { dpu, shared, slots, data }, vr)
    }

    #[test]
    fn kinds_match_parameters() {
        for kind in VARIANTS {
            let (_, vr) = fixture(kind, 1);
            assert_eq!(vr.kind(), kind);
        }
    }

    #[test]
    fn read_write_commit_releases_all_locks() {
        for kind in VARIANTS {
            let (mut fx, vr) = fixture(kind, 1);
            let mut stats = TaskletStats::new();
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats, 0, 1, 0);
            let slot = &mut fx.slots[0];
            vr.begin(&fx.shared, slot, &mut ctx);
            assert_eq!(vr.read(&fx.shared, slot, &mut ctx, fx.data).unwrap(), 0);
            vr.write(&fx.shared, slot, &mut ctx, fx.data.offset(1), 11).unwrap();
            assert_eq!(
                vr.read(&fx.shared, slot, &mut ctx, fx.data.offset(1)).unwrap(),
                11,
                "{kind}"
            );
            vr.commit(&fx.shared, slot, &mut ctx).unwrap();
            assert_eq!(ctx.dpu().peek(fx.data.offset(1)), 11, "{kind}");
            for w in 0..2 {
                let lock =
                    RwLockWord::from_raw(ctx.dpu().peek(fx.shared.orec_addr(fx.data.offset(w))));
                assert!(lock.is_free(), "{kind}: lock {w} must be free after commit");
            }
        }
    }

    #[test]
    fn reads_are_visible_while_the_transaction_runs() {
        let (mut fx, vr) = fixture(StmKind::VrEtlWb, 1);
        let mut stats = TaskletStats::new();
        let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats, 0, 1, 0);
        vr.begin(&fx.shared, &mut fx.slots[0], &mut ctx);
        vr.read(&fx.shared, &mut fx.slots[0], &mut ctx, fx.data).unwrap();
        let lock = RwLockWord::from_raw(ctx.dpu().peek(fx.shared.orec_addr(fx.data)));
        assert_eq!(lock.mode(), RwMode::Read);
        assert!(lock.has_reader(0));
        assert_eq!(lock.reader_count(), 1);
    }

    #[test]
    fn writer_aborts_when_location_is_read_locked_by_another() {
        for kind in VARIANTS {
            let (mut fx, vr) = fixture(kind, 2);
            let mut stats0 = TaskletStats::new();
            let mut stats1 = TaskletStats::new();
            let (s0, rest) = fx.slots.split_at_mut(1);
            let (slot0, slot1) = (&mut s0[0], &mut rest[0]);
            // T0 read-locks the word.
            {
                let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats0, 0, 2, 0);
                vr.begin(&fx.shared, slot0, &mut ctx);
                vr.read(&fx.shared, slot0, &mut ctx, fx.data).unwrap();
            }
            // T1 tries to write it: encounter-time variants fail at write
            // time, the commit-time variant at commit time.
            {
                let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats1, 1, 2, 0);
                vr.begin(&fx.shared, slot1, &mut ctx);
                let write = vr.write(&fx.shared, slot1, &mut ctx, fx.data, 5);
                let outcome = match write {
                    Err(abort) => Err(abort),
                    Ok(()) => vr.commit(&fx.shared, slot1, &mut ctx),
                };
                let err = outcome.expect_err(&format!("{kind}: write to read-locked word"));
                assert_eq!(err.reason, AbortReason::UpgradeConflict, "{kind}");
                // T1's locks are all gone; T0 still holds its read lock.
                let lock = RwLockWord::from_raw(ctx.dpu().peek(fx.shared.orec_addr(fx.data)));
                assert_eq!(lock.mode(), RwMode::Read, "{kind}");
                assert!(lock.has_reader(0), "{kind}");
                assert!(!lock.has_reader(1), "{kind}");
            }
        }
    }

    #[test]
    fn upgrade_succeeds_when_sole_reader() {
        let (mut fx, vr) = fixture(StmKind::VrEtlWb, 1);
        let mut stats = TaskletStats::new();
        let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats, 0, 1, 0);
        let slot = &mut fx.slots[0];
        vr.begin(&fx.shared, slot, &mut ctx);
        vr.read(&fx.shared, slot, &mut ctx, fx.data).unwrap();
        vr.write(&fx.shared, slot, &mut ctx, fx.data, 3).unwrap();
        let lock = RwLockWord::from_raw(ctx.dpu().peek(fx.shared.orec_addr(fx.data)));
        assert!(lock.is_write_locked_by(0), "read lock must have been upgraded");
        vr.commit(&fx.shared, slot, &mut ctx).unwrap();
        assert_eq!(ctx.dpu().peek(fx.data), 3);
        assert!(RwLockWord::from_raw(ctx.dpu().peek(fx.shared.orec_addr(fx.data))).is_free());
    }

    #[test]
    fn reader_aborts_on_write_locked_word() {
        let (mut fx, vr) = fixture(StmKind::VrEtlWt, 2);
        let mut stats0 = TaskletStats::new();
        let mut stats1 = TaskletStats::new();
        let (s0, rest) = fx.slots.split_at_mut(1);
        let (slot0, slot1) = (&mut s0[0], &mut rest[0]);
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats0, 0, 2, 0);
            vr.begin(&fx.shared, slot0, &mut ctx);
            vr.write(&fx.shared, slot0, &mut ctx, fx.data, 9).unwrap();
        }
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats1, 1, 2, 0);
            vr.begin(&fx.shared, slot1, &mut ctx);
            let err = vr.read(&fx.shared, slot1, &mut ctx, fx.data).unwrap_err();
            assert_eq!(err.reason, AbortReason::ReadConflict);
        }
    }

    #[test]
    fn write_through_abort_undoes_stores_and_releases_locks() {
        let (mut fx, vr) = fixture(StmKind::VrEtlWt, 2);
        fx.dpu.poke(fx.data, 50);
        let mut stats0 = TaskletStats::new();
        let mut stats1 = TaskletStats::new();
        let (s0, rest) = fx.slots.split_at_mut(1);
        let (slot0, slot1) = (&mut s0[0], &mut rest[0]);
        // T1 read-locks a second word so T0's later write to it must abort.
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats1, 1, 2, 0);
            vr.begin(&fx.shared, slot1, &mut ctx);
            vr.read(&fx.shared, slot1, &mut ctx, fx.data.offset(1)).unwrap();
        }
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats0, 0, 2, 0);
            vr.begin(&fx.shared, slot0, &mut ctx);
            vr.write(&fx.shared, slot0, &mut ctx, fx.data, 99).unwrap();
            assert_eq!(ctx.dpu().peek(fx.data), 99, "write-through stores eagerly");
            let err = vr.write(&fx.shared, slot0, &mut ctx, fx.data.offset(1), 1).unwrap_err();
            assert_eq!(err.reason, AbortReason::UpgradeConflict);
            // The undo log restored the original value and T0 holds nothing.
            assert_eq!(ctx.dpu().peek(fx.data), 50);
            assert!(RwLockWord::from_raw(ctx.dpu().peek(fx.shared.orec_addr(fx.data))).is_free());
        }
    }

    #[test]
    fn ctl_buffered_writes_stay_invisible_until_commit() {
        let (mut fx, vr) = fixture(StmKind::VrCtlWb, 1);
        let mut stats = TaskletStats::new();
        let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats, 0, 1, 0);
        let slot = &mut fx.slots[0];
        vr.begin(&fx.shared, slot, &mut ctx);
        vr.write(&fx.shared, slot, &mut ctx, fx.data, 123).unwrap();
        // No lock is taken and memory is untouched before commit.
        assert!(RwLockWord::from_raw(ctx.dpu().peek(fx.shared.orec_addr(fx.data))).is_free());
        assert_eq!(ctx.dpu().peek(fx.data), 0);
        assert_eq!(vr.read(&fx.shared, slot, &mut ctx, fx.data).unwrap(), 123);
        vr.commit(&fx.shared, slot, &mut ctx).unwrap();
        assert_eq!(ctx.dpu().peek(fx.data), 123);
    }

    #[test]
    fn two_readers_coexist_and_release_independently() {
        let (mut fx, vr) = fixture(StmKind::VrEtlWb, 2);
        let mut stats0 = TaskletStats::new();
        let mut stats1 = TaskletStats::new();
        let (s0, rest) = fx.slots.split_at_mut(1);
        let (slot0, slot1) = (&mut s0[0], &mut rest[0]);
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats0, 0, 2, 0);
            vr.begin(&fx.shared, slot0, &mut ctx);
            vr.read(&fx.shared, slot0, &mut ctx, fx.data).unwrap();
        }
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats1, 1, 2, 0);
            vr.begin(&fx.shared, slot1, &mut ctx);
            vr.read(&fx.shared, slot1, &mut ctx, fx.data).unwrap();
            let lock = RwLockWord::from_raw(ctx.dpu().peek(fx.shared.orec_addr(fx.data)));
            assert_eq!(lock.reader_count(), 2);
            vr.commit(&fx.shared, slot1, &mut ctx).unwrap();
        }
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats0, 0, 2, 0);
            let lock = RwLockWord::from_raw(ctx.dpu().peek(fx.shared.orec_addr(fx.data)));
            assert_eq!(lock.reader_count(), 1, "tasklet 1 released, tasklet 0 still reading");
            vr.commit(&fx.shared, slot0, &mut ctx).unwrap();
            assert!(RwLockWord::from_raw(ctx.dpu().peek(fx.shared.orec_addr(fx.data))).is_free());
        }
    }
}
