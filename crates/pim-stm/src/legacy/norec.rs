//! The NOrec design (Dalessandro, Spear, Scott — PPoPP 2010), ported to the
//! UPMEM platform.
//!
//! NOrec abolishes ownership records: the only shared metadata is a single
//! *sequence lock* whose value is even when no writer is committing and odd
//! while one is. Reads are invisible and validated **by value**: whenever a
//! transaction observes that the sequence lock changed, it re-reads every
//! location in its read set and compares against the values it saw before.
//! Commits serialise on the sequence lock (commit-time locking) and apply a
//! write-back log.
//!
//! Two properties the paper highlights fall straight out of this structure:
//!
//! * very little metadata is touched per read/write (fast instrumentation,
//!   the reason NOrec is the most robust design overall), and
//! * large read sets make the value-based re-validation expensive, which is
//!   why NOrec loses up to ~2.5× on ArrayBench A.
//!
//! Waiting for the sequence lock to become even before starting doubles as a
//! simple contention-management mechanism.

use pim_sim::{Addr, Phase};

use crate::access::{RecordReader, WordCheck, WordPlan};
use crate::config::StmKind;
use crate::error::{Abort, AbortReason};
use crate::platform::Platform;
use crate::shared::StmShared;
use crate::txslot::TxSlot;
use crate::TmAlgorithm;

/// The NOrec algorithm (commit-time locking, write-back, invisible reads,
/// value-based validation).
#[derive(Debug, Default, Clone, Copy)]
pub struct Norec;

impl Norec {
    /// Spins until the sequence lock is even (no writer committing) and
    /// returns its value.
    fn wait_until_even(&self, shared: &StmShared, p: &mut dyn Platform) -> u64 {
        loop {
            let s = p.load(shared.seqlock_addr());
            if s.is_multiple_of(2) {
                return s;
            }
            p.spin_wait(4);
        }
    }

    /// Value-based read-set validation. Returns a new consistent snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if any location in the read set no longer holds the
    /// value this transaction observed.
    fn validate(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
    ) -> Result<u64, Abort> {
        loop {
            let time = self.wait_until_even(shared, p);
            for i in 0..tx.read_set_len() {
                let entry = tx.read_entry(p, i);
                if p.load(entry.addr) != entry.aux {
                    return Err(AbortReason::ValidationFailed.into());
                }
            }
            // If no commit happened while we were validating, the snapshot is
            // consistent; otherwise validate again against the newer state.
            if p.load(shared.seqlock_addr()) == time {
                return Ok(time);
            }
        }
    }
}

impl TmAlgorithm for Norec {
    fn kind(&self) -> StmKind {
        StmKind::Norec
    }

    fn begin(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform) {
        p.set_phase(Phase::OtherExec);
        tx.reset_logs();
        // Waiting for in-flight commits to drain before starting acts as a
        // back-off under contention (§3.2.1 of the paper).
        tx.snapshot = self.wait_until_even(shared, p);
    }

    fn read(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
    ) -> Result<u64, Abort> {
        p.set_phase(Phase::Reading);
        // Write-back requires a read-after-write lookup in the redo log.
        if let Some((_, value)) = tx.find_write(p, addr) {
            p.set_phase(Phase::OtherExec);
            return Ok(value);
        }
        let mut value = p.load(addr);
        // If any transaction committed since our snapshot, re-validate by
        // value and re-read until the world holds still.
        while p.load(shared.seqlock_addr()) != tx.snapshot {
            p.set_phase(Phase::ValidatingExec);
            match self.validate(shared, tx, p) {
                Ok(snapshot) => tx.snapshot = snapshot,
                Err(abort) => {
                    p.set_phase(Phase::OtherExec);
                    return Err(abort);
                }
            }
            p.set_phase(Phase::Reading);
            value = p.load(addr);
        }
        tx.push_read(p, addr, value);
        p.set_phase(Phase::OtherExec);
        Ok(value)
    }

    fn write(
        &self,
        _shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        value: u64,
    ) -> Result<(), Abort> {
        p.set_phase(Phase::Writing);
        // Keep at most one redo-log entry per address so read-after-write
        // sees the latest value and the commit write-back stays minimal.
        if let Some((index, _)) = tx.find_write(p, addr) {
            tx.set_write_value(p, index, value);
        } else {
            tx.push_write(p, addr, value, 0, false);
        }
        p.set_phase(Phase::OtherExec);
        Ok(())
    }

    /// NOrec record reads run through the shared access layer with a
    /// **record-level** bracket: value-based validation needs no per-word
    /// metadata, so [`RecordReader::before_burst`] /
    /// [`RecordReader::burst_stable`] wrap the whole burst pass in
    /// sequence-lock checks — if no transaction committed while the DMA was
    /// in flight the words form a consistent snapshot (exactly the argument
    /// the single-word read makes for its one load). On the threaded
    /// executor, where `load_block` degenerates to per-word atomic loads,
    /// the same bracket covers the whole sequence.
    fn read_record(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        out: &mut [u64],
    ) -> Result<(), Abort> {
        crate::access::read_record_with(self, shared, tx, p, addr, out)
    }

    fn commit(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
    ) -> Result<(), Abort> {
        if tx.is_read_only() {
            // Read-only transactions were continuously validated by the read
            // path; nothing to publish.
            p.set_phase(Phase::OtherExec);
            return Ok(());
        }
        p.set_phase(Phase::OtherCommit);
        // Acquire the sequence lock by moving it from our (even) snapshot to
        // an odd value. Failure means someone committed after our snapshot:
        // re-validate and retry from the new snapshot.
        loop {
            let outcome = p.compare_and_swap(shared.seqlock_addr(), tx.snapshot, tx.snapshot + 1);
            if outcome.updated {
                break;
            }
            p.set_phase(Phase::ValidatingCommit);
            match self.validate(shared, tx, p) {
                Ok(snapshot) => tx.snapshot = snapshot,
                Err(abort) => {
                    p.set_phase(Phase::OtherExec);
                    return Err(abort);
                }
            }
            p.set_phase(Phase::OtherCommit);
        }
        // Write back the redo log — the odd sequence lock serialises every
        // other commit and validation, so the shared publication pass may
        // reorder and batch stores — then release the sequence lock.
        crate::writeback::publish_redo_log(tx, p, shared.config());
        p.store(shared.seqlock_addr(), tx.snapshot + 2);
        p.set_phase(Phase::OtherExec);
        Ok(())
    }
}

impl RecordReader for Norec {
    /// Only the redo log can serve a word locally — NOrec has no per-word
    /// metadata to sample, so the token is unused.
    fn plan_word(
        &self,
        _shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
    ) -> Result<WordPlan, Abort> {
        match tx.find_write(p, addr) {
            Some((_, value)) => Ok(WordPlan::Ready(value)),
            None => Ok(WordPlan::Burst { token: 0 }),
        }
    }

    /// Catches up with concurrent commits before issuing the burst, exactly
    /// like the single-word read does before its load.
    fn before_burst(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
    ) -> Result<(), Abort> {
        while p.load(shared.seqlock_addr()) != tx.snapshot {
            p.set_phase(Phase::ValidatingExec);
            match self.validate(shared, tx, p) {
                Ok(snapshot) => tx.snapshot = snapshot,
                Err(abort) => {
                    p.set_phase(Phase::OtherExec);
                    return Err(abort);
                }
            }
            p.set_phase(Phase::Reading);
        }
        Ok(())
    }

    /// Unchanged sequence lock ⇒ no commit overlapped the burst ⇒ the
    /// staged words form a consistent snapshot; otherwise the driver
    /// re-issues the pass after [`RecordReader::before_burst`] re-validates.
    fn burst_stable(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
    ) -> Result<bool, Abort> {
        Ok(p.load(shared.seqlock_addr()) == tx.snapshot)
    }

    /// Value-based validation: remember the observed value so later
    /// validations can compare against it.
    fn accept_word(
        &self,
        _shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        value: u64,
        _token: u64,
    ) -> Result<WordCheck, Abort> {
        tx.push_read(p, addr, value);
        Ok(WordCheck::Accept)
    }

    fn reread_word(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
    ) -> Result<u64, Abort> {
        self.read(shared, tx, p, addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StmConfig;
    use pim_sim::{Dpu, DpuConfig, TaskletCtx, TaskletStats, Tier};

    struct Fixture {
        dpu: Dpu,
        shared: StmShared,
        slots: Vec<TxSlot>,
        data: Addr,
    }

    fn fixture(tasklets: usize) -> Fixture {
        let mut dpu = Dpu::new(DpuConfig::small());
        let cfg = StmConfig::small_wram(StmKind::Norec);
        let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
        let slots = (0..tasklets).map(|t| shared.register_tasklet(&mut dpu, t).unwrap()).collect();
        let data = dpu.alloc(Tier::Mram, 16).unwrap();
        Fixture { dpu, shared, slots, data }
    }

    #[test]
    fn read_your_own_write_and_write_back_at_commit() {
        let mut fx = fixture(1);
        let mut stats = TaskletStats::new();
        let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats, 0, 1, 0);
        let alg = Norec;
        alg.begin(&fx.shared, &mut fx.slots[0], &mut ctx);
        alg.write(&fx.shared, &mut fx.slots[0], &mut ctx, fx.data, 5).unwrap();
        // The store must not be visible before commit (write-back).
        assert_eq!(ctx.dpu().peek(fx.data), 0);
        assert_eq!(alg.read(&fx.shared, &mut fx.slots[0], &mut ctx, fx.data).unwrap(), 5);
        alg.commit(&fx.shared, &mut fx.slots[0], &mut ctx).unwrap();
        assert_eq!(ctx.dpu().peek(fx.data), 5);
        // The sequence lock advanced by 2 (one full commit) and is even.
        assert_eq!(ctx.dpu().peek(fx.shared.seqlock_addr()), 2);
    }

    #[test]
    fn concurrent_commit_forces_value_validation_and_abort() {
        let mut fx = fixture(2);
        let mut stats0 = TaskletStats::new();
        let mut stats1 = TaskletStats::new();
        let alg = Norec;
        let (slot0, rest) = fx.slots.split_at_mut(1);
        let slot0 = &mut slot0[0];
        let slot1 = &mut rest[0];

        // T0 reads data[0].
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats0, 0, 2, 0);
            alg.begin(&fx.shared, slot0, &mut ctx);
            assert_eq!(alg.read(&fx.shared, slot0, &mut ctx, fx.data).unwrap(), 0);
        }
        // T1 overwrites data[0] and commits.
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats1, 1, 2, 0);
            alg.begin(&fx.shared, slot1, &mut ctx);
            alg.write(&fx.shared, slot1, &mut ctx, fx.data, 99).unwrap();
            alg.commit(&fx.shared, slot1, &mut ctx).unwrap();
        }
        // T0 now writes and tries to commit: value validation must fail.
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats0, 0, 2, 0);
            alg.write(&fx.shared, slot0, &mut ctx, fx.data.offset(1), 7).unwrap();
            let err = alg.commit(&fx.shared, slot0, &mut ctx).unwrap_err();
            assert_eq!(err.reason, AbortReason::ValidationFailed);
            // T0's write must not have leaked.
            assert_eq!(ctx.dpu().peek(fx.data.offset(1)), 0);
        }
    }

    #[test]
    fn silent_rereads_of_unchanged_data_survive_concurrent_commits() {
        // A concurrent commit to an *unrelated* location changes the sequence
        // lock; value-based validation must let the reader continue.
        let mut fx = fixture(2);
        let mut stats0 = TaskletStats::new();
        let mut stats1 = TaskletStats::new();
        let alg = Norec;
        let (slot0, rest) = fx.slots.split_at_mut(1);
        let slot0 = &mut slot0[0];
        let slot1 = &mut rest[0];

        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats0, 0, 2, 0);
            alg.begin(&fx.shared, slot0, &mut ctx);
            assert_eq!(alg.read(&fx.shared, slot0, &mut ctx, fx.data).unwrap(), 0);
        }
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats1, 1, 2, 0);
            alg.begin(&fx.shared, slot1, &mut ctx);
            alg.write(&fx.shared, slot1, &mut ctx, fx.data.offset(8), 123).unwrap();
            alg.commit(&fx.shared, slot1, &mut ctx).unwrap();
        }
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats0, 0, 2, 0);
            // Reading another word notices the sequence-lock change, validates
            // by value, and succeeds because data[0] still holds 0.
            assert_eq!(alg.read(&fx.shared, slot0, &mut ctx, fx.data.offset(2)).unwrap(), 0);
            alg.write(&fx.shared, slot0, &mut ctx, fx.data.offset(3), 1).unwrap();
            alg.commit(&fx.shared, slot0, &mut ctx).unwrap();
            assert_eq!(ctx.dpu().peek(fx.data.offset(3)), 1);
        }
    }

    #[test]
    fn read_only_transactions_do_not_touch_the_sequence_lock() {
        let mut fx = fixture(1);
        let mut stats = TaskletStats::new();
        let alg = Norec;
        let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats, 0, 1, 0);
        alg.begin(&fx.shared, &mut fx.slots[0], &mut ctx);
        alg.read(&fx.shared, &mut fx.slots[0], &mut ctx, fx.data).unwrap();
        alg.commit(&fx.shared, &mut fx.slots[0], &mut ctx).unwrap();
        assert_eq!(ctx.dpu().peek(fx.shared.seqlock_addr()), 0);
    }

    #[test]
    fn repeated_writes_to_same_address_keep_one_log_entry() {
        let mut fx = fixture(1);
        let mut stats = TaskletStats::new();
        let alg = Norec;
        let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats, 0, 1, 0);
        alg.begin(&fx.shared, &mut fx.slots[0], &mut ctx);
        for v in 1..=5 {
            alg.write(&fx.shared, &mut fx.slots[0], &mut ctx, fx.data, v).unwrap();
        }
        assert_eq!(fx.slots[0].write_set_len(), 1);
        assert_eq!(alg.read(&fx.shared, &mut fx.slots[0], &mut ctx, fx.data).unwrap(), 5);
        alg.commit(&fx.shared, &mut fx.slots[0], &mut ctx).unwrap();
        assert_eq!(ctx.dpu().peek(fx.data), 5);
    }
}
