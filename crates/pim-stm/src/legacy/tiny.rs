//! The Tiny design family: TinySTM-style ownership records with invisible
//! reads, a global version clock and snapshot extension (Felber, Fetzer,
//! Riegel — PPoPP 2008 / TPDS 2010), ported to the UPMEM platform.
//!
//! Three variants cover the ORec + invisible-reads subtree of the paper's
//! taxonomy:
//!
//! * **ETL-WT** — encounter-time locking, write-through (undo log);
//! * **ETL-WB** — encounter-time locking, write-back (redo log);
//! * **CTL-WB** — commit-time locking, write-back.
//!
//! Every memory word is covered by an entry of a hashed lock table (see
//! [`crate::locktable`]); an unlocked entry carries the commit timestamp
//! (*version*) of the covered words. Transactions read against a snapshot
//! bound `rv` and may *extend* the snapshot by validating their read set when
//! they encounter a newer version, which avoids many unnecessary aborts
//! compared to TL2-style designs.

use pim_sim::{Addr, Phase};

use crate::access::{RecordReader, WordCheck, WordPlan};
use crate::config::{LockTiming, StmKind, WritePolicy};
use crate::error::{Abort, AbortReason};
use crate::locktable::OrecWord;
use crate::platform::Platform;
use crate::shared::StmShared;
use crate::txslot::TxSlot;
use crate::TmAlgorithm;

/// Bounded number of lock/value re-read attempts a single transactional read
/// performs before giving up and aborting.
const READ_RETRIES: u32 = 8;

/// A member of the Tiny family, parameterised by lock timing and write
/// policy.
#[derive(Debug, Clone, Copy)]
pub struct Tiny {
    timing: LockTiming,
    policy: WritePolicy,
}

impl Tiny {
    /// Creates the variant with the given lock timing and write policy.
    ///
    /// Write-through is only sound with encounter-time locking (a
    /// commit-time-locking transaction may still abort after having exposed
    /// its writes); this invariant is checked at construction.
    pub const fn new(timing: LockTiming, policy: WritePolicy) -> Self {
        assert!(
            !(matches!(policy, WritePolicy::WriteThrough) && matches!(timing, LockTiming::Commit)),
            "write-through requires encounter-time locking (see Fig. 2 of the paper)"
        );
        Tiny { timing, policy }
    }

    /// Lock timing of this variant.
    pub fn timing(&self) -> LockTiming {
        self.timing
    }

    /// Write policy of this variant.
    pub fn policy(&self) -> WritePolicy {
        self.policy
    }

    /// Value of a word whose ORec this transaction already holds (see
    /// [`crate::access::owned_value`], shared with VR and the batched plan).
    fn owned_value(&self, tx: &mut TxSlot, p: &mut dyn Platform, addr: Addr) -> u64 {
        crate::access::owned_value(self.policy, tx, p, addr)
    }

    /// Checks that every read-set entry still holds the version observed when
    /// it was read (or is locked by this transaction).
    fn readset_valid(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform) -> bool {
        let me = p.tasklet_id();
        for i in 0..tx.read_set_len() {
            let entry = tx.read_entry(p, i);
            let orec = OrecWord::from_raw(p.load(shared.orec_addr(entry.addr)));
            if orec.is_locked_by(me) {
                continue;
            }
            if orec.is_locked() || orec.version() != entry.aux {
                return false;
            }
        }
        true
    }

    /// Attempts to extend the snapshot bound to the current clock value.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the read set is no longer valid.
    fn extend(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
    ) -> Result<(), Abort> {
        let now = p.load(shared.clock_addr());
        if self.readset_valid(shared, tx, p) {
            tx.snapshot = now;
            Ok(())
        } else {
            Err(AbortReason::ValidationFailed.into())
        }
    }

    /// Undoes write-through stores and restores the ownership records this
    /// transaction acquired, leaving shared state as if the attempt never
    /// ran.
    fn rollback(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform) {
        // Undo data writes first so no other transaction can observe dirty
        // values through an already-released ORec.
        if self.policy == WritePolicy::WriteThrough {
            for i in (0..tx.write_set_len()).rev() {
                let entry = tx.write_entry(p, i);
                p.store(entry.addr, entry.value);
            }
        }
        for i in 0..tx.write_set_len() {
            let entry = tx.write_entry(p, i);
            if entry.flag {
                p.store(shared.orec_addr(entry.addr), entry.extra);
            }
        }
    }

    /// Convenience: roll back and return the abort.
    fn abort(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        reason: AbortReason,
    ) -> Abort {
        self.rollback(shared, tx, p);
        p.set_phase(Phase::OtherExec);
        Abort::new(reason)
    }

    /// Acquires the ORec covering `addr` for this transaction.
    ///
    /// Returns `Some(previous_raw_word)` if the ORec was newly acquired,
    /// `None` if it was already held by this transaction.
    ///
    /// # Errors
    ///
    /// Returns the abort reason (without rolling back) on conflict.
    fn acquire_orec(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        validate_phase: Phase,
    ) -> Result<Option<u64>, AbortReason> {
        let me = p.tasklet_id();
        let orec_addr = shared.orec_addr(addr);
        let orec = OrecWord::from_raw(p.load(orec_addr));
        if orec.is_locked_by(me) {
            return Ok(None);
        }
        if orec.is_locked() {
            return Err(AbortReason::WriteConflict);
        }
        if orec.version() > tx.snapshot {
            // A newer committed version exists: extend the snapshot (validate
            // the read set) or give up.
            let prev_phase = p.set_phase(validate_phase);
            let extended = self.extend(shared, tx, p);
            p.set_phase(prev_phase);
            if extended.is_err() {
                return Err(AbortReason::ValidationFailed);
            }
        }
        let outcome = p.compare_and_swap(orec_addr, orec.raw(), OrecWord::locked_by(me).raw());
        if outcome.updated {
            Ok(Some(orec.raw()))
        } else {
            Err(AbortReason::WriteConflict)
        }
    }
}

impl TmAlgorithm for Tiny {
    fn kind(&self) -> StmKind {
        match (self.timing, self.policy) {
            (LockTiming::Commit, WritePolicy::WriteBack) => StmKind::TinyCtlWb,
            (LockTiming::Encounter, WritePolicy::WriteBack) => StmKind::TinyEtlWb,
            (LockTiming::Encounter, WritePolicy::WriteThrough) => StmKind::TinyEtlWt,
            (LockTiming::Commit, WritePolicy::WriteThrough) => {
                unreachable!("rejected by Tiny::new")
            }
        }
    }

    fn begin(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform) {
        p.set_phase(Phase::OtherExec);
        tx.reset_logs();
        tx.snapshot = p.load(shared.clock_addr());
    }

    fn read(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
    ) -> Result<u64, Abort> {
        p.set_phase(Phase::Reading);
        let me = p.tasklet_id();

        // Commit-time locking buffers writes without locking, so reads must
        // first look for an earlier write by this very transaction.
        if self.timing == LockTiming::Commit {
            if let Some((_, value)) = tx.find_write(p, addr) {
                p.set_phase(Phase::OtherExec);
                return Ok(value);
            }
        }

        let orec_addr = shared.orec_addr(addr);
        let mut orec = OrecWord::from_raw(p.load(orec_addr));

        // Encounter-time locking: the ORec may already be ours.
        if orec.is_locked_by(me) {
            let value = self.owned_value(tx, p, addr);
            p.set_phase(Phase::OtherExec);
            return Ok(value);
        }

        for _ in 0..READ_RETRIES {
            if orec.is_locked() {
                return Err(self.abort(shared, tx, p, AbortReason::ReadConflict));
            }
            if orec.version() > tx.snapshot {
                p.set_phase(Phase::ValidatingExec);
                if self.extend(shared, tx, p).is_err() {
                    return Err(self.abort(shared, tx, p, AbortReason::ValidationFailed));
                }
                p.set_phase(Phase::Reading);
            }
            let value = p.load(addr);
            let recheck = OrecWord::from_raw(p.load(orec_addr));
            if recheck.raw() == orec.raw() {
                tx.push_read(p, addr, orec.version());
                p.set_phase(Phase::OtherExec);
                return Ok(value);
            }
            // The ORec changed between the two loads (a concurrent commit or
            // lock); retry against the new ORec contents.
            orec = recheck;
        }
        Err(self.abort(shared, tx, p, AbortReason::ReadConflict))
    }

    fn write(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        value: u64,
    ) -> Result<(), Abort> {
        p.set_phase(Phase::Writing);
        match self.timing {
            LockTiming::Commit => {
                // Just buffer; locks are taken at commit time.
                if let Some((index, _)) = tx.find_write(p, addr) {
                    tx.set_write_value(p, index, value);
                } else {
                    tx.push_write(p, addr, value, 0, false);
                }
            }
            LockTiming::Encounter => {
                let acquired = match self.acquire_orec(shared, tx, p, addr, Phase::ValidatingExec) {
                    Ok(acquired) => acquired,
                    Err(reason) => return Err(self.abort(shared, tx, p, reason)),
                };
                match self.policy {
                    WritePolicy::WriteBack => {
                        let prev = acquired.unwrap_or(0);
                        if let Some((index, _)) = tx.find_write(p, addr) {
                            tx.set_write_value(p, index, value);
                            if let Some(prev) = acquired {
                                // First acquisition happened through an entry
                                // for another (aliased) address; remember the
                                // previous ORec on this one instead.
                                tx.set_write_extra_flag(p, index, prev, true);
                            }
                        } else {
                            tx.push_write(p, addr, value, prev, acquired.is_some());
                        }
                    }
                    WritePolicy::WriteThrough => {
                        // Log the old value once, then update memory in place.
                        if tx.find_write(p, addr).is_none() {
                            let old = p.load(addr);
                            tx.push_write(p, addr, old, acquired.unwrap_or(0), acquired.is_some());
                        }
                        p.store(addr, value);
                    }
                }
            }
        }
        p.set_phase(Phase::OtherExec);
        Ok(())
    }

    fn commit(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
    ) -> Result<(), Abort> {
        if tx.is_read_only() {
            p.set_phase(Phase::OtherExec);
            return Ok(());
        }
        p.set_phase(Phase::OtherCommit);
        let me = p.tasklet_id();

        // Commit-time locking acquires every ORec in the write set now.
        if self.timing == LockTiming::Commit {
            for i in 0..tx.write_set_len() {
                let entry = tx.write_entry(p, i);
                let orec = OrecWord::from_raw(p.load(shared.orec_addr(entry.addr)));
                if orec.is_locked_by(me) {
                    continue;
                }
                match self.acquire_orec(shared, tx, p, entry.addr, Phase::ValidatingCommit) {
                    Ok(Some(prev)) => tx.set_write_extra_flag(p, i, prev, true),
                    Ok(None) => {}
                    Err(reason) => return Err(self.abort(shared, tx, p, reason)),
                }
            }
            p.set_phase(Phase::OtherCommit);
        }

        // Take a new commit timestamp from the global clock.
        let wv = p.fetch_add(shared.clock_addr(), 1) + 1;

        // If other transactions committed since our snapshot, the read set
        // must still be valid.
        if wv > tx.snapshot + 1 {
            p.set_phase(Phase::ValidatingCommit);
            if !self.readset_valid(shared, tx, p) {
                return Err(self.abort(shared, tx, p, AbortReason::ValidationFailed));
            }
            p.set_phase(Phase::OtherCommit);
        }

        // Publish buffered writes (write-back only; write-through already
        // updated memory at encounter time). All ORecs covering the log are
        // held, so the shared publication pass may reorder and batch stores.
        if self.policy == WritePolicy::WriteBack {
            crate::writeback::publish_redo_log(tx, p, shared.config());
        }

        // Release every ORec we acquired, stamping it with the new version.
        let release = OrecWord::unlocked(wv).raw();
        for i in 0..tx.write_set_len() {
            let entry = tx.write_entry(p, i);
            if entry.flag {
                p.store(shared.orec_addr(entry.addr), release);
            }
        }
        p.set_phase(Phase::OtherExec);
        Ok(())
    }

    /// Tiny record reads run through the shared access layer: the per-word
    /// ORec protocol stays intact (sample at plan time, bit-identical
    /// re-check after the burst, word-wise fallback when the ORec moved),
    /// but the data crosses the MRAM port as one burst per contiguous run.
    fn read_record(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        out: &mut [u64],
    ) -> Result<(), Abort> {
        crate::access::read_record_with(self, shared, tx, p, addr, out)
    }

    fn cancel(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform) {
        self.rollback(shared, tx, p);
        p.set_phase(Phase::OtherExec);
    }
}

impl RecordReader for Tiny {
    /// Mirrors the first half of [`Tiny::read`]: serve redo-log / own-lock
    /// words locally, abort on a foreign lock, extend a stale snapshot, and
    /// otherwise hand back the sampled ORec as the re-check token.
    fn plan_word(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
    ) -> Result<WordPlan, Abort> {
        let me = p.tasklet_id();
        if self.timing == LockTiming::Commit {
            if let Some((_, value)) = tx.find_write(p, addr) {
                return Ok(WordPlan::Ready(value));
            }
        }
        let orec = OrecWord::from_raw(p.load(shared.orec_addr(addr)));
        if orec.is_locked_by(me) {
            let value = self.owned_value(tx, p, addr);
            return Ok(WordPlan::Ready(value));
        }
        if orec.is_locked() {
            return Err(self.abort(shared, tx, p, AbortReason::ReadConflict));
        }
        if orec.version() > tx.snapshot {
            p.set_phase(Phase::ValidatingExec);
            if self.extend(shared, tx, p).is_err() {
                return Err(self.abort(shared, tx, p, AbortReason::ValidationFailed));
            }
            p.set_phase(Phase::Reading);
        }
        Ok(WordPlan::Burst { token: orec.raw() })
    }

    /// Mirrors the second half of [`Tiny::read`]'s bracket: the staged value
    /// is consistent iff the ORec is bit-identical to the plan-time sample.
    fn accept_word(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        _value: u64,
        token: u64,
    ) -> Result<WordCheck, Abort> {
        let recheck = p.load(shared.orec_addr(addr));
        if recheck == token {
            tx.push_read(p, addr, OrecWord::from_raw(token).version());
            Ok(WordCheck::Accept)
        } else {
            Ok(WordCheck::Reread)
        }
    }

    fn reread_word(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
    ) -> Result<u64, Abort> {
        self.read(shared, tx, p, addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StmConfig;
    use pim_sim::{Dpu, DpuConfig, TaskletCtx, TaskletStats, Tier};

    const VARIANTS: [StmKind; 3] = [StmKind::TinyCtlWb, StmKind::TinyEtlWb, StmKind::TinyEtlWt];

    struct Fixture {
        dpu: Dpu,
        shared: StmShared,
        slots: Vec<TxSlot>,
        data: Addr,
    }

    fn fixture(kind: StmKind, tasklets: usize) -> (Fixture, Tiny) {
        let mut dpu = Dpu::new(DpuConfig::small());
        let cfg = StmConfig::small_wram(kind);
        let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
        let slots = (0..tasklets).map(|t| shared.register_tasklet(&mut dpu, t).unwrap()).collect();
        let data = dpu.alloc(Tier::Mram, 16).unwrap();
        let tiny = match kind {
            StmKind::TinyCtlWb => Tiny::new(LockTiming::Commit, WritePolicy::WriteBack),
            StmKind::TinyEtlWb => Tiny::new(LockTiming::Encounter, WritePolicy::WriteBack),
            StmKind::TinyEtlWt => Tiny::new(LockTiming::Encounter, WritePolicy::WriteThrough),
            _ => unreachable!(),
        };
        (Fixture { dpu, shared, slots, data }, tiny)
    }

    #[test]
    fn kinds_match_parameters() {
        for kind in VARIANTS {
            let (_, tiny) = fixture(kind, 1);
            assert_eq!(tiny.kind(), kind);
        }
    }

    #[test]
    fn read_write_commit_updates_memory_and_versions() {
        for kind in VARIANTS {
            let (mut fx, tiny) = fixture(kind, 1);
            let mut stats = TaskletStats::new();
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats, 0, 1, 0);
            let slot = &mut fx.slots[0];
            tiny.begin(&fx.shared, slot, &mut ctx);
            assert_eq!(tiny.read(&fx.shared, slot, &mut ctx, fx.data).unwrap(), 0);
            tiny.write(&fx.shared, slot, &mut ctx, fx.data, 41).unwrap();
            assert_eq!(
                tiny.read(&fx.shared, slot, &mut ctx, fx.data).unwrap(),
                41,
                "{kind}: read-after-write must see the new value"
            );
            tiny.commit(&fx.shared, slot, &mut ctx).unwrap();
            assert_eq!(ctx.dpu().peek(fx.data), 41, "{kind}");
            // The global clock advanced and the covering ORec carries the new
            // version, unlocked.
            assert_eq!(ctx.dpu().peek(fx.shared.clock_addr()), 1, "{kind}");
            let orec = OrecWord::from_raw(ctx.dpu().peek(fx.shared.orec_addr(fx.data)));
            assert!(!orec.is_locked(), "{kind}: ORec must be released after commit");
            assert_eq!(orec.version(), 1, "{kind}");
        }
    }

    #[test]
    fn write_policy_controls_when_stores_become_visible() {
        let (mut fx, wb) = fixture(StmKind::TinyEtlWb, 1);
        let mut stats = TaskletStats::new();
        let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats, 0, 1, 0);
        wb.begin(&fx.shared, &mut fx.slots[0], &mut ctx);
        wb.write(&fx.shared, &mut fx.slots[0], &mut ctx, fx.data, 9).unwrap();
        assert_eq!(ctx.dpu().peek(fx.data), 0, "write-back defers the store to commit");

        let (mut fx, wt) = fixture(StmKind::TinyEtlWt, 1);
        let mut stats = TaskletStats::new();
        let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats, 0, 1, 0);
        wt.begin(&fx.shared, &mut fx.slots[0], &mut ctx);
        wt.write(&fx.shared, &mut fx.slots[0], &mut ctx, fx.data, 9).unwrap();
        assert_eq!(ctx.dpu().peek(fx.data), 9, "write-through stores immediately");
    }

    #[test]
    fn encounter_time_locking_detects_conflicts_at_write_time() {
        let (mut fx, tiny) = fixture(StmKind::TinyEtlWb, 2);
        let mut stats0 = TaskletStats::new();
        let mut stats1 = TaskletStats::new();
        let (s0, rest) = fx.slots.split_at_mut(1);
        let (slot0, slot1) = (&mut s0[0], &mut rest[0]);
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats0, 0, 2, 0);
            tiny.begin(&fx.shared, slot0, &mut ctx);
            tiny.write(&fx.shared, slot0, &mut ctx, fx.data, 1).unwrap();
        }
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats1, 1, 2, 0);
            tiny.begin(&fx.shared, slot1, &mut ctx);
            let err = tiny.write(&fx.shared, slot1, &mut ctx, fx.data, 2).unwrap_err();
            assert_eq!(err.reason, AbortReason::WriteConflict);
            // Tasklet 1 also cannot read the locked location.
            tiny.begin(&fx.shared, slot1, &mut ctx);
            let err = tiny.read(&fx.shared, slot1, &mut ctx, fx.data).unwrap_err();
            assert_eq!(err.reason, AbortReason::ReadConflict);
        }
    }

    #[test]
    fn commit_time_locking_defers_conflicts_to_commit() {
        let (mut fx, tiny) = fixture(StmKind::TinyCtlWb, 2);
        let mut stats0 = TaskletStats::new();
        let mut stats1 = TaskletStats::new();
        let (s0, rest) = fx.slots.split_at_mut(1);
        let (slot0, slot1) = (&mut s0[0], &mut rest[0]);
        // Both transactions read then write the same word; with CTL neither
        // notices until commit, and the loser aborts on validation.
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats0, 0, 2, 0);
            tiny.begin(&fx.shared, slot0, &mut ctx);
            assert_eq!(tiny.read(&fx.shared, slot0, &mut ctx, fx.data).unwrap(), 0);
            tiny.write(&fx.shared, slot0, &mut ctx, fx.data, 10).unwrap();
        }
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats1, 1, 2, 0);
            tiny.begin(&fx.shared, slot1, &mut ctx);
            assert_eq!(tiny.read(&fx.shared, slot1, &mut ctx, fx.data).unwrap(), 0);
            tiny.write(&fx.shared, slot1, &mut ctx, fx.data, 20).unwrap();
            tiny.commit(&fx.shared, slot1, &mut ctx).unwrap();
            assert_eq!(ctx.dpu().peek(fx.data), 20);
        }
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats0, 0, 2, 0);
            let err = tiny.commit(&fx.shared, slot0, &mut ctx).unwrap_err();
            assert_eq!(err.reason, AbortReason::ValidationFailed);
            // The winner's value survives; the loser's buffered write did not
            // leak and its ORec was released.
            assert_eq!(ctx.dpu().peek(fx.data), 20);
            let orec = OrecWord::from_raw(ctx.dpu().peek(fx.shared.orec_addr(fx.data)));
            assert!(!orec.is_locked());
        }
    }

    #[test]
    fn write_through_abort_restores_old_values() {
        let (mut fx, tiny) = fixture(StmKind::TinyEtlWt, 2);
        fx.dpu.poke(fx.data, 7);
        fx.dpu.poke(fx.data.offset(1), 8);
        let mut stats0 = TaskletStats::new();
        let mut stats1 = TaskletStats::new();
        let (s0, rest) = fx.slots.split_at_mut(1);
        let (slot0, slot1) = (&mut s0[0], &mut rest[0]);
        // T0 writes two words through to memory...
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats0, 0, 2, 0);
            tiny.begin(&fx.shared, slot0, &mut ctx);
            tiny.write(&fx.shared, slot0, &mut ctx, fx.data, 100).unwrap();
            tiny.write(&fx.shared, slot0, &mut ctx, fx.data.offset(1), 200).unwrap();
            assert_eq!(ctx.dpu().peek(fx.data), 100);
        }
        // ...then aborts because another word it wants is locked by T1.
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats1, 1, 2, 0);
            tiny.begin(&fx.shared, slot1, &mut ctx);
            tiny.write(&fx.shared, slot1, &mut ctx, fx.data.offset(2), 1).unwrap();
        }
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats0, 0, 2, 0);
            let err = tiny.write(&fx.shared, slot0, &mut ctx, fx.data.offset(2), 300).unwrap_err();
            assert_eq!(err.reason, AbortReason::WriteConflict);
            // The undo log restored the original contents and released ORecs.
            assert_eq!(ctx.dpu().peek(fx.data), 7);
            assert_eq!(ctx.dpu().peek(fx.data.offset(1)), 8);
            let orec = OrecWord::from_raw(ctx.dpu().peek(fx.shared.orec_addr(fx.data)));
            assert!(!orec.is_locked());
        }
    }

    #[test]
    fn snapshot_extension_spares_reads_of_unrelated_updates() {
        // T1 commits to an unrelated word, bumping the clock past T0's
        // snapshot. T0's next read of a *fresh* location (version 0 <= rv) is
        // fine, and a read of the *updated* location triggers an extension
        // that succeeds because T0's read set is untouched.
        let (mut fx, tiny) = fixture(StmKind::TinyEtlWb, 2);
        let mut stats0 = TaskletStats::new();
        let mut stats1 = TaskletStats::new();
        let (s0, rest) = fx.slots.split_at_mut(1);
        let (slot0, slot1) = (&mut s0[0], &mut rest[0]);
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats0, 0, 2, 0);
            tiny.begin(&fx.shared, slot0, &mut ctx);
            assert_eq!(tiny.read(&fx.shared, slot0, &mut ctx, fx.data).unwrap(), 0);
        }
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats1, 1, 2, 0);
            tiny.begin(&fx.shared, slot1, &mut ctx);
            tiny.write(&fx.shared, slot1, &mut ctx, fx.data.offset(8), 5).unwrap();
            tiny.commit(&fx.shared, slot1, &mut ctx).unwrap();
        }
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats0, 0, 2, 0);
            // Reading the word T1 just committed (version 1 > rv 0) forces an
            // extension, which succeeds.
            assert_eq!(tiny.read(&fx.shared, slot0, &mut ctx, fx.data.offset(8)).unwrap(), 5);
            tiny.write(&fx.shared, slot0, &mut ctx, fx.data.offset(1), 1).unwrap();
            tiny.commit(&fx.shared, slot0, &mut ctx).unwrap();
            assert_eq!(ctx.dpu().peek(fx.data.offset(1)), 1);
        }
    }

    #[test]
    fn stale_read_set_fails_extension_and_aborts() {
        let (mut fx, tiny) = fixture(StmKind::TinyEtlWb, 2);
        let mut stats0 = TaskletStats::new();
        let mut stats1 = TaskletStats::new();
        let (s0, rest) = fx.slots.split_at_mut(1);
        let (slot0, slot1) = (&mut s0[0], &mut rest[0]);
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats0, 0, 2, 0);
            tiny.begin(&fx.shared, slot0, &mut ctx);
            assert_eq!(tiny.read(&fx.shared, slot0, &mut ctx, fx.data).unwrap(), 0);
        }
        // T1 overwrites the word T0 read.
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats1, 1, 2, 0);
            tiny.begin(&fx.shared, slot1, &mut ctx);
            tiny.write(&fx.shared, slot1, &mut ctx, fx.data, 77).unwrap();
            tiny.commit(&fx.shared, slot1, &mut ctx).unwrap();
        }
        // T0 now reads the updated word: extension validates the stale read
        // set and must abort.
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats0, 0, 2, 0);
            let err = tiny.read(&fx.shared, slot0, &mut ctx, fx.data).unwrap_err();
            assert_eq!(err.reason, AbortReason::ValidationFailed);
        }
    }

    #[test]
    #[should_panic(expected = "write-through requires encounter-time locking")]
    fn ctl_write_through_is_rejected() {
        let _ = Tiny::new(LockTiming::Commit, WritePolicy::WriteThrough);
    }
}
