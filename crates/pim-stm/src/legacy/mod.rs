//! The retired monolithic STM implementations, frozen as a differential
//! oracle.
//!
//! Before the policy redesign ([`crate::policy`]) the seven designs were
//! implemented as three hand-written [`TmAlgorithm`] families — [`Tiny`],
//! [`Vr`] and [`Norec`] — with heavy duplication between the first two.
//! The production path no longer reaches this code: [`crate::algorithm_for`]
//! resolves every [`crate::StmKind`] to a [`crate::policy::ComposedTm`]
//! instantiation.
//!
//! This module survives for exactly one purpose: the **policy equivalence
//! suite** (`tests/policy_equivalence.rs`) replays identical seeded runs
//! through both engines and asserts that commits, per-reason abort
//! histograms and final memory agree bit-for-bit on the deterministic
//! simulator. The code here is the pre-redesign behaviour, verbatim; do not
//! "improve" it — any legitimate behaviour change belongs in
//! [`crate::policy`], where the oracle comparison will flag it for an
//! explicit test-side acknowledgement. Once the composed engine has carried
//! a few PRs' worth of changes of its own, this module (and the comparison
//! suite's oracle half) can be deleted.

pub mod norec;
pub mod tiny;
pub mod vr;

pub use norec::Norec;
pub use tiny::Tiny;
pub use vr::Vr;

use crate::config::{LockTiming, StmKind, WritePolicy};
use crate::TmAlgorithm;

static NOREC: Norec = Norec;
static TINY_CTL_WB: Tiny = Tiny::new(LockTiming::Commit, WritePolicy::WriteBack);
static TINY_ETL_WB: Tiny = Tiny::new(LockTiming::Encounter, WritePolicy::WriteBack);
static TINY_ETL_WT: Tiny = Tiny::new(LockTiming::Encounter, WritePolicy::WriteThrough);
static VR_CTL_WB: Vr = Vr::new(LockTiming::Commit, WritePolicy::WriteBack);
static VR_ETL_WB: Vr = Vr::new(LockTiming::Encounter, WritePolicy::WriteBack);
static VR_ETL_WT: Vr = Vr::new(LockTiming::Encounter, WritePolicy::WriteThrough);

/// Returns the *pre-redesign* implementation of `kind` — the oracle half of
/// a differential test. Production code wants [`crate::algorithm_for`].
pub fn legacy_algorithm_for(kind: StmKind) -> &'static dyn TmAlgorithm {
    match kind {
        StmKind::Norec => &NOREC,
        StmKind::TinyCtlWb => &TINY_CTL_WB,
        StmKind::TinyEtlWb => &TINY_ETL_WB,
        StmKind::TinyEtlWt => &TINY_ETL_WT,
        StmKind::VrCtlWb => &VR_CTL_WB,
        StmKind::VrEtlWb => &VR_ETL_WB,
        StmKind::VrEtlWt => &VR_ETL_WT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_factory_returns_matching_kinds() {
        for kind in StmKind::ALL {
            assert_eq!(legacy_algorithm_for(kind).kind(), kind);
        }
    }
}
