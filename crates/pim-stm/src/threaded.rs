//! A threaded executor: the same STM algorithms running on real OS threads
//! over atomic shared memory.
//!
//! The deterministic simulator in [`pim_sim`] is what regenerates the paper's
//! figures, but it interleaves tasklets cooperatively. To gain confidence
//! that the algorithms are actually safe under arbitrary interleavings — and
//! to give library users something they can run natively — this module
//! provides [`ThreadedDpu`]: a "DPU" whose WRAM and MRAM are arrays of
//! [`AtomicU64`] and whose tasklets are `std::thread`s. The
//! [`crate::Platform`] implementation maps `atomic_update` onto a
//! compare-and-swap loop (the role the acquire/release bit register plays on
//! real hardware).
//!
//! Simulated cycles are *not* modelled here, but execution **is** profiled:
//! each tasklet thread charges monotonic wall-clock nanoseconds into the
//! same [`ExecProfile`] schema the simulator fills with cycles (tagged
//! [`TimeDomain::WallNanos`] so the units are never confused), including the
//! abort-reason histogram, per-phase time, MRAM-addressed DMA traffic and
//! spin-wait time. Threaded runs are therefore a second performance signal —
//! directly comparable on counts and structure, not on absolute time — in
//! addition to being the correctness cross-check.

pub mod affinity;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use pim_sim::{Addr, AllocError, Phase, Tier};

use crate::algorithm::{algorithm_for, TmAlgorithm, TxView};
use crate::config::StmConfig;
use crate::error::{Abort, AbortReason, RunError};
use crate::platform::{AtomicOutcome, Platform};
use crate::profile::{ExecProfile, TimeDomain};
use crate::shared::{MetadataAllocator, StmShared};
use crate::tune::Tuner;
use crate::txslot::TxSlot;
use crate::var::{self, TArray, TVar, TxRecord};

pub use crate::rwlock::MAX_TASKLETS;

/// Default WRAM capacity of a threaded DPU, in words (matches UPMEM: 64 KB).
pub const DEFAULT_WRAM_WORDS: u32 = 64 * 1024 / 8;
/// Default MRAM capacity of a threaded DPU, in words. Smaller than the real
/// 64 MB bank to keep test fixtures cheap; use
/// [`ThreadedDpu::with_capacity`] for the full size.
pub const DEFAULT_MRAM_WORDS: u32 = 1 << 20;

/// Monotonic nanoseconds since the process-wide epoch (first call wins).
///
/// This is the threaded executor's [`Platform::timestamp`] clock **and** the
/// clock a service driver should stamp arrivals/dispatches with, so queueing
/// delay (`dispatch − arrival`) and STM service time (`commit −
/// first_attempt`) are measured on one time base across all threads.
pub fn wall_clock_nanos() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Atomic word storage shared by all tasklet threads.
#[derive(Debug)]
struct SharedMemory {
    wram: Vec<AtomicU64>,
    mram: Vec<AtomicU64>,
    allocator: Mutex<[u32; 2]>,
}

impl SharedMemory {
    fn new(wram_words: u32, mram_words: u32) -> Self {
        SharedMemory {
            wram: (0..wram_words).map(|_| AtomicU64::new(0)).collect(),
            mram: (0..mram_words).map(|_| AtomicU64::new(0)).collect(),
            allocator: Mutex::new([0, 0]),
        }
    }

    fn bank(&self, tier: Tier) -> &[AtomicU64] {
        match tier {
            Tier::Wram => &self.wram,
            Tier::Mram => &self.mram,
        }
    }

    fn cell(&self, addr: Addr) -> &AtomicU64 {
        &self.bank(addr.tier)[addr.word as usize]
    }

    fn alloc(&self, tier: Tier, words: u32) -> Result<Addr, AllocError> {
        let mut state = self.allocator.lock().expect("allocator mutex poisoned");
        let idx = match tier {
            Tier::Wram => 0,
            Tier::Mram => 1,
        };
        let capacity = self.bank(tier).len() as u32;
        let used = state[idx];
        if words > capacity - used {
            return Err(AllocError {
                tier,
                requested_words: words,
                available_words: capacity - used,
            });
        }
        state[idx] += words;
        Ok(Addr { tier, word: used })
    }
}

impl MetadataAllocator for &SharedMemory {
    fn alloc_words(&mut self, tier: Tier, words: u32) -> Result<Addr, AllocError> {
        self.alloc(tier, words)
    }
}

/// Per-thread [`Platform`] over the shared atomic memory.
///
/// Besides executing operations, it maintains this tasklet's
/// [`ExecProfile`] in wall-clock nanoseconds: time accrues to the current
/// [`Phase`] (buffered per attempt and collapsed into wasted time on abort,
/// exactly like the simulator's cycle accounting), MRAM-addressed traffic is
/// counted as DMA setups/words with the simulator's per-transfer rules, and
/// spin-waits are recorded as back-off time.
#[derive(Debug)]
pub struct ThreadPlatform<'a> {
    memory: &'a SharedMemory,
    profile: &'a mut ExecProfile,
    tasklet_id: usize,
    phase: Phase,
    /// Start of the interval not yet charged to any phase.
    mark: Instant,
    /// Whether an attempt is being accounted (mirrors the simulator's
    /// transactional flag).
    in_attempt: bool,
}

impl<'a> ThreadPlatform<'a> {
    fn new(memory: &'a SharedMemory, profile: &'a mut ExecProfile, tasklet_id: usize) -> Self {
        ThreadPlatform {
            memory,
            profile,
            tasklet_id,
            phase: Phase::OtherExec,
            mark: Instant::now(),
            in_attempt: false,
        }
    }

    /// Charges the wall-clock time since the last boundary to the current
    /// phase and starts a new interval. One clock read serves both purposes
    /// so no time falls between intervals.
    fn flush_elapsed(&mut self) {
        let now = Instant::now();
        let nanos = u64::try_from((now - self.mark).as_nanos()).unwrap_or(u64::MAX);
        self.mark = now;
        if self.in_attempt {
            self.profile.core.charge_attempt(self.phase, nanos);
        } else {
            self.profile.core.charge_direct(self.phase, nanos);
        }
    }

    /// Counts `words` words moved to/from an MRAM address as one DMA
    /// transfer, matching the simulator's setup-per-transfer accounting.
    fn note_dma(&mut self, tier: Tier, words: u32) {
        if tier == Tier::Mram {
            self.profile.core.note_mram_dma(words);
        }
    }
}

impl Drop for ThreadPlatform<'_> {
    fn drop(&mut self) {
        // Charge the tail interval so the profile covers the whole thread.
        self.flush_elapsed();
    }
}

impl Platform for ThreadPlatform<'_> {
    fn load(&mut self, addr: Addr) -> u64 {
        self.note_dma(addr.tier, 1);
        self.memory.cell(addr).load(Ordering::SeqCst)
    }

    fn store(&mut self, addr: Addr, value: u64) {
        self.note_dma(addr.tier, 1);
        self.memory.cell(addr).store(value, Ordering::SeqCst)
    }

    fn load_block(&mut self, addr: Addr, out: &mut [u64]) {
        if out.is_empty() {
            return;
        }
        self.note_dma(addr.tier, out.len() as u32);
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.memory.cell(addr.offset(i as u32)).load(Ordering::SeqCst);
        }
    }

    fn store_block(&mut self, addr: Addr, values: &[u64]) {
        if values.is_empty() {
            return;
        }
        self.note_dma(addr.tier, values.len() as u32);
        for (i, value) in values.iter().enumerate() {
            self.memory.cell(addr.offset(i as u32)).store(*value, Ordering::SeqCst);
        }
    }

    fn copy(&mut self, src: Addr, dst: Addr, words: u32) {
        if words == 0 {
            return;
        }
        // One transfer per MRAM side, like the simulator's copy_block.
        self.note_dma(src.tier, words);
        self.note_dma(dst.tier, words);
        for i in 0..words {
            let value = self.memory.cell(src.offset(i)).load(Ordering::SeqCst);
            self.memory.cell(dst.offset(i)).store(value, Ordering::SeqCst);
        }
    }

    fn atomic_update(
        &mut self,
        addr: Addr,
        update: &mut dyn FnMut(u64) -> Option<u64>,
    ) -> AtomicOutcome {
        let cell = self.memory.cell(addr);
        let mut current = cell.load(Ordering::SeqCst);
        let outcome = loop {
            match update(current) {
                None => break AtomicOutcome { previous: current, updated: false },
                Some(new) => {
                    match cell.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst) {
                        Ok(_) => break AtomicOutcome { previous: current, updated: true },
                        Err(observed) => current = observed,
                    }
                }
            }
        };
        // The read-modify-write touches memory like a load (plus a store
        // when it updates) — mirror the simulator's DMA counting.
        self.note_dma(addr.tier, 1);
        if outcome.updated {
            self.note_dma(addr.tier, 1);
        }
        outcome
    }

    fn set_phase(&mut self, phase: Phase) -> Phase {
        self.flush_elapsed();
        std::mem::replace(&mut self.phase, phase)
    }

    fn begin_attempt(&mut self) {
        self.flush_elapsed();
        self.in_attempt = true;
    }

    fn commit_attempt(&mut self) {
        self.flush_elapsed();
        self.in_attempt = false;
        self.profile.core.resolve_commit();
    }

    fn abort_attempt(&mut self) {
        self.flush_elapsed();
        self.in_attempt = false;
        self.profile.core.resolve_abort(None);
    }

    fn abort_attempt_with(&mut self, reason: AbortReason) {
        self.flush_elapsed();
        self.in_attempt = false;
        self.profile.core.resolve_abort(Some(reason.index()));
    }

    fn tasklet_id(&self) -> usize {
        self.tasklet_id
    }

    fn timestamp(&self) -> u64 {
        wall_clock_nanos()
    }

    fn compute(&mut self, instructions: u64) {
        for _ in 0..instructions.min(1024) {
            std::hint::spin_loop();
        }
    }

    fn spin_wait(&mut self, instructions: u64) {
        let start = Instant::now();
        self.compute(instructions);
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.profile.core.note_backoff(nanos);
    }

    fn dma_stats(&self) -> (u64, u64) {
        (self.profile.core.mram_dma_setups, self.profile.core.mram_dma_words)
    }

    fn note_tune_window(&mut self) {
        self.profile.core.note_tune_window();
    }

    fn note_tune_switch(&mut self, knob: u8, from: u8, to: u8) {
        // The wall-clock domain has no cycle stamps, so threads keep only
        // the aggregate switch count — the cycle-stamped event log is a
        // simulator-side detail (see `pim_sim::TuneEvent`).
        let _ = (knob, from, to);
        self.profile.core.note_tune_switch();
    }
}

/// Handle given to each tasklet closure by [`ThreadedDpu::run`]; wraps the
/// per-thread platform, transaction descriptor and algorithm. The descriptor
/// is borrowed from the DPU's slot pool, so repeated `run` calls reuse the
/// same per-tasklet logs instead of exhausting the bump allocator.
pub struct TaskletTx<'a> {
    platform: ThreadPlatform<'a>,
    slot: &'a mut TxSlot,
    /// This tasklet's own copy of the shared-metadata handle, so the online
    /// tuner (when enabled) can rewrite its runtime-switchable knobs without
    /// touching the other threads' copies.
    shared: StmShared,
    alg: &'a dyn TmAlgorithm,
    /// Per-tasklet online tuner, present when the configuration's
    /// [`crate::tune::TunePolicy`] enables it (see [`crate::tune`]).
    tuner: Option<Tuner>,
}

impl TaskletTx<'_> {
    /// Runs `body` as a transaction, retrying until it commits, and returns
    /// its result.
    pub fn transaction<R>(&mut self, body: impl FnMut(&mut TxView<'_>) -> Result<R, Abort>) -> R {
        crate::engine::run_tuned_retry_loop(
            self.alg,
            &mut self.shared,
            self.slot,
            &mut self.platform,
            None,
            &mut self.tuner,
            body,
        )
    }

    /// Identifier of this tasklet (0-based).
    pub fn tasklet_id(&self) -> usize {
        self.platform.tasklet_id
    }

    /// Platform-clock stamps (first attempt / commit, in wall nanoseconds —
    /// see [`wall_clock_nanos`]) of the most recent
    /// [`TaskletTx::transaction`] call. Service drivers read these to
    /// separate STM retry time from queueing delay.
    pub fn last_tx_stamps(&self) -> crate::txslot::TxStamps {
        self.slot.stamps()
    }
}

impl std::fmt::Debug for ThreadedDpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedDpu")
            .field("config", &self.config)
            .field("slots", &self.slots.len())
            .field("pin_threads", &self.pin_threads)
            .field("algorithm_override", &self.algorithm_override.map(|a| a.kind()))
            .finish_non_exhaustive()
    }
}

impl MetadataAllocator for ThreadedDpu {
    fn alloc_words(&mut self, tier: Tier, words: u32) -> Result<Addr, AllocError> {
        self.memory.alloc(tier, words)
    }
}

impl var::WordAccess for ThreadedDpu {
    fn peek_word(&self, addr: Addr) -> u64 {
        self.peek(addr)
    }

    fn poke_word(&mut self, addr: Addr, value: u64) {
        self.poke(addr, value)
    }
}

/// Result of a [`ThreadedDpu::run`] call: aggregate commit/abort counts plus
/// the per-tasklet wall-clock execution profiles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThreadedRunReport {
    /// Committed transactions across all tasklets.
    pub commits: u64,
    /// Aborted attempts across all tasklets.
    pub aborts: u64,
    /// One [`TimeDomain::WallNanos`] profile per tasklet, indexed by tasklet
    /// id.
    pub profiles: Vec<ExecProfile>,
    /// How many tasklet threads were actually pinned to a core (see
    /// [`affinity`]): between 0 (pinning unsupported, disabled, or more
    /// tasklets than allowed CPUs) and the tasklet count. Unpinned runs are
    /// correct but their wall-clock profiles carry more scheduling noise.
    pub pinned_tasklets: usize,
}

impl ThreadedRunReport {
    /// All tasklets' profiles merged into one (`None` for a zero-tasklet
    /// run).
    pub fn merged_profile(&self) -> Option<ExecProfile> {
        ExecProfile::merged(&self.profiles)
    }
}

/// A DPU whose tasklets are real threads over atomic shared memory.
pub struct ThreadedDpu {
    memory: SharedMemory,
    shared: StmShared,
    config: StmConfig,
    /// Per-tasklet transaction descriptors, registered on first use and
    /// reused by every subsequent [`ThreadedDpu::run`] call (the metadata
    /// allocator is bump-only, so re-registering each run would leak).
    slots: Vec<TxSlot>,
    /// Whether tasklet threads should pin themselves to cores (default on;
    /// see [`affinity`] for the best-effort rules).
    pin_threads: bool,
    /// Differential-testing hook: when set, [`ThreadedDpu::run`] drives this
    /// algorithm instead of resolving the configured kind through
    /// [`algorithm_for`] — historically how the policy equivalence suite ran
    /// the (since-deleted) frozen legacy oracle on real threads.
    algorithm_override: Option<&'static dyn TmAlgorithm>,
}

impl ThreadedDpu {
    /// Creates a threaded DPU with the default memory capacities.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the STM metadata does not fit in the
    /// configured tier.
    pub fn new(config: StmConfig) -> Result<Self, AllocError> {
        Self::with_capacity(config, DEFAULT_WRAM_WORDS, DEFAULT_MRAM_WORDS)
    }

    /// Creates a threaded DPU with explicit WRAM/MRAM capacities (in words).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the STM metadata does not fit.
    pub fn with_capacity(
        config: StmConfig,
        wram_words: u32,
        mram_words: u32,
    ) -> Result<Self, AllocError> {
        let memory = SharedMemory::new(wram_words, mram_words);
        let shared = StmShared::allocate(&mut (&memory), config)?;
        Ok(ThreadedDpu {
            memory,
            shared,
            config,
            slots: Vec::new(),
            pin_threads: true,
            algorithm_override: None,
        })
    }

    /// Enables or disables best-effort thread→core pinning for subsequent
    /// [`ThreadedDpu::run`] calls (default: enabled). See [`affinity`].
    pub fn set_thread_pinning(&mut self, enabled: bool) {
        self.pin_threads = enabled;
    }

    /// Overrides the algorithm [`ThreadedDpu::run`] drives, bypassing the
    /// [`algorithm_for`] resolution of the configured kind. This exists for
    /// differential testing (running an alternative implementation on real
    /// threads next to the composed engine); the override must implement
    /// the same [`crate::StmKind`] the DPU's metadata was allocated for.
    pub fn set_algorithm_override(&mut self, alg: &'static dyn TmAlgorithm) {
        assert_eq!(
            alg.kind(),
            self.config.kind,
            "the override must implement the design this DPU's metadata was allocated for"
        );
        self.algorithm_override = Some(alg);
    }

    /// The configuration this DPU was created with.
    pub fn config(&self) -> &StmConfig {
        &self.config
    }

    /// The shared STM metadata handles (addresses of the sequence lock,
    /// clock and lock table).
    pub fn stm_shared(&self) -> &StmShared {
        &self.shared
    }

    /// Allocates `words` zeroed words of application data in `tier`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the tier is exhausted.
    pub fn alloc(&mut self, tier: Tier, words: u32) -> Result<Addr, AllocError> {
        self.memory.alloc(tier, words)
    }

    /// Allocates one zeroed typed variable in `tier`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the tier is exhausted.
    pub fn alloc_var<T: TxRecord>(&mut self, tier: Tier) -> Result<TVar<T>, AllocError> {
        var::alloc_var(&mut (&self.memory), tier)
    }

    /// Allocates a zeroed typed array of `len` records in `tier`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the tier is exhausted (or the array's word
    /// count overflows the address space).
    pub fn alloc_array<T: TxRecord>(
        &mut self,
        tier: Tier,
        len: u32,
    ) -> Result<TArray<T>, AllocError> {
        var::alloc_array(&mut (&self.memory), tier, len)
    }

    /// Reads a word without going through a transaction (only safe while no
    /// tasklets are running — the host-side access pattern of UPMEM).
    pub fn peek(&self, addr: Addr) -> u64 {
        self.memory.cell(addr).load(Ordering::SeqCst)
    }

    /// Writes a word without going through a transaction (see
    /// [`ThreadedDpu::peek`]).
    pub fn poke(&mut self, addr: Addr, value: u64) {
        self.memory.cell(addr).store(value, Ordering::SeqCst)
    }

    /// Reads a typed variable without going through a transaction (see
    /// [`ThreadedDpu::peek`]).
    pub fn peek_var<T: TxRecord>(&self, var: TVar<T>) -> T {
        var::peek_var(self, var)
    }

    /// Writes a typed variable without going through a transaction (see
    /// [`ThreadedDpu::peek`]).
    pub fn poke_var<T: TxRecord>(&mut self, var: TVar<T>, value: T) {
        var::poke_var(self, var, value)
    }

    /// Launches `tasklets` OS threads, each running `body` with its own
    /// [`TaskletTx`] handle, waits for all of them and returns the aggregate
    /// commit/abort counts.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::TooManyTasklets`] if `tasklets` exceeds
    /// [`MAX_TASKLETS`] and [`RunError::Alloc`] if allocating the
    /// per-tasklet transaction logs fails.
    ///
    /// # Panics
    ///
    /// Panics if a tasklet thread panics.
    pub fn run<F>(&mut self, tasklets: usize, body: F) -> Result<ThreadedRunReport, RunError>
    where
        F: Fn(TaskletTx<'_>) + Send + Sync,
    {
        if tasklets > MAX_TASKLETS {
            return Err(RunError::TooManyTasklets { requested: tasklets, max: MAX_TASKLETS });
        }
        // Register only the tasklets not yet in the pool; already-registered
        // slots are reused, so repeated runs consume no further metadata.
        // Each registration is a single all-or-nothing allocation, so a
        // failure partway leaks nothing: the slots registered so far stay in
        // the pool and serve any smaller run.
        for t in self.slots.len()..tasklets {
            self.slots.push(self.shared.register_tasklet(&mut (&self.memory), t)?);
        }
        let alg = self.algorithm_override.unwrap_or_else(|| algorithm_for(self.config.kind));
        let memory = &self.memory;
        let shared = &self.shared;
        let mut profiles: Vec<ExecProfile> =
            (0..tasklets).map(|_| ExecProfile::new(TimeDomain::WallNanos)).collect();
        let body = &body;
        // Pin each tasklet thread to one allowed CPU (the PR-3 wall-clock
        // noise follow-up) — but only when every tasklet can have its own
        // core: doubling spinning tasklets up on one core serialises their
        // back-off windows, which is worse than letting the OS balance them.
        let allowed = if self.pin_threads { affinity::allowed_cpus() } else { Vec::new() };
        let pin = tasklets <= allowed.len();
        let allowed = &allowed;
        let mut pinned_tasklets = 0;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let slots = self.slots.iter_mut().take(tasklets);
            for ((tasklet_id, slot), profile) in slots.enumerate().zip(profiles.iter_mut()) {
                handles.push(scope.spawn(move || {
                    let pinned = pin && affinity::pin_current_thread(allowed, tasklet_id);
                    let platform = ThreadPlatform::new(memory, profile, tasklet_id);
                    let tuner = Tuner::new(shared.config().tune, shared.config());
                    body(TaskletTx { platform, slot, shared: shared.clone(), alg, tuner });
                    pinned
                }));
            }
            for handle in handles {
                if handle.join().expect("tasklet thread panicked") {
                    pinned_tasklets += 1;
                }
            }
        });
        Ok(ThreadedRunReport {
            commits: profiles.iter().map(ExecProfile::commits).sum(),
            aborts: profiles.iter().map(ExecProfile::aborts).sum(),
            profiles,
            pinned_tasklets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StmKind;

    #[test]
    fn counter_increments_are_not_lost_under_real_concurrency() {
        for kind in StmKind::ALL {
            let mut dpu = ThreadedDpu::new(StmConfig::small_wram(kind)).unwrap();
            let counter = dpu.alloc(Tier::Mram, 1).unwrap();
            let per_tasklet = 200u64;
            let report = dpu
                .run(4, |mut tx| {
                    for _ in 0..per_tasklet {
                        tx.transaction(|view| {
                            let v = view.read(counter)?;
                            view.write(counter, v + 1)?;
                            Ok(())
                        });
                    }
                })
                .unwrap();
            assert_eq!(dpu.peek(counter), 4 * per_tasklet, "{kind} lost increments");
            assert_eq!(report.commits, 4 * per_tasklet, "{kind} commit count");
        }
    }

    #[test]
    fn disjoint_transfers_preserve_total_balance() {
        for kind in [StmKind::Norec, StmKind::TinyEtlWt, StmKind::VrEtlWb] {
            let mut dpu = ThreadedDpu::new(StmConfig::small_wram(kind)).unwrap();
            let accounts = dpu.alloc(Tier::Mram, 8).unwrap();
            for i in 0..8 {
                dpu.poke(accounts.offset(i), 1000);
            }
            dpu.run(8, |mut tx| {
                let id = tx.tasklet_id() as u32;
                for step in 0..100u32 {
                    let from = accounts.offset((id + step) % 8);
                    let to = accounts.offset((id + step + 3) % 8);
                    if from == to {
                        continue;
                    }
                    tx.transaction(|view| {
                        let a = view.read(from)?;
                        let b = view.read(to)?;
                        view.write(from, a.wrapping_sub(1))?;
                        view.write(to, b.wrapping_add(1))?;
                        Ok(())
                    });
                }
            })
            .unwrap();
            let total: u64 = (0..8).map(|i| dpu.peek(accounts.offset(i))).sum();
            assert_eq!(total, 8000, "{kind} violated balance conservation");
        }
    }

    #[test]
    fn allocation_failures_are_reported() {
        let config = StmConfig::small_wram(StmKind::TinyEtlWb).with_lock_table_entries(1_000_000);
        assert!(ThreadedDpu::new(config).is_err());
        let mut dpu = ThreadedDpu::new(StmConfig::small_wram(StmKind::Norec)).unwrap();
        assert!(dpu.alloc(Tier::Wram, 1_000_000).is_err());
    }

    #[test]
    fn too_many_tasklets_is_an_error_not_a_panic() {
        use crate::error::RunError;
        let mut dpu = ThreadedDpu::new(StmConfig::small_wram(StmKind::Norec)).unwrap();
        let err = dpu.run(25, |_| {}).unwrap_err();
        assert_eq!(err, RunError::TooManyTasklets { requested: 25, max: MAX_TASKLETS });
        // The limit itself is fine.
        assert!(dpu.run(MAX_TASKLETS, |_| {}).is_ok());
    }

    #[test]
    fn failed_run_leaves_a_usable_dpu() {
        // WRAM sized so 4 tasklets' logs fit but 5 do not (224 words per
        // tasklet with StmConfig::small_wram, plus 2 shared NOrec words).
        let config = StmConfig::small_wram(StmKind::Norec);
        let mut dpu = ThreadedDpu::with_capacity(config, 1024, 1024).unwrap();
        let err = dpu.run(5, |_| {}).unwrap_err();
        assert!(matches!(err, crate::error::RunError::Alloc(_)), "got {err:?}");
        // Registration is all-or-nothing per tasklet and successfully
        // registered slots stay pooled, so a smaller run still fits.
        assert!(dpu.run(4, |_| {}).is_ok());
    }

    #[test]
    fn repeated_runs_reuse_tasklet_logs() {
        // WRAM holds 4 tasklets' logs once, not twice: only slot pooling
        // lets the DPU be driven repeatedly.
        let mut dpu =
            ThreadedDpu::with_capacity(StmConfig::small_wram(StmKind::Norec), 1024, 1024).unwrap();
        let counter = dpu.alloc(Tier::Mram, 1).unwrap();
        for round in 1..=10u64 {
            dpu.run(4, |mut tx| {
                tx.transaction(|view| {
                    let v = view.read(counter)?;
                    view.write(counter, v + 1)?;
                    Ok(())
                });
            })
            .unwrap_or_else(|e| panic!("round {round} failed: {e}"));
            assert_eq!(dpu.peek(counter), 4 * round);
        }
    }

    #[test]
    fn run_reports_per_tasklet_wall_clock_profiles() {
        let mut dpu = ThreadedDpu::new(StmConfig::small_wram(StmKind::TinyEtlWb)).unwrap();
        let counter = dpu.alloc(Tier::Mram, 1).unwrap();
        let report = dpu
            .run(4, |mut tx| {
                for _ in 0..100 {
                    tx.transaction(|view| {
                        let v = view.read(counter)?;
                        view.write(counter, v + 1)?;
                        Ok(())
                    });
                }
            })
            .unwrap();
        assert_eq!(report.profiles.len(), 4);
        let merged = report.merged_profile().unwrap();
        assert_eq!(merged.time_domain, TimeDomain::WallNanos);
        assert_eq!(merged.commits(), report.commits);
        assert_eq!(merged.aborts(), report.aborts);
        // Every abort the retry core resolves carries its reason.
        assert_eq!(merged.histogram_total(), report.aborts);
        assert!(merged.total_time() > 0, "wall-clock time must accrue");
        // The counter lives in MRAM: transactional traffic must show up as
        // DMA words.
        assert!(merged.dma_words() > 0);
        for profile in &report.profiles {
            assert_eq!(profile.commits(), 100);
        }
    }

    #[test]
    fn thread_pinning_is_best_effort_and_reported() {
        let mut dpu = ThreadedDpu::new(StmConfig::small_wram(StmKind::Norec)).unwrap();
        let counter = dpu.alloc(Tier::Mram, 1).unwrap();
        let body = |mut tx: TaskletTx<'_>| {
            tx.transaction(|view| {
                let v = view.read(counter)?;
                view.write(counter, v + 1)?;
                Ok(())
            });
        };
        let report = dpu.run(2, body).unwrap();
        // Pinning never exceeds the tasklet count and, with affinity
        // support and >= 2 allowed CPUs, pins every tasklet.
        assert!(report.pinned_tasklets <= 2);
        if affinity::allowed_cpus().len() >= 2 {
            assert_eq!(report.pinned_tasklets, 2, "both tasklets should pin on this platform");
        }
        // Disabling pinning is honoured regardless of platform support.
        dpu.set_thread_pinning(false);
        let unpinned = dpu.run(2, body).unwrap();
        assert_eq!(unpinned.pinned_tasklets, 0);
        assert_eq!(dpu.peek(counter), 4, "pinning must not affect correctness");
    }

    #[test]
    fn oversubscribed_runs_skip_pinning() {
        // More tasklets than allowed CPUs → pinning would double spinning
        // tasklets up on one core, so the run proceeds unpinned.
        let allowed = affinity::allowed_cpus().len();
        if allowed == 0 || allowed >= MAX_TASKLETS {
            return; // cannot oversubscribe on this machine
        }
        let mut dpu = ThreadedDpu::new(StmConfig::small_wram(StmKind::TinyEtlWb)).unwrap();
        let report = dpu.run(allowed + 1, |_| {}).unwrap();
        assert_eq!(report.pinned_tasklets, 0);
    }

    #[test]
    fn algorithm_override_must_match_the_configured_kind() {
        let mut dpu = ThreadedDpu::new(StmConfig::small_wram(StmKind::TinyEtlWb)).unwrap();
        dpu.set_algorithm_override(crate::algorithm_for(StmKind::TinyEtlWb));
        let counter = dpu.alloc(Tier::Mram, 1).unwrap();
        let report = dpu
            .run(2, |mut tx| {
                tx.transaction(|view| {
                    let v = view.read(counter)?;
                    view.write(counter, v + 1)?;
                    Ok(())
                });
            })
            .unwrap();
        assert_eq!(report.commits, 2);
        assert_eq!(dpu.peek(counter), 2, "an overridden run must still be a correct STM");
    }

    #[test]
    #[should_panic(expected = "must implement the design")]
    fn mismatched_algorithm_override_is_rejected() {
        let mut dpu = ThreadedDpu::new(StmConfig::small_wram(StmKind::TinyEtlWb)).unwrap();
        dpu.set_algorithm_override(crate::algorithm_for(StmKind::Norec));
    }

    #[test]
    fn typed_alloc_and_peek_poke_roundtrip() {
        let mut dpu = ThreadedDpu::new(StmConfig::small_wram(StmKind::Norec)).unwrap();
        let var = dpu.alloc_var::<(u32, u32)>(Tier::Mram).unwrap();
        dpu.poke_var(var, (7, 9));
        assert_eq!(dpu.peek_var(var), (7, 9));
        let arr = dpu.alloc_array::<[i64; 2]>(Tier::Mram, 3).unwrap();
        dpu.poke_var(arr.at(2), [-1, 1]);
        assert_eq!(dpu.peek_var(arr.at(2)), [-1, 1]);
        assert_eq!(dpu.peek_var(arr.at(0)), [0, 0]);
    }
}
