//! The policy-composable STM engine: the seven monolithic designs
//! re-expressed as one generic [`ComposedTm`] over orthogonal policy axes.
//!
//! # Why this layer exists
//!
//! PIM-STM's central claim is that its designs share one structure and
//! differ only along a few orthogonal axes. The original reproduction
//! hard-coded that design space as three monolithic `TmAlgorithm` families
//! (Tiny, VR, NOrec) with heavy duplication between them. This module turns
//! the flat [`StmKind`] enum into a real design *grid*:
//!
//! ```text
//! ComposedTm<R: ReadPolicy, L: LockPolicy, W: WritePolicy>
//!            │               │              │
//!            │               │              └ redo log (write-back) vs
//!            │               │                in-place + undo log
//!            │               └ encounter-time vs commit-time acquisition
//!            └ invisible ORec reads (Tiny) / visible read-locks (VR) /
//!              value-validated seqlock reads (NOrec)
//! ```
//!
//! plus an independent retry axis ([`crate::RetryPolicy`], owned by the
//! shared retry core in [`crate::engine`] rather than by the algorithm —
//! back-off never touches shared metadata, so it composes with *every*
//! cell).
//!
//! # Which hooks each axis owns
//!
//! * **[`LockPolicy`]** is pure timing: it decides whether
//!   [`ComposedTm::write`] acquires ownership immediately
//!   ([`EncounterTime`]) or merely buffers and leaves acquisition to a
//!   commit-time pass ([`CommitTime`]), and whether reads must first
//!   consult the redo log (commit-time designs buffer writes invisibly, so
//!   read-after-write goes through [`crate::TxSlot::find_write`]).
//! * **[`WritePolicy`]** decides what a write *does* once ownership is
//!   held: [`WriteBack`] appends to a redo log that the shared publication
//!   pass ([`crate::writeback`]) copies out at commit; [`WriteThrough`]
//!   stores in place and appends the old value to an undo log replayed on
//!   abort. The undo replay itself lives here (in the private `rollback_data`
//!   helper), one
//!   implementation for every read policy.
//! * **[`ReadPolicy`]** owns everything that touches conflict-detection
//!   metadata: the single-word read protocol, write-lock
//!   acquisition/release, commit-time acquisition of the whole write set,
//!   pre-publication validation and the commit ticket, post-publication
//!   release/stamping, and the [`crate::access::RecordReader`]-shaped hooks
//!   of the batched record read. This axis subsumes the paper's *metadata
//!   granularity* and *read visibility* dimensions — the choice of read
//!   protocol dictates both.
//!
//! # Coherence
//!
//! Not every cell of the grid is a sound STM ([`TmComposition::is_coherent`]
//! is the single source of truth, checked when a [`ComposedTm`] is
//! constructed — at *compile time* for the built-in statics):
//!
//! * **CTL + WT is rejected**: a commit-time-locking transaction may abort
//!   after its writes ran, and write-through would already have exposed
//!   them to readers that never see a lock.
//! * **Value validation (NOrec) composes only with CTL + WB**: with no
//!   per-word locks there is nothing to acquire at encounter time and
//!   nothing to hold while an in-place store is visible.
//!
//! The seven coherent cells are exactly the paper's seven designs;
//! [`crate::algorithm_for`] resolves every legacy [`StmKind`] to its
//! composition. The retired monolithic implementations have been deleted;
//! the policy equivalence suite replays this engine against golden
//! outcomes pinned while they still existed.
//!
//! # Equivalence contract
//!
//! Each composition issues the **same platform-operation sequence** as the
//! monolith it replaces (same loads, stores, atomics, phase switches in the
//! same order), so on the deterministic simulator a composed run is
//! bit-identical to a pre-redesign run: same commits, same per-reason abort
//! histogram, same final memory, same cycle counts. `tests/
//! policy_equivalence.rs` enforces this against pinned goldens. The one
//! deliberate behavioural extension is the sorted multi-ORec acquisition of
//! [`ComposedTm::write_record`] under encounter-time locking
//! ([`crate::LockOrder::AddressSorted`]); configuring
//! [`crate::LockOrder::RecordOrder`] restores the legacy per-word path
//! exactly.

mod orec;
mod seqlock;
mod visible;

pub use orec::InvisibleOrec;
pub use seqlock::ValueValidation;
pub use visible::VisibleReadLocks;

use std::marker::PhantomData;

use pim_sim::{Addr, Phase};

use crate::access::{RecordReader, WordCheck, WordPlan};
use crate::config::{
    LockOrder, LockTiming, ReadPolicyKind, StmKind, TmComposition, WritePolicy as WriteMode,
};
use crate::error::{Abort, AbortReason};
use crate::platform::Platform;
use crate::shared::StmShared;
use crate::txslot::TxSlot;
use crate::TmAlgorithm;

/// The lock-timing axis: *when* write ownership is acquired. Pure timing —
/// the acquisition mechanism belongs to the [`ReadPolicy`].
pub trait LockPolicy: Send + Sync + 'static {
    /// The [`LockTiming`] this policy implements.
    const TIMING: LockTiming;
}

/// Encounter-time locking: ownership is acquired at the first write to a
/// location.
#[derive(Debug, Clone, Copy, Default)]
pub struct EncounterTime;

/// Commit-time locking: writes buffer unlocked; the whole write set is
/// acquired during commit.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommitTime;

impl LockPolicy for EncounterTime {
    const TIMING: LockTiming = LockTiming::Encounter;
}

impl LockPolicy for CommitTime {
    const TIMING: LockTiming = LockTiming::Commit;
}

/// The write-policy axis: what a write does once ownership is held.
pub trait WritePolicy: Send + Sync + 'static {
    /// The [`WriteMode`] this policy implements.
    const MODE: WriteMode;
}

/// Writes buffer in a redo log published at commit by the shared
/// [`crate::writeback`] pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteBack;

/// Writes go straight to memory; an undo log restores old values on abort.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteThrough;

impl WritePolicy for WriteBack {
    const MODE: WriteMode = WriteMode::WriteBack;
}

impl WritePolicy for WriteThrough {
    const MODE: WriteMode = WriteMode::WriteThrough;
}

/// Outcome of a successful write-lock acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteGrant {
    /// This transaction already held the lock (possibly through an aliased
    /// address); nothing new to release or restore.
    AlreadyHeld,
    /// The lock was newly acquired; `prev_raw` is the metadata word it
    /// replaced, needed to restore the entry on release/rollback.
    Newly {
        /// Raw metadata word observed immediately before the acquisition.
        prev_raw: u64,
    },
}

/// The read-protocol axis: everything that touches conflict-detection
/// metadata. See the [module documentation](self) for the hook ownership
/// table and `tests/policy_equivalence.rs` for the behavioural contract.
///
/// Hooks that return [`Abort`] have already rolled the attempt back
/// (replayed the undo log, released/restored every lock) — the same
/// contract [`TmAlgorithm`] and [`RecordReader`] operations follow. Hooks
/// that return a bare [`AbortReason`] have **not** rolled back; the engine
/// completes the abort (undo replay, lock release, phase restore) itself.
pub trait ReadPolicy: Send + Sync + 'static {
    /// Which grid axis value this policy implements.
    const KIND: ReadPolicyKind;

    /// Whether a read-only transaction's commit is a pure no-op. True for
    /// invisible-read policies; visible reads must still release their read
    /// locks.
    const READ_ONLY_COMMIT_FREE: bool;

    /// Whether newly acquired write locks record the previous metadata word
    /// (and a release flag) in their write-log entry. ORec designs restore
    /// versions from the log on rollback; rw-lock designs release by
    /// scanning the logs instead.
    const LOG_PREV_METADATA: bool;

    /// Starts (or restarts) an attempt: snapshot/seqlock bookkeeping only —
    /// the engine already reset the logs and the accounting phase.
    fn begin(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform);

    /// Full single-word transactional read. The engine has already switched
    /// to the read phase and, for commit-time locking, served the word from
    /// the redo log if possible.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflict, with the attempt fully rolled back.
    fn read_word(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        mode: WriteMode,
    ) -> Result<u64, Abort>;

    /// Attempts to acquire write ownership of `addr` without rolling back
    /// on failure (the caller completes the abort). `validate_phase` is the
    /// accounting phase charged if acquisition triggers read-set validation
    /// (ORec snapshot extension).
    ///
    /// # Errors
    ///
    /// Returns the abort reason on conflict; **no rollback has happened**.
    fn try_acquire_write(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        validate_phase: Phase,
    ) -> Result<WriteGrant, AbortReason>;

    /// Restores a metadata word acquired by
    /// [`ReadPolicy::try_acquire_write`] but not yet recorded in any log
    /// entry (the sorted multi-ORec acquisition path un-acquires this way
    /// when a later lock in the batch conflicts). Safe as a plain store:
    /// the caller still owns the lock, so no concurrent writer can race it.
    fn restore_unlogged_grant(&self, p: &mut dyn Platform, meta_addr: Addr, prev_raw: u64) {
        p.store(meta_addr, prev_raw);
    }

    /// Commit-time acquisition of the whole write set (only called for
    /// [`CommitTime`] compositions). For per-word-lock policies this loops
    /// over the write log; for value validation it is the global
    /// sequence-lock acquisition.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflict, with the attempt fully rolled back.
    fn commit_acquire(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        mode: WriteMode,
    ) -> Result<(), Abort>;

    /// Validation after every lock is held, returning the commit *ticket*
    /// ([`ReadPolicy::post_publish`] consumes it: the new ORec version for
    /// Tiny, unused elsewhere).
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if final validation failed, with the attempt fully
    /// rolled back.
    fn pre_publish(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        mode: WriteMode,
    ) -> Result<u64, Abort>;

    /// Releases/stamps every lock after the redo log (if any) was
    /// published, completing the commit.
    fn post_publish(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform, ticket: u64);

    /// Releases every lock and restores every metadata word this attempt
    /// acquired. The data-side undo (the write-through replay) has already run.
    fn release_on_abort(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform);

    /// Plans one word of a batched record read (the engine already served
    /// redo-log words for commit-time compositions). Mirrors the design's
    /// single-word read up to the data load; see
    /// [`RecordReader::plan_word`].
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflict, with the attempt fully rolled back.
    fn plan_word(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        mode: WriteMode,
    ) -> Result<WordPlan, Abort>;

    /// Re-checks one staged word against its plan token; see
    /// [`RecordReader::accept_word`].
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflict, with the attempt fully rolled back.
    fn accept_word(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        value: u64,
        token: u64,
    ) -> Result<WordCheck, Abort>;

    /// Record-level bracket before (each attempt of) a burst pass; see
    /// [`RecordReader::before_burst`].
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] as [`RecordReader::before_burst`] does.
    fn before_burst(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
    ) -> Result<(), Abort> {
        let _ = (shared, tx, p);
        Ok(())
    }

    /// Record-level bracket after a burst pass; see
    /// [`RecordReader::burst_stable`].
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] as [`RecordReader::burst_stable`] does.
    fn burst_stable(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
    ) -> Result<bool, Abort> {
        let _ = (shared, tx, p);
        Ok(true)
    }
}

/// Replays the undo log (newest first) for write-through attempts; the
/// data-side half of every rollback, shared by all read policies.
pub(crate) fn rollback_data(tx: &mut TxSlot, p: &mut dyn Platform, mode: WriteMode) {
    if mode == WriteMode::WriteThrough {
        // Undo data writes first so no other transaction can observe dirty
        // values through an already-released lock.
        for i in (0..tx.write_set_len()).rev() {
            let entry = tx.write_entry(p, i);
            p.store(entry.addr, entry.value);
        }
    }
}

/// Completes an abort: replays the undo log, releases every lock through the
/// read policy, restores the accounting phase and returns the [`Abort`] to
/// propagate. Every abort path of [`ComposedTm`] and of the policy
/// implementations funnels through here.
pub(crate) fn abort_attempt<R: ReadPolicy>(
    read: &R,
    shared: &StmShared,
    tx: &mut TxSlot,
    p: &mut dyn Platform,
    mode: WriteMode,
    reason: AbortReason,
) -> Abort {
    rollback_data(tx, p, mode);
    read.release_on_abort(shared, tx, p);
    p.set_phase(Phase::OtherExec);
    Abort::new(reason)
}

/// Instructions charged per element of the ORec-address sort in the sorted
/// multi-ORec acquisition (same WRAM sorting cost model as the coalesced
/// write-back pass in [`crate::writeback`]).
const SORT_INSTRUCTIONS_PER_ELEMENT: u64 = 4;

/// A word-based STM engine composed from one value of each policy axis.
///
/// The type parameters fix the design at compile time; the seven coherent
/// compositions are available as statics through [`crate::algorithm_for`].
/// Construction rejects incoherent cells (see the
/// [module documentation](self)) — for the statics that check happens at
/// compile time.
#[derive(Debug, Clone, Copy)]
pub struct ComposedTm<R: ReadPolicy, L: LockPolicy, W: WritePolicy> {
    read: R,
    _axes: PhantomData<(L, W)>,
}

impl<R: ReadPolicy, L: LockPolicy, W: WritePolicy> ComposedTm<R, L, W> {
    /// Composes an engine from the given read-policy instance.
    ///
    /// # Panics
    ///
    /// Panics (at compile time when used in a `const`/`static` context) if
    /// the composition is incoherent: commit-time locking with
    /// write-through, or value validation with anything but CTL + WB.
    pub const fn new(read: R) -> Self {
        let composition = TmComposition { read: R::KIND, timing: L::TIMING, write: W::MODE };
        assert!(
            composition.is_coherent(),
            "incoherent STM composition: write-through requires encounter-time locking and \
             value validation (norec) composes only with commit-time locking + write-back \
             (see the struck-out cells of Fig. 2)"
        );
        ComposedTm { read, _axes: PhantomData }
    }

    /// The grid cell this engine implements.
    pub fn composition(&self) -> TmComposition {
        TmComposition { read: R::KIND, timing: L::TIMING, write: W::MODE }
    }

    /// Serves a read from the redo log when the lock timing buffers writes
    /// invisibly (commit-time compositions look up their own writes before
    /// touching any metadata).
    fn find_buffered(&self, tx: &mut TxSlot, p: &mut dyn Platform, addr: Addr) -> Option<u64> {
        if L::TIMING == LockTiming::Commit {
            tx.find_write(p, addr).map(|(_, value)| value)
        } else {
            None
        }
    }

    /// Records one write in the redo/undo log, given the grant from the
    /// acquisition step. One implementation covers every (read policy ×
    /// write policy) pair: [`ReadPolicy::LOG_PREV_METADATA`] decides
    /// whether a new grant's previous metadata word rides along in the
    /// entry.
    fn log_write(
        &self,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        value: u64,
        grant: WriteGrant,
    ) {
        let (extra, flag) = match grant {
            WriteGrant::Newly { prev_raw } if R::LOG_PREV_METADATA => (prev_raw, true),
            _ => (0, false),
        };
        match W::MODE {
            WriteMode::WriteBack => {
                if let Some((index, _)) = tx.find_write(p, addr) {
                    tx.set_write_value(p, index, value);
                    if flag {
                        // First acquisition happened through an entry for
                        // another (aliased) address; remember the previous
                        // metadata word on this one instead.
                        tx.set_write_extra_flag(p, index, extra, true);
                    }
                } else {
                    tx.push_write(p, addr, value, extra, flag);
                }
            }
            WriteMode::WriteThrough => {
                // Log the old value once, then update memory in place.
                if tx.find_write(p, addr).is_none() {
                    let old = p.load(addr);
                    tx.push_write(p, addr, old, extra, flag);
                }
                p.store(addr, value);
            }
        }
    }

    /// The sorted multi-ORec acquisition path of [`ComposedTm::write_record`]
    /// (encounter-time locking under [`LockOrder::AddressSorted`]): acquire
    /// every covering metadata word first — ordered by lock-table address,
    /// deduplicated — then log and store the data. Global acquisition order
    /// turns symmetric lock-order duels into single losers, and the
    /// back-to-back acquisitions shrink the window in which this
    /// transaction holds a partial lock set while doing data work.
    fn write_record_sorted(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        values: &[u64],
    ) -> Result<(), Abort> {
        p.set_phase(Phase::Writing);

        // Order the record's words by the address of their covering lock
        // entry. Consecutive data words usually map to consecutive entries,
        // but hashing wraps at the table size, so the sort is not a no-op.
        // The index scratch is WRAM/pipeline state; the sort charge mirrors
        // the coalesced write-back's cost model.
        let mut order: Vec<(u64, u32)> = (0..values.len() as u32)
            .map(|i| (crate::platform::encode_addr(shared.orec_addr(addr.offset(i))), i))
            .collect();
        order.sort_unstable();
        p.compute(SORT_INSTRUCTIONS_PER_ELEMENT * values.len() as u64);

        // Acquisition pass: one attempt per distinct lock entry, in sorted
        // order. Grants are not in any log yet, so a conflict partway must
        // restore them by hand before the shared abort path runs.
        let mut grants: Vec<(u32, WriteGrant)> = Vec::with_capacity(order.len());
        let mut last_entry: Option<u64> = None;
        for &(entry_addr, word) in &order {
            if last_entry == Some(entry_addr) {
                continue; // aliased with the previous word: already handled
            }
            last_entry = Some(entry_addr);
            let word_addr = addr.offset(word);
            match self.read.try_acquire_write(shared, tx, p, word_addr, Phase::ValidatingExec) {
                Ok(WriteGrant::AlreadyHeld) => {}
                Ok(grant @ WriteGrant::Newly { .. }) => grants.push((word, grant)),
                Err(reason) => {
                    for &(w, grant) in &grants {
                        if let WriteGrant::Newly { prev_raw } = grant {
                            self.read.restore_unlogged_grant(
                                p,
                                shared.orec_addr(addr.offset(w)),
                                prev_raw,
                            );
                        }
                    }
                    return Err(abort_attempt(&self.read, shared, tx, p, W::MODE, reason));
                }
            }
        }

        // Logging pass, in record order. Each grant is attached to the
        // (unique) word it was acquired through, so release and rollback
        // find the previous metadata exactly as the per-word path records
        // it.
        for (i, &value) in values.iter().enumerate() {
            let word = i as u32;
            let grant = grants
                .iter()
                .find(|&&(w, _)| w == word)
                .map(|&(_, g)| g)
                .unwrap_or(WriteGrant::AlreadyHeld);
            self.log_write(tx, p, addr.offset(word), value, grant);
        }
        p.set_phase(Phase::OtherExec);
        Ok(())
    }
}

impl<R: ReadPolicy, L: LockPolicy, W: WritePolicy> TmAlgorithm for ComposedTm<R, L, W> {
    fn kind(&self) -> StmKind {
        self.composition().kind().expect("coherence was checked at construction")
    }

    fn begin(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform) {
        p.set_phase(Phase::OtherExec);
        tx.reset_logs();
        self.read.begin(shared, tx, p);
    }

    fn read(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
    ) -> Result<u64, Abort> {
        p.set_phase(Phase::Reading);
        if let Some(value) = self.find_buffered(tx, p, addr) {
            p.set_phase(Phase::OtherExec);
            return Ok(value);
        }
        self.read.read_word(shared, tx, p, addr, W::MODE)
    }

    fn write(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        value: u64,
    ) -> Result<(), Abort> {
        p.set_phase(Phase::Writing);
        match L::TIMING {
            LockTiming::Commit => {
                // Just buffer; locks are taken at commit time.
                if let Some((index, _)) = tx.find_write(p, addr) {
                    tx.set_write_value(p, index, value);
                } else {
                    tx.push_write(p, addr, value, 0, false);
                }
            }
            LockTiming::Encounter => {
                let grant =
                    match self.read.try_acquire_write(shared, tx, p, addr, Phase::ValidatingExec) {
                        Ok(grant) => grant,
                        Err(reason) => {
                            return Err(abort_attempt(&self.read, shared, tx, p, W::MODE, reason))
                        }
                    };
                self.log_write(tx, p, addr, value, grant);
            }
        }
        p.set_phase(Phase::OtherExec);
        Ok(())
    }

    fn commit(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
    ) -> Result<(), Abort> {
        if R::READ_ONLY_COMMIT_FREE && tx.is_read_only() {
            p.set_phase(Phase::OtherExec);
            return Ok(());
        }
        p.set_phase(Phase::OtherCommit);

        // Commit-time locking acquires ownership of the whole write set now
        // (per-word locks, or the global sequence lock for value
        // validation); encounter-time compositions already hold theirs.
        if L::TIMING == LockTiming::Commit {
            self.read.commit_acquire(shared, tx, p, W::MODE)?;
        }

        // Final validation + commit ticket, then publish buffered writes
        // (write-back only; write-through already updated memory at
        // encounter time). Every lock covering the log is held, so the
        // shared publication pass may reorder and batch stores.
        let ticket = self.read.pre_publish(shared, tx, p, W::MODE)?;
        if W::MODE == WriteMode::WriteBack {
            crate::writeback::publish_redo_log(tx, p, shared.config());
        }
        self.read.post_publish(shared, tx, p, ticket);
        p.set_phase(Phase::OtherExec);
        Ok(())
    }

    fn cancel(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform) {
        rollback_data(tx, p, W::MODE);
        self.read.release_on_abort(shared, tx, p);
        p.set_phase(Phase::OtherExec);
    }

    /// Record reads run through the shared access layer
    /// ([`crate::access::read_record_with`]): the engine owns the
    /// commit-time redo-log gate, the read policy owns the per-word
    /// metadata protocol, and the driver moves the data as bursts.
    fn read_record(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        out: &mut [u64],
    ) -> Result<(), Abort> {
        crate::access::read_record_with(self, shared, tx, p, addr, out)
    }

    /// Record writes: under encounter-time locking with
    /// [`LockOrder::AddressSorted`] (the default) the covering metadata is
    /// acquired in one sorted, deduplicated pass before any data work (see
    /// the private `write_record_sorted` helper); otherwise — commit-time
    /// compositions, single words, or [`LockOrder::RecordOrder`] — each
    /// word runs the full per-word write protocol in record order, exactly
    /// like issuing the writes one by one.
    fn write_record(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        values: &[u64],
    ) -> Result<(), Abort> {
        if L::TIMING == LockTiming::Encounter
            && values.len() > 1
            && shared.config().lock_order == LockOrder::AddressSorted
        {
            return self.write_record_sorted(shared, tx, p, addr, values);
        }
        for (i, value) in values.iter().enumerate() {
            self.write(shared, tx, p, addr.offset(i as u32), *value)?;
        }
        Ok(())
    }
}

impl<R: ReadPolicy, L: LockPolicy, W: WritePolicy> RecordReader for ComposedTm<R, L, W> {
    fn plan_word(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
    ) -> Result<WordPlan, Abort> {
        if let Some(value) = self.find_buffered(tx, p, addr) {
            return Ok(WordPlan::Ready(value));
        }
        self.read.plan_word(shared, tx, p, addr, W::MODE)
    }

    fn accept_word(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        value: u64,
        token: u64,
    ) -> Result<WordCheck, Abort> {
        self.read.accept_word(shared, tx, p, addr, value, token)
    }

    fn before_burst(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
    ) -> Result<(), Abort> {
        self.read.before_burst(shared, tx, p)
    }

    fn burst_stable(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
    ) -> Result<bool, Abort> {
        self.read.burst_stable(shared, tx, p)
    }

    fn reread_word(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
    ) -> Result<u64, Abort> {
        self.read(shared, tx, p, addr)
    }
}
