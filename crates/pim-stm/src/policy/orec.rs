//! Invisible reads over per-word ownership records: the TinySTM-style read
//! protocol (Felber, Fetzer, Riegel — PPoPP 2008 / TPDS 2010) as a
//! composable [`ReadPolicy`].
//!
//! Every memory word is covered by an entry of the hashed lock table (see
//! [`crate::locktable`]); an unlocked entry carries the commit timestamp
//! (*version*) of the covered words. Transactions read against a snapshot
//! bound `rv` and may *extend* the snapshot by validating their read set
//! when they encounter a newer version, which avoids many unnecessary
//! aborts compared to TL2-style designs. Composed with the lock-timing and
//! write-policy axes this yields the paper's Tiny family (ETL-WT, ETL-WB,
//! CTL-WB).

use pim_sim::{Addr, Phase};

use crate::access::{WordCheck, WordPlan};
use crate::config::{ReadPolicyKind, WritePolicy as WriteMode};
use crate::error::{Abort, AbortReason};
use crate::locktable::OrecWord;
use crate::platform::Platform;
use crate::shared::StmShared;
use crate::txslot::TxSlot;

use super::{abort_attempt, ReadPolicy, WriteGrant};

/// Bounded number of lock/value re-read attempts a single transactional read
/// performs before giving up and aborting.
const READ_RETRIES: u32 = 8;

/// The invisible-ORec read policy (the Tiny family's protocol).
#[derive(Debug, Clone, Copy, Default)]
pub struct InvisibleOrec;

impl InvisibleOrec {
    /// Value of a word whose ORec this transaction already holds (see
    /// [`crate::access::owned_value`], shared with the other policies).
    fn owned_value(
        &self,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        mode: WriteMode,
    ) -> u64 {
        crate::access::owned_value(mode, tx, p, addr)
    }

    /// Checks that every read-set entry still holds the version observed when
    /// it was read (or is locked by this transaction).
    fn readset_valid(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform) -> bool {
        let me = p.tasklet_id();
        for i in 0..tx.read_set_len() {
            let entry = tx.read_entry(p, i);
            let orec = OrecWord::from_raw(p.load(shared.orec_addr(entry.addr)));
            if orec.is_locked_by(me) {
                continue;
            }
            if orec.is_locked() || orec.version() != entry.aux {
                return false;
            }
        }
        true
    }

    /// Attempts to extend the snapshot bound to the current clock value.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the read set is no longer valid (without rolling
    /// back — the caller owns the abort).
    fn extend(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
    ) -> Result<(), Abort> {
        let now = p.load(shared.clock_addr());
        if self.readset_valid(shared, tx, p) {
            tx.snapshot = now;
            Ok(())
        } else {
            Err(AbortReason::ValidationFailed.into())
        }
    }
}

impl ReadPolicy for InvisibleOrec {
    const KIND: ReadPolicyKind = ReadPolicyKind::Orec;
    const READ_ONLY_COMMIT_FREE: bool = true;
    const LOG_PREV_METADATA: bool = true;

    fn begin(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform) {
        tx.snapshot = p.load(shared.clock_addr());
    }

    fn read_word(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        mode: WriteMode,
    ) -> Result<u64, Abort> {
        let me = p.tasklet_id();
        let orec_addr = shared.orec_addr(addr);
        let mut orec = OrecWord::from_raw(p.load(orec_addr));

        // Encounter-time locking: the ORec may already be ours.
        if orec.is_locked_by(me) {
            let value = self.owned_value(tx, p, addr, mode);
            p.set_phase(Phase::OtherExec);
            return Ok(value);
        }

        for _ in 0..READ_RETRIES {
            if orec.is_locked() {
                return Err(abort_attempt(self, shared, tx, p, mode, AbortReason::ReadConflict));
            }
            if orec.version() > tx.snapshot {
                p.set_phase(Phase::ValidatingExec);
                if self.extend(shared, tx, p).is_err() {
                    return Err(abort_attempt(
                        self,
                        shared,
                        tx,
                        p,
                        mode,
                        AbortReason::ValidationFailed,
                    ));
                }
                p.set_phase(Phase::Reading);
            }
            let value = p.load(addr);
            let recheck = OrecWord::from_raw(p.load(orec_addr));
            if recheck.raw() == orec.raw() {
                tx.push_read(p, addr, orec.version());
                p.set_phase(Phase::OtherExec);
                return Ok(value);
            }
            // The ORec changed between the two loads (a concurrent commit or
            // lock); retry against the new ORec contents.
            orec = recheck;
        }
        Err(abort_attempt(self, shared, tx, p, mode, AbortReason::ReadConflict))
    }

    fn try_acquire_write(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        validate_phase: Phase,
    ) -> Result<WriteGrant, AbortReason> {
        let me = p.tasklet_id();
        let orec_addr = shared.orec_addr(addr);
        let orec = OrecWord::from_raw(p.load(orec_addr));
        if orec.is_locked_by(me) {
            return Ok(WriteGrant::AlreadyHeld);
        }
        if orec.is_locked() {
            return Err(AbortReason::WriteConflict);
        }
        if orec.version() > tx.snapshot {
            // A newer committed version exists: extend the snapshot (validate
            // the read set) or give up.
            let prev_phase = p.set_phase(validate_phase);
            let extended = self.extend(shared, tx, p);
            p.set_phase(prev_phase);
            if extended.is_err() {
                return Err(AbortReason::ValidationFailed);
            }
        }
        let outcome = p.compare_and_swap(orec_addr, orec.raw(), OrecWord::locked_by(me).raw());
        if outcome.updated {
            Ok(WriteGrant::Newly { prev_raw: orec.raw() })
        } else {
            Err(AbortReason::WriteConflict)
        }
    }

    fn commit_acquire(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        mode: WriteMode,
    ) -> Result<(), Abort> {
        let me = p.tasklet_id();
        for i in 0..tx.write_set_len() {
            let entry = tx.write_entry(p, i);
            let orec = OrecWord::from_raw(p.load(shared.orec_addr(entry.addr)));
            if orec.is_locked_by(me) {
                continue;
            }
            match self.try_acquire_write(shared, tx, p, entry.addr, Phase::ValidatingCommit) {
                Ok(WriteGrant::Newly { prev_raw }) => tx.set_write_extra_flag(p, i, prev_raw, true),
                Ok(WriteGrant::AlreadyHeld) => {}
                Err(reason) => return Err(abort_attempt(self, shared, tx, p, mode, reason)),
            }
        }
        p.set_phase(Phase::OtherCommit);
        Ok(())
    }

    fn pre_publish(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        mode: WriteMode,
    ) -> Result<u64, Abort> {
        // Take a new commit timestamp from the global clock.
        let wv = p.fetch_add(shared.clock_addr(), 1) + 1;

        // If other transactions committed since our snapshot, the read set
        // must still be valid.
        if wv > tx.snapshot + 1 {
            p.set_phase(Phase::ValidatingCommit);
            if !self.readset_valid(shared, tx, p) {
                return Err(abort_attempt(
                    self,
                    shared,
                    tx,
                    p,
                    mode,
                    AbortReason::ValidationFailed,
                ));
            }
            p.set_phase(Phase::OtherCommit);
        }
        Ok(wv)
    }

    fn post_publish(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform, ticket: u64) {
        // Release every ORec we acquired, stamping it with the new version.
        let release = OrecWord::unlocked(ticket).raw();
        for i in 0..tx.write_set_len() {
            let entry = tx.write_entry(p, i);
            if entry.flag {
                p.store(shared.orec_addr(entry.addr), release);
            }
        }
    }

    fn release_on_abort(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform) {
        for i in 0..tx.write_set_len() {
            let entry = tx.write_entry(p, i);
            if entry.flag {
                p.store(shared.orec_addr(entry.addr), entry.extra);
            }
        }
    }

    /// Mirrors the first half of [`InvisibleOrec::read_word`]: serve
    /// own-lock words locally, abort on a foreign lock, extend a stale
    /// snapshot, and otherwise hand back the sampled ORec as the re-check
    /// token.
    fn plan_word(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        mode: WriteMode,
    ) -> Result<WordPlan, Abort> {
        let me = p.tasklet_id();
        let orec = OrecWord::from_raw(p.load(shared.orec_addr(addr)));
        if orec.is_locked_by(me) {
            let value = self.owned_value(tx, p, addr, mode);
            return Ok(WordPlan::Ready(value));
        }
        if orec.is_locked() {
            return Err(abort_attempt(self, shared, tx, p, mode, AbortReason::ReadConflict));
        }
        if orec.version() > tx.snapshot {
            p.set_phase(Phase::ValidatingExec);
            if self.extend(shared, tx, p).is_err() {
                return Err(abort_attempt(
                    self,
                    shared,
                    tx,
                    p,
                    mode,
                    AbortReason::ValidationFailed,
                ));
            }
            p.set_phase(Phase::Reading);
        }
        Ok(WordPlan::Burst { token: orec.raw() })
    }

    /// Mirrors the second half of the read bracket: the staged value is
    /// consistent iff the ORec is bit-identical to the plan-time sample.
    fn accept_word(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        _value: u64,
        token: u64,
    ) -> Result<WordCheck, Abort> {
        let recheck = p.load(shared.orec_addr(addr));
        if recheck == token {
            tx.push_read(p, addr, OrecWord::from_raw(token).version());
            Ok(WordCheck::Accept)
        } else {
            Ok(WordCheck::Reread)
        }
    }
}
