//! Visible reads over per-word read-write locks: classic DBMS-style lock
//! based concurrency control adapted to provide opacity (the paper's own
//! contribution, §3.2.1), as a composable [`ReadPolicy`].
//!
//! Every memory word is covered by a read-write lock in the hashed lock
//! table (see [`crate::rwlock`]). Transactions acquire the lock in read mode
//! as soon as they read — making reads *visible* to writers — and in write
//! mode at encounter or commit time (the lock-timing axis). Because writers
//! can never invalidate something a live reader depends on, **no read-set
//! validation is ever needed**; the price is the cost of tracking readers
//! and spurious aborts when read locks cannot be upgraded. Composed with
//! the other axes this yields the paper's VR family (ETL-WT, ETL-WB,
//! CTL-WB).

use pim_sim::{Addr, Phase};

use crate::access::{WordCheck, WordPlan};
use crate::config::{ReadPolicyKind, WritePolicy as WriteMode};
use crate::error::{Abort, AbortReason};
use crate::platform::Platform;
use crate::rwlock::RwLockWord;
use crate::shared::StmShared;
use crate::txslot::TxSlot;

use super::{abort_attempt, ReadPolicy, WriteGrant};

/// Result of trying to take a lock-table entry in read mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadAcquire {
    /// We now hold (or already held) the lock in read mode.
    Held,
    /// We already hold the lock in write mode.
    OwnedWrite,
    /// Another transaction holds the lock in write mode.
    Conflict,
}

/// The visible-reads policy (the VR family's protocol).
#[derive(Debug, Clone, Copy, Default)]
pub struct VisibleReadLocks;

impl VisibleReadLocks {
    fn acquire_read(&self, shared: &StmShared, p: &mut dyn Platform, addr: Addr) -> ReadAcquire {
        let me = p.tasklet_id();
        let mut result = ReadAcquire::Held;
        p.atomic_update(shared.orec_addr(addr), &mut |raw| {
            let word = RwLockWord::from_raw(raw);
            match word.writer() {
                Some(owner) if owner == me => {
                    result = ReadAcquire::OwnedWrite;
                    None
                }
                Some(_) => {
                    result = ReadAcquire::Conflict;
                    None
                }
                None => {
                    result = ReadAcquire::Held;
                    if word.has_reader(me) {
                        None
                    } else {
                        Some(word.with_reader(me).raw())
                    }
                }
            }
        });
        result
    }

    /// Value of a word this transaction already write-locks (see
    /// [`crate::access::owned_value`], shared with the other policies).
    fn owned_value(
        &self,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        mode: WriteMode,
    ) -> u64 {
        crate::access::owned_value(mode, tx, p, addr)
    }

    /// Releases every lock this transaction holds: write locks named by the
    /// write/undo log and read locks named by the read set. Both operations
    /// are idempotent, so hash aliasing and duplicate log entries are
    /// harmless.
    fn release_locks(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform) {
        let me = p.tasklet_id();
        for i in 0..tx.write_set_len() {
            let entry = tx.write_entry(p, i);
            p.atomic_update(shared.orec_addr(entry.addr), &mut |raw| {
                let word = RwLockWord::from_raw(raw);
                if word.is_write_locked_by(me) {
                    Some(RwLockWord::free().raw())
                } else {
                    None
                }
            });
        }
        for i in 0..tx.read_set_len() {
            let entry = tx.read_entry(p, i);
            p.atomic_update(shared.orec_addr(entry.addr), &mut |raw| {
                let word = RwLockWord::from_raw(raw);
                if word.has_reader(me) {
                    Some(word.without_reader(me).raw())
                } else {
                    None
                }
            });
        }
    }
}

impl ReadPolicy for VisibleReadLocks {
    const KIND: ReadPolicyKind = ReadPolicyKind::VisibleLocks;
    // Read-only transactions still hold read locks that must be released at
    // commit, so their commit is not free.
    const READ_ONLY_COMMIT_FREE: bool = false;
    // Write locks are released by scanning the logs, not by restoring a
    // logged previous word.
    const LOG_PREV_METADATA: bool = false;

    fn begin(&self, _shared: &StmShared, _tx: &mut TxSlot, _p: &mut dyn Platform) {}

    fn read_word(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        mode: WriteMode,
    ) -> Result<u64, Abort> {
        let value = match self.acquire_read(shared, p, addr) {
            ReadAcquire::Conflict => {
                return Err(abort_attempt(self, shared, tx, p, mode, AbortReason::ReadConflict))
            }
            ReadAcquire::OwnedWrite => self.owned_value(tx, p, addr, mode),
            ReadAcquire::Held => {
                let value = p.load(addr);
                tx.push_read(p, addr, 0);
                value
            }
        };
        p.set_phase(Phase::OtherExec);
        Ok(value)
    }

    fn try_acquire_write(
        &self,
        shared: &StmShared,
        _tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        _validate_phase: Phase,
    ) -> Result<WriteGrant, AbortReason> {
        let me = p.tasklet_id();
        let mut result = Ok(());
        let outcome = p.atomic_update(shared.orec_addr(addr), &mut |raw| {
            let word = RwLockWord::from_raw(raw);
            if word.is_write_locked_by(me) {
                result = Ok(());
                None
            } else if word.writer().is_some() {
                result = Err(AbortReason::WriteConflict);
                None
            } else if word.is_free() || word.sole_reader_is(me) {
                // Free, or an upgrade of our own read lock.
                result = Ok(());
                Some(RwLockWord::write_locked_by(me).raw())
            } else {
                result = Err(AbortReason::UpgradeConflict);
                None
            }
        });
        result.map(|()| {
            if outcome.updated {
                WriteGrant::Newly { prev_raw: outcome.previous }
            } else {
                WriteGrant::AlreadyHeld
            }
        })
    }

    fn commit_acquire(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        mode: WriteMode,
    ) -> Result<(), Abort> {
        for i in 0..tx.write_set_len() {
            let entry = tx.write_entry(p, i);
            if let Err(reason) =
                self.try_acquire_write(shared, tx, p, entry.addr, Phase::ValidatingCommit)
            {
                return Err(abort_attempt(self, shared, tx, p, mode, reason));
            }
        }
        Ok(())
    }

    /// Thanks to visible reads no validation is needed: every location this
    /// transaction read is still read-locked by it, so no writer can have
    /// changed it. The ticket is unused.
    fn pre_publish(
        &self,
        _shared: &StmShared,
        _tx: &mut TxSlot,
        _p: &mut dyn Platform,
        _mode: WriteMode,
    ) -> Result<u64, Abort> {
        Ok(0)
    }

    fn post_publish(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        _ticket: u64,
    ) {
        self.release_locks(shared, tx, p);
    }

    fn release_on_abort(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform) {
        self.release_locks(shared, tx, p);
    }

    /// Mirrors [`VisibleReadLocks::read_word`]'s lock protocol: serve
    /// own-write-lock words locally, abort on a foreign write lock, and
    /// otherwise take the read lock — which *pins* the word for the rest of
    /// the transaction, so the read-set entry can be pushed before the data
    /// even moves.
    fn plan_word(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        mode: WriteMode,
    ) -> Result<WordPlan, Abort> {
        match self.acquire_read(shared, p, addr) {
            ReadAcquire::Conflict => {
                Err(abort_attempt(self, shared, tx, p, mode, AbortReason::ReadConflict))
            }
            ReadAcquire::OwnedWrite => Ok(WordPlan::Ready(self.owned_value(tx, p, addr, mode))),
            ReadAcquire::Held => {
                tx.push_read(p, addr, 0);
                Ok(WordPlan::Burst { token: 0 })
            }
        }
    }

    /// The read lock acquired at plan time blocks every writer, so the
    /// staged value is always consistent (the bookkeeping already happened
    /// in [`ReadPolicy::plan_word`]).
    fn accept_word(
        &self,
        _shared: &StmShared,
        _tx: &mut TxSlot,
        _p: &mut dyn Platform,
        _addr: Addr,
        _value: u64,
        _token: u64,
    ) -> Result<WordCheck, Abort> {
        Ok(WordCheck::Accept)
    }
}
