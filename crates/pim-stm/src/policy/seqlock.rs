//! Value-validated reads under a single global sequence lock: the NOrec
//! protocol (Dalessandro, Spear, Scott — PPoPP 2010) as a composable
//! [`ReadPolicy`].
//!
//! This policy abolishes per-word metadata: the only shared state is one
//! *sequence lock* whose value is even when no writer is committing and odd
//! while one is. Reads are invisible and validated **by value** — whenever a
//! transaction observes that the sequence lock changed, it re-reads every
//! location in its read set and compares against the values it saw before.
//! Commits serialise on the sequence lock, which is why the policy composes
//! only with commit-time locking and write-back (see
//! [`crate::config::TmComposition::is_coherent`]): there are no per-word
//! locks to take at encounter time or to hold over an exposed in-place
//! store. Waiting for the sequence lock to become even before starting
//! doubles as a simple contention-management mechanism (§3.2.1 of the
//! paper).

use pim_sim::{Addr, Phase};

use crate::access::{WordCheck, WordPlan};
use crate::config::{ReadPolicyKind, WritePolicy as WriteMode};
use crate::error::{Abort, AbortReason};
use crate::platform::Platform;
use crate::shared::StmShared;
use crate::txslot::TxSlot;

use super::{ReadPolicy, WriteGrant};

/// The value-validation read policy (NOrec's protocol).
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueValidation;

impl ValueValidation {
    /// Spins until the sequence lock is even (no writer committing) and
    /// returns its value.
    fn wait_until_even(&self, shared: &StmShared, p: &mut dyn Platform) -> u64 {
        loop {
            let s = p.load(shared.seqlock_addr());
            if s.is_multiple_of(2) {
                return s;
            }
            p.spin_wait(4);
        }
    }

    /// Value-based read-set validation. Returns a new consistent snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if any location in the read set no longer holds the
    /// value this transaction observed.
    fn validate(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
    ) -> Result<u64, Abort> {
        loop {
            let time = self.wait_until_even(shared, p);
            for i in 0..tx.read_set_len() {
                let entry = tx.read_entry(p, i);
                if p.load(entry.addr) != entry.aux {
                    return Err(AbortReason::ValidationFailed.into());
                }
            }
            // If no commit happened while we were validating, the snapshot is
            // consistent; otherwise validate again against the newer state.
            if p.load(shared.seqlock_addr()) == time {
                return Ok(time);
            }
        }
    }

    /// Catches up with concurrent commits: re-validates by value until the
    /// sequence lock holds still at this transaction's snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on validation failure (there are no locks to
    /// release, so the abort is already complete).
    fn resync(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
    ) -> Result<(), Abort> {
        while p.load(shared.seqlock_addr()) != tx.snapshot {
            p.set_phase(Phase::ValidatingExec);
            match self.validate(shared, tx, p) {
                Ok(snapshot) => tx.snapshot = snapshot,
                Err(abort) => {
                    p.set_phase(Phase::OtherExec);
                    return Err(abort);
                }
            }
            p.set_phase(Phase::Reading);
        }
        Ok(())
    }
}

impl ReadPolicy for ValueValidation {
    const KIND: ReadPolicyKind = ReadPolicyKind::ValueValidation;
    // Read-only transactions were continuously validated by the read path;
    // nothing to publish, nothing to release.
    const READ_ONLY_COMMIT_FREE: bool = true;
    const LOG_PREV_METADATA: bool = false;

    fn begin(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform) {
        // Waiting for in-flight commits to drain before starting acts as a
        // back-off under contention (§3.2.1 of the paper).
        tx.snapshot = self.wait_until_even(shared, p);
    }

    fn read_word(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        _mode: WriteMode,
    ) -> Result<u64, Abort> {
        let mut value = p.load(addr);
        // If any transaction committed since our snapshot, re-validate by
        // value and re-read until the world holds still.
        while p.load(shared.seqlock_addr()) != tx.snapshot {
            p.set_phase(Phase::ValidatingExec);
            match self.validate(shared, tx, p) {
                Ok(snapshot) => tx.snapshot = snapshot,
                Err(abort) => {
                    p.set_phase(Phase::OtherExec);
                    return Err(abort);
                }
            }
            p.set_phase(Phase::Reading);
            value = p.load(addr);
        }
        tx.push_read(p, addr, value);
        p.set_phase(Phase::OtherExec);
        Ok(value)
    }

    fn try_acquire_write(
        &self,
        _shared: &StmShared,
        _tx: &mut TxSlot,
        _p: &mut dyn Platform,
        _addr: Addr,
        _validate_phase: Phase,
    ) -> Result<WriteGrant, AbortReason> {
        unreachable!(
            "value validation has no per-word locks; encounter-time compositions are \
             rejected at construction"
        )
    }

    /// Commit-time "acquisition" is the global sequence lock: move it from
    /// our (even) snapshot to an odd value. Failure means someone committed
    /// after our snapshot: re-validate and retry from the new snapshot.
    fn commit_acquire(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        _mode: WriteMode,
    ) -> Result<(), Abort> {
        loop {
            let outcome = p.compare_and_swap(shared.seqlock_addr(), tx.snapshot, tx.snapshot + 1);
            if outcome.updated {
                return Ok(());
            }
            p.set_phase(Phase::ValidatingCommit);
            match self.validate(shared, tx, p) {
                Ok(snapshot) => tx.snapshot = snapshot,
                Err(abort) => {
                    p.set_phase(Phase::OtherExec);
                    return Err(abort);
                }
            }
            p.set_phase(Phase::OtherCommit);
        }
    }

    /// The odd sequence lock acquired by
    /// [`ValueValidation::commit_acquire`] serialises every other commit and
    /// validation; nothing further to check. The ticket is unused.
    fn pre_publish(
        &self,
        _shared: &StmShared,
        _tx: &mut TxSlot,
        _p: &mut dyn Platform,
        _mode: WriteMode,
    ) -> Result<u64, Abort> {
        Ok(0)
    }

    /// Releases the sequence lock, making the published writes visible as
    /// one atomic commit.
    fn post_publish(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        _ticket: u64,
    ) {
        p.store(shared.seqlock_addr(), tx.snapshot + 2);
    }

    /// No locks are ever held outside the commit critical section, so an
    /// abort has nothing to release.
    fn release_on_abort(&self, _shared: &StmShared, _tx: &mut TxSlot, _p: &mut dyn Platform) {}

    /// Only the redo log can serve a word locally (and the engine's
    /// commit-time gate already did); there is no per-word metadata to
    /// sample, so the token is unused.
    fn plan_word(
        &self,
        _shared: &StmShared,
        _tx: &mut TxSlot,
        _p: &mut dyn Platform,
        _addr: Addr,
        _mode: WriteMode,
    ) -> Result<WordPlan, Abort> {
        Ok(WordPlan::Burst { token: 0 })
    }

    /// Value-based validation: remember the observed value so later
    /// validations can compare against it.
    fn accept_word(
        &self,
        _shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        value: u64,
        _token: u64,
    ) -> Result<WordCheck, Abort> {
        tx.push_read(p, addr, value);
        Ok(WordCheck::Accept)
    }

    /// Catches up with concurrent commits before issuing the burst, exactly
    /// like the single-word read does before its load.
    fn before_burst(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
    ) -> Result<(), Abort> {
        self.resync(shared, tx, p)
    }

    /// Unchanged sequence lock ⇒ no commit overlapped the burst ⇒ the
    /// staged words form a consistent snapshot; otherwise the driver
    /// re-issues the pass after [`ReadPolicy::before_burst`] re-validates.
    fn burst_stable(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
    ) -> Result<bool, Abort> {
        Ok(p.load(shared.seqlock_addr()) == tx.snapshot)
    }
}
