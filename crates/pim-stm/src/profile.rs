//! The executor-agnostic execution profile: one instrumentation schema for
//! the cycle-accounted simulator *and* the threaded executor.
//!
//! PIM-STM's central claim is comparative — which STM design wins depends on
//! where time goes (begin/read/write/commit/wasted work), why attempts abort
//! and how much data moves over the MRAM port. [`ExecProfile`] captures all
//! of that per tasklet, on **every** executor:
//!
//! * attempts = commits + aborts (tallied by the shared retry core in
//!   [`crate::engine`], which is the single emission point for all seven
//!   algorithms);
//! * an abort histogram keyed by [`AbortReason`] — every abort the retry
//!   core resolves carries the reason the algorithm reported, so the
//!   histogram always sums to the abort count;
//! * per-phase time ([`Phase`]/[`PhaseBreakdown`]) in an *executor-native
//!   unit*: simulator cycles or monotonic wall-clock nanoseconds, tagged via
//!   [`TimeDomain`] so the two are never confused or naively compared;
//! * MRAM DMA setups/words (the burst-coalescing metric) and back-off /
//!   lock-wait time.
//!
//! The bookkeeping machinery itself ([`pim_sim::ProfileCore`]) lives in the
//! simulator substrate so [`pim_sim::TaskletStats`] can be a thin adapter
//! over the same structure; this module adds the STM-level typing — reasons
//! instead of opaque codes, a time-domain tag, and merge rules that refuse
//! to mix domains.

use pim_sim::{Phase, PhaseBreakdown, ProfileCore, TaskletStats};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::AbortReason;

// The sim substrate reserves opaque histogram slots; the reason enum must
// fit them. (`ProfileCore::resolve_abort` would panic at runtime otherwise —
// fail at compile time instead.)
const _: () = assert!(AbortReason::COUNT <= pim_sim::ABORT_CODE_SLOTS);

/// The unit in which a profile's time values (phase breakdown, back-off
/// time) are expressed.
///
/// Profiles from different domains must never be summed or ratio-compared
/// directly — a cycle is not a nanosecond. [`ExecProfile::merge`] enforces
/// this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimeDomain {
    /// Deterministic simulator cycles (the unit behind the paper's figures).
    Cycles,
    /// Monotonic wall-clock nanoseconds measured on the threaded executor.
    WallNanos,
}

impl TimeDomain {
    /// Short unit suffix for rendering (`cyc` / `ns`).
    pub fn unit(self) -> &'static str {
        match self {
            TimeDomain::Cycles => "cyc",
            TimeDomain::WallNanos => "ns",
        }
    }

    /// Human-readable name.
    pub fn label(self) -> &'static str {
        match self {
            TimeDomain::Cycles => "simulator cycles",
            TimeDomain::WallNanos => "wall-clock nanoseconds",
        }
    }
}

impl fmt::Display for TimeDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-tasklet execution profile: the shared bookkeeping core tagged with
/// the unit its time values are expressed in.
///
/// Construction paths:
///
/// * simulator — [`ExecProfile::from_sim`] adapts a finished tasklet's
///   [`TaskletStats`] (domain [`TimeDomain::Cycles`]);
/// * threaded executor — `ThreadPlatform` charges wall-clock nanoseconds
///   into a fresh [`TimeDomain::WallNanos`] profile as the thread runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecProfile {
    /// Unit of every time value in `core`.
    pub time_domain: TimeDomain,
    /// The tallies themselves (attempts, abort codes, phase times, DMA,
    /// back-off).
    pub core: ProfileCore,
}

impl ExecProfile {
    /// Creates an empty profile in `domain`.
    pub fn new(domain: TimeDomain) -> Self {
        ExecProfile { time_domain: domain, core: ProfileCore::new() }
    }

    /// Adapts one simulated tasklet's statistics (cycle domain).
    pub fn from_sim(stats: &TaskletStats) -> Self {
        ExecProfile { time_domain: TimeDomain::Cycles, core: stats.profile }
    }

    /// Committed transactions.
    pub fn commits(&self) -> u64 {
        self.core.commits
    }

    /// Aborted attempts.
    pub fn aborts(&self) -> u64 {
        self.core.aborts
    }

    /// Attempts started: commits + aborts.
    pub fn attempts(&self) -> u64 {
        self.core.attempts()
    }

    /// Abort rate in `[0, 1]`.
    pub fn abort_rate(&self) -> f64 {
        self.core.abort_rate()
    }

    /// Aborts attributed to `reason`.
    pub fn aborts_for(&self, reason: AbortReason) -> u64 {
        self.core.abort_codes[reason.index()]
    }

    /// Iterates over `(reason, aborts)` pairs in reporting order.
    pub fn abort_histogram(&self) -> impl Iterator<Item = (AbortReason, u64)> + '_ {
        AbortReason::ALL.iter().map(move |&r| (r, self.aborts_for(r)))
    }

    /// Sum of the abort histogram. The retry core resolves every abort with
    /// its reason, so for engine-driven runs this equals
    /// [`ExecProfile::aborts`].
    pub fn histogram_total(&self) -> u64 {
        self.core.coded_aborts()
    }

    /// Per-phase time, in this profile's [`TimeDomain`] unit.
    pub fn phases(&self) -> &PhaseBreakdown {
        &self.core.breakdown
    }

    /// Time attributed to one phase.
    pub fn phase(&self, phase: Phase) -> u64 {
        self.core.breakdown.get(phase)
    }

    /// Total time across all phases.
    pub fn total_time(&self) -> u64 {
        self.core.breakdown.total()
    }

    /// Back-off / lock-wait time (an overlay: also contained in the phase
    /// buckets).
    pub fn backoff_time(&self) -> u64 {
        self.core.backoff_time
    }

    /// MRAM DMA transfers issued (each paying one setup).
    pub fn dma_setups(&self) -> u64 {
        self.core.mram_dma_setups
    }

    /// Words moved over the MRAM port.
    pub fn dma_words(&self) -> u64 {
        self.core.mram_dma_words
    }

    /// MRAM DMA transfers per committed transaction — the batching
    /// efficiency metric: coalesced write-back and batched record reads
    /// lower this without changing the words moved. `0.0` when nothing
    /// committed.
    pub fn dma_setups_per_commit(&self) -> f64 {
        per_commit(self.core.mram_dma_setups, self.core.commits)
    }

    /// Words moved over the MRAM port per committed transaction. `0.0` when
    /// nothing committed.
    pub fn dma_words_per_commit(&self) -> f64 {
        per_commit(self.core.mram_dma_words, self.core.commits)
    }

    /// Bytes moved over the MRAM port per committed transaction (words are
    /// 64-bit). `0.0` when nothing committed.
    pub fn dma_bytes_per_commit(&self) -> f64 {
        8.0 * self.dma_words_per_commit()
    }

    /// Merges another profile of the **same** time domain into this one
    /// (tasklet → run aggregation).
    ///
    /// # Panics
    ///
    /// Panics if the domains differ — cycles and nanoseconds must never be
    /// summed.
    pub fn merge(&mut self, other: &ExecProfile) {
        assert_eq!(
            self.time_domain, other.time_domain,
            "refusing to merge profiles across time domains ({} vs {})",
            self.time_domain, other.time_domain
        );
        self.core.merge(&other.core);
    }

    /// Merges an iterator of profiles into one; `None` if the iterator is
    /// empty. All profiles must share one time domain (see
    /// [`ExecProfile::merge`]).
    pub fn merged<'a>(profiles: impl IntoIterator<Item = &'a ExecProfile>) -> Option<ExecProfile> {
        let mut iter = profiles.into_iter();
        let mut acc = *iter.next()?;
        for p in iter {
            acc.merge(p);
        }
        Some(acc)
    }
}

/// `count / commits` as a float, `0.0` for a run that committed nothing.
fn per_commit(count: u64, commits: u64) -> f64 {
    if commits == 0 {
        0.0
    } else {
        count as f64 / commits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(domain: TimeDomain) -> ExecProfile {
        let mut p = ExecProfile::new(domain);
        p.core.charge_attempt(Phase::Reading, 10);
        p.core.resolve_commit();
        p.core.charge_attempt(Phase::Writing, 4);
        p.core.resolve_abort(Some(AbortReason::WriteConflict.index()));
        p.core.note_mram_dma(8);
        p.core.note_backoff(3);
        p
    }

    #[test]
    fn accessors_reflect_the_core() {
        let p = sample(TimeDomain::Cycles);
        assert_eq!(p.commits(), 1);
        assert_eq!(p.aborts(), 1);
        assert_eq!(p.attempts(), 2);
        assert_eq!(p.aborts_for(AbortReason::WriteConflict), 1);
        assert_eq!(p.aborts_for(AbortReason::ReadConflict), 0);
        assert_eq!(p.histogram_total(), p.aborts());
        assert_eq!(p.phase(Phase::Reading), 10);
        assert_eq!(p.phase(Phase::Wasted), 4);
        assert_eq!(p.total_time(), 14);
        assert_eq!(p.backoff_time(), 3);
        assert_eq!(p.dma_setups(), 1);
        assert_eq!(p.dma_words(), 8);
        assert!((p.abort_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn per_commit_efficiency_metrics() {
        let p = sample(TimeDomain::Cycles);
        assert!((p.dma_setups_per_commit() - 1.0).abs() < 1e-12);
        assert!((p.dma_words_per_commit() - 8.0).abs() < 1e-12);
        assert!((p.dma_bytes_per_commit() - 64.0).abs() < 1e-12);
        // A run with zero commits reports zero instead of dividing by zero.
        let empty = ExecProfile::new(TimeDomain::Cycles);
        assert_eq!(empty.dma_setups_per_commit(), 0.0);
        assert_eq!(empty.dma_bytes_per_commit(), 0.0);
    }

    #[test]
    fn histogram_iterates_all_reasons_in_order() {
        let p = sample(TimeDomain::WallNanos);
        let pairs: Vec<_> = p.abort_histogram().collect();
        assert_eq!(pairs.len(), AbortReason::COUNT);
        assert_eq!(pairs[AbortReason::WriteConflict.index()].1, 1);
        assert_eq!(pairs.iter().map(|(_, n)| n).sum::<u64>(), p.aborts());
    }

    #[test]
    fn same_domain_profiles_merge() {
        let mut a = sample(TimeDomain::Cycles);
        let b = sample(TimeDomain::Cycles);
        a.merge(&b);
        assert_eq!(a.commits(), 2);
        assert_eq!(a.aborts_for(AbortReason::WriteConflict), 2);
        assert_eq!(a.total_time(), 28);

        let all = [sample(TimeDomain::Cycles), sample(TimeDomain::Cycles)];
        let merged = ExecProfile::merged(&all).unwrap();
        assert_eq!(merged.attempts(), 4);
        let empty: Vec<ExecProfile> = Vec::new();
        assert!(ExecProfile::merged(&empty).is_none());
    }

    #[test]
    #[should_panic(expected = "time domains")]
    fn cross_domain_merge_is_rejected() {
        let mut a = sample(TimeDomain::Cycles);
        let b = sample(TimeDomain::WallNanos);
        a.merge(&b);
    }

    #[test]
    fn domain_labels_distinguish_units() {
        assert_ne!(TimeDomain::Cycles.unit(), TimeDomain::WallNanos.unit());
        assert!(TimeDomain::Cycles.to_string().contains("cycles"));
        assert!(TimeDomain::WallNanos.to_string().contains("nanoseconds"));
    }
}
