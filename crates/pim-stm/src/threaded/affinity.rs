//! Best-effort thread→core pinning for the threaded executor.
//!
//! The threaded executor's wall-clock profiles are the noisy half of every
//! A/B comparison (`pim-exp --repeat` already takes the median of N runs);
//! letting the OS migrate tasklet threads between cores mid-run adds cache
//! and scheduling noise on top. When the platform supports it, each tasklet
//! thread therefore pins itself to one CPU out of the process's *allowed*
//! set (respecting cgroup/taskset masks) before running transactions.
//!
//! Everything here is strictly best-effort: on non-Linux platforms, when
//! the allowed set cannot be read, when there are fewer allowed CPUs than
//! tasklets (pinning two spinning tasklets to one core would serialise
//! their back-off windows — worse than letting the OS balance them), or
//! when the kernel rejects the mask, the run simply proceeds unpinned.
//! [`crate::threaded::ThreadedRunReport::pinned_tasklets`] reports how many
//! threads actually pinned, so tests and the experiment harness can tell.
//!
//! This is the one corner of the crate that needs `unsafe`: binding the two
//! libc affinity syscalls. The blocks are audited and tiny — fixed-size
//! masks, no pointers escaping — and there is no safe-Rust, no-dependency
//! alternative.

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod imp {
    /// 1024 CPUs — the size of glibc's `cpu_set_t`.
    const MASK_WORDS: usize = 16;

    extern "C" {
        fn sched_getaffinity(pid: i32, cpusetsize: usize, mask: *mut u64) -> i32;
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    /// The CPUs the current thread is allowed to run on, in index order;
    /// empty if the mask cannot be read.
    pub fn allowed_cpus() -> Vec<usize> {
        let mut mask = [0u64; MASK_WORDS];
        // SAFETY: `mask` is a properly sized, writable buffer of
        // `MASK_WORDS * 8` bytes that outlives the call; pid 0 means "the
        // calling thread". The kernel writes at most `cpusetsize` bytes.
        let rc = unsafe { sched_getaffinity(0, MASK_WORDS * 8, mask.as_mut_ptr()) };
        if rc != 0 {
            return Vec::new();
        }
        let mut cpus = Vec::new();
        for (word_index, word) in mask.iter().enumerate() {
            for bit in 0..64 {
                if word & (1u64 << bit) != 0 {
                    cpus.push(word_index * 64 + bit);
                }
            }
        }
        cpus
    }

    /// Pins the calling thread to `cpu`; `false` if the kernel refuses.
    pub fn pin_to(cpu: usize) -> bool {
        if cpu >= MASK_WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[cpu / 64] = 1u64 << (cpu % 64);
        // SAFETY: `mask` is a properly sized, readable buffer of
        // `MASK_WORDS * 8` bytes that outlives the call; pid 0 means "the
        // calling thread". The kernel only reads from it.
        unsafe { sched_setaffinity(0, MASK_WORDS * 8, mask.as_ptr()) == 0 }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    /// Affinity control is not wired up on this platform; report an empty
    /// allowed set so pinning degrades to a no-op.
    pub fn allowed_cpus() -> Vec<usize> {
        Vec::new()
    }

    pub fn pin_to(_cpu: usize) -> bool {
        false
    }
}

/// The CPUs the process may run tasklet threads on (empty when affinity is
/// unsupported or unreadable — pinning then degrades to a no-op).
pub fn allowed_cpus() -> Vec<usize> {
    imp::allowed_cpus()
}

/// Pins the calling tasklet thread to the `tasklet_id`-th allowed CPU.
/// Returns whether the pin actually happened; `false` (no-op) when the
/// platform offers no affinity control or `allowed` is empty.
pub fn pin_current_thread(allowed: &[usize], tasklet_id: usize) -> bool {
    if allowed.is_empty() {
        return false;
    }
    imp::pin_to(allowed[tasklet_id % allowed.len()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_is_best_effort_and_reversible() {
        let allowed = allowed_cpus();
        if allowed.is_empty() {
            // Unsupported platform (or unreadable mask): the no-op contract.
            assert!(!pin_current_thread(&allowed, 0));
            return;
        }
        // Run in a scratch thread so the test runner's thread keeps its
        // original mask.
        std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    assert!(
                        pin_current_thread(&allowed, 0),
                        "pinning to a CPU from the allowed set must succeed"
                    );
                    // After pinning, the thread's allowed set is that one CPU.
                    assert_eq!(allowed_cpus(), vec![allowed[0]]);
                })
                .join()
                .expect("affinity thread panicked");
        });
    }

    #[test]
    fn tasklets_spread_over_the_allowed_cpus_round_robin() {
        let allowed = [3, 5, 9];
        // Only exercises the index arithmetic (the pin itself may fail if
        // cpu 3/5/9 are not actually allowed here); the mapping is what the
        // noise argument rests on: distinct tasklets, distinct cores.
        for (tasklet, expected) in [(0, 3), (1, 5), (2, 9), (3, 3), (4, 5)] {
            assert_eq!(allowed[tasklet % allowed.len()], expected);
        }
    }
}
