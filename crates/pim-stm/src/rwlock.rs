//! Read-write lock word encoding used by the visible-reads (VR) designs.
//!
//! Following the paper's Fig. 3, each lock-table entry packs into one word:
//!
//! * two mode bits (free / read / write);
//! * in read mode, one presence flag per tasklet (UPMEM has at most 24
//!   tasklets) plus a reader count;
//! * in write mode, the identity of the owning tasklet.
//!
//! The word is only ever mutated through
//! [`crate::Platform::atomic_update`], i.e. under the hardware atomic bit
//! register, so the compound updates below are race-free on both executors.

/// Maximum number of tasklets a DPU can run, and therefore the number of
/// reader flags carried by a read-locked word.
pub const MAX_TASKLETS: usize = 24;

const MODE_MASK: u64 = 0b11;
const MODE_FREE: u64 = 0b00;
const MODE_READ: u64 = 0b01;
const MODE_WRITE: u64 = 0b10;
const READER_FLAGS_SHIFT: u32 = 2;
const OWNER_SHIFT: u32 = 2;

/// Lock mode of a [`RwLockWord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RwMode {
    /// Nobody holds the lock.
    Free,
    /// One or more tasklets hold the lock in read mode.
    Read,
    /// Exactly one tasklet holds the lock in write mode.
    Write,
}

/// Decoded view of a VR read-write lock word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RwLockWord(u64);

impl RwLockWord {
    /// Wraps a raw word read from the lock table.
    pub fn from_raw(raw: u64) -> Self {
        RwLockWord(raw)
    }

    /// The raw word to store back into the lock table.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The free (unheld) lock word.
    pub fn free() -> Self {
        RwLockWord(MODE_FREE)
    }

    /// A word write-locked by `owner`.
    ///
    /// # Panics
    ///
    /// Panics if `owner >= MAX_TASKLETS`.
    pub fn write_locked_by(owner: usize) -> Self {
        assert!(owner < MAX_TASKLETS, "tasklet id {owner} out of range");
        RwLockWord(MODE_WRITE | ((owner as u64) << OWNER_SHIFT))
    }

    /// Current mode.
    pub fn mode(self) -> RwMode {
        match self.0 & MODE_MASK {
            MODE_FREE => RwMode::Free,
            MODE_READ => RwMode::Read,
            MODE_WRITE => RwMode::Write,
            _ => unreachable!("invalid rw-lock mode bits"),
        }
    }

    /// Whether no tasklet holds the lock.
    pub fn is_free(self) -> bool {
        self.mode() == RwMode::Free
    }

    /// Owner tasklet if write-locked.
    pub fn writer(self) -> Option<usize> {
        if self.mode() == RwMode::Write {
            Some((self.0 >> OWNER_SHIFT) as usize)
        } else {
            None
        }
    }

    /// Whether `tasklet` holds the lock in write mode.
    pub fn is_write_locked_by(self, tasklet: usize) -> bool {
        self.writer() == Some(tasklet)
    }

    /// Whether `tasklet` holds the lock in read mode.
    pub fn has_reader(self, tasklet: usize) -> bool {
        assert!(tasklet < MAX_TASKLETS, "tasklet id {tasklet} out of range");
        self.mode() == RwMode::Read && (self.0 >> (READER_FLAGS_SHIFT + tasklet as u32)) & 1 == 1
    }

    /// Number of tasklets currently holding the lock in read mode.
    pub fn reader_count(self) -> u32 {
        if self.mode() == RwMode::Read {
            ((self.0 >> READER_FLAGS_SHIFT) & ((1 << MAX_TASKLETS) - 1)).count_ones()
        } else {
            0
        }
    }

    /// Whether `tasklet` is the one and only reader (the condition under
    /// which a read lock may be upgraded to a write lock).
    pub fn sole_reader_is(self, tasklet: usize) -> bool {
        self.reader_count() == 1 && self.has_reader(tasklet)
    }

    /// Returns the word with `tasklet` added as a reader.
    ///
    /// # Panics
    ///
    /// Panics if the word is write-locked.
    pub fn with_reader(self, tasklet: usize) -> Self {
        assert!(tasklet < MAX_TASKLETS, "tasklet id {tasklet} out of range");
        assert!(self.mode() != RwMode::Write, "cannot add a reader to a write-locked word");
        let flags = self.0 & !MODE_MASK;
        RwLockWord(MODE_READ | flags | (1 << (READER_FLAGS_SHIFT + tasklet as u32)))
    }

    /// Returns the word with `tasklet` removed from the reader set (the word
    /// becomes free when the last reader leaves). Removing a tasklet that is
    /// not a reader returns the word unchanged.
    pub fn without_reader(self, tasklet: usize) -> Self {
        if !self.has_reader(tasklet) {
            return self;
        }
        let cleared = self.0 & !(1 << (READER_FLAGS_SHIFT + tasklet as u32));
        if RwLockWord(cleared).reader_count() == 0 {
            RwLockWord::free()
        } else {
            RwLockWord(cleared)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_word_has_no_holders() {
        let w = RwLockWord::free();
        assert!(w.is_free());
        assert_eq!(w.reader_count(), 0);
        assert_eq!(w.writer(), None);
        assert_eq!(RwLockWord::from_raw(0), w, "a zeroed table entry must mean `free`");
    }

    #[test]
    fn readers_can_be_added_and_removed() {
        let w = RwLockWord::free().with_reader(3).with_reader(7).with_reader(23);
        assert_eq!(w.mode(), RwMode::Read);
        assert_eq!(w.reader_count(), 3);
        assert!(w.has_reader(3) && w.has_reader(7) && w.has_reader(23));
        assert!(!w.has_reader(4));
        assert!(!w.sole_reader_is(3));

        let w = w.without_reader(7);
        assert_eq!(w.reader_count(), 2);
        let w = w.without_reader(3);
        assert!(w.sole_reader_is(23));
        let w = w.without_reader(23);
        assert!(w.is_free());
    }

    #[test]
    fn adding_the_same_reader_twice_is_idempotent() {
        let w = RwLockWord::free().with_reader(5).with_reader(5);
        assert_eq!(w.reader_count(), 1);
        assert!(w.sole_reader_is(5));
    }

    #[test]
    fn removing_a_non_reader_is_a_no_op() {
        let w = RwLockWord::free().with_reader(1);
        assert_eq!(w.without_reader(9), w);
        assert_eq!(RwLockWord::free().without_reader(0), RwLockWord::free());
    }

    #[test]
    fn write_lock_encodes_owner() {
        for t in 0..MAX_TASKLETS {
            let w = RwLockWord::write_locked_by(t);
            assert_eq!(w.mode(), RwMode::Write);
            assert_eq!(w.writer(), Some(t));
            assert!(w.is_write_locked_by(t));
            assert_eq!(w.reader_count(), 0);
            assert!(!w.has_reader(t));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_tasklet_id_panics() {
        let _ = RwLockWord::write_locked_by(MAX_TASKLETS);
    }

    #[test]
    #[should_panic(expected = "write-locked")]
    fn adding_reader_to_write_locked_word_panics() {
        let _ = RwLockWord::write_locked_by(0).with_reader(1);
    }
}
