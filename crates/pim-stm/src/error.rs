//! Abort signalling for transactional operations, and the error type of the
//! executor entry points.

use pim_sim::AllocError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Reason a transaction attempt had to abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AbortReason {
    /// A read observed a location locked (or being written) by another
    /// transaction.
    ReadConflict,
    /// A write found the location locked by another transaction.
    WriteConflict,
    /// Readset (or snapshot) validation failed: a concurrently committed
    /// transaction overwrote something this transaction read.
    ValidationFailed,
    /// A visible-reads transaction could not upgrade a read lock to a write
    /// lock because other readers hold it.
    UpgradeConflict,
    /// The application cancelled the attempt itself (via
    /// [`crate::TxOps::cancel`]) after observing application-level
    /// interference — e.g. Labyrinth finding a path cell already claimed by a
    /// concurrently committed route.
    Explicit,
}

impl AbortReason {
    /// All reasons, for reporting.
    pub const ALL: [AbortReason; 5] = [
        AbortReason::ReadConflict,
        AbortReason::WriteConflict,
        AbortReason::ValidationFailed,
        AbortReason::UpgradeConflict,
        AbortReason::Explicit,
    ];

    /// Number of distinct reasons.
    pub const COUNT: usize = AbortReason::ALL.len();

    /// Stable index of this reason in histogram arrays (the abort-code slot
    /// used by [`pim_sim::ProfileCore`]).
    pub fn index(self) -> usize {
        match self {
            AbortReason::ReadConflict => 0,
            AbortReason::WriteConflict => 1,
            AbortReason::ValidationFailed => 2,
            AbortReason::UpgradeConflict => 3,
            AbortReason::Explicit => 4,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            AbortReason::ReadConflict => "read conflict",
            AbortReason::WriteConflict => "write conflict",
            AbortReason::ValidationFailed => "validation failed",
            AbortReason::UpgradeConflict => "lock upgrade conflict",
            AbortReason::Explicit => "explicit application cancel",
        }
    }
}

/// Error returned by transactional reads, writes and commits when the
/// attempt must be retried.
///
/// By the time an operation returns `Abort`, the algorithm has already rolled
/// back its side effects (released locks, undone write-through stores); the
/// caller only needs to account the abort and restart the transaction body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Abort {
    /// Why the attempt failed.
    pub reason: AbortReason,
}

impl Abort {
    /// Creates an abort with the given reason.
    pub fn new(reason: AbortReason) -> Self {
        Abort { reason }
    }
}

impl fmt::Display for Abort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction aborted: {}", self.reason.label())
    }
}

impl std::error::Error for Abort {}

impl From<AbortReason> for Abort {
    fn from(reason: AbortReason) -> Self {
        Abort::new(reason)
    }
}

/// Error returned by executor entry points such as
/// [`crate::threaded::ThreadedDpu::run`].
///
/// Configuration problems (too many tasklets, metadata that does not fit)
/// are reported as values instead of panics, so library users can surface
/// them however they like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// More tasklets were requested than the hardware supports.
    TooManyTasklets {
        /// Tasklets the caller asked for.
        requested: usize,
        /// Hardware limit (24 on UPMEM DPUs).
        max: usize,
    },
    /// Allocating per-tasklet transaction logs (or other metadata) failed.
    Alloc(AllocError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::TooManyTasklets { requested, max } => {
                write!(f, "requested {requested} tasklets but the DPU supports at most {max}")
            }
            RunError::Alloc(e) => write!(f, "allocating STM metadata failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<AllocError> for RunError {
    fn from(e: AllocError) -> Self {
        RunError::Alloc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_error_display_names_the_limit() {
        let e = RunError::TooManyTasklets { requested: 25, max: 24 };
        assert!(e.to_string().contains("25"));
        assert!(e.to_string().contains("at most 24"));
    }

    #[test]
    fn display_is_informative() {
        let e = Abort::new(AbortReason::UpgradeConflict);
        assert_eq!(e.to_string(), "transaction aborted: lock upgrade conflict");
    }

    #[test]
    fn conversion_from_reason() {
        let e: Abort = AbortReason::ReadConflict.into();
        assert_eq!(e.reason, AbortReason::ReadConflict);
    }

    #[test]
    fn all_reasons_have_distinct_labels() {
        let labels: std::collections::HashSet<_> =
            AbortReason::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), AbortReason::ALL.len());
    }

    #[test]
    fn reason_indices_are_dense_and_fit_the_histogram_slots() {
        let mut seen = [false; AbortReason::COUNT];
        for reason in AbortReason::ALL {
            assert!(!seen[reason.index()], "duplicate index for {}", reason.label());
            seen[reason.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // (That the indices fit pim_sim's histogram slots is enforced at
        // compile time by the const assert in crate::profile.)
    }
}
