//! The [`Platform`] abstraction: everything an STM algorithm needs from the
//! machine it runs on.
//!
//! The STM implementations never touch a DPU or a thread directly — they are
//! written against this trait, which provides word loads/stores, an atomic
//! read-modify-write built from the UPMEM acquire/release primitives, phase
//! accounting and transaction-attempt accounting. Two implementations exist:
//!
//! * [`pim_sim::TaskletCtx`] — the deterministic, cycle-accounted simulator
//!   (used for all figures), implemented in this module;
//! * [`crate::threaded::ThreadPlatform`] — real OS threads over atomic
//!   memory (used for concurrency tests and examples).

use pim_sim::{Addr, Phase, TaskletCtx, Tier};

/// Result of an atomic read-modify-write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomicOutcome {
    /// Value observed before any update.
    pub previous: u64,
    /// Whether the update closure produced a new value that was stored.
    pub updated: bool,
}

/// Machine abstraction used by every STM algorithm.
pub trait Platform {
    /// Loads one word.
    fn load(&mut self, addr: Addr) -> u64;

    /// Stores one word.
    fn store(&mut self, addr: Addr, value: u64);

    /// Loads `out.len()` consecutive words starting at `addr`.
    ///
    /// The default implementation loads word by word; platforms with a DMA
    /// engine override it so a multi-word record costs one burst (setup paid
    /// once) instead of `out.len()` independent transfers. **No atomicity is
    /// implied across the words** — algorithms must bracket the burst with
    /// their own validation (as NOrec's record read does with the sequence
    /// lock).
    fn load_block(&mut self, addr: Addr, out: &mut [u64]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.load(addr.offset(i as u32));
        }
    }

    /// Stores `values` to consecutive words starting at `addr` (see
    /// [`Platform::load_block`] for the cost model and atomicity caveat).
    fn store_block(&mut self, addr: Addr, values: &[u64]) {
        for (i, value) in values.iter().enumerate() {
            self.store(addr.offset(i as u32), *value);
        }
    }

    /// Copies `words` consecutive words from `src` to `dst` with plain
    /// (uninstrumented) DMA, the way the UPMEM `mram_read`/`mram_write`
    /// helpers move bulk data. **No atomicity across the words** — intended
    /// for tasklet-private staging buffers and racy snapshots that are
    /// transactionally re-validated before anything depends on them.
    fn copy(&mut self, src: Addr, dst: Addr, words: u32) {
        for i in 0..words {
            let value = self.load(src.offset(i));
            self.store(dst.offset(i), value);
        }
    }

    /// Atomically applies `update` to the word at `addr`.
    ///
    /// The closure receives the current value; returning `Some(new)` stores
    /// `new`, returning `None` leaves the word unchanged. On UPMEM this is
    /// realised with the hardware acquire/release bit register (there is no
    /// compare-and-swap instruction); on the threaded executor it is a CAS
    /// loop.
    fn atomic_update(
        &mut self,
        addr: Addr,
        update: &mut dyn FnMut(u64) -> Option<u64>,
    ) -> AtomicOutcome;

    /// Switches the accounting phase, returning the previous one.
    fn set_phase(&mut self, phase: Phase) -> Phase;

    /// Starts accounting a new transaction attempt.
    fn begin_attempt(&mut self);

    /// Resolves the current attempt as committed.
    fn commit_attempt(&mut self);

    /// Resolves the current attempt as aborted (its cycles become wasted
    /// time).
    fn abort_attempt(&mut self);

    /// Resolves the current attempt as aborted *with the reason the
    /// algorithm reported*, so the platform's profile can maintain the
    /// abort-reason histogram. The shared retry core always uses this
    /// variant; the default implementation discards the reason and falls
    /// back to [`Platform::abort_attempt`].
    fn abort_attempt_with(&mut self, reason: crate::error::AbortReason) {
        let _ = reason;
        self.abort_attempt();
    }

    /// Identifier of the executing tasklet (0-based, < 24).
    fn tasklet_id(&self) -> usize;

    /// Current reading of this platform's clock in its native time domain:
    /// the tasklet's virtual cycle count on the simulator, nanoseconds since
    /// the process-wide epoch on the threaded executor. The retry core
    /// stamps each transaction's first attempt and commit with this clock so
    /// the service layer can separate queueing delay from STM retry time
    /// (see [`crate::txslot::TxStamps`]). Platforms without a clock report 0
    /// — stamps then carry no information but nothing breaks.
    fn timestamp(&self) -> u64 {
        0
    }

    /// Models `instructions` instructions of non-memory work.
    fn compute(&mut self, instructions: u64);

    /// Busy-waits for roughly `instructions` instructions (used by back-off
    /// and by NOrec's wait-for-even-sequence-lock loop). Defaults to
    /// [`Platform::compute`].
    fn spin_wait(&mut self, instructions: u64) {
        self.compute(instructions);
    }

    /// Cumulative MRAM DMA counters for this tasklet, as
    /// `(setups, words)`. The online tuner differences consecutive
    /// snapshots to estimate the average burst length of a signal window.
    /// Platforms without DMA accounting report `(0, 0)` — the tuner then
    /// leaves the DMA-driven knobs alone.
    fn dma_stats(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Notes that the online tuner evaluated one signal window. Purely an
    /// accounting hook — the evaluation's cycle cost is charged separately
    /// through [`Platform::compute`].
    fn note_tune_window(&mut self) {}

    /// Notes that the online tuner switched a knob (codes as defined by
    /// [`crate::tune::TunedKnob::code`] and the per-knob value codes).
    /// Purely an accounting hook, like [`Platform::note_tune_window`].
    fn note_tune_switch(&mut self, knob: u8, from: u8, to: u8) {
        let _ = (knob, from, to);
    }

    /// Compare-and-swap built on [`Platform::atomic_update`]: stores `new`
    /// iff the current value equals `expected`. Returns the previous value
    /// and whether the swap happened.
    fn compare_and_swap(&mut self, addr: Addr, expected: u64, new: u64) -> AtomicOutcome {
        self.atomic_update(addr, &mut |current| if current == expected { Some(new) } else { None })
    }

    /// Atomic fetch-and-add built on [`Platform::atomic_update`]. Returns the
    /// previous value.
    fn fetch_add(&mut self, addr: Addr, delta: u64) -> u64 {
        self.atomic_update(addr, &mut |current| Some(current.wrapping_add(delta))).previous
    }
}

/// Bit set in an encoded address when it refers to MRAM.
const ENC_MRAM_BIT: u64 = 1 << 32;
/// Bit used by algorithms to attach a boolean flag to a stored address (for
/// example "this write-log entry acquired its ownership record").
pub const ENC_FLAG_BIT: u64 = 1 << 63;

/// Encodes an [`Addr`] into a single word so it can be stored in read/write
/// logs that live in simulated memory.
pub fn encode_addr(addr: Addr) -> u64 {
    let tier_bit = match addr.tier {
        Tier::Wram => 0,
        Tier::Mram => ENC_MRAM_BIT,
    };
    u64::from(addr.word) | tier_bit
}

/// Decodes a word produced by [`encode_addr`] (ignoring [`ENC_FLAG_BIT`]).
pub fn decode_addr(encoded: u64) -> Addr {
    let tier = if encoded & ENC_MRAM_BIT != 0 { Tier::Mram } else { Tier::Wram };
    Addr { tier, word: (encoded & 0xffff_ffff) as u32 }
}

impl Platform for TaskletCtx<'_> {
    fn load(&mut self, addr: Addr) -> u64 {
        TaskletCtx::load(self, addr)
    }

    fn store(&mut self, addr: Addr, value: u64) {
        TaskletCtx::store(self, addr, value)
    }

    fn load_block(&mut self, addr: Addr, out: &mut [u64]) {
        TaskletCtx::load_block(self, addr, out)
    }

    fn store_block(&mut self, addr: Addr, values: &[u64]) {
        TaskletCtx::store_block(self, addr, values)
    }

    fn copy(&mut self, src: Addr, dst: Addr, words: u32) {
        TaskletCtx::copy_block(self, src, dst, words)
    }

    fn atomic_update(
        &mut self,
        addr: Addr,
        update: &mut dyn FnMut(u64) -> Option<u64>,
    ) -> AtomicOutcome {
        // The UPMEM recipe for an atomic RMW: acquire the hardware bit hashed
        // from the address, do the read-modify-write, release the bit. In the
        // discrete-event executor a step is atomic, so the acquire can only
        // fail if an algorithm leaked a held bit across operations — that is
        // a bug we want to surface loudly.
        let key = encode_addr(addr);
        let acquired = self.try_acquire(key);
        assert!(
            acquired,
            "hardware atomic bit for {addr} held across scheduler steps; \
             STM critical sections must stay within one operation"
        );
        let previous = TaskletCtx::load(self, addr);
        let outcome = match update(previous) {
            Some(new) => {
                TaskletCtx::store(self, addr, new);
                AtomicOutcome { previous, updated: true }
            }
            None => AtomicOutcome { previous, updated: false },
        };
        self.release(key);
        outcome
    }

    fn set_phase(&mut self, phase: Phase) -> Phase {
        TaskletCtx::set_phase(self, phase)
    }

    fn begin_attempt(&mut self) {
        TaskletCtx::begin_attempt(self)
    }

    fn commit_attempt(&mut self) {
        TaskletCtx::commit_attempt(self)
    }

    fn abort_attempt(&mut self) {
        TaskletCtx::abort_attempt(self)
    }

    fn abort_attempt_with(&mut self, reason: crate::error::AbortReason) {
        TaskletCtx::abort_attempt_coded(self, reason.index())
    }

    fn tasklet_id(&self) -> usize {
        TaskletCtx::tasklet_id(self)
    }

    fn timestamp(&self) -> u64 {
        TaskletCtx::now(self)
    }

    fn compute(&mut self, instructions: u64) {
        TaskletCtx::compute(self, instructions)
    }

    fn spin_wait(&mut self, instructions: u64) {
        TaskletCtx::spin_wait(self, instructions)
    }

    fn dma_stats(&self) -> (u64, u64) {
        let stats = TaskletCtx::stats(self);
        (stats.mram_dma_setups, stats.mram_dma_words)
    }

    fn note_tune_window(&mut self) {
        TaskletCtx::note_tune_window(self)
    }

    fn note_tune_switch(&mut self, knob: u8, from: u8, to: u8) {
        TaskletCtx::note_tune_switch(self, knob, from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{Dpu, DpuConfig, TaskletStats};

    #[test]
    fn addr_encoding_roundtrips_both_tiers() {
        for addr in [Addr::wram(0), Addr::wram(8191), Addr::mram(0), Addr::mram(0x00ff_ffff)] {
            assert_eq!(decode_addr(encode_addr(addr)), addr);
        }
        // The flag bit does not disturb decoding.
        let a = Addr::mram(123);
        assert_eq!(decode_addr(encode_addr(a) | ENC_FLAG_BIT), a);
    }

    #[test]
    fn wram_and_mram_addresses_encode_differently() {
        assert_ne!(encode_addr(Addr::wram(5)), encode_addr(Addr::mram(5)));
    }

    #[test]
    fn sim_platform_cas_and_fetch_add() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let mut stats = TaskletStats::new();
        let word = dpu.alloc(Tier::Mram, 1).unwrap();
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
        let p: &mut dyn Platform = &mut ctx;

        let first = p.compare_and_swap(word, 0, 7);
        assert!(first.updated);
        assert_eq!(first.previous, 0);
        let second = p.compare_and_swap(word, 0, 9);
        assert!(!second.updated);
        assert_eq!(second.previous, 7);
        assert_eq!(p.load(word), 7);

        assert_eq!(p.fetch_add(word, 3), 7);
        assert_eq!(p.load(word), 10);
    }

    #[test]
    fn sim_platform_attempt_accounting_flows_to_stats() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let mut stats = TaskletStats::new();
        let word = dpu.alloc(Tier::Wram, 1).unwrap();
        {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 2, 1, 0);
            let p: &mut dyn Platform = &mut ctx;
            assert_eq!(p.tasklet_id(), 2);
            p.begin_attempt();
            p.set_phase(Phase::Writing);
            p.store(word, 5);
            p.commit_attempt();
            p.begin_attempt();
            p.set_phase(Phase::Reading);
            p.load(word);
            p.abort_attempt();
        }
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.aborts, 1);
        assert!(stats.breakdown.get(Phase::Writing) > 0);
        assert!(stats.breakdown.get(Phase::Wasted) > 0);
        assert_eq!(stats.breakdown.get(Phase::Reading), 0);
    }

    #[test]
    fn atomic_update_releases_the_hardware_bit() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let mut stats = TaskletStats::new();
        let word = dpu.alloc(Tier::Wram, 1).unwrap();
        {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
            let p: &mut dyn Platform = &mut ctx;
            p.fetch_add(word, 1);
            p.fetch_add(word, 1);
        }
        assert_eq!(dpu.atomic_register().held_count(), 0);
        assert_eq!(dpu.peek(word), 2);
    }
}
