//! The [`TmAlgorithm`] trait implemented by every STM design, the factory
//! that maps an [`StmKind`] to its implementation, and a convenience
//! retry-loop for closure-style transactions.

use pim_sim::Addr;

use crate::config::StmKind;
use crate::error::Abort;
use crate::platform::Platform;
use crate::policy::{
    CommitTime, ComposedTm, EncounterTime, InvisibleOrec, ValueValidation, VisibleReadLocks,
    WriteBack, WriteThrough,
};
use crate::shared::StmShared;
use crate::txslot::TxSlot;

/// A word-based software transactional memory algorithm.
///
/// Implementations are stateless: all shared state lives in DPU memory
/// behind [`StmShared`] and all per-transaction state in the [`TxSlot`], so
/// a single `&'static dyn TmAlgorithm` can serve every tasklet.
///
/// # Abort contract
///
/// When `read`, `write` or `commit` return [`Abort`], the algorithm has
/// already rolled back its side effects (released ownership records and
/// read/write locks, undone write-through stores). The caller only needs to
/// account the abort ([`Platform::abort_attempt`]) and restart the
/// transaction from [`TmAlgorithm::begin`].
pub trait TmAlgorithm: Send + Sync {
    /// Which point of the design space this algorithm implements.
    fn kind(&self) -> StmKind;

    /// Starts (or restarts) a transaction attempt.
    fn begin(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform);

    /// Transactional read of one word.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if a conflict with a concurrent transaction was
    /// detected; the attempt must be retried.
    fn read(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
    ) -> Result<u64, Abort>;

    /// Transactional write of one word.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if a conflict with a concurrent transaction was
    /// detected; the attempt must be retried.
    fn write(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        value: u64,
    ) -> Result<(), Abort>;

    /// Attempts to commit the transaction.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if final validation or commit-time lock acquisition
    /// failed; the attempt must be retried.
    fn commit(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
    ) -> Result<(), Abort>;

    /// Explicitly abandons the current attempt: rolls back any exposed
    /// writes and releases every lock, exactly as an internally detected
    /// conflict would. Used by workloads (e.g. Labyrinth) that decide to
    /// restart after observing application-level interference; the caller
    /// still accounts the abort via [`Platform::abort_attempt`].
    fn cancel(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform) {
        let _ = (shared, tx, p);
    }

    /// Transactional read of `out.len()` consecutive words.
    ///
    /// The default implementation runs the full per-word read protocol
    /// ([`crate::access::read_record_word_wise`]), which is sound for every
    /// design. All seven built-in designs override it with the shared
    /// record-access layer ([`crate::access`]), which honours
    /// [`crate::StmConfig::read_strategy`]: under
    /// [`crate::ReadStrategy::Batched`] the record's data moves as **one
    /// MRAM DMA burst per contiguous run** while the per-word metadata
    /// protocol still runs against the staged words.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflict, with side effects already rolled back
    /// exactly as for [`TmAlgorithm::read`].
    fn read_record(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        out: &mut [u64],
    ) -> Result<(), Abort> {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.read(shared, tx, p, addr.offset(i as u32))?;
        }
        Ok(())
    }

    /// Transactional write of consecutive words.
    ///
    /// The default implementation runs the full per-word write protocol
    /// (sound for every design; write-back designs only touch their redo log
    /// here, so there is no data DMA to batch until commit).
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflict, with side effects already rolled back
    /// exactly as for [`TmAlgorithm::write`].
    fn write_record(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        values: &[u64],
    ) -> Result<(), Abort> {
        for (i, value) in values.iter().enumerate() {
            self.write(shared, tx, p, addr.offset(i as u32), *value)?;
        }
        Ok(())
    }
}

// The seven coherent cells of the policy grid (all other cells fail
// `ComposedTm::new`'s coherence check at compile time). Each legacy
// `StmKind` resolves onto one of these compositions; the retired monolithic
// implementations are deleted, their behaviour pinned as goldens by the
// policy equivalence suite.
static NOREC: ComposedTm<ValueValidation, CommitTime, WriteBack> = ComposedTm::new(ValueValidation);
static OREC_CTL_WB: ComposedTm<InvisibleOrec, CommitTime, WriteBack> =
    ComposedTm::new(InvisibleOrec);
static OREC_ETL_WB: ComposedTm<InvisibleOrec, EncounterTime, WriteBack> =
    ComposedTm::new(InvisibleOrec);
static OREC_ETL_WT: ComposedTm<InvisibleOrec, EncounterTime, WriteThrough> =
    ComposedTm::new(InvisibleOrec);
static VR_CTL_WB: ComposedTm<VisibleReadLocks, CommitTime, WriteBack> =
    ComposedTm::new(VisibleReadLocks);
static VR_ETL_WB: ComposedTm<VisibleReadLocks, EncounterTime, WriteBack> =
    ComposedTm::new(VisibleReadLocks);
static VR_ETL_WT: ComposedTm<VisibleReadLocks, EncounterTime, WriteThrough> =
    ComposedTm::new(VisibleReadLocks);

/// Returns the (stateless, statically allocated) implementation of `kind` —
/// the [`ComposedTm`] policy composition the kind's
/// [`crate::config::TmComposition`] describes.
pub fn algorithm_for(kind: StmKind) -> &'static dyn TmAlgorithm {
    match kind {
        StmKind::Norec => &NOREC,
        StmKind::TinyCtlWb => &OREC_CTL_WB,
        StmKind::TinyEtlWb => &OREC_ETL_WB,
        StmKind::TinyEtlWt => &OREC_ETL_WT,
        StmKind::VrCtlWb => &VR_CTL_WB,
        StmKind::VrEtlWb => &VR_ETL_WB,
        StmKind::VrEtlWt => &VR_ETL_WT,
    }
}

/// Handle passed to transaction bodies by [`run_transaction`] and
/// [`crate::TxEngine::transaction`] — i.e. by **both** executors.
///
/// Besides the word-based inherent methods kept for backwards compatibility,
/// `TxView` implements the typed [`crate::var::TxOps`] facade, so bodies can
/// be written once against `TxOps` and run anywhere.
pub struct TxView<'a> {
    alg: &'a dyn TmAlgorithm,
    shared: &'a StmShared,
    tx: &'a mut TxSlot,
    p: &'a mut dyn Platform,
}

impl<'a> TxView<'a> {
    /// Binds an algorithm, shared metadata, a transaction descriptor and a
    /// platform into a body handle (used by the retry loop in
    /// [`crate::engine`]).
    pub(crate) fn new(
        alg: &'a dyn TmAlgorithm,
        shared: &'a StmShared,
        tx: &'a mut TxSlot,
        p: &'a mut dyn Platform,
    ) -> Self {
        TxView { alg, shared, tx, p }
    }
}

impl TxView<'_> {
    /// Transactional read.
    ///
    /// # Errors
    ///
    /// Propagates [`Abort`]; the body should return it via `?` so the retry
    /// loop can restart the transaction.
    pub fn read(&mut self, addr: Addr) -> Result<u64, Abort> {
        self.alg.read(self.shared, self.tx, self.p, addr)
    }

    /// Transactional write.
    ///
    /// # Errors
    ///
    /// Propagates [`Abort`]; the body should return it via `?`.
    pub fn write(&mut self, addr: Addr, value: u64) -> Result<(), Abort> {
        self.alg.write(self.shared, self.tx, self.p, addr, value)
    }

    /// Models non-transactional computation inside the transaction body.
    pub fn compute(&mut self, instructions: u64) {
        self.p.compute(instructions);
    }

    /// Identifier of the executing tasklet.
    pub fn tasklet_id(&self) -> usize {
        self.p.tasklet_id()
    }
}

impl crate::var::TxOps for TxView<'_> {
    fn read_word(&mut self, addr: Addr) -> Result<u64, Abort> {
        self.alg.read(self.shared, self.tx, self.p, addr)
    }

    fn write_word(&mut self, addr: Addr, value: u64) -> Result<(), Abort> {
        self.alg.write(self.shared, self.tx, self.p, addr, value)
    }

    fn read_words(&mut self, addr: Addr, out: &mut [u64]) -> Result<(), Abort> {
        self.alg.read_record(self.shared, self.tx, self.p, addr, out)
    }

    fn write_words(&mut self, addr: Addr, values: &[u64]) -> Result<(), Abort> {
        self.alg.write_record(self.shared, self.tx, self.p, addr, values)
    }

    fn compute(&mut self, instructions: u64) {
        self.p.compute(instructions);
    }

    fn tasklet_id(&self) -> usize {
        self.p.tasklet_id()
    }

    fn cancel(&mut self) -> Abort {
        self.alg.cancel(self.shared, self.tx, self.p);
        Abort::new(crate::error::AbortReason::Explicit)
    }

    fn raw_load(&mut self, addr: Addr) -> u64 {
        self.p.load(addr)
    }

    fn raw_store(&mut self, addr: Addr, value: u64) {
        self.p.store(addr, value)
    }

    fn raw_copy(&mut self, src: Addr, dst: Addr, words: u32) {
        self.p.copy(src, dst, words)
    }
}

/// Runs `body` as a transaction, retrying on abort until it commits, and
/// returns the body's result.
///
/// This is a thin wrapper over the shared retry core in [`crate::engine`]
/// (see [`crate::engine::run_retry_loop`]); the step-granular
/// [`crate::TxEngine`] API uses the same core, so accounting and back-off
/// are identical across execution styles.
///
/// The whole transaction executes within the caller's time slice, so this
/// helper is intended for the threaded executor and for examples; the
/// experiment harness uses step-granular tasklet programs instead (see
/// `pim-workloads`), which interleave individual operations of concurrent
/// transactions.
pub fn run_transaction<R>(
    alg: &dyn TmAlgorithm,
    shared: &StmShared,
    tx: &mut TxSlot,
    p: &mut dyn Platform,
    body: impl FnMut(&mut TxView<'_>) -> Result<R, Abort>,
) -> R {
    crate::engine::run_retry_loop(alg, shared, tx, p, None, body)
}

pub use crate::engine::backoff;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StmConfig;
    use pim_sim::{Dpu, DpuConfig, TaskletCtx, TaskletStats, Tier};

    #[test]
    fn factory_returns_matching_kinds() {
        for kind in StmKind::ALL {
            assert_eq!(algorithm_for(kind).kind(), kind);
        }
    }

    #[test]
    fn run_transaction_commits_simple_increments_for_every_design() {
        for kind in StmKind::ALL {
            let mut dpu = Dpu::new(DpuConfig::small());
            let cfg = StmConfig::small_wram(kind);
            let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
            let mut slot = shared.register_tasklet(&mut dpu, 0).unwrap();
            let counter = dpu.alloc(Tier::Mram, 1).unwrap();
            let mut stats = TaskletStats::new();
            let alg = algorithm_for(kind);
            for _ in 0..10 {
                let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
                run_transaction(alg, &shared, &mut slot, &mut ctx, |tx| {
                    let v = tx.read(counter)?;
                    tx.write(counter, v + 1)?;
                    Ok(())
                });
            }
            assert_eq!(dpu.peek(counter), 10, "{kind} lost updates");
            assert_eq!(stats.commits, 10, "{kind} commit count");
            assert_eq!(stats.aborts, 0, "{kind} should not abort single-threaded");
        }
    }

    #[test]
    fn explicit_cancel_rolls_back_and_the_retry_succeeds() {
        use crate::var::TxOps;
        for kind in StmKind::ALL {
            let mut dpu = Dpu::new(DpuConfig::small());
            let cfg = StmConfig::small_wram(kind);
            let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
            let mut slot = shared.register_tasklet(&mut dpu, 0).unwrap();
            let data = dpu.alloc(Tier::Mram, 1).unwrap();
            dpu.poke(data, 7);
            let mut stats = TaskletStats::new();
            let alg = algorithm_for(kind);
            let mut attempts = 0;
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
            run_transaction(alg, &shared, &mut slot, &mut ctx, |tx| {
                attempts += 1;
                let v = tx.read(data)?;
                tx.write(data, v + 1)?;
                if attempts == 1 {
                    // Application-level restart: the write (even an exposed
                    // write-through store) must be rolled back and every
                    // lock released so the retry can reacquire them.
                    return Err(tx.cancel());
                }
                Ok(())
            });
            assert_eq!(attempts, 2, "{kind}: cancel must trigger exactly one retry");
            assert_eq!(dpu.peek(data), 8, "{kind}: only the committed increment survives");
            assert_eq!(stats.aborts, 1, "{kind}: the cancelled attempt is accounted");
            assert_eq!(stats.commits, 1, "{kind}");
        }
    }

    #[test]
    fn raw_ops_bypass_instrumentation() {
        use crate::var::TxOps;
        let mut dpu = Dpu::new(DpuConfig::small());
        let cfg = StmConfig::small_wram(StmKind::TinyEtlWb);
        let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
        let mut slot = shared.register_tasklet(&mut dpu, 0).unwrap();
        let src = dpu.alloc(Tier::Mram, 4).unwrap();
        let dst = dpu.alloc(Tier::Mram, 4).unwrap();
        dpu.poke_block(src, &[1, 2, 3, 4]);
        let mut stats = TaskletStats::new();
        let alg = algorithm_for(StmKind::TinyEtlWb);
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
        run_transaction(alg, &shared, &mut slot, &mut ctx, |tx| {
            tx.raw_copy(src, dst, 4);
            let v = tx.raw_load(dst.offset(1));
            tx.raw_store(dst.offset(1), v * 10);
            Ok(())
        });
        assert_eq!(dpu.peek_block(dst, 4), vec![1, 20, 3, 4]);
        // Raw accesses leave no trace in the transaction logs.
        assert_eq!(slot.read_set_len(), 0);
        assert_eq!(slot.write_set_len(), 0);
    }

    #[test]
    fn backoff_grows_with_attempts_and_stays_bounded() {
        let measure = |tasklet: usize, attempts: u64| {
            let mut dpu = Dpu::new(DpuConfig::small());
            let mut stats = TaskletStats::new();
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, tasklet, 1, 0);
            backoff(&mut ctx, attempts);
            ctx.now()
        };
        assert_eq!(measure(0, 0), 0, "no back-off before the first abort");
        let after_one = measure(0, 1);
        let after_ten = measure(0, 10);
        assert!(after_one > 0);
        assert!(after_ten > after_one, "back-off must grow with consecutive aborts");
        // Bounded: even after absurdly many aborts the wait stays within the
        // saturation window (2^10 base + jitter).
        let after_many = measure(0, 1_000);
        assert!(after_many <= measure_upper_bound());
        // Different tasklets receive different jitter (this is what breaks
        // deterministic livelock in the simulator).
        assert_ne!(measure(0, 5), measure(1, 5));
    }

    fn measure_upper_bound() -> u64 {
        // (2^14 + 3 * (2^14 - 1)) instructions, each costing at most 24
        // cycles (the deepest issue contention possible).
        (16384 + 3 * 16383) * 24
    }
}
