//! The [`TmAlgorithm`] trait implemented by every STM design, the factory
//! that maps an [`StmKind`] to its implementation, and a convenience
//! retry-loop for closure-style transactions.

use pim_sim::{Addr, Phase};

use crate::config::{LockTiming, StmKind, WritePolicy};
use crate::error::Abort;
use crate::norec::Norec;
use crate::platform::Platform;
use crate::shared::StmShared;
use crate::tiny::Tiny;
use crate::txslot::TxSlot;
use crate::vr::Vr;

/// A word-based software transactional memory algorithm.
///
/// Implementations are stateless: all shared state lives in DPU memory
/// behind [`StmShared`] and all per-transaction state in the [`TxSlot`], so
/// a single `&'static dyn TmAlgorithm` can serve every tasklet.
///
/// # Abort contract
///
/// When `read`, `write` or `commit` return [`Abort`], the algorithm has
/// already rolled back its side effects (released ownership records and
/// read/write locks, undone write-through stores). The caller only needs to
/// account the abort ([`Platform::abort_attempt`]) and restart the
/// transaction from [`TmAlgorithm::begin`].
pub trait TmAlgorithm: Send + Sync {
    /// Which point of the design space this algorithm implements.
    fn kind(&self) -> StmKind;

    /// Starts (or restarts) a transaction attempt.
    fn begin(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform);

    /// Transactional read of one word.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if a conflict with a concurrent transaction was
    /// detected; the attempt must be retried.
    fn read(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
    ) -> Result<u64, Abort>;

    /// Transactional write of one word.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if a conflict with a concurrent transaction was
    /// detected; the attempt must be retried.
    fn write(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        value: u64,
    ) -> Result<(), Abort>;

    /// Attempts to commit the transaction.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if final validation or commit-time lock acquisition
    /// failed; the attempt must be retried.
    fn commit(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform)
        -> Result<(), Abort>;

    /// Explicitly abandons the current attempt: rolls back any exposed
    /// writes and releases every lock, exactly as an internally detected
    /// conflict would. Used by workloads (e.g. Labyrinth) that decide to
    /// restart after observing application-level interference; the caller
    /// still accounts the abort via [`Platform::abort_attempt`].
    fn cancel(&self, shared: &StmShared, tx: &mut TxSlot, p: &mut dyn Platform) {
        let _ = (shared, tx, p);
    }
}

static NOREC: Norec = Norec;
static TINY_CTL_WB: Tiny = Tiny::new(LockTiming::Commit, WritePolicy::WriteBack);
static TINY_ETL_WB: Tiny = Tiny::new(LockTiming::Encounter, WritePolicy::WriteBack);
static TINY_ETL_WT: Tiny = Tiny::new(LockTiming::Encounter, WritePolicy::WriteThrough);
static VR_CTL_WB: Vr = Vr::new(LockTiming::Commit, WritePolicy::WriteBack);
static VR_ETL_WB: Vr = Vr::new(LockTiming::Encounter, WritePolicy::WriteBack);
static VR_ETL_WT: Vr = Vr::new(LockTiming::Encounter, WritePolicy::WriteThrough);

/// Returns the (stateless, statically allocated) implementation of `kind`.
pub fn algorithm_for(kind: StmKind) -> &'static dyn TmAlgorithm {
    match kind {
        StmKind::Norec => &NOREC,
        StmKind::TinyCtlWb => &TINY_CTL_WB,
        StmKind::TinyEtlWb => &TINY_ETL_WB,
        StmKind::TinyEtlWt => &TINY_ETL_WT,
        StmKind::VrCtlWb => &VR_CTL_WB,
        StmKind::VrEtlWb => &VR_ETL_WB,
        StmKind::VrEtlWt => &VR_ETL_WT,
    }
}

/// Handle passed to the body of [`run_transaction`].
pub struct TxView<'a> {
    alg: &'a dyn TmAlgorithm,
    shared: &'a StmShared,
    tx: &'a mut TxSlot,
    p: &'a mut dyn Platform,
}

impl TxView<'_> {
    /// Transactional read.
    ///
    /// # Errors
    ///
    /// Propagates [`Abort`]; the body should return it via `?` so the retry
    /// loop can restart the transaction.
    pub fn read(&mut self, addr: Addr) -> Result<u64, Abort> {
        self.alg.read(self.shared, self.tx, self.p, addr)
    }

    /// Transactional write.
    ///
    /// # Errors
    ///
    /// Propagates [`Abort`]; the body should return it via `?`.
    pub fn write(&mut self, addr: Addr, value: u64) -> Result<(), Abort> {
        self.alg.write(self.shared, self.tx, self.p, addr, value)
    }

    /// Models non-transactional computation inside the transaction body.
    pub fn compute(&mut self, instructions: u64) {
        self.p.compute(instructions);
    }

    /// Identifier of the executing tasklet.
    pub fn tasklet_id(&self) -> usize {
        self.p.tasklet_id()
    }
}

/// Runs `body` as a transaction, retrying on abort until it commits, and
/// returns the body's result.
///
/// The whole transaction executes within the caller's time slice, so this
/// helper is intended for the threaded executor and for examples; the
/// experiment harness uses step-granular tasklet programs instead (see
/// `pim-workloads`), which interleave individual operations of concurrent
/// transactions.
pub fn run_transaction<R>(
    alg: &dyn TmAlgorithm,
    shared: &StmShared,
    tx: &mut TxSlot,
    p: &mut dyn Platform,
    mut body: impl FnMut(&mut TxView<'_>) -> Result<R, Abort>,
) -> R {
    loop {
        p.begin_attempt();
        alg.begin(shared, tx, p);
        let result = {
            let mut view = TxView { alg, shared, tx, p };
            body(&mut view)
        };
        match result {
            Ok(value) => match alg.commit(shared, tx, p) {
                Ok(()) => {
                    p.commit_attempt();
                    tx.note_commit();
                    p.set_phase(Phase::OtherExec);
                    return value;
                }
                Err(_) => {
                    p.abort_attempt();
                    tx.note_abort();
                    backoff(p, tx.consecutive_aborts());
                }
            },
            Err(_) => {
                p.abort_attempt();
                tx.note_abort();
                backoff(p, tx.consecutive_aborts());
            }
        }
        p.set_phase(Phase::OtherExec);
    }
}

/// Bounded randomised exponential back-off charged as spin-wait
/// instructions.
///
/// The jitter term (derived deterministically from the tasklet id and the
/// attempt number, so simulated runs stay reproducible) is essential on the
/// discrete-event executor: tasklets that abort in lockstep would otherwise
/// retry in lockstep forever — the classic symmetric-livelock problem that
/// real hardware escapes through timing noise.
pub fn backoff(p: &mut dyn Platform, consecutive_aborts: u64) {
    if consecutive_aborts == 0 {
        return;
    }
    // The window keeps doubling well past the length of a typical
    // transaction: designs that are prone to symmetric duels (most notably
    // the commit-time-locking visible-reads variant, whose readers block each
    // other's upgrades) need some competitor's window to grow large enough
    // that the others can drain completely.
    let exp = consecutive_aborts.min(14) as u32;
    let seed = (p.tasklet_id() as u64 + 1)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(consecutive_aborts.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    let jitter = (seed >> 33) % (1u64 << exp);
    p.spin_wait((1u64 << exp) + 3 * jitter);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MetadataPlacement, StmConfig};
    use pim_sim::{Dpu, DpuConfig, TaskletCtx, TaskletStats, Tier};

    #[test]
    fn factory_returns_matching_kinds() {
        for kind in StmKind::ALL {
            assert_eq!(algorithm_for(kind).kind(), kind);
        }
    }

    #[test]
    fn run_transaction_commits_simple_increments_for_every_design() {
        for kind in StmKind::ALL {
            let mut dpu = Dpu::new(DpuConfig::small());
            let cfg = StmConfig::new(kind, MetadataPlacement::Wram);
            let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
            let mut slot = shared.register_tasklet(&mut dpu, 0).unwrap();
            let counter = dpu.alloc(Tier::Mram, 1).unwrap();
            let mut stats = TaskletStats::new();
            let alg = algorithm_for(kind);
            for _ in 0..10 {
                let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
                run_transaction(alg, &shared, &mut slot, &mut ctx, |tx| {
                    let v = tx.read(counter)?;
                    tx.write(counter, v + 1)?;
                    Ok(())
                });
            }
            assert_eq!(dpu.peek(counter), 10, "{kind} lost updates");
            assert_eq!(stats.commits, 10, "{kind} commit count");
            assert_eq!(stats.aborts, 0, "{kind} should not abort single-threaded");
        }
    }

    #[test]
    fn backoff_grows_with_attempts_and_stays_bounded() {
        let measure = |tasklet: usize, attempts: u64| {
            let mut dpu = Dpu::new(DpuConfig::small());
            let mut stats = TaskletStats::new();
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, tasklet, 1, 0);
            backoff(&mut ctx, attempts);
            ctx.now()
        };
        assert_eq!(measure(0, 0), 0, "no back-off before the first abort");
        let after_one = measure(0, 1);
        let after_ten = measure(0, 10);
        assert!(after_one > 0);
        assert!(after_ten > after_one, "back-off must grow with consecutive aborts");
        // Bounded: even after absurdly many aborts the wait stays within the
        // saturation window (2^10 base + jitter).
        let after_many = measure(0, 1_000);
        assert!(after_many <= measure_upper_bound());
        // Different tasklets receive different jitter (this is what breaks
        // deterministic livelock in the simulator).
        assert_ne!(measure(0, 5), measure(1, 5));
    }

    fn measure_upper_bound() -> u64 {
        // (2^14 + 3 * (2^14 - 1)) instructions, each costing at most 24
        // cycles (the deepest issue contention possible).
        (16384 + 3 * 16383) * 24
    }
}
