//! Per-DPU shared STM metadata: the global sequence lock / version clock and
//! the hashed lock table, plus allocation of per-tasklet descriptors.

use pim_sim::{Addr, AllocError, Dpu, Tier};

use crate::config::StmConfig;
use crate::platform::encode_addr;
use crate::txslot::{TxSlot, READ_ENTRY_WORDS, WRITE_ENTRY_WORDS};

/// Anything that can hand out words of DPU memory for metadata: the simulator
/// [`Dpu`] and the threaded executor both implement this.
pub trait MetadataAllocator {
    /// Bump-allocates `words` zeroed words in `tier`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the tier does not have enough free space —
    /// on UPMEM this is a real constraint (the paper cannot even fit
    /// Labyrinth's logs, or ArrayBench A's lock table, in WRAM).
    fn alloc_words(&mut self, tier: Tier, words: u32) -> Result<Addr, AllocError>;
}

impl MetadataAllocator for Dpu {
    fn alloc_words(&mut self, tier: Tier, words: u32) -> Result<Addr, AllocError> {
        self.alloc(tier, words)
    }
}

/// Shared (per-DPU) state of one STM instance.
///
/// All fields are *addresses into DPU memory*; the actual contents live in
/// WRAM or MRAM according to the configured [`crate::MetadataPlacement`] so
/// that every metadata access pays the correct latency.
#[derive(Debug, Clone)]
pub struct StmShared {
    config: StmConfig,
    /// Single word: NOrec sequence lock (odd = a writer is committing).
    seqlock: Addr,
    /// Single word: Tiny's global version clock.
    clock: Addr,
    /// Base of the ORec / rw-lock table (absent for NOrec).
    lock_table: Option<Addr>,
}

impl StmShared {
    /// Allocates the shared metadata for `config` using `alloc`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the configured tier cannot hold the
    /// metadata (e.g. a large lock table in WRAM).
    pub fn allocate<A: MetadataAllocator + ?Sized>(
        alloc: &mut A,
        config: StmConfig,
    ) -> Result<Self, AllocError> {
        let meta_tier = config.metadata_tier();
        let seqlock = alloc.alloc_words(meta_tier, 1)?;
        let clock = alloc.alloc_words(meta_tier, 1)?;
        let lock_table = if config.kind.uses_lock_table() {
            Some(alloc.alloc_words(config.lock_table_tier(), config.lock_table_entries)?)
        } else {
            None
        };
        Ok(StmShared { config, seqlock, clock, lock_table })
    }

    /// The configuration this instance was allocated with.
    pub fn config(&self) -> &StmConfig {
        &self.config
    }

    /// Mutable access to this handle's configuration copy, for the online
    /// tuner ([`crate::tune`]): each engine owns its own `StmShared` clone,
    /// so rewriting the runtime-switchable knobs here retunes exactly one
    /// tasklet without disturbing the metadata addresses (which the tuner
    /// never touches) or any other tasklet's knobs.
    pub(crate) fn config_mut(&mut self) -> &mut StmConfig {
        &mut self.config
    }

    /// Address of the NOrec sequence lock word.
    pub fn seqlock_addr(&self) -> Addr {
        self.seqlock
    }

    /// Address of the global version clock word (Tiny).
    pub fn clock_addr(&self) -> Addr {
        self.clock
    }

    /// Address of the `index`-th lock-table entry.
    ///
    /// # Panics
    ///
    /// Panics if the configured STM design does not use a lock table.
    pub fn lock_entry_addr(&self, index: u32) -> Addr {
        let base = self.lock_table.expect("this STM design does not use a lock table");
        debug_assert!(index < self.config.lock_table_entries);
        base.offset(index)
    }

    /// Maps a data address onto a lock-table index. Like TinySTM, consecutive
    /// words map onto consecutive entries (a striped layout), so nearby
    /// addresses never alias; addresses that differ by a multiple of the
    /// table size share an entry. The table size (a compile-time choice in
    /// the original library) therefore controls the trade-off between
    /// metadata footprint and false conflicts through aliasing.
    pub fn lock_index(&self, addr: Addr) -> u32 {
        (encode_addr(addr) % u64::from(self.config.lock_table_entries)) as u32
    }

    /// Address of the ORec / rw-lock covering `addr`.
    pub fn orec_addr(&self, addr: Addr) -> Addr {
        self.lock_entry_addr(self.lock_index(addr))
    }

    /// Allocates the per-tasklet read and write logs for `tasklet_id`.
    ///
    /// Both logs come from **one** allocation, so registration is
    /// all-or-nothing: on failure the (bump-only, non-freeing) allocator has
    /// consumed nothing and the caller can retry with a smaller
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the metadata tier cannot hold the logs.
    pub fn register_tasklet<A: MetadataAllocator + ?Sized>(
        &self,
        alloc: &mut A,
        tasklet_id: usize,
    ) -> Result<TxSlot, AllocError> {
        let tier = self.config.metadata_tier();
        let rs_words = self.config.read_set_capacity * READ_ENTRY_WORDS;
        let ws_words = self.config.write_set_capacity * WRITE_ENTRY_WORDS;
        let rs = alloc.alloc_words(tier, rs_words + ws_words)?;
        let ws = rs.offset(rs_words);
        Ok(TxSlot::new(
            tasklet_id,
            rs,
            self.config.read_set_capacity,
            ws,
            self.config.write_set_capacity,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MetadataPlacement, StmKind};
    use pim_sim::DpuConfig;

    #[test]
    fn allocation_places_metadata_in_the_configured_tier() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let cfg = StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Wram);
        let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
        assert_eq!(shared.seqlock_addr().tier, Tier::Wram);
        assert_eq!(shared.lock_entry_addr(0).tier, Tier::Wram);
        let slot = shared.register_tasklet(&mut dpu, 0).unwrap();
        assert_eq!(slot.tasklet_id(), 0);

        let cfg_m = StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Mram);
        let shared_m = StmShared::allocate(&mut dpu, cfg_m).unwrap();
        assert_eq!(shared_m.lock_entry_addr(0).tier, Tier::Mram);
    }

    #[test]
    fn lock_table_placement_override_is_respected() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let cfg = StmConfig::new(StmKind::VrEtlWb, MetadataPlacement::Wram)
            .with_lock_table_placement(MetadataPlacement::Mram);
        let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
        assert_eq!(shared.seqlock_addr().tier, Tier::Wram);
        assert_eq!(shared.lock_entry_addr(0).tier, Tier::Mram);
    }

    #[test]
    fn norec_does_not_allocate_a_lock_table() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let free_before = dpu.free_words(Tier::Wram);
        let cfg = StmConfig::new(StmKind::Norec, MetadataPlacement::Wram);
        let _shared = StmShared::allocate(&mut dpu, cfg).unwrap();
        // Only the two global words were taken.
        assert_eq!(dpu.free_words(Tier::Wram), free_before - 2);
    }

    #[test]
    #[should_panic(expected = "does not use a lock table")]
    fn lock_entry_on_norec_panics() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let cfg = StmConfig::new(StmKind::Norec, MetadataPlacement::Wram);
        let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
        let _ = shared.lock_entry_addr(0);
    }

    #[test]
    fn oversized_lock_table_fails_to_fit_in_wram() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let cfg = StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Wram)
            .with_lock_table_entries(100_000);
        assert!(StmShared::allocate(&mut dpu, cfg).is_err());
    }

    #[test]
    fn lock_index_is_stable_and_in_range() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let cfg =
            StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Mram).with_lock_table_entries(64);
        let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
        let mut seen = std::collections::HashSet::new();
        for w in 0..1000u32 {
            let idx = shared.lock_index(Addr::mram(w));
            assert!(idx < 64);
            assert_eq!(idx, shared.lock_index(Addr::mram(w)), "hash must be deterministic");
            seen.insert(idx);
        }
        // A thousand addresses over 64 buckets should touch most buckets.
        assert!(seen.len() > 48, "hash distributes poorly: {} buckets", seen.len());
    }

    #[test]
    fn distinct_tasklets_get_disjoint_logs() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let cfg = StmConfig::new(StmKind::Norec, MetadataPlacement::Wram)
            .with_read_set_capacity(4)
            .with_write_set_capacity(4);
        let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
        let before = dpu.free_words(Tier::Wram);
        let _a = shared.register_tasklet(&mut dpu, 0).unwrap();
        let _b = shared.register_tasklet(&mut dpu, 1).unwrap();
        let per_tasklet = 4 * READ_ENTRY_WORDS + 4 * WRITE_ENTRY_WORDS;
        assert_eq!(dpu.free_words(Tier::Wram), before - 2 * per_tasklet);
    }
}
