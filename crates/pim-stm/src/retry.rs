//! The retry-policy axis: how an aborted attempt waits before retrying.
//!
//! Back-off is the one policy axis that never touches shared metadata, so it
//! composes with every cell of the read × lock × write grid
//! ([`crate::policy`]) and is selected per run via
//! [`crate::StmConfig::retry`] instead of being baked into the algorithm.
//! The shared retry core ([`crate::engine`]) applies it on **every** abort —
//! closure bodies and step-granular machines, simulator and threads — so a
//! sweep over retry policies is as cheap as a sweep over designs
//! (`pim-exp --retry fixed|exponential|adaptive`).
//!
//! Three policies are provided:
//!
//! * [`RetryPolicy::Exponential`] — bounded randomised exponential back-off,
//!   the pre-policy-grid behaviour and the default ([`backoff`] is the exact
//!   legacy implementation);
//! * [`RetryPolicy::Fixed`] — a constant window plus jitter: the cheapest
//!   possible contention manager, kept as the baseline the adaptive study
//!   compares against;
//! * [`RetryPolicy::Adaptive`] — exponential back-off whose saturation cap
//!   is tuned from the tasklet's own per-[`AbortReason`] abort counts (the
//!   histogram [`crate::TxSlot`] maintains, the same data
//!   [`crate::ExecProfile`] reports). The intuition, from the per-reason
//!   histograms of the unified profiles: a **validation failure** means the
//!   conflicting transaction *already committed* — nothing is held, so long
//!   waits only waste the window before the next conflict; a **lock-shaped
//!   conflict** (read/write/upgrade) means some holder must drain first, so
//!   the full exponential window pays off; an **explicit cancel** sits in
//!   between (application-level interference, e.g. Labyrinth re-routing).
//!
//! All three charge their wait through [`crate::Platform::spin_wait`], so
//! the chosen policy's cost is visible as back-off time (and, on the
//! simulator, as cycles) in the profile tables.

use crate::config::RetryPolicy;
use crate::error::AbortReason;
use crate::platform::Platform;
use crate::txslot::TxSlot;

/// Saturation exponent of the legacy exponential window (2^14 instructions
/// base): large enough that some competitor's window lets the others drain
/// completely even in the worst symmetric duels (commit-time-locking
/// visible reads).
const EXPONENTIAL_CAP: u32 = 14;

/// Window exponent of [`RetryPolicy::Fixed`] (2^6 = 64 instructions — about
/// the cost of a short transaction body, so consecutive retries stay
/// desynchronised without ever parking a tasklet for long).
const FIXED_EXP: u32 = 6;

/// Adaptive saturation cap when validation failures dominate: the
/// conflicting commit has already finished, so retry promptly.
const ADAPTIVE_VALIDATION_CAP: u32 = 7;

/// Adaptive saturation cap when explicit application cancels dominate.
const ADAPTIVE_EXPLICIT_CAP: u32 = 10;

/// Deterministic per-tasklet jitter in `[0, 2^exp)`, derived from the
/// tasklet id and the attempt number so simulated runs stay reproducible.
/// The jitter is what breaks deterministic livelock: tasklets that abort in
/// lockstep would otherwise retry in lockstep forever — the classic
/// symmetric-livelock problem real hardware escapes through timing noise.
fn jitter(p: &dyn Platform, consecutive_aborts: u64, exp: u32) -> u64 {
    let seed = (p.tasklet_id() as u64 + 1)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(consecutive_aborts.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    (seed >> 33) % (1u64 << exp)
}

/// Spins for one back-off window: `2^exp` instructions plus three times the
/// jitter term (the legacy window shape, shared by all three policies).
fn spin_window(p: &mut dyn Platform, consecutive_aborts: u64, exp: u32) {
    let jitter = jitter(p, consecutive_aborts, exp);
    p.spin_wait((1u64 << exp) + 3 * jitter);
}

/// Bounded randomised exponential back-off charged as spin-wait
/// instructions — the [`RetryPolicy::Exponential`] implementation, and
/// bit-for-bit the pre-policy-grid behaviour.
///
/// The window keeps doubling well past the length of a typical transaction:
/// designs that are prone to symmetric duels (most notably the
/// commit-time-locking visible-reads variant, whose readers block each
/// other's upgrades) need some competitor's window to grow large enough
/// that the others can drain completely.
pub fn backoff(p: &mut dyn Platform, consecutive_aborts: u64) {
    if consecutive_aborts == 0 {
        return;
    }
    let exp = consecutive_aborts.min(u64::from(EXPONENTIAL_CAP)) as u32;
    spin_window(p, consecutive_aborts, exp);
}

/// The saturation cap the adaptive policy derives from a tasklet's abort
/// histogram: the full exponential cap while lock-shaped conflicts
/// dominate, a low cap while validation failures do.
fn adaptive_cap(histogram: &[u64; AbortReason::COUNT]) -> u32 {
    let dominant = AbortReason::ALL
        .into_iter()
        .max_by_key(|r| histogram[r.index()])
        .expect("at least one abort reason exists");
    match dominant {
        AbortReason::ValidationFailed => ADAPTIVE_VALIDATION_CAP,
        AbortReason::Explicit => ADAPTIVE_EXPLICIT_CAP,
        AbortReason::ReadConflict | AbortReason::WriteConflict | AbortReason::UpgradeConflict => {
            EXPONENTIAL_CAP
        }
    }
}

/// Applies the configured back-off after an abort. Called by the shared
/// retry core ([`crate::engine`]) once the abort has been accounted, so the
/// descriptor's consecutive-abort counter and abort histogram already
/// include the abort being backed off from.
pub(crate) fn apply(policy: RetryPolicy, tx: &TxSlot, p: &mut dyn Platform) {
    let consecutive = tx.consecutive_aborts();
    if consecutive == 0 {
        return;
    }
    match policy {
        RetryPolicy::Exponential => backoff(p, consecutive),
        RetryPolicy::Fixed => spin_window(p, consecutive, FIXED_EXP),
        RetryPolicy::Adaptive => {
            let cap = adaptive_cap(tx.abort_histogram());
            let exp = consecutive.min(u64::from(cap)) as u32;
            spin_window(p, consecutive, exp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{Dpu, DpuConfig, TaskletCtx, TaskletStats, Tier};

    /// Cycles consumed by one `apply` call under controlled descriptor
    /// state.
    fn measure(
        policy: RetryPolicy,
        tasklet: usize,
        consecutive: u64,
        reasons: &[(AbortReason, u64)],
    ) -> u64 {
        let mut dpu = Dpu::new(DpuConfig::small());
        let mut stats = TaskletStats::new();
        let rs = dpu.alloc(Tier::Wram, 4).unwrap();
        let mut slot = TxSlot::new(tasklet, rs, 1, rs.offset(2), 0);
        for &(reason, count) in reasons {
            for _ in 0..count {
                slot.note_abort(reason);
            }
        }
        // note_abort above already advanced the counter; top it up (or trim
        // is impossible — tests only add) to the requested value.
        while slot.consecutive_aborts() < consecutive {
            slot.note_abort(AbortReason::WriteConflict);
        }
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, tasklet, 1, 0);
        apply(policy, &slot, &mut ctx);
        ctx.now()
    }

    #[test]
    fn exponential_matches_the_legacy_backoff_exactly() {
        for aborts in [1u64, 3, 7, 20] {
            let via_policy = measure(RetryPolicy::Exponential, 2, aborts, &[]);
            let mut dpu = Dpu::new(DpuConfig::small());
            let mut stats = TaskletStats::new();
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 2, 1, 0);
            backoff(&mut ctx, aborts);
            assert_eq!(via_policy, ctx.now(), "{aborts} aborts");
        }
    }

    #[test]
    fn fixed_windows_do_not_grow_with_consecutive_aborts() {
        // The jitter varies per attempt, but the window stays bounded by the
        // fixed exponent instead of doubling.
        let bound = (1u64 << FIXED_EXP) + 3 * ((1u64 << FIXED_EXP) - 1);
        for aborts in [1u64, 5, 30] {
            let cycles = measure(RetryPolicy::Fixed, 0, aborts, &[]);
            assert!(cycles > 0);
            // Instructions are charged at >= 1 cycle each; 24 is the deepest
            // issue contention possible.
            assert!(cycles <= bound * 24, "{aborts} aborts: {cycles} cycles");
        }
        let exponential = measure(RetryPolicy::Exponential, 0, 14, &[]);
        let fixed = measure(RetryPolicy::Fixed, 0, 14, &[]);
        assert!(fixed < exponential, "a saturated exponential window must dwarf the fixed one");
    }

    #[test]
    fn adaptive_backs_off_less_when_validation_failures_dominate() {
        let lock_dominated =
            measure(RetryPolicy::Adaptive, 1, 12, &[(AbortReason::WriteConflict, 12)]);
        let validation_dominated =
            measure(RetryPolicy::Adaptive, 1, 12, &[(AbortReason::ValidationFailed, 12)]);
        assert!(
            validation_dominated < lock_dominated,
            "validation-dominated histograms must cap the window low \
             ({validation_dominated} vs {lock_dominated} cycles)"
        );
        // Lock-dominated behaviour is the full legacy window.
        assert_eq!(lock_dominated, measure(RetryPolicy::Exponential, 1, 12, &[]));
    }

    #[test]
    fn adaptive_caps_are_ordered_by_how_long_the_conflicter_holds_on() {
        const { assert!(ADAPTIVE_VALIDATION_CAP < ADAPTIVE_EXPLICIT_CAP) };
        const { assert!(ADAPTIVE_EXPLICIT_CAP < EXPONENTIAL_CAP) };
        let mut histogram = [0u64; AbortReason::COUNT];
        histogram[AbortReason::ValidationFailed.index()] = 3;
        assert_eq!(adaptive_cap(&histogram), ADAPTIVE_VALIDATION_CAP);
        histogram[AbortReason::UpgradeConflict.index()] = 5;
        assert_eq!(adaptive_cap(&histogram), EXPONENTIAL_CAP);
        histogram[AbortReason::Explicit.index()] = 9;
        assert_eq!(adaptive_cap(&histogram), ADAPTIVE_EXPLICIT_CAP);
    }

    #[test]
    fn no_policy_waits_before_the_first_abort() {
        for policy in RetryPolicy::ALL {
            assert_eq!(measure(policy, 0, 0, &[]), 0, "{policy}");
        }
    }

    #[test]
    fn different_tasklets_receive_different_jitter() {
        for policy in RetryPolicy::ALL {
            assert_ne!(
                measure(policy, 0, 5, &[]),
                measure(policy, 1, 5, &[]),
                "{policy}: jitter is what breaks deterministic livelock"
            );
        }
    }
}
