//! Typed, executor-agnostic transactional variables: the [`TVar`]/[`TArray`]
//! facade over the word-based STM API.
//!
//! The PIM-STM algorithms (like the original C library) move raw 64-bit
//! words. This module puts a zero-cost typed layer on top:
//!
//! * [`TxWord`] — values that bit-pack into one word (`u64`, `i64`, `f64`,
//!   `bool`, `(u32, u32)`, …);
//! * [`TxRecord`] — fixed-size multi-word values (every [`TxWord`], plus
//!   small fixed arrays `[T; N]`), read and written as one MRAM DMA burst
//!   where the STM design allows it;
//! * [`TVar`] / [`TArray`] — typed handles to DPU memory locations;
//! * [`TxOps`] — the executor-agnostic operation set. A transaction body
//!   written against `TxOps` runs unchanged on the threaded executor
//!   ([`crate::threaded::ThreadedDpu`]) and on the cycle-accounted simulator
//!   (via [`crate::TxEngine`]), because both hand the body a
//!   [`crate::TxView`] — and `TxView` implements `TxOps`.
//!
//! # The `TxOps` contract
//!
//! * **Abort propagation** — every operation returns `Result<_, Abort>`;
//!   bodies must propagate with `?` so the retry loop can roll back and
//!   restart the attempt. Swallowing an [`Abort`] leaves the transaction in
//!   an undefined state.
//! * **No side effects in bodies** — a body may run many times before it
//!   commits; anything that escapes the transactional ops (I/O, mutating
//!   captured state) will be repeated on every retry.
//!
//! ```
//! use pim_stm::threaded::ThreadedDpu;
//! use pim_stm::{Abort, MetadataPlacement, StmConfig, StmKind, TArray, Tier, TxOps};
//!
//! // One generic body, usable on every executor.
//! fn transfer<O: TxOps>(tx: &mut O, accounts: TArray<u64>, from: u32, to: u32) -> Result<(), Abort> {
//!     let a = tx.get(accounts.at(from))?;
//!     let b = tx.get(accounts.at(to))?;
//!     tx.set(accounts.at(from), a - 10)?;
//!     tx.set(accounts.at(to), b + 10)?;
//!     Ok(())
//! }
//!
//! let config = StmConfig::new(StmKind::Norec, MetadataPlacement::Wram);
//! let mut dpu = ThreadedDpu::new(config).expect("metadata fits");
//! let accounts: TArray<u64> = dpu.alloc_array(Tier::Mram, 2).expect("data fits");
//! dpu.poke_var(accounts.at(0), 5_000u64);
//! dpu.poke_var(accounts.at(1), 5_000u64);
//! dpu.run(2, |mut tasklet| {
//!     for _ in 0..100 {
//!         tasklet.transaction(|tx| transfer(tx, accounts, 0, 1));
//!     }
//! })
//! .expect("tasklet count is within the hardware limit");
//! assert_eq!(dpu.peek_var(accounts.at(0)) + dpu.peek_var(accounts.at(1)), 10_000);
//! ```

use std::marker::PhantomData;

use pim_sim::{Addr, AllocError, Dpu, Tier};

use crate::error::Abort;
use crate::shared::MetadataAllocator;

/// Upper bound on [`TxRecord::WORDS`] for values moved through the typed
/// facade (the facade stages records in fixed stack buffers; larger blobs
/// should be chunked by the application).
pub const MAX_RECORD_WORDS: usize = 32;

/// A value that bit-packs into a single 64-bit word.
///
/// `decode(encode(v))` must equal `v` for every representable `v` (for `f64`
/// the round-trip is exact at the bit level, so NaN payloads survive).
pub trait TxWord: Copy {
    /// Packs the value into a word.
    fn encode(self) -> u64;

    /// Unpacks a value previously produced by [`TxWord::encode`].
    fn decode(word: u64) -> Self;
}

impl TxWord for u64 {
    fn encode(self) -> u64 {
        self
    }

    fn decode(word: u64) -> Self {
        word
    }
}

impl TxWord for i64 {
    fn encode(self) -> u64 {
        self as u64
    }

    fn decode(word: u64) -> Self {
        word as i64
    }
}

impl TxWord for u32 {
    fn encode(self) -> u64 {
        u64::from(self)
    }

    fn decode(word: u64) -> Self {
        word as u32
    }
}

impl TxWord for i32 {
    fn encode(self) -> u64 {
        self as u32 as u64
    }

    fn decode(word: u64) -> Self {
        word as u32 as i32
    }
}

impl TxWord for bool {
    fn encode(self) -> u64 {
        u64::from(self)
    }

    fn decode(word: u64) -> Self {
        word != 0
    }
}

impl TxWord for f64 {
    fn encode(self) -> u64 {
        self.to_bits()
    }

    fn decode(word: u64) -> Self {
        f64::from_bits(word)
    }
}

/// Packed pair — the natural shape for (index, count) or (x, y) fields.
impl TxWord for (u32, u32) {
    fn encode(self) -> u64 {
        (u64::from(self.0) << 32) | u64::from(self.1)
    }

    fn decode(word: u64) -> Self {
        ((word >> 32) as u32, word as u32)
    }
}

/// A fixed-size value spanning one or more consecutive words.
///
/// Records are moved through [`TxOps::read_record`] /
/// [`TxOps::write_record`], which fetch all [`TxRecord::WORDS`] words in one
/// MRAM DMA burst on designs that support it (NOrec brackets the burst with
/// its sequence-lock validation; ORec designs fall back to word-wise reads
/// because each word's ownership record must be checked anyway).
pub trait TxRecord: Copy {
    /// Consecutive words this record occupies (at most
    /// [`MAX_RECORD_WORDS`]).
    const WORDS: usize;

    /// Packs the record into `out`, which holds exactly `Self::WORDS` words.
    fn encode_into(self, out: &mut [u64]);

    /// Unpacks a record from `words` (exactly `Self::WORDS` words).
    fn decode_from(words: &[u64]) -> Self;
}

/// Every single-word value is trivially a one-word record.
macro_rules! word_as_record {
    ($($ty:ty),+ $(,)?) => {$(
        impl TxRecord for $ty {
            const WORDS: usize = 1;

            fn encode_into(self, out: &mut [u64]) {
                out[0] = TxWord::encode(self);
            }

            fn decode_from(words: &[u64]) -> Self {
                TxWord::decode(words[0])
            }
        }
    )+};
}

word_as_record!(u64, i64, u32, i32, bool, f64, (u32, u32));

impl<T: TxWord, const N: usize> TxRecord for [T; N] {
    const WORDS: usize = N;

    fn encode_into(self, out: &mut [u64]) {
        for (slot, value) in out.iter_mut().zip(self) {
            *slot = value.encode();
        }
    }

    fn decode_from(words: &[u64]) -> Self {
        std::array::from_fn(|i| T::decode(words[i]))
    }
}

/// Typed handle to a transactional memory location holding one `T`.
///
/// A `TVar` is an address plus a phantom type — `Copy`, word-sized, and free
/// to pass around regardless of `T`.
pub struct TVar<T> {
    addr: Addr,
    _marker: PhantomData<fn() -> T>,
}

impl<T> TVar<T> {
    /// Wraps a raw address as a typed variable. The caller is responsible
    /// for the location actually holding (at least) [`TxRecord::WORDS`]
    /// words of `T`.
    pub fn new(addr: Addr) -> Self {
        TVar { addr, _marker: PhantomData }
    }

    /// The underlying word address.
    pub fn addr(self) -> Addr {
        self.addr
    }
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for TVar<T> {}

impl<T> std::fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TVar<{}>({})", std::any::type_name::<T>(), self.addr)
    }
}

impl<T> PartialEq for TVar<T> {
    fn eq(&self, other: &Self) -> bool {
        self.addr == other.addr
    }
}

impl<T> Eq for TVar<T> {}

/// Typed handle to a fixed-stride array of `T` records in transactional
/// memory.
pub struct TArray<T> {
    base: Addr,
    len: u32,
    _marker: PhantomData<fn() -> T>,
}

impl<T: TxRecord> TArray<T> {
    /// Wraps `len` consecutive records starting at `base`.
    pub fn new(base: Addr, len: u32) -> Self {
        TArray { base, len, _marker: PhantomData }
    }

    /// Number of elements.
    pub fn len(self) -> u32 {
        self.len
    }

    /// Whether the array holds no elements.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Words occupied per element.
    pub fn stride(self) -> u32 {
        T::WORDS as u32
    }

    /// Total words occupied by the array (saturating on overflow; the
    /// allocation helpers reject arrays whose word count exceeds `u32`).
    pub fn words(self) -> u32 {
        self.len.saturating_mul(self.stride())
    }

    /// Base address of the first element.
    pub fn addr(self) -> Addr {
        self.base
    }

    /// Typed handle to element `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()` or the element's address does not fit the
    /// 32-bit word address space.
    pub fn at(self, index: u32) -> TVar<T> {
        self.get(index).unwrap_or_else(|| {
            panic!("TArray index {index} out of bounds or unaddressable (len {})", self.len)
        })
    }

    /// Typed handle to element `index`, or `None` when out of bounds (or,
    /// for a hand-constructed array, when the element's address would
    /// overflow the 32-bit word address space).
    pub fn get(self, index: u32) -> Option<TVar<T>> {
        if index >= self.len {
            return None;
        }
        // 64-bit arithmetic: `index * stride` may exceed u32 for arrays built
        // with `TArray::new` (the alloc helpers bound words to u32).
        let word = u64::from(self.base.word) + u64::from(index) * u64::from(self.stride());
        let word = u32::try_from(word).ok()?;
        Some(TVar::new(Addr { tier: self.base.tier, word }))
    }
}

impl<T> Clone for TArray<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for TArray<T> {}

impl<T> std::fmt::Debug for TArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TArray<{}>({}; len {})", std::any::type_name::<T>(), self.base, self.len)
    }
}

/// The executor-agnostic transactional operation set.
///
/// Implemented by [`crate::TxView`] (handed to closure bodies by **both**
/// executors) and by [`crate::engine::EngineOps`] (a [`crate::TxEngine`]
/// with a platform bound, for step-granular state machines). See the
/// [module documentation](self) for the body contract.
pub trait TxOps {
    /// Transactional read of one raw word.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflict; propagate it with `?`.
    fn read_word(&mut self, addr: Addr) -> Result<u64, Abort>;

    /// Transactional write of one raw word.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflict; propagate it with `?`.
    fn write_word(&mut self, addr: Addr, value: u64) -> Result<(), Abort>;

    /// Transactional read of `out.len()` consecutive raw words.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflict; propagate it with `?`.
    fn read_words(&mut self, addr: Addr, out: &mut [u64]) -> Result<(), Abort>;

    /// Transactional write of consecutive raw words.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflict; propagate it with `?`.
    fn write_words(&mut self, addr: Addr, values: &[u64]) -> Result<(), Abort>;

    /// Models `instructions` instructions of non-memory work inside the
    /// body.
    fn compute(&mut self, instructions: u64);

    /// Identifier of the executing tasklet (0-based).
    fn tasklet_id(&self) -> usize;

    /// Cancels the current attempt at the application's request, rolling back
    /// exactly as an internally detected conflict would (releasing locks,
    /// undoing exposed write-through stores), and returns the [`Abort`] to
    /// propagate.
    ///
    /// Use this when the body observes *application-level* interference a
    /// committed value reveals — e.g. Labyrinth finding a path cell already
    /// claimed — and must restart with fresh inputs. The returned abort
    /// **must** be propagated immediately (`return Err(tx.cancel())`);
    /// issuing further operations after a cancel is undefined.
    fn cancel(&mut self) -> Abort;

    /// Non-transactional read of one word: no conflict detection, no
    /// read-set entry, no validation.
    ///
    /// Only sound for tasklet-private memory, or for racy snapshots whose
    /// every consumed cell is transactionally re-validated before the
    /// transaction commits (the STAMP Labyrinth pattern).
    fn raw_load(&mut self, addr: Addr) -> u64;

    /// Non-transactional write of one word (see [`TxOps::raw_load`] for when
    /// this is sound). Raw stores are **not** undone on abort.
    fn raw_store(&mut self, addr: Addr, value: u64);

    /// Non-transactional bulk copy (plain DMA, one burst per MRAM side on
    /// platforms with a DMA engine); the soundness caveats of
    /// [`TxOps::raw_load`] apply to the source and of [`TxOps::raw_store`] to
    /// the destination.
    fn raw_copy(&mut self, src: Addr, dst: Addr, words: u32);

    /// Typed read of a single-word variable.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflict; propagate it with `?`.
    fn get<T: TxWord>(&mut self, var: TVar<T>) -> Result<T, Abort>
    where
        Self: Sized,
    {
        Ok(T::decode(self.read_word(var.addr())?))
    }

    /// Typed write of a single-word variable.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflict; propagate it with `?`.
    fn set<T: TxWord>(&mut self, var: TVar<T>, value: T) -> Result<(), Abort>
    where
        Self: Sized,
    {
        self.write_word(var.addr(), value.encode())
    }

    /// Typed read of a multi-word record in one operation (one MRAM DMA
    /// burst where the design allows it).
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflict; propagate it with `?`.
    fn read_record<R: TxRecord>(&mut self, var: TVar<R>) -> Result<R, Abort>
    where
        Self: Sized,
    {
        let mut buffer = [0u64; MAX_RECORD_WORDS];
        let words = record_buffer::<R>(&mut buffer);
        self.read_words(var.addr(), words)?;
        Ok(R::decode_from(words))
    }

    /// Typed write of a multi-word record in one operation.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflict; propagate it with `?`.
    fn write_record<R: TxRecord>(&mut self, var: TVar<R>, value: R) -> Result<(), Abort>
    where
        Self: Sized,
    {
        let mut buffer = [0u64; MAX_RECORD_WORDS];
        let words = record_buffer::<R>(&mut buffer);
        value.encode_into(words);
        self.write_words(var.addr(), words)
    }
}

/// Words needed for `len` records of `T` (zero for an empty array),
/// saturated to `u32::MAX` on overflow so the allocator rejects the request
/// with an ordinary [`AllocError`] instead of silently wrapping to an
/// undersized allocation.
pub(crate) fn array_words<T: TxRecord>(len: u32) -> u32 {
    let words = u64::from(len) * T::WORDS as u64;
    u32::try_from(words).unwrap_or(u32::MAX)
}

/// Slices the staging buffer to a record's word count, enforcing
/// [`MAX_RECORD_WORDS`].
pub(crate) fn record_buffer<R: TxRecord>(buffer: &mut [u64; MAX_RECORD_WORDS]) -> &mut [u64] {
    assert!(
        R::WORDS <= MAX_RECORD_WORDS,
        "record type {} spans {} words, more than the facade's limit of {MAX_RECORD_WORDS}; \
         chunk it into smaller records",
        std::any::type_name::<R>(),
        R::WORDS,
    );
    &mut buffer[..R::WORDS]
}

/// Allocates one zeroed typed variable in `tier` from any word allocator
/// (the simulator [`Dpu`] implements [`MetadataAllocator`]).
///
/// # Errors
///
/// Returns [`AllocError`] if the tier cannot hold the record.
pub fn alloc_var<T: TxRecord, A: MetadataAllocator + ?Sized>(
    alloc: &mut A,
    tier: Tier,
) -> Result<TVar<T>, AllocError> {
    Ok(TVar::new(alloc.alloc_words(tier, T::WORDS as u32)?))
}

/// Allocates a zeroed typed array of `len` records in `tier`.
///
/// # Errors
///
/// Returns [`AllocError`] if the tier cannot hold the array.
pub fn alloc_array<T: TxRecord, A: MetadataAllocator + ?Sized>(
    alloc: &mut A,
    tier: Tier,
    len: u32,
) -> Result<TArray<T>, AllocError> {
    Ok(TArray::new(alloc.alloc_words(tier, array_words::<T>(len))?, len))
}

/// Direct, non-transactional word access — the host-side peek/poke surface
/// of a DPU, used by the typed [`peek_var`]/[`poke_var`] helpers. Only safe
/// while no tasklets are running.
pub trait WordAccess {
    /// Reads one word outside any transaction.
    fn peek_word(&self, addr: Addr) -> u64;

    /// Writes one word outside any transaction.
    fn poke_word(&mut self, addr: Addr, value: u64);
}

impl WordAccess for Dpu {
    fn peek_word(&self, addr: Addr) -> u64 {
        self.peek(addr)
    }

    fn poke_word(&mut self, addr: Addr, value: u64) {
        self.poke(addr, value)
    }
}

/// Reads a typed variable directly from a DPU (simulator or threaded),
/// outside any transaction (host-side access; see [`Dpu::peek`]).
pub fn peek_var<T: TxRecord, M: WordAccess + ?Sized>(mem: &M, var: TVar<T>) -> T {
    let mut buffer = [0u64; MAX_RECORD_WORDS];
    let words = record_buffer::<T>(&mut buffer);
    for (i, slot) in words.iter_mut().enumerate() {
        *slot = mem.peek_word(var.addr().offset(i as u32));
    }
    T::decode_from(words)
}

/// Writes a typed variable directly to a DPU (simulator or threaded),
/// outside any transaction (host-side access; see [`Dpu::poke`]).
pub fn poke_var<T: TxRecord, M: WordAccess + ?Sized>(mem: &mut M, var: TVar<T>, value: T) {
    let mut buffer = [0u64; MAX_RECORD_WORDS];
    let words = record_buffer::<T>(&mut buffer);
    value.encode_into(words);
    for (i, word) in words.iter().enumerate() {
        mem.poke_word(var.addr().offset(i as u32), *word);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_roundtrip_representative_values() {
        assert_eq!(u64::decode(u64::MAX.encode()), u64::MAX);
        assert_eq!(i64::decode((-7i64).encode()), -7);
        assert_eq!(u32::decode(0xdead_beefu32.encode()), 0xdead_beef);
        assert_eq!(i32::decode((-1i32).encode()), -1);
        assert!(bool::decode(true.encode()));
        assert!(!bool::decode(false.encode()));
        let f = -0.1f64;
        assert_eq!(f64::decode(f.encode()).to_bits(), f.to_bits());
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        assert_eq!(f64::decode(nan.encode()).to_bits(), nan.to_bits());
        assert_eq!(<(u32, u32)>::decode((3u32, 4u32).encode()), (3, 4));
    }

    #[test]
    fn arrays_are_multiword_records() {
        let record = [1u64, 2, 3];
        let mut words = [0u64; 3];
        record.encode_into(&mut words);
        assert_eq!(words, [1, 2, 3]);
        assert_eq!(<[u64; 3]>::decode_from(&words), record);
        assert_eq!(<[u64; 3]>::WORDS, 3);
        assert_eq!(<[(u32, u32); 4]>::WORDS, 4);
    }

    #[test]
    fn tarray_indexing_respects_stride() {
        let base = Addr::mram(100);
        let pairs: TArray<[u64; 2]> = TArray::new(base, 5);
        assert_eq!(pairs.stride(), 2);
        assert_eq!(pairs.words(), 10);
        assert_eq!(pairs.at(0).addr(), base);
        assert_eq!(pairs.at(3).addr(), base.offset(6));
        assert!(pairs.get(5).is_none());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn tarray_at_panics_out_of_bounds() {
        let arr: TArray<u64> = TArray::new(Addr::wram(0), 2);
        let _ = arr.at(2);
    }

    #[test]
    fn tarray_rejects_unaddressable_elements() {
        // A hand-constructed array whose far elements would overflow the
        // 32-bit word address space yields None instead of a wrapped,
        // aliasing address.
        let arr: TArray<[u64; 4]> = TArray::new(Addr::mram(16), u32::MAX);
        assert!(arr.get(0).is_some());
        assert!(arr.get(u32::MAX - 1).is_none(), "wrapped address must not be handed out");
    }

    #[test]
    fn zero_length_arrays_consume_no_words() {
        let mut dpu = Dpu::new(pim_sim::DpuConfig::small());
        let before: TVar<u64> = alloc_var(&mut dpu, Tier::Mram).unwrap();
        let arr: TArray<[u64; 32]> = alloc_array(&mut dpu, Tier::Mram, 0).unwrap();
        let after: TVar<u64> = alloc_var(&mut dpu, Tier::Mram).unwrap();
        // The bump allocator advanced only past `before`: the empty array
        // took nothing.
        assert_eq!(after.addr().word, before.addr().word + 1);
        assert!(arr.is_empty());
        assert!(arr.get(0).is_none());
    }

    #[test]
    fn oversized_array_allocations_are_rejected_not_wrapped() {
        // len * WORDS would wrap u32 (0x8000_0001 * 2); the saturated request
        // must fail with AllocError instead of succeeding undersized.
        let mut dpu = Dpu::new(pim_sim::DpuConfig::small());
        let result = alloc_array::<[u64; 2], _>(&mut dpu, Tier::Mram, 0x8000_0001);
        assert!(result.is_err(), "wrapping allocation must be rejected");
        // Sanity: a reasonable allocation still works.
        assert!(alloc_array::<[u64; 2], _>(&mut dpu, Tier::Mram, 8).is_ok());
    }

    #[test]
    fn typed_peek_poke_on_the_simulator() {
        let mut dpu = Dpu::new(pim_sim::DpuConfig::small());
        let var: TVar<[i64; 2]> = alloc_var(&mut dpu, Tier::Mram).unwrap();
        poke_var(&mut dpu, var, [-5, 9]);
        assert_eq!(peek_var(&dpu, var), [-5, 9]);
        let flag: TVar<bool> = alloc_var(&mut dpu, Tier::Wram).unwrap();
        poke_var(&mut dpu, flag, true);
        assert!(peek_var(&dpu, flag));
    }
}
