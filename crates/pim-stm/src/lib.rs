//! # pim-stm — software transactional memory for (simulated) UPMEM PIM devices
//!
//! This crate is a Rust reproduction of the **PIM-STM** library (Lopes,
//! Castro, Romano — ASPLOS 2024): a family of word-based software
//! transactional memory (STM) implementations designed for UPMEM Data
//! Processing Units, where up to 24 hardware tasklets share a 64 KB WRAM
//! scratchpad, a 64 MB MRAM bank and a 256-entry atomic bit register (and
//! nothing else — no compare-and-swap, no read/write locks).
//!
//! The library covers the paper's full design-space taxonomy (Fig. 2):
//!
//! | [`StmKind`] | metadata | read visibility | lock timing | write policy |
//! |---|---|---|---|---|
//! | `Norec` | single sequence lock | invisible | commit time | write-back |
//! | `TinyCtlWb` | ownership records | invisible | commit time | write-back |
//! | `TinyEtlWb` | ownership records | invisible | encounter time | write-back |
//! | `TinyEtlWt` | ownership records | invisible | encounter time | write-through |
//! | `VrCtlWb` | rw-lock records | visible | commit time | write-back |
//! | `VrEtlWb` | rw-lock records | visible | encounter time | write-back |
//! | `VrEtlWt` | rw-lock records | visible | encounter time | write-through |
//!
//! STM metadata (lock table, sequence lock, global clock, per-tasklet read
//! and write sets) can be placed in **WRAM** or **MRAM** via
//! [`MetadataPlacement`], reproducing the paper's memory-tier study.
//!
//! The algorithms are written against the [`Platform`] abstraction, so the
//! same code runs on two executors:
//!
//! * the deterministic, cycle-accounted simulator of [`pim_sim`] (used to
//!   regenerate the paper's figures), and
//! * [`threaded::ThreadedDpu`], which executes tasklets as real OS threads
//!   over atomic shared memory (used to test the algorithms under genuine
//!   concurrency and in the runnable examples).
//!
//! ## Quick example (threaded executor)
//!
//! ```
//! use pim_stm::threaded::ThreadedDpu;
//! use pim_stm::{MetadataPlacement, StmConfig, StmKind, Tier};
//!
//! // Two tasklets each transfer money between two accounts 100 times; the
//! // total balance is preserved because transfers are transactions.
//! let config = StmConfig::new(StmKind::Norec, MetadataPlacement::Wram);
//! let mut dpu = ThreadedDpu::new(config).expect("metadata fits in WRAM");
//! let accounts = dpu.alloc(Tier::Mram, 2).expect("data fits");
//! dpu.poke(accounts, 5_000);
//! dpu.poke(accounts.offset(1), 5_000);
//!
//! dpu.run(2, |mut tx_ctx| {
//!     for _ in 0..100 {
//!         tx_ctx.transaction(|tx| {
//!             let a = tx.read(accounts)?;
//!             let b = tx.read(accounts.offset(1))?;
//!             tx.write(accounts, a - 10)?;
//!             tx.write(accounts.offset(1), b + 10)?;
//!             Ok(())
//!         });
//!     }
//! });
//!
//! assert_eq!(dpu.peek(accounts) + dpu.peek(accounts.offset(1)), 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod config;
pub mod error;
pub mod locktable;
pub mod norec;
pub mod platform;
pub mod rwlock;
pub mod shared;
pub mod threaded;
pub mod tiny;
pub mod txslot;
pub mod vr;

pub use algorithm::{algorithm_for, run_transaction, TmAlgorithm, TxView};
pub use config::{
    LockTiming, MetadataGranularity, MetadataPlacement, ReadVisibility, StmConfig, StmKind,
    WritePolicy,
};
pub use error::{Abort, AbortReason};
pub use platform::Platform;
pub use shared::StmShared;
pub use txslot::TxSlot;

// Re-export the simulator types that appear in this crate's public API so
// downstream users only need one import path.
pub use pim_sim::{Addr, Phase, Tier};
