//! # pim-stm — software transactional memory for (simulated) UPMEM PIM devices
//!
//! This crate is a Rust reproduction of the **PIM-STM** library (Lopes,
//! Castro, Romano — ASPLOS 2024): a family of word-based software
//! transactional memory (STM) implementations designed for UPMEM Data
//! Processing Units, where up to 24 hardware tasklets share a 64 KB WRAM
//! scratchpad, a 64 MB MRAM bank and a 256-entry atomic bit register (and
//! nothing else — no compare-and-swap, no read/write locks).
//!
//! The library covers the paper's full design-space taxonomy (Fig. 2) — as
//! a real **policy grid**, not a flat list: every design is an instantiation
//! of the generic [`ComposedTm`]`<R, L, W>` engine ([`policy`] module) from
//! one value of each orthogonal axis, and every legacy [`StmKind`] is a
//! descriptor ([`StmKind::composition`]) naming its cell:
//!
//! | [`StmKind`] | grid name | read policy `R` | lock timing `L` | write policy `W` |
//! |---|---|---|---|---|
//! | `Norec` | `norec-ctl-wb` | value validation (seqlock) | commit time | write-back |
//! | `TinyCtlWb` | `orec-ctl-wb` | invisible ORec | commit time | write-back |
//! | `TinyEtlWb` | `orec-etl-wb` | invisible ORec | encounter time | write-back |
//! | `TinyEtlWt` | `orec-etl-wt` | invisible ORec | encounter time | write-through |
//! | `VrCtlWb` | `vr-ctl-wb` | visible read-locks | commit time | write-back |
//! | `VrEtlWb` | `vr-etl-wb` | visible read-locks | encounter time | write-back |
//! | `VrEtlWt` | `vr-etl-wt` | visible read-locks | encounter time | write-through |
//!
//! ## The policy-trait contract
//!
//! Each axis owns a fixed set of hooks (see [`policy`] for the precise
//! signatures and the equivalence guarantees):
//!
//! * [`policy::LockPolicy`] — pure *timing*: whether writes acquire
//!   ownership at encounter time or buffer until a commit-time acquisition
//!   pass, and whether reads must first consult the redo log;
//! * [`policy::WritePolicy`] — what a write *does* once ownership is held:
//!   redo log published by the shared [`writeback`] pass, or in-place store
//!   plus undo log replayed on abort;
//! * [`policy::ReadPolicy`] — everything touching conflict-detection
//!   metadata: the single-word read protocol, write-lock
//!   acquisition/release, commit-time acquisition, validation + commit
//!   ticket, and the [`access::RecordReader`]-shaped hooks of batched
//!   record reads. This axis subsumes the paper's metadata-granularity and
//!   read-visibility dimensions;
//! * [`RetryPolicy`] — the independent back-off axis ([`retry`] module),
//!   owned by the shared retry core rather than the algorithm: fixed
//!   window, bounded exponential (default), or adaptive back-off tuned from
//!   the tasklet's per-[`AbortReason`] abort histogram.
//!
//! Incoherent cells are rejected **at construction** (at compile time for
//! the built-in statics): commit-time locking cannot write through (a CTL
//! transaction may abort after exposing stores that no reader ever saw a
//! lock for), and value validation composes only with CTL + WB (no
//! per-word locks to take at encounter time or to hold over an exposed
//! store). [`TmComposition::is_coherent`] is the single source of truth;
//! the seven coherent cells are exactly the paper's seven designs. The
//! retired monolithic implementations are gone: the policy equivalence
//! suite pins each composition to golden outcomes recorded while the
//! monoliths still existed, so the equivalence claim outlives the code.
//!
//! STM metadata (lock table, sequence lock, global clock, per-tasklet read
//! and write sets) can be placed in **WRAM** or **MRAM** via
//! [`MetadataPlacement`], reproducing the paper's memory-tier study.
//!
//! The algorithms are written against the [`Platform`] abstraction, so the
//! same code runs on two executors:
//!
//! * the deterministic, cycle-accounted simulator of [`pim_sim`] (used to
//!   regenerate the paper's figures), and
//! * [`threaded::ThreadedDpu`], which executes tasklets as real OS threads
//!   over atomic shared memory (used to test the algorithms under genuine
//!   concurrency and in the runnable examples).
//!
//! ## Quickstart: the typed facade
//!
//! Application code uses the typed, executor-agnostic facade of [`var`]:
//! [`TVar`] / [`TArray`] handles plus the [`TxOps`] operation set. A
//! transaction body is written **once**, generic over `TxOps`, and runs
//! unchanged on real threads and on the cycle-accounted simulator; the
//! word-based API ([`TxView::read`] / [`TxView::write`] on raw [`Addr`]s)
//! remains available underneath.
//!
//! ```
//! use pim_stm::threaded::ThreadedDpu;
//! use pim_stm::{Abort, MetadataPlacement, StmConfig, StmKind, TArray, Tier, TxOps};
//!
//! // The transaction body: typed, executor-agnostic. Abort propagates via
//! // `?`; the retry loop rolls back and re-runs the body.
//! fn transfer<O: TxOps>(
//!     tx: &mut O,
//!     accounts: TArray<u64>,
//!     from: u32,
//!     to: u32,
//!     amount: u64,
//! ) -> Result<(), Abort> {
//!     let a = tx.get(accounts.at(from))?;
//!     let b = tx.get(accounts.at(to))?;
//!     tx.set(accounts.at(from), a - amount)?;
//!     tx.set(accounts.at(to), b + amount)?;
//!     Ok(())
//! }
//!
//! // Two tasklets each transfer money between two accounts 100 times; the
//! // total balance is preserved because transfers are transactions.
//! let config = StmConfig::new(StmKind::Norec, MetadataPlacement::Wram);
//! let mut dpu = ThreadedDpu::new(config).expect("metadata fits in WRAM");
//! let accounts: TArray<u64> = dpu.alloc_array(Tier::Mram, 2).expect("data fits");
//! dpu.poke_var(accounts.at(0), 5_000u64);
//! dpu.poke_var(accounts.at(1), 5_000u64);
//!
//! dpu.run(2, |mut tasklet| {
//!     for _ in 0..100 {
//!         tasklet.transaction(|tx| transfer(tx, accounts, 0, 1, 10));
//!     }
//! })
//! .expect("2 tasklets is within the hardware limit");
//!
//! assert_eq!(dpu.peek_var(accounts.at(0)) + dpu.peek_var(accounts.at(1)), 10_000);
//! ```
//!
//! The same body runs on the simulator through [`TxEngine`] — see the [`var`]
//! module documentation for the full `TxOps` contract (abort propagation,
//! no side effects in bodies) and `examples/quickstart.rs` for the
//! two-executor tour. Multi-word values ([`var::TxRecord`]) move through
//! [`TxOps::read_record`] / [`TxOps::write_record`].
//!
//! ## The record-access layer: DMA-batched reads for every design
//!
//! Record reads go through the shared access layer ([`access`]), which
//! separates the per-design *metadata protocol* (ownership-record sample
//! and re-check for Tiny, read-lock acquisition for VR, the sequence-lock
//! bracket for NOrec — expressed as [`access::RecordReader`] hooks) from
//! *data movement*. Under [`ReadStrategy::Batched`] (the default) each
//! contiguous run of record words crosses the MRAM port as **one**
//! [`Platform::load_block`] burst, bounded by
//! [`StmConfig::max_burst_words`]; the per-word checks then run against the
//! already-staged words and fall back to the word-wise read for any word
//! whose metadata moved under the burst. [`ReadStrategy::WordWise`] keeps
//! the original one-DMA-setup-per-word behaviour as the A/B baseline,
//! mirroring the write-side [`WriteBackStrategy`] knob. Both strategies
//! observe identical values and commit identically — only the DMA setup
//! count (visible in [`ExecProfile::dma_setups`]) differs. See the
//! [`access`] module documentation for the metadata-hook contract: when a
//! batched read must re-validate, fall back, or abort.
//!
//! On the write side, multi-word record writes under encounter-time locking
//! acquire their ownership records in one pass **sorted by lock-table
//! address and deduplicated** before any logging or data stores
//! ([`LockOrder::AddressSorted`], the default): the global acquisition
//! order turns symmetric lock-order duels into single losers, and a
//! conflicting record write now aborts before it has exposed a single
//! write-through store or pushed a single log entry.
//! [`LockOrder::RecordOrder`] restores the per-word baseline for A/B runs.
//!
//! ## Online self-tuning: the engine picks its own knobs
//!
//! The design-space grid has no single best cell — and a phase-changing
//! workload has no single best cell *over time*. The [`tune`] module closes
//! the loop: under [`tune::TunePolicy::Windowed`]
//! ([`StmConfig::with_tune`]), each tasklet's engine watches a windowed,
//! decaying per-[`AbortReason`] + DMA-rate signal and switches its
//! **runtime-switchable** knobs on the fly, on both executors and through
//! both execution styles (closure bodies and step-granular machines).
//!
//! The knob-ownership contract is strict and documented in [`tune`]: the
//! tuner owns exactly the axes the engine consults afresh on every
//! operation — [`RetryPolicy`], [`ReadStrategy`], [`LockOrder`], and
//! [`StmConfig::max_burst_words`] *downward only* (the WRAM staging buffer
//! is reserved at construction size). Everything baked into allocated
//! metadata or the chosen algorithm — the R×L×W composition itself,
//! placement, capacities, [`WriteBackStrategy`] — stays construction-time.
//! Tuning is per tasklet (no cross-tasklet synchronisation, determinism
//! preserved) and never free: window evaluations and knob switches are
//! charged through [`Platform::compute`], and the simulator records each
//! switch as a cycle-stamped `pim_sim::TuneEvent`.
//!
//! ## Execution profiles: one instrumentation spine for both executors
//!
//! Every run — simulated or threaded — produces the same per-tasklet
//! [`ExecProfile`] ([`profile`] module):
//!
//! * **attempts, commits, aborts** and an **abort histogram** keyed by
//!   [`AbortReason`]: the shared retry core ([`engine`]) resolves every
//!   abort with the reason the algorithm reported, so the histogram always
//!   sums to the abort count, for all seven designs, with no per-algorithm
//!   instrumentation;
//! * **per-phase time** ([`Phase`]): where a transaction's time goes —
//!   reading, writing, validating, committing, or wasted in attempts that
//!   aborted. The unit is *executor-native* and tagged by
//!   [`profile::TimeDomain`]: deterministic simulator **cycles**
//!   ([`profile::TimeDomain::Cycles`], behind the paper's figures) or
//!   monotonic **wall-clock nanoseconds** on the threaded executor
//!   ([`profile::TimeDomain::WallNanos`]). Counts and *structure* (phase
//!   fractions, abort mix) are comparable across executors; absolute times
//!   are not, and [`ExecProfile::merge`] refuses to mix domains;
//! * **MRAM DMA setups/words** (the burst-coalescing metric — both
//!   executors count one setup per MRAM-addressed transfer) and **back-off /
//!   lock-wait time** (an overlay over the phase buckets).
//!
//! On the simulator the profile is the cycle bookkeeping the scheduler
//! already keeps (`pim_sim::TaskletStats` is a thin adapter over the same
//! core — [`ExecProfile::from_sim`]); on the threaded executor each tasklet
//! thread fills its profile as it runs and
//! [`threaded::ThreadedDpu::run`] returns them in
//! [`threaded::ThreadedRunReport::profiles`].
//!
//! The same spine scales past one DPU: profiles are **merge-closed**
//! ([`ExecProfile::merge`] sums two same-domain profiles field by field,
//! and [`ExecProfile::merged`] folds any number of them), so a multi-DPU
//! fleet aggregates by construction — each shard DPU merges its tasklets'
//! cycle-domain profiles across dispatch rounds, and the fleet merges the
//! shard accumulators into one profile with the *same schema* as a
//! single-DPU run (this is how `pim-fleet` builds its fleet-wide report).
//! Merging is associative and order-independent for every counter, so
//! "merge per shard, then across shards" equals "merge everything at
//! once"; what merging deliberately *erases* — which shard did the work —
//! is reported alongside, not inside, the profile (the fleet's per-shard
//! stats and imbalance summary).
//!
//! ## Determinism as an API: parallel fan-out and memoisation upstream
//!
//! A simulated run is a *pure function* of its configuration: same
//! [`StmConfig`] (kind, placement, retry, read strategy, write-back,
//! lock order, burst cap, tune policy), same workload parameters, same
//! seed → bit-identical commits, abort histograms, cycle counts and
//! memory fingerprint, on any machine. The experiment harness leans on
//! that contract twice (`pim_exp::pool` / `pim_exp::cache`):
//!
//! * **Independence** — distinct cells share no mutable state, so the
//!   harness may run them on any number of worker threads
//!   (`pim-exp --workers N`) and collect by index; every table and JSON
//!   dump is bit-identical for any `N`. Anything that would break this —
//!   global mutable state, iteration-order-dependent results, wall-clock
//!   reads inside the simulator — is a bug against this contract, not a
//!   harness concern. (Threaded-executor cells *measure* wall clock and
//!   are therefore excluded: they run serially and are never cached.)
//! * **Memoisability** — because the full knob vector plus seed *is* the
//!   result's identity, completed simulator runs are content-addressed:
//!   the cache key is exactly the canonical spelling of every field above
//!   plus the executor and a schema version, and the only invalidation
//!   policy is bumping that version when the simulator's semantics or the
//!   cached summary's shape change. Repeated cells (defaults-gap passes,
//!   overlapping burst ladders, warm `--cache-dir` CI re-runs) are read
//!   back instead of re-simulated, with zero tolerance for drift: a
//!   disk entry that fails any structural check is discarded and
//!   re-simulated, never trusted.
//!
//! ## The service layer: STM under open-loop traffic
//!
//! Everything above measures *throughput*: a fixed batch of transactions,
//! run to completion, makespan on the clock. The `pim-service` crate puts
//! the same engines behind a **request queue** and measures *latency under
//! offered load* instead — the question a key-value or ledger service
//! actually asks of its STM:
//!
//! * an **arrival process** (`pim_service::ArrivalProcess`) stamps each
//!   request with an arrival time — Poisson, bursty on/off, or closed-loop
//!   (the degenerate case where a request "arrives" the moment a tasklet
//!   frees up, so queueing delay is identically zero by construction);
//! * an **admission queue** sits between the stream and the tasklet pool;
//!   each committed request carries three stamps — arrival → dispatch →
//!   commit — split into **queueing delay**, **STM service time**, and
//!   total **sojourn time** (`pim_service::LatencyPanel`);
//! * the served state is built from the transactional structures of
//!   `pim_workloads` (`TxHashMap` key→balance store, `TxQueue` transfer
//!   journal) under a get/put/transfer mix with optional Zipfian skew —
//!   every operation is one STM transaction, so aborts and retries show
//!   up as service-time tail, exactly where a service would feel them.
//!
//! Latency quantiles ride the same merge-closed spine as the profiles:
//! samples land in a log-bucketed `pim_sim::LatencyHistogram` whose merge
//! is element-wise and therefore exact, associative and commutative — so
//! per-tasklet, per-worker and per-shard panels aggregate into fleet-wide
//! p50/p95/p99 without keeping a single raw sample, and the result is
//! independent of worker and shard count. Both executors serve the same
//! streams (cycles vs. wall nanoseconds, domain-tagged like
//! [`profile::TimeDomain`]), and `pim-fleet` runs the service sharded
//! across many simulated DPUs. The harness front-end is
//! `pim-exp --service` (latency-vs-offered-load tables and JSON).

// Unsafe is denied everywhere except the two audited syscall shims of
// `threaded::affinity` (best-effort thread pinning has no safe-Rust,
// no-dependency equivalent).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod algorithm;
pub mod config;
pub mod engine;
pub mod error;
pub mod locktable;
pub mod platform;
pub mod policy;
pub mod profile;
pub mod retry;
pub mod rwlock;
pub mod shared;
pub mod threaded;
pub mod tune;
pub mod txslot;
pub mod var;
pub mod writeback;

pub use algorithm::{algorithm_for, run_transaction, TmAlgorithm, TxView};
pub use config::{
    LockOrder, LockTiming, MetadataGranularity, MetadataPlacement, ReadPolicyKind, ReadStrategy,
    ReadVisibility, RetryPolicy, StmConfig, StmKind, TmComposition, WriteBackStrategy, WritePolicy,
};
pub use engine::{run_retry_loop, TxCounters, TxEngine};
pub use error::{Abort, AbortReason, RunError};
pub use platform::Platform;
pub use policy::ComposedTm;
pub use profile::{ExecProfile, TimeDomain};
pub use shared::StmShared;
pub use tune::{TuneDecision, TuneKnobs, TunePolicy, TunedKnob, Tuner};
pub use txslot::{TxSlot, TxStamps};
pub use var::{TArray, TVar, TxOps, TxRecord, TxWord};

// Re-export the simulator types that appear in this crate's public API so
// downstream users only need one import path.
pub use pim_sim::{Addr, Phase, Tier};
