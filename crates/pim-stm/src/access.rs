//! The shared record-access layer: one batched-read driver for every STM
//! design, with the per-design *metadata protocol* factored into small hooks.
//!
//! # Why this layer exists
//!
//! On UPMEM hardware the dominant cost of a multi-word read is not the words
//! themselves but the **per-transfer DMA setup**: reading an `n`-word record
//! word by word pays `n` setups, while one `load_block` burst pays a single
//! setup plus streaming (the same asymmetry the commit-time write-back
//! exploits in [`crate::writeback`]). NOrec has bracketed its record reads
//! with the sequence lock since PR 1; the ORec families (Tiny, VR) kept the
//! sound word-wise default because each word's ownership record must be
//! checked anyway. This module closes that gap: the *data* still moves as
//! one burst per contiguous run, and the *per-word metadata protocol* runs
//! against the already-staged words.
//!
//! # The metadata-hook contract
//!
//! A design implements [`RecordReader`]; the driver
//! ([`read_record_batched`]) then executes a record read in four stages:
//!
//! 1. **Plan** — [`RecordReader::plan_word`] runs once per word, *before*
//!    any data moves. It may serve the word from transaction-local state
//!    (redo log, own lock — [`WordPlan::Ready`]), abort on a conflict, or
//!    sample the word's metadata and request the burst
//!    ([`WordPlan::Burst`] with an opaque `token` to re-check later).
//! 2. **Burst** — the burst words move as [`Platform::load_block`]
//!    transfers, split at [`StmConfig::max_burst_words`] (the WRAM staging
//!    budget) so no physically impossible transfer is modelled. Spans
//!    bridge interior locally-served words — streaming a word and
//!    discarding it is cheaper than a second DMA setup — so a record
//!    overlapping the transaction's own writes still costs one transfer
//!    where it fits the cap. [`RecordReader::before_burst`] /
//!    [`RecordReader::burst_stable`] bracket the whole pass for designs
//!    whose validity is record-level (NOrec's sequence lock): an unstable
//!    pass is re-issued until it lands on a quiescent snapshot.
//! 3. **Accept** — [`RecordReader::accept_word`] re-checks each burst
//!    word's metadata against its plan `token` and performs the read-set
//!    bookkeeping. Metadata that moved under the burst does **not** abort
//!    the transaction:
//! 4. **Fall back** — the word is re-read through
//!    [`RecordReader::reread_word`], the design's full word-wise protocol,
//!    which re-validates, extends snapshots or aborts exactly as a plain
//!    [`crate::TmAlgorithm::read`] would.
//!
//! The bracket per word is therefore *metadata sample → data load →
//! metadata re-check* — the same structure the word-wise protocols already
//! use, just with the data load amortised across the record. A hook may
//! abort at any stage; the implementor must roll back its side effects
//! (release locks, restore ORecs) before returning the [`Abort`], exactly
//! as the word-wise operations do.
//!
//! # When a batched read must fall back or re-validate
//!
//! * **Tiny** (invisible reads): `plan_word` samples the ORec (aborting on
//!   a foreign lock and extending the snapshot when it sees a newer
//!   version); `accept_word` re-loads the ORec and accepts only if it is
//!   bit-identical to the sample — any concurrent lock or commit in the
//!   window falls back to the word-wise read.
//! * **VR** (visible reads): `plan_word` acquires the read lock, which
//!   *prevents* concurrent writers for the rest of the transaction, so the
//!   staged words are stable by construction and `accept_word` never needs
//!   to re-check.
//! * **NOrec** (no per-word metadata): `plan_word` only probes the redo
//!   log; `before_burst`/`burst_stable` bracket the burst with the global
//!   sequence lock and re-validate by value (re-issuing the burst) whenever
//!   a commit overlapped it.
//!
//! The strategy is selected per run via [`StmConfig::read_strategy`]
//! ([`crate::ReadStrategy`]), mirroring the write-side
//! [`crate::WriteBackStrategy`] knob, so batched and word-wise reads are
//! A/B-testable on byte-identical workloads.

use pim_sim::{Addr, Phase};

use crate::config::{StmConfig, WritePolicy};
use crate::error::Abort;
use crate::platform::Platform;
use crate::shared::StmShared;
use crate::txslot::TxSlot;
use crate::TmAlgorithm;

/// Value of a word whose lock/ORec the transaction already holds: under
/// write-back the redo log's latest value — or memory, if the lock is ours
/// only through hash aliasing with another address — and under
/// write-through memory itself, which was updated in place. One shared
/// resolution for the word-wise reads *and* the batched plans of both ORec
/// families, so the paths can never diverge on read-after-write semantics.
pub(crate) fn owned_value(
    policy: WritePolicy,
    tx: &mut TxSlot,
    p: &mut dyn Platform,
    addr: Addr,
) -> u64 {
    match policy {
        WritePolicy::WriteBack => match tx.find_write(p, addr) {
            Some((_, value)) => value,
            None => p.load(addr),
        },
        WritePolicy::WriteThrough => p.load(addr),
    }
}

/// Outcome of planning one word of a record read (pre-burst).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordPlan {
    /// The word was served from transaction-local state (redo log, own
    /// write lock); it takes no part in the data burst.
    Ready(u64),
    /// The word needs the data burst; `token` is the metadata sample
    /// [`RecordReader::accept_word`] re-checks afterwards.
    Burst {
        /// Opaque metadata sample (e.g. the raw ORec word) captured before
        /// the burst.
        token: u64,
    },
}

/// Outcome of re-checking one staged word's metadata (post-burst).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordCheck {
    /// The metadata is unchanged: the staged value is consistent and has
    /// been recorded in the read set by the hook.
    Accept,
    /// The metadata moved while the burst was in flight: the driver re-runs
    /// the word through [`RecordReader::reread_word`].
    Reread,
}

/// The per-design metadata protocol of a batched record read.
///
/// See the [module documentation](self) for the full contract; every hook
/// that returns [`Abort`] must have rolled back its side effects first.
pub trait RecordReader {
    /// Plans one word before the burst: serve it locally, sample its
    /// metadata, or abort on a conflict.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflict, with side effects rolled back.
    fn plan_word(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
    ) -> Result<WordPlan, Abort>;

    /// Record-level hook before (each attempt of) the burst pass. NOrec
    /// catches up with concurrent commits here; ORec designs need nothing.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the transaction can no longer be made
    /// consistent, with side effects rolled back.
    fn before_burst(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
    ) -> Result<(), Abort> {
        let _ = (shared, tx, p);
        Ok(())
    }

    /// Record-level hook after a burst pass: `false` re-issues the whole
    /// pass (NOrec's sequence lock moved), `true` proceeds to per-word
    /// acceptance.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] as [`RecordReader::before_burst`] does.
    fn burst_stable(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
    ) -> Result<bool, Abort> {
        let _ = (shared, tx, p);
        Ok(true)
    }

    /// Re-checks one staged word against its plan `token` and, on
    /// acceptance, performs the read-set bookkeeping for it.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflict, with side effects rolled back.
    fn accept_word(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
        value: u64,
        token: u64,
    ) -> Result<WordCheck, Abort>;

    /// The sound word-wise fallback for a word whose acceptance check
    /// failed — the design's full single-word read protocol.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflict, with side effects rolled back.
    fn reread_word(
        &self,
        shared: &StmShared,
        tx: &mut TxSlot,
        p: &mut dyn Platform,
        addr: Addr,
    ) -> Result<u64, Abort>;
}

/// The word-wise record read every design supports: the full per-word read
/// protocol, one data access per word. This is the
/// [`crate::ReadStrategy::WordWise`] baseline (and the
/// [`TmAlgorithm::read_record`] default).
///
/// # Errors
///
/// Returns [`Abort`] on conflict, with side effects already rolled back by
/// the failing word's read.
pub fn read_record_word_wise(
    alg: &dyn TmAlgorithm,
    shared: &StmShared,
    tx: &mut TxSlot,
    p: &mut dyn Platform,
    addr: Addr,
    out: &mut [u64],
) -> Result<(), Abort> {
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = alg.read(shared, tx, p, addr.offset(i as u32))?;
    }
    Ok(())
}

/// Reads `out.len()` consecutive words through `reader`'s metadata protocol
/// with the data moved as DMA bursts: one [`Platform::load_block`] per span
/// of burst words (bridging interior locally-served words), split at
/// [`StmConfig::max_burst_words`].
///
/// # Errors
///
/// Returns [`Abort`] when any hook reports an unresolvable conflict; the
/// hook has already rolled back its side effects.
pub fn read_record_batched(
    reader: &dyn RecordReader,
    shared: &StmShared,
    tx: &mut TxSlot,
    p: &mut dyn Platform,
    addr: Addr,
    out: &mut [u64],
    config: &StmConfig,
) -> Result<(), Abort> {
    if out.is_empty() {
        return Ok(());
    }
    p.set_phase(Phase::Reading);

    // Plan: serve redo-log / own-lock words locally, sample metadata for the
    // rest. The plan itself is WRAM/pipeline state (indices and tokens) —
    // typed-facade records fit the stack buffer, so only oversized raw
    // records pay a heap allocation; the metadata loads the plan issues are
    // the same traffic the word-wise loop pays.
    let mut stack_plans = [WordPlan::Ready(0); crate::var::MAX_RECORD_WORDS];
    let mut heap_plans: Vec<WordPlan>;
    let plans: &mut [WordPlan] = if out.len() <= stack_plans.len() {
        &mut stack_plans[..out.len()]
    } else {
        heap_plans = vec![WordPlan::Ready(0); out.len()];
        &mut heap_plans
    };
    let mut burst_words = 0usize;
    for (i, slot) in out.iter_mut().enumerate() {
        let plan = match reader.plan_word(shared, tx, p, addr.offset(i as u32)) {
            Ok(plan) => plan,
            Err(abort) => {
                p.set_phase(Phase::OtherExec);
                return Err(abort);
            }
        };
        if let WordPlan::Ready(value) = plan {
            *slot = value;
        } else {
            burst_words += 1;
        }
        plans[i] = plan;
    }
    if burst_words == 0 {
        // Fully served locally: no memory traffic, nothing to validate.
        p.set_phase(Phase::OtherExec);
        return Ok(());
    }

    // Burst: move the burst words as DMA transfers bounded by the
    // staging-buffer cap. Spans *bridge* interior `Ready` words — loading a
    // locally-served word's memory cell and discarding it costs streaming
    // words but saves a whole transfer setup, exactly what NOrec's original
    // whole-record burst did — so each span runs from one burst word to the
    // last burst word within the cap. A scratch buffer keeps the served
    // values in `out` intact. Re-issue the whole pass until the
    // record-level bracket reports a quiescent snapshot.
    let max_burst = config.max_burst_words.max(1) as usize;
    let mut stack_scratch = [0u64; crate::var::MAX_RECORD_WORDS];
    let mut heap_scratch: Vec<u64>;
    let scratch: &mut [u64] = if max_burst.min(out.len()) <= stack_scratch.len() {
        &mut stack_scratch[..]
    } else {
        heap_scratch = vec![0; max_burst.min(out.len())];
        &mut heap_scratch
    };
    loop {
        if let Err(abort) = reader.before_burst(shared, tx, p) {
            p.set_phase(Phase::OtherExec);
            return Err(abort);
        }
        let mut next = 0;
        while let Some(start) =
            (next..plans.len()).find(|&i| matches!(plans[i], WordPlan::Burst { .. }))
        {
            // The span ends at the last burst word reachable under the cap.
            let limit = plans.len().min(start + max_burst);
            let end = (start..limit)
                .rev()
                .find(|&i| matches!(plans[i], WordPlan::Burst { .. }))
                .expect("span starts at a burst word");
            let span = &mut scratch[..end - start + 1];
            p.load_block(addr.offset(start as u32), span);
            for i in start..=end {
                if matches!(plans[i], WordPlan::Burst { .. }) {
                    out[i] = span[i - start];
                }
            }
            next = end + 1;
        }
        match reader.burst_stable(shared, tx, p) {
            Ok(true) => break,
            Ok(false) => continue,
            Err(abort) => {
                p.set_phase(Phase::OtherExec);
                return Err(abort);
            }
        }
    }

    // Accept: re-check each staged word's metadata against its plan token;
    // words whose metadata moved under the burst fall back to the design's
    // word-wise read.
    for (i, plan) in plans.iter().enumerate() {
        let WordPlan::Burst { token } = *plan else { continue };
        let word_addr = addr.offset(i as u32);
        let outcome = reader.accept_word(shared, tx, p, word_addr, out[i], token).and_then(
            |check| match check {
                WordCheck::Accept => Ok(()),
                WordCheck::Reread => {
                    out[i] = reader.reread_word(shared, tx, p, word_addr)?;
                    // The word-wise read ends in OtherExec; the remaining
                    // acceptance checks are still read-phase work.
                    p.set_phase(Phase::Reading);
                    Ok(())
                }
            },
        );
        if let Err(abort) = outcome {
            p.set_phase(Phase::OtherExec);
            return Err(abort);
        }
    }
    p.set_phase(Phase::OtherExec);
    Ok(())
}

/// Dispatches a design's `read_record` according to the configured
/// [`crate::ReadStrategy`]: the word-wise baseline or the batched driver
/// over the design's [`RecordReader`] hooks.
///
/// # Errors
///
/// Returns [`Abort`] on conflict, as the selected path does.
pub fn read_record_with<A>(
    alg: &A,
    shared: &StmShared,
    tx: &mut TxSlot,
    p: &mut dyn Platform,
    addr: Addr,
    out: &mut [u64],
) -> Result<(), Abort>
where
    A: TmAlgorithm + RecordReader,
{
    match shared.config().read_strategy {
        crate::config::ReadStrategy::WordWise => {
            read_record_word_wise(alg, shared, tx, p, addr, out)
        }
        crate::config::ReadStrategy::Batched => {
            read_record_batched(alg, shared, tx, p, addr, out, shared.config())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ReadStrategy, StmConfig, StmKind};
    use crate::error::AbortReason;
    use pim_sim::{Dpu, DpuConfig, TaskletCtx, TaskletStats, Tier};

    struct Fixture {
        dpu: Dpu,
        shared: StmShared,
        slots: Vec<TxSlot>,
        data: Addr,
    }

    fn fixture(kind: StmKind, strategy: ReadStrategy, tasklets: usize) -> Fixture {
        let mut dpu = Dpu::new(DpuConfig::small());
        let cfg = StmConfig::small_wram(kind).with_read_strategy(strategy);
        let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
        let slots = (0..tasklets).map(|t| shared.register_tasklet(&mut dpu, t).unwrap()).collect();
        let data = dpu.alloc(Tier::Mram, 64).unwrap();
        Fixture { dpu, shared, slots, data }
    }

    /// Batched and word-wise record reads observe the same committed values
    /// for every design, including read-after-write overlays.
    #[test]
    fn strategies_agree_on_committed_and_buffered_values() {
        for kind in StmKind::ALL {
            for strategy in ReadStrategy::ALL {
                let mut fx = fixture(kind, strategy, 1);
                for i in 0..16 {
                    fx.dpu.poke(fx.data.offset(i), 100 + u64::from(i));
                }
                let alg = crate::algorithm_for(kind);
                let mut stats = TaskletStats::new();
                let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats, 0, 1, 0);
                let slot = &mut fx.slots[0];
                alg.begin(&fx.shared, slot, &mut ctx);
                // Overwrite two words mid-record so the plan must mix
                // redo-log (or own-lock) service with burst words.
                alg.write(&fx.shared, slot, &mut ctx, fx.data.offset(3), 999).unwrap();
                alg.write(&fx.shared, slot, &mut ctx, fx.data.offset(7), 888).unwrap();
                let mut out = [0u64; 16];
                alg.read_record(&fx.shared, slot, &mut ctx, fx.data, &mut out).unwrap();
                for (i, &value) in out.iter().enumerate() {
                    let expected = match i {
                        3 => 999,
                        7 => 888,
                        _ => 100 + i as u64,
                    };
                    assert_eq!(value, expected, "{kind} ({strategy:?}) word {i}");
                }
                alg.commit(&fx.shared, slot, &mut ctx).unwrap();
            }
        }
    }

    /// Batched ORec reads pay one data DMA setup per run instead of one per
    /// word (metadata traffic is identical, so the delta is data setups).
    #[test]
    fn batched_reads_charge_fewer_dma_setups_for_orec_designs() {
        for kind in [StmKind::TinyEtlWb, StmKind::TinyCtlWb, StmKind::VrEtlWb, StmKind::VrCtlWb] {
            let mut setups = Vec::new();
            for strategy in ReadStrategy::ALL {
                let mut fx = fixture(kind, strategy, 1);
                let alg = crate::algorithm_for(kind);
                let mut stats = TaskletStats::new();
                let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats, 0, 1, 0);
                let slot = &mut fx.slots[0];
                alg.begin(&fx.shared, slot, &mut ctx);
                let mut out = [0u64; 32];
                alg.read_record(&fx.shared, slot, &mut ctx, fx.data, &mut out).unwrap();
                alg.commit(&fx.shared, slot, &mut ctx).unwrap();
                setups.push(ctx.stats().mram_dma_setups);
            }
            assert!(
                setups[1] < setups[0],
                "{kind}: batched ({}) must beat word-wise ({}) on DMA setups",
                setups[1],
                setups[0]
            );
        }
    }

    /// A record overlapping the transaction's own buffered writes still
    /// moves as one transfer: spans bridge the locally-served words instead
    /// of splitting around them (the cost model NOrec's original
    /// whole-record burst established).
    #[test]
    fn spans_bridge_words_served_from_the_redo_log() {
        for kind in [StmKind::Norec, StmKind::TinyCtlWb, StmKind::VrCtlWb] {
            let mut fx = fixture(kind, ReadStrategy::Batched, 1);
            let alg = crate::algorithm_for(kind);
            let mut stats = TaskletStats::new();
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats, 0, 1, 0);
            let slot = &mut fx.slots[0];
            alg.begin(&fx.shared, slot, &mut ctx);
            // CTL designs buffer this write without locking, so the record
            // read plans word 5 as Ready in the middle of a burst span.
            alg.write(&fx.shared, slot, &mut ctx, fx.data.offset(5), 42).unwrap();
            let before = ctx.stats().mram_dma_setups;
            let mut out = [0u64; 16];
            alg.read_record(&fx.shared, slot, &mut ctx, fx.data, &mut out).unwrap();
            assert_eq!(
                ctx.stats().mram_dma_setups - before,
                1,
                "{kind}: one bridged span, one DMA setup (metadata is WRAM here)"
            );
            assert_eq!(out[5], 42, "{kind}: the redo-log value survives the bridge");
            alg.commit(&fx.shared, slot, &mut ctx).unwrap();
        }
    }

    /// The burst cap splits long records into bounded transfers.
    #[test]
    fn burst_cap_splits_long_records() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let cfg = StmConfig::small_wram(StmKind::VrEtlWb)
            .with_read_strategy(ReadStrategy::Batched)
            .with_max_burst_words(8);
        let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
        let mut slot = shared.register_tasklet(&mut dpu, 0).unwrap();
        let data = dpu.alloc(Tier::Mram, 32).unwrap();
        let alg = crate::algorithm_for(StmKind::VrEtlWb);
        let mut stats = TaskletStats::new();
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
        alg.begin(&shared, &mut slot, &mut ctx);
        let mut out = [0u64; 32];
        let before = ctx.stats().mram_dma_setups;
        alg.read_record(&shared, &mut slot, &mut ctx, data, &mut out).unwrap();
        // 32 contiguous burst words under an 8-word cap = 4 data transfers
        // (metadata lives in WRAM here, so the delta is data setups only).
        assert_eq!(ctx.stats().mram_dma_setups - before, 4);
    }

    /// A foreign lock encountered while planning aborts exactly like the
    /// word-wise read would.
    #[test]
    fn plan_conflicts_abort_with_the_word_wise_reason() {
        for kind in [StmKind::TinyEtlWb, StmKind::VrEtlWt] {
            let mut fx = fixture(kind, ReadStrategy::Batched, 2);
            let alg = crate::algorithm_for(kind);
            let mut stats0 = TaskletStats::new();
            let mut stats1 = TaskletStats::new();
            let (s0, rest) = fx.slots.split_at_mut(1);
            let (slot0, slot1) = (&mut s0[0], &mut rest[0]);
            {
                let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats1, 1, 2, 0);
                alg.begin(&fx.shared, slot1, &mut ctx);
                alg.write(&fx.shared, slot1, &mut ctx, fx.data.offset(5), 1).unwrap();
            }
            {
                let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats0, 0, 2, 0);
                alg.begin(&fx.shared, slot0, &mut ctx);
                let mut out = [0u64; 8];
                let err =
                    alg.read_record(&fx.shared, slot0, &mut ctx, fx.data, &mut out).unwrap_err();
                assert_eq!(err.reason, AbortReason::ReadConflict, "{kind}");
            }
        }
    }

    /// Tiny's acceptance check falls back when a concurrent commit slips
    /// between plan and burst: here the reader's snapshot is stale, so the
    /// re-read extends it and returns the committed value.
    #[test]
    fn tiny_accept_extends_past_concurrent_commits() {
        let mut fx = fixture(StmKind::TinyEtlWb, ReadStrategy::Batched, 2);
        let alg = crate::algorithm_for(StmKind::TinyEtlWb);
        let mut stats0 = TaskletStats::new();
        let mut stats1 = TaskletStats::new();
        let (s0, rest) = fx.slots.split_at_mut(1);
        let (slot0, slot1) = (&mut s0[0], &mut rest[0]);
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats0, 0, 2, 0);
            alg.begin(&fx.shared, slot0, &mut ctx);
        }
        // T1 commits to a word of the record after T0's snapshot.
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats1, 1, 2, 0);
            alg.begin(&fx.shared, slot1, &mut ctx);
            alg.write(&fx.shared, slot1, &mut ctx, fx.data.offset(2), 77).unwrap();
            alg.commit(&fx.shared, slot1, &mut ctx).unwrap();
        }
        // T0's record read sees version > snapshot at plan time, extends
        // (its read set is empty) and returns the committed value.
        {
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats0, 0, 2, 0);
            let mut out = [0u64; 4];
            alg.read_record(&fx.shared, slot0, &mut ctx, fx.data, &mut out).unwrap();
            assert_eq!(out, [0, 0, 77, 0]);
            alg.commit(&fx.shared, slot0, &mut ctx).unwrap();
        }
    }

    /// Empty records are a no-op on every path.
    #[test]
    fn empty_records_read_nothing() {
        for strategy in ReadStrategy::ALL {
            let mut fx = fixture(StmKind::Norec, strategy, 1);
            let alg = crate::algorithm_for(StmKind::Norec);
            let mut stats = TaskletStats::new();
            let mut ctx = TaskletCtx::new(&mut fx.dpu, &mut stats, 0, 1, 0);
            alg.begin(&fx.shared, &mut fx.slots[0], &mut ctx);
            let mut out = [0u64; 0];
            alg.read_record(&fx.shared, &mut fx.slots[0], &mut ctx, fx.data, &mut out).unwrap();
            assert_eq!(fx.slots[0].read_set_len(), 0);
        }
    }
}
