//! The per-tasklet transaction descriptor.
//!
//! A [`TxSlot`] owns the tasklet's read set and write/undo log. Crucially,
//! the *entries themselves live in simulated DPU memory* (WRAM or MRAM,
//! depending on [`crate::MetadataPlacement`]), so every time an algorithm
//! appends to, scans or validates a log it pays the corresponding memory
//! latency — this is precisely the instrumentation cost whose placement the
//! paper studies.
//!
//! Log layouts (one entry per transactional access):
//!
//! * read-set entry (2 words): `[encoded address, aux]` where `aux` holds the
//!   observed ORec version (Tiny), the observed value (NOrec) or is unused
//!   (VR);
//! * write/undo-log entry (3 words): `[encoded address (+flag bit), value,
//!   extra]` where `value` is the new value (write-back) or the old value
//!   (write-through undo) and `extra` stores the previous ORec word for lock
//!   release/rollback.

use pim_sim::Addr;

use crate::error::AbortReason;
use crate::platform::{decode_addr, encode_addr, Platform, ENC_FLAG_BIT};

/// Words per read-set entry.
pub const READ_ENTRY_WORDS: u32 = 2;
/// Words per write/undo-log entry.
pub const WRITE_ENTRY_WORDS: u32 = 3;

/// A decoded write/undo-log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteEntry {
    /// Target data address.
    pub addr: Addr,
    /// New value (write-back) or saved old value (write-through undo).
    pub value: u64,
    /// Algorithm-specific extra word (previous ORec contents for Tiny).
    pub extra: u64,
    /// Algorithm-specific flag (e.g. "this entry acquired its ORec").
    pub flag: bool,
}

/// A decoded read-set entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadEntry {
    /// Data address that was read.
    pub addr: Addr,
    /// Observed ORec version (Tiny), observed value (NOrec) or unused (VR).
    pub aux: u64,
}

/// Platform-clock timestamps of one transaction's life inside the STM, in
/// the platform's native time domain (simulator cycles / wall nanoseconds —
/// see [`Platform::timestamp`]).
///
/// The shared retry core stamps the **first** attempt's begin (retries do
/// not overwrite it) and the successful commit. Together with the service
/// layer's arrival and dispatch stamps this splits a request's sojourn into
/// queueing delay (`dispatch − arrival`, spent waiting for a free tasklet)
/// and STM service time (`committed − first_attempt`, which includes all
/// aborted attempts and back-off).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxStamps {
    /// Clock reading when the first attempt began (`None` before any
    /// attempt, or on platforms without a clock that report only 0s).
    pub first_attempt: Option<u64>,
    /// Clock reading when the transaction committed.
    pub committed: Option<u64>,
}

impl TxStamps {
    /// STM service time: `committed − first_attempt`, saturating; `None`
    /// until the transaction committed.
    pub fn service_time(&self) -> Option<u64> {
        match (self.first_attempt, self.committed) {
            (Some(begin), Some(end)) => Some(end.saturating_sub(begin)),
            _ => None,
        }
    }
}

/// Per-tasklet transaction descriptor: read set, write/undo log and snapshot
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct TxSlot {
    tasklet_id: usize,
    rs_base: Addr,
    rs_cap: u32,
    rs_len: u32,
    ws_base: Addr,
    ws_cap: u32,
    ws_len: u32,
    /// NOrec snapshot of the sequence lock, or Tiny's read version (snapshot
    /// lower bound).
    pub(crate) snapshot: u64,
    /// Consecutive aborted attempts of the current transaction (reset on
    /// commit); drives contention back-off policies.
    consecutive_aborts: u64,
    /// Cumulative aborts of this tasklet keyed by [`AbortReason`] — the
    /// local signal the histogram-adaptive [`crate::RetryPolicy`] tunes its
    /// back-off window from. Plain host-side state (like the abort counter):
    /// back-off bookkeeping is not part of the instrumented metadata whose
    /// placement the paper studies.
    abort_reasons: [u64; AbortReason::COUNT],
    /// First-attempt/commit stamps of the transaction currently in flight
    /// (host-side bookkeeping like the abort counter — not instrumented
    /// metadata).
    stamps: TxStamps,
}

impl TxSlot {
    /// Creates a descriptor whose logs live at `rs_base`/`ws_base` with the
    /// given capacities (in entries). Normally constructed through
    /// [`crate::StmShared::register_tasklet`].
    pub fn new(tasklet_id: usize, rs_base: Addr, rs_cap: u32, ws_base: Addr, ws_cap: u32) -> Self {
        TxSlot {
            tasklet_id,
            rs_base,
            rs_cap,
            rs_len: 0,
            ws_base,
            ws_cap,
            ws_len: 0,
            snapshot: 0,
            consecutive_aborts: 0,
            abort_reasons: [0; AbortReason::COUNT],
            stamps: TxStamps::default(),
        }
    }

    /// Identifier of the owning tasklet.
    pub fn tasklet_id(&self) -> usize {
        self.tasklet_id
    }

    /// Number of entries currently in the read set.
    pub fn read_set_len(&self) -> u32 {
        self.rs_len
    }

    /// Number of entries currently in the write/undo log.
    pub fn write_set_len(&self) -> u32 {
        self.ws_len
    }

    /// Read-set capacity in entries.
    pub fn read_set_capacity(&self) -> u32 {
        self.rs_cap
    }

    /// Write/undo-log capacity in entries.
    pub fn write_set_capacity(&self) -> u32 {
        self.ws_cap
    }

    /// Whether the transaction has performed no writes so far.
    pub fn is_read_only(&self) -> bool {
        self.ws_len == 0
    }

    /// Consecutive aborts of the transaction currently being attempted.
    pub fn consecutive_aborts(&self) -> u64 {
        self.consecutive_aborts
    }

    /// Clears the logs at the start of a new attempt (does not touch the
    /// abort counter, which spans attempts of the same transaction).
    pub fn reset_logs(&mut self) {
        self.rs_len = 0;
        self.ws_len = 0;
    }

    /// This tasklet's cumulative abort counts keyed by
    /// [`AbortReason::index`] (the adaptive retry policy's input).
    pub fn abort_histogram(&self) -> &[u64; AbortReason::COUNT] {
        &self.abort_reasons
    }

    /// Records that the current attempt aborted, and why.
    pub fn note_abort(&mut self, reason: AbortReason) {
        self.consecutive_aborts += 1;
        self.abort_reasons[reason.index()] += 1;
    }

    /// Records that the transaction finally committed.
    pub fn note_commit(&mut self) {
        self.consecutive_aborts = 0;
    }

    /// Stamps the begin of the current transaction's **first** attempt;
    /// retries of the same transaction keep the original stamp.
    pub fn stamp_first_attempt(&mut self, at: u64) {
        if self.stamps.first_attempt.is_none() {
            self.stamps.first_attempt = Some(at);
        }
    }

    /// Stamps the successful commit of the current transaction.
    pub fn stamp_commit(&mut self, at: u64) {
        self.stamps.committed = Some(at);
    }

    /// The current transaction's stamps (see [`TxStamps`]).
    pub fn stamps(&self) -> TxStamps {
        self.stamps
    }

    /// Clears the stamps for the next transaction.
    pub fn clear_stamps(&mut self) {
        self.stamps = TxStamps::default();
    }

    /// Returns the stamps and clears them — the harvest call a service
    /// driver makes after each committed request.
    pub fn take_stamps(&mut self) -> TxStamps {
        std::mem::take(&mut self.stamps)
    }

    fn rs_entry_addr(&self, index: u32) -> Addr {
        self.rs_base.offset(index * READ_ENTRY_WORDS)
    }

    fn ws_entry_addr(&self, index: u32) -> Addr {
        self.ws_base.offset(index * WRITE_ENTRY_WORDS)
    }

    /// Appends an entry to the read set.
    ///
    /// # Panics
    ///
    /// Panics if the read set is full; size the capacity for the workload
    /// (see [`crate::StmConfig::with_read_set_capacity`]).
    pub fn push_read(&mut self, p: &mut dyn Platform, addr: Addr, aux: u64) {
        assert!(
            self.rs_len < self.rs_cap,
            "read set overflow (capacity {} entries) on tasklet {}",
            self.rs_cap,
            self.tasklet_id
        );
        let entry = self.rs_entry_addr(self.rs_len);
        p.store(entry, encode_addr(addr));
        p.store(entry.offset(1), aux);
        self.rs_len += 1;
    }

    /// Loads the `index`-th read-set entry.
    pub fn read_entry(&self, p: &mut dyn Platform, index: u32) -> ReadEntry {
        assert!(index < self.rs_len, "read entry {index} out of bounds");
        let entry = self.rs_entry_addr(index);
        let encoded = p.load(entry);
        let aux = p.load(entry.offset(1));
        ReadEntry { addr: decode_addr(encoded), aux }
    }

    /// Appends an entry to the write/undo log.
    ///
    /// # Panics
    ///
    /// Panics if the log is full; size the capacity for the workload (see
    /// [`crate::StmConfig::with_write_set_capacity`]).
    pub fn push_write(
        &mut self,
        p: &mut dyn Platform,
        addr: Addr,
        value: u64,
        extra: u64,
        flag: bool,
    ) {
        assert!(
            self.ws_len < self.ws_cap,
            "write log overflow (capacity {} entries) on tasklet {}",
            self.ws_cap,
            self.tasklet_id
        );
        let entry = self.ws_entry_addr(self.ws_len);
        let encoded = encode_addr(addr) | if flag { ENC_FLAG_BIT } else { 0 };
        p.store(entry, encoded);
        p.store(entry.offset(1), value);
        p.store(entry.offset(2), extra);
        self.ws_len += 1;
    }

    /// Loads the `index`-th write/undo-log entry.
    pub fn write_entry(&self, p: &mut dyn Platform, index: u32) -> WriteEntry {
        assert!(index < self.ws_len, "write entry {index} out of bounds");
        let entry = self.ws_entry_addr(index);
        let encoded = p.load(entry);
        let value = p.load(entry.offset(1));
        let extra = p.load(entry.offset(2));
        WriteEntry { addr: decode_addr(encoded), value, extra, flag: encoded & ENC_FLAG_BIT != 0 }
    }

    /// Overwrites the value of an existing write-log entry (used when a
    /// transaction writes the same location twice).
    pub fn set_write_value(&self, p: &mut dyn Platform, index: u32, value: u64) {
        assert!(index < self.ws_len, "write entry {index} out of bounds");
        p.store(self.ws_entry_addr(index).offset(1), value);
    }

    /// Rewrites the extra word and flag of an existing write-log entry.
    /// Commit-time-locking designs use this to record the previous ORec
    /// contents when they acquire locks during commit.
    pub fn set_write_extra_flag(&self, p: &mut dyn Platform, index: u32, extra: u64, flag: bool) {
        assert!(index < self.ws_len, "write entry {index} out of bounds");
        let entry = self.ws_entry_addr(index);
        let encoded = p.load(entry) & !ENC_FLAG_BIT;
        p.store(entry, encoded | if flag { ENC_FLAG_BIT } else { 0 });
        p.store(entry.offset(2), extra);
    }

    /// Scans the write log (newest first) for the latest value written to
    /// `addr`. Each scanned entry costs a metadata load — this is the
    /// read-after-write lookup cost that commit-time-locking and write-back
    /// designs pay on every read.
    pub fn find_write(&self, p: &mut dyn Platform, addr: Addr) -> Option<(u32, u64)> {
        let target = encode_addr(addr);
        for i in (0..self.ws_len).rev() {
            let entry = self.ws_entry_addr(i);
            let encoded = p.load(entry) & !ENC_FLAG_BIT;
            if encoded == target {
                let value = p.load(entry.offset(1));
                return Some((i, value));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{Dpu, DpuConfig, TaskletCtx, TaskletStats, Tier};

    fn with_platform<R>(f: impl FnOnce(&mut dyn Platform, &mut TxSlot) -> R) -> R {
        let mut dpu = Dpu::new(DpuConfig::small());
        let mut stats = TaskletStats::new();
        let rs = dpu.alloc(Tier::Wram, 8 * READ_ENTRY_WORDS).unwrap();
        let ws = dpu.alloc(Tier::Wram, 4 * WRITE_ENTRY_WORDS).unwrap();
        let mut slot = TxSlot::new(3, rs, 8, ws, 4);
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 3, 1, 0);
        f(&mut ctx, &mut slot)
    }

    #[test]
    fn read_log_roundtrip() {
        with_platform(|p, slot| {
            slot.push_read(p, Addr::mram(10), 42);
            slot.push_read(p, Addr::wram(3), 7);
            assert_eq!(slot.read_set_len(), 2);
            assert_eq!(slot.read_entry(p, 0), ReadEntry { addr: Addr::mram(10), aux: 42 });
            assert_eq!(slot.read_entry(p, 1), ReadEntry { addr: Addr::wram(3), aux: 7 });
        });
    }

    #[test]
    fn write_log_roundtrip_with_flags() {
        with_platform(|p, slot| {
            slot.push_write(p, Addr::mram(5), 100, 9, true);
            slot.push_write(p, Addr::mram(6), 200, 0, false);
            let e0 = slot.write_entry(p, 0);
            assert_eq!(e0.addr, Addr::mram(5));
            assert_eq!(e0.value, 100);
            assert_eq!(e0.extra, 9);
            assert!(e0.flag);
            let e1 = slot.write_entry(p, 1);
            assert!(!e1.flag);
            assert!(!slot.is_read_only());
        });
    }

    #[test]
    fn find_write_returns_latest_value() {
        with_platform(|p, slot| {
            assert_eq!(slot.find_write(p, Addr::mram(5)), None);
            slot.push_write(p, Addr::mram(5), 1, 0, false);
            slot.push_write(p, Addr::mram(9), 2, 0, false);
            slot.push_write(p, Addr::mram(5), 3, 0, false);
            assert_eq!(slot.find_write(p, Addr::mram(5)), Some((2, 3)));
            assert_eq!(slot.find_write(p, Addr::mram(9)), Some((1, 2)));
            slot.set_write_value(p, 1, 20);
            assert_eq!(slot.find_write(p, Addr::mram(9)), Some((1, 20)));
        });
    }

    #[test]
    fn reset_clears_logs_but_not_abort_counter() {
        with_platform(|p, slot| {
            slot.push_read(p, Addr::wram(1), 0);
            slot.push_write(p, Addr::wram(2), 0, 0, false);
            slot.note_abort(AbortReason::ReadConflict);
            slot.reset_logs();
            assert_eq!(slot.read_set_len(), 0);
            assert_eq!(slot.write_set_len(), 0);
            assert!(slot.is_read_only());
            assert_eq!(slot.consecutive_aborts(), 1);
            slot.note_commit();
            assert_eq!(slot.consecutive_aborts(), 0);
        });
    }

    #[test]
    fn abort_histogram_accumulates_per_reason_across_commits() {
        with_platform(|_, slot| {
            slot.note_abort(AbortReason::WriteConflict);
            slot.note_abort(AbortReason::WriteConflict);
            slot.note_abort(AbortReason::ValidationFailed);
            assert_eq!(slot.abort_histogram()[AbortReason::WriteConflict.index()], 2);
            assert_eq!(slot.abort_histogram()[AbortReason::ValidationFailed.index()], 1);
            // A commit resets the consecutive counter but keeps the
            // histogram: the adaptive retry policy wants the tasklet's
            // longer-term contention signature, not just the current duel.
            slot.note_commit();
            assert_eq!(slot.consecutive_aborts(), 0);
            assert_eq!(slot.abort_histogram().iter().sum::<u64>(), 3);
        });
    }

    #[test]
    #[should_panic(expected = "read set overflow")]
    fn read_set_overflow_panics() {
        with_platform(|p, slot| {
            for i in 0..9 {
                slot.push_read(p, Addr::wram(i), 0);
            }
        });
    }

    #[test]
    #[should_panic(expected = "write log overflow")]
    fn write_log_overflow_panics() {
        with_platform(|p, slot| {
            for i in 0..5 {
                slot.push_write(p, Addr::wram(i), 0, 0, false);
            }
        });
    }
}
