//! Commit-time redo-log publication, shared by every write-back design.
//!
//! Tiny (WB variants), VR (WB variants) and NOrec all end a successful
//! commit the same way: copy the redo log into data memory. This module owns
//! that loop so the write-back *strategy* is decided in one place:
//!
//! * [`WriteBackStrategy::WordWise`] stores entry by entry, paying one MRAM
//!   DMA setup per written word — the original PIM-STM behaviour, kept as
//!   the comparison baseline;
//! * [`WriteBackStrategy::Coalesced`] stages the log (the entry loads are
//!   the same metadata traffic the word-wise loop pays), sorts it by address
//!   — pipeline instructions, charged via [`Platform::compute`] — and then
//!   publishes each maximal run of consecutive same-tier addresses as **one**
//!   [`Platform::store_block`] burst, amortising the DMA setup exactly like
//!   the paper's (and SimplePIM's) bulk-transfer guidance prescribes. Runs
//!   longer than the configured staging buffer
//!   ([`StmConfig::max_burst_words`], default
//!   [`crate::config::DEFAULT_BURST_WORDS`]) are split into bounded bursts,
//!   so WRAM staging pressure is A/B-testable per run.
//!
//! Both strategies write byte-identical memory contents: the redo log holds
//! at most one entry per address (the algorithms merge repeated writes), and
//! the locks protecting the written range — ORecs, rw-locks or NOrec's
//! sequence lock — are held for the whole publication, so ordering within it
//! is unobservable.

use pim_sim::Addr;

use crate::config::{StmConfig, WriteBackStrategy};
use crate::platform::{encode_addr, Platform};
use crate::txslot::TxSlot;

/// Instructions charged per element of the address sort (a WRAM-resident
/// insertion/merge hybrid costs a handful of instructions per comparison).
const SORT_INSTRUCTIONS_PER_ELEMENT: u64 = 4;

/// Publishes the redo log of `tx` to data memory using the strategy and
/// burst cap recorded in `config`.
///
/// Caller contract: the transaction is committing, every lock covering the
/// written addresses is held (or, for NOrec, the sequence lock is odd), and
/// the log holds at most one entry per address.
pub(crate) fn publish_redo_log(tx: &mut TxSlot, p: &mut dyn Platform, config: &StmConfig) {
    let len = tx.write_set_len();
    match config.write_back {
        WriteBackStrategy::WordWise => {
            for i in 0..len {
                let entry = tx.write_entry(p, i);
                p.store(entry.addr, entry.value);
            }
        }
        WriteBackStrategy::Coalesced => {
            if len <= 1 {
                // Nothing to merge; skip the staging pass.
                for i in 0..len {
                    let entry = tx.write_entry(p, i);
                    p.store(entry.addr, entry.value);
                }
                return;
            }
            // Stage the log. Loading each entry costs the same metadata
            // traffic the word-wise loop pays; the host-side Vec stands in
            // for the tasklet's WRAM staging buffer.
            let mut staged: Vec<(u64, u64)> = (0..len)
                .map(|i| {
                    let entry = tx.write_entry(p, i);
                    (encode_addr(entry.addr), entry.value)
                })
                .collect();
            // Sort by encoded address: the tier bit sits above the word
            // index, so entries group by tier and ascend within a tier.
            staged.sort_unstable_by_key(|&(addr, _)| addr);
            p.compute(SORT_INSTRUCTIONS_PER_ELEMENT * u64::from(len));
            flush_runs(p, &staged, config.max_burst_words as usize);
        }
    }
}

/// Emits the sorted `(encoded address, value)` pairs as maximal contiguous
/// bursts of at most `max_burst_words` words each.
fn flush_runs(p: &mut dyn Platform, staged: &[(u64, u64)], max_burst_words: usize) {
    let mut values: Vec<u64> = Vec::with_capacity(max_burst_words);
    let mut run_start = 0u64;
    for &(addr, value) in staged {
        let extends = !values.is_empty()
            && addr == run_start + values.len() as u64
            && values.len() < max_burst_words;
        if !extends {
            flush_one(p, run_start, &values);
            values.clear();
            run_start = addr;
        }
        values.push(value);
    }
    flush_one(p, run_start, &values);
}

fn flush_one(p: &mut dyn Platform, run_start: u64, values: &[u64]) {
    match values {
        [] => {}
        // A single word needs no burst setup amortisation; a plain store is
        // what the hardware would issue.
        [value] => p.store(decode_run_addr(run_start), *value),
        _ => p.store_block(decode_run_addr(run_start), values),
    }
}

fn decode_run_addr(encoded: u64) -> Addr {
    crate::platform::decode_addr(encoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{StmConfig, StmKind, DEFAULT_BURST_WORDS};
    use crate::shared::StmShared;
    use pim_sim::{Dpu, DpuConfig, TaskletCtx, TaskletStats, Tier};

    /// Pushes `addrs` (word offsets into an MRAM region) with distinct
    /// values into a fresh write set and publishes it with `strategy` under
    /// `burst_cap`, returning the DMA setup count of the publish phase alone
    /// and the final contents of the region.
    fn publish_capped(
        addrs: &[u32],
        strategy: WriteBackStrategy,
        burst_cap: u32,
    ) -> (u64, Vec<u64>) {
        let mut dpu = Dpu::new(DpuConfig::small());
        let cfg = StmConfig::small_wram(StmKind::Norec)
            .with_write_set_capacity(addrs.len().max(1) as u32)
            .with_write_back(strategy)
            .with_max_burst_words(burst_cap);
        let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
        let mut slot = shared.register_tasklet(&mut dpu, 0).unwrap();
        let region = dpu.alloc(Tier::Mram, 256).unwrap();
        let mut stats = TaskletStats::new();
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
        for (i, &offset) in addrs.iter().enumerate() {
            slot.push_write(&mut ctx, region.offset(offset), 100 + i as u64, 0, false);
        }
        let before = ctx.stats().mram_dma_setups;
        publish_redo_log(&mut slot, &mut ctx, &cfg);
        let setups = ctx.stats().mram_dma_setups - before;
        (setups, dpu.peek_block(region, 256))
    }

    fn publish(addrs: &[u32], strategy: WriteBackStrategy) -> (u64, Vec<u64>) {
        publish_capped(addrs, strategy, DEFAULT_BURST_WORDS)
    }

    #[test]
    fn contiguous_runs_collapse_into_one_burst() {
        let (word_setups, word_mem) = publish(&[3, 4, 5, 6], WriteBackStrategy::WordWise);
        let (burst_setups, burst_mem) = publish(&[3, 4, 5, 6], WriteBackStrategy::Coalesced);
        assert_eq!(word_setups, 4);
        assert_eq!(burst_setups, 1, "one contiguous run must cost one DMA setup");
        assert_eq!(word_mem, burst_mem);
    }

    #[test]
    fn unsorted_logs_still_coalesce_after_the_address_sort() {
        let (setups, mem) = publish(&[9, 2, 8, 1, 3, 10], WriteBackStrategy::Coalesced);
        // Sorted: [1,2,3] and [8,9,10] — two bursts.
        assert_eq!(setups, 2);
        assert_eq!(mem[1], 103);
        assert_eq!(mem[2], 101);
        assert_eq!(mem[3], 104);
        assert_eq!(mem[8], 102);
        assert_eq!(mem[9], 100);
        assert_eq!(mem[10], 105);
    }

    #[test]
    fn scattered_entries_degrade_to_word_wise_cost() {
        let (setups, _) = publish(&[0, 10, 20, 30], WriteBackStrategy::Coalesced);
        assert_eq!(setups, 4, "no contiguity, no savings — but no extra setups either");
    }

    #[test]
    fn empty_and_singleton_logs_take_the_fast_path() {
        let (setups, _) = publish(&[], WriteBackStrategy::Coalesced);
        assert_eq!(setups, 0);
        let (setups, mem) = publish(&[7], WriteBackStrategy::Coalesced);
        assert_eq!(setups, 1);
        assert_eq!(mem[7], 100);
    }

    #[test]
    fn runs_longer_than_the_staging_buffer_are_split_not_dropped() {
        let addrs: Vec<u32> = (0..(DEFAULT_BURST_WORDS + 10)).collect();
        let (setups, mem) = publish(&addrs, WriteBackStrategy::Coalesced);
        assert_eq!(setups, 2, "a 74-word run must split into two bounded bursts");
        for (i, _) in addrs.iter().enumerate() {
            assert_eq!(mem[i], 100 + i as u64, "word {i}");
        }
    }

    #[test]
    fn the_burst_cap_is_a_config_knob() {
        let addrs: Vec<u32> = (0..32).collect();
        // A tighter staging buffer splits the same run into more bursts...
        let (tight, tight_mem) = publish_capped(&addrs, WriteBackStrategy::Coalesced, 8);
        assert_eq!(tight, 4, "32 contiguous words under an 8-word cap = 4 bursts");
        // ...a roomier one leaves a single burst — same bytes either way.
        let (roomy, roomy_mem) = publish_capped(&addrs, WriteBackStrategy::Coalesced, 64);
        assert_eq!(roomy, 1);
        assert_eq!(tight_mem, roomy_mem);
    }

    #[test]
    fn a_one_word_cap_degenerates_to_word_wise() {
        let addrs: Vec<u32> = (0..5).collect();
        let (setups, mem) = publish_capped(&addrs, WriteBackStrategy::Coalesced, 1);
        assert_eq!(setups, 5);
        for (i, word) in mem.iter().take(5).enumerate() {
            assert_eq!(*word, 100 + i as u64);
        }
    }
}
