//! Commit-time redo-log publication, shared by every write-back design.
//!
//! Tiny (WB variants), VR (WB variants) and NOrec all end a successful
//! commit the same way: copy the redo log into data memory. This module owns
//! that loop so the write-back *strategy* is decided in one place:
//!
//! * [`WriteBackStrategy::WordWise`] stores entry by entry, paying one MRAM
//!   DMA setup per written word — the original PIM-STM behaviour, kept as
//!   the comparison baseline;
//! * [`WriteBackStrategy::Coalesced`] stages the log (the entry loads are
//!   the same metadata traffic the word-wise loop pays), sorts it by address
//!   — pipeline instructions, charged via [`Platform::compute`] — and then
//!   publishes each maximal run of consecutive same-tier addresses as **one**
//!   [`Platform::store_block`] burst, amortising the DMA setup exactly like
//!   the paper's (and SimplePIM's) bulk-transfer guidance prescribes.
//!
//! Both strategies write byte-identical memory contents: the redo log holds
//! at most one entry per address (the algorithms merge repeated writes), and
//! the locks protecting the written range — ORecs, rw-locks or NOrec's
//! sequence lock — are held for the whole publication, so ordering within it
//! is unobservable.

use pim_sim::Addr;

use crate::config::WriteBackStrategy;
use crate::platform::{encode_addr, Platform};
use crate::txslot::TxSlot;

/// Instructions charged per element of the address sort (a WRAM-resident
/// insertion/merge hybrid costs a handful of instructions per comparison).
const SORT_INSTRUCTIONS_PER_ELEMENT: u64 = 4;

/// Longest run published as a single burst. Runs beyond this are split —
/// matching the bounded staging buffer a real tasklet would reserve in WRAM
/// (and the hardware's 2 KB DMA transfer limit).
pub const MAX_BURST_WORDS: usize = 64;

/// Publishes the redo log of `tx` to data memory using `strategy`.
///
/// Caller contract: the transaction is committing, every lock covering the
/// written addresses is held (or, for NOrec, the sequence lock is odd), and
/// the log holds at most one entry per address.
pub(crate) fn publish_redo_log(tx: &mut TxSlot, p: &mut dyn Platform, strategy: WriteBackStrategy) {
    let len = tx.write_set_len();
    match strategy {
        WriteBackStrategy::WordWise => {
            for i in 0..len {
                let entry = tx.write_entry(p, i);
                p.store(entry.addr, entry.value);
            }
        }
        WriteBackStrategy::Coalesced => {
            if len <= 1 {
                // Nothing to merge; skip the staging pass.
                for i in 0..len {
                    let entry = tx.write_entry(p, i);
                    p.store(entry.addr, entry.value);
                }
                return;
            }
            // Stage the log. Loading each entry costs the same metadata
            // traffic the word-wise loop pays; the host-side Vec stands in
            // for the tasklet's WRAM staging buffer.
            let mut staged: Vec<(u64, u64)> = (0..len)
                .map(|i| {
                    let entry = tx.write_entry(p, i);
                    (encode_addr(entry.addr), entry.value)
                })
                .collect();
            // Sort by encoded address: the tier bit sits above the word
            // index, so entries group by tier and ascend within a tier.
            staged.sort_unstable_by_key(|&(addr, _)| addr);
            p.compute(SORT_INSTRUCTIONS_PER_ELEMENT * u64::from(len));
            flush_runs(p, &staged);
        }
    }
}

/// Emits the sorted `(encoded address, value)` pairs as maximal contiguous
/// bursts.
fn flush_runs(p: &mut dyn Platform, staged: &[(u64, u64)]) {
    let mut values: Vec<u64> = Vec::with_capacity(MAX_BURST_WORDS);
    let mut run_start = 0u64;
    for &(addr, value) in staged {
        let extends = !values.is_empty()
            && addr == run_start + values.len() as u64
            && values.len() < MAX_BURST_WORDS;
        if !extends {
            flush_one(p, run_start, &values);
            values.clear();
            run_start = addr;
        }
        values.push(value);
    }
    flush_one(p, run_start, &values);
}

fn flush_one(p: &mut dyn Platform, run_start: u64, values: &[u64]) {
    match values {
        [] => {}
        // A single word needs no burst setup amortisation; a plain store is
        // what the hardware would issue.
        [value] => p.store(decode_run_addr(run_start), *value),
        _ => p.store_block(decode_run_addr(run_start), values),
    }
}

fn decode_run_addr(encoded: u64) -> Addr {
    crate::platform::decode_addr(encoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MetadataPlacement, StmConfig, StmKind};
    use crate::shared::StmShared;
    use pim_sim::{Dpu, DpuConfig, TaskletCtx, TaskletStats, Tier};

    /// Pushes `addrs` (word offsets into an MRAM region) with distinct
    /// values into a fresh write set and publishes it with `strategy`,
    /// returning the DMA setup count of the publish phase alone and the
    /// final contents of the region.
    fn publish(addrs: &[u32], strategy: WriteBackStrategy) -> (u64, Vec<u64>) {
        let mut dpu = Dpu::new(DpuConfig::small());
        let cfg = StmConfig::new(StmKind::Norec, MetadataPlacement::Wram)
            .with_write_set_capacity(addrs.len().max(1) as u32);
        let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
        let mut slot = shared.register_tasklet(&mut dpu, 0).unwrap();
        let region = dpu.alloc(Tier::Mram, 128).unwrap();
        let mut stats = TaskletStats::new();
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
        for (i, &offset) in addrs.iter().enumerate() {
            slot.push_write(&mut ctx, region.offset(offset), 100 + i as u64, 0, false);
        }
        let before = ctx.stats().mram_dma_setups;
        publish_redo_log(&mut slot, &mut ctx, strategy);
        let setups = ctx.stats().mram_dma_setups - before;
        (setups, dpu.peek_block(region, 128))
    }

    #[test]
    fn contiguous_runs_collapse_into_one_burst() {
        let (word_setups, word_mem) = publish(&[3, 4, 5, 6], WriteBackStrategy::WordWise);
        let (burst_setups, burst_mem) = publish(&[3, 4, 5, 6], WriteBackStrategy::Coalesced);
        assert_eq!(word_setups, 4);
        assert_eq!(burst_setups, 1, "one contiguous run must cost one DMA setup");
        assert_eq!(word_mem, burst_mem);
    }

    #[test]
    fn unsorted_logs_still_coalesce_after_the_address_sort() {
        let (setups, mem) = publish(&[9, 2, 8, 1, 3, 10], WriteBackStrategy::Coalesced);
        // Sorted: [1,2,3] and [8,9,10] — two bursts.
        assert_eq!(setups, 2);
        assert_eq!(mem[1], 103);
        assert_eq!(mem[2], 101);
        assert_eq!(mem[3], 104);
        assert_eq!(mem[8], 102);
        assert_eq!(mem[9], 100);
        assert_eq!(mem[10], 105);
    }

    #[test]
    fn scattered_entries_degrade_to_word_wise_cost() {
        let (setups, _) = publish(&[0, 10, 20, 30], WriteBackStrategy::Coalesced);
        assert_eq!(setups, 4, "no contiguity, no savings — but no extra setups either");
    }

    #[test]
    fn empty_and_singleton_logs_take_the_fast_path() {
        let (setups, _) = publish(&[], WriteBackStrategy::Coalesced);
        assert_eq!(setups, 0);
        let (setups, mem) = publish(&[7], WriteBackStrategy::Coalesced);
        assert_eq!(setups, 1);
        assert_eq!(mem[7], 100);
    }

    #[test]
    fn runs_longer_than_the_staging_buffer_are_split_not_dropped() {
        let addrs: Vec<u32> = (0..(MAX_BURST_WORDS as u32 + 10)).collect();
        let (setups, mem) = publish(&addrs, WriteBackStrategy::Coalesced);
        assert_eq!(setups, 2, "a 74-word run must split into two bounded bursts");
        for (i, _) in addrs.iter().enumerate() {
            assert_eq!(mem[i], 100 + i as u64, "word {i}");
        }
    }
}
