//! The transaction engine: the single retry / back-off / accounting core
//! behind every way of running a transaction.
//!
//! Historically the closure API ([`crate::run_transaction`]) and the
//! step-granular workload machines (`pim-workloads`' `TxMachine`) each
//! carried their own copy of the begin/commit/abort bookkeeping. Both now sit
//! on this module:
//!
//! * [`run_retry_loop`] is *the* retry loop — attempt accounting, bounded
//!   randomised back-off, phase restoration. `run_transaction` is a thin
//!   wrapper over it.
//! * [`TxEngine`] bundles an algorithm, the shared STM metadata and one
//!   tasklet's transaction descriptor. It exposes the same loop through
//!   [`TxEngine::transaction`] and, for state machines that must yield to a
//!   scheduler between operations, the step API ([`TxEngine::begin`],
//!   [`TxEngine::read`], …, [`TxEngine::on_abort`]) whose accounting calls
//!   the very same helpers the loop uses.

use pim_sim::{Addr, Phase};

use crate::algorithm::{algorithm_for, TmAlgorithm, TxView};
use crate::error::{Abort, AbortReason};
use crate::platform::Platform;
use crate::shared::StmShared;
use crate::tune::Tuner;
use crate::txslot::TxSlot;

/// Commit/abort tallies of one engine (or one retry loop).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxCounters {
    /// Transactions committed.
    pub commits: u64,
    /// Attempts aborted.
    pub aborts: u64,
}

/// Accounts a committed attempt: resolves the platform's in-flight attempt
/// and resets the descriptor's consecutive-abort counter.
fn account_commit(tx: &mut TxSlot, p: &mut dyn Platform) {
    p.commit_attempt();
    tx.note_commit();
}

/// Accounts an aborted attempt — recording *why* it aborted, both in the
/// platform's profile and in the descriptor's local histogram — and applies
/// the configured [`crate::RetryPolicy`] back-off. This is the single
/// emission point for the retry axis: every abort on every executor flows
/// through here, so `--retry` sweeps need no per-algorithm (or per-body)
/// support.
fn account_abort(
    tx: &mut TxSlot,
    p: &mut dyn Platform,
    reason: AbortReason,
    retry: crate::config::RetryPolicy,
) {
    p.abort_attempt_with(reason);
    tx.note_abort(reason);
    crate::retry::apply(retry, tx, p);
}

/// Runs `body` as a transaction, retrying on abort until it commits, and
/// returns the body's result. `counters`, when provided, receives the
/// commit/abort tallies.
///
/// This is the shared core: every path that retries transactions — the
/// closure API on either executor, [`TxEngine::transaction`] — funnels
/// through this loop, so attempt accounting and back-off behave identically
/// everywhere.
pub fn run_retry_loop<R>(
    alg: &dyn TmAlgorithm,
    shared: &StmShared,
    tx: &mut TxSlot,
    p: &mut dyn Platform,
    counters: Option<&mut TxCounters>,
    body: impl FnMut(&mut TxView<'_>) -> Result<R, Abort>,
) -> R {
    // The caller holds `shared` immutably, so this path cannot tune — hand
    // the tuned loop a private clone (cheap: a config plus three addresses)
    // and no tuner.
    let mut shared = shared.clone();
    run_tuned_retry_loop(alg, &mut shared, tx, p, counters, &mut None, body)
}

/// The tuner-aware form of [`run_retry_loop`]: identical accounting, but
/// after every resolved attempt the [`Tuner`] (when present) observes the
/// outcome and — at window boundaries — may rewrite the runtime-switchable
/// knobs in `shared`'s configuration copy. Takes `shared` mutably for
/// exactly that reason; pass `&mut None` for a static run.
pub(crate) fn run_tuned_retry_loop<R>(
    alg: &dyn TmAlgorithm,
    shared: &mut StmShared,
    tx: &mut TxSlot,
    p: &mut dyn Platform,
    mut counters: Option<&mut TxCounters>,
    tuner: &mut Option<Tuner>,
    mut body: impl FnMut(&mut TxView<'_>) -> Result<R, Abort>,
) -> R {
    // One call = one transaction: fresh stamps for the service layer.
    tx.clear_stamps();
    loop {
        p.begin_attempt();
        tx.stamp_first_attempt(p.timestamp());
        alg.begin(shared, tx, p);
        let result = {
            let mut view = TxView::new(alg, shared, tx, p);
            body(&mut view)
        };
        let committed = result.and_then(|value| alg.commit(shared, tx, p).map(|()| value));
        match committed {
            Ok(value) => {
                tx.stamp_commit(p.timestamp());
                account_commit(tx, p);
                if let Some(c) = counters.as_deref_mut() {
                    c.commits += 1;
                }
                tune_observe(shared, tuner, p, None);
                p.set_phase(Phase::OtherExec);
                return value;
            }
            Err(abort) => {
                account_abort(tx, p, abort.reason, shared.config().retry);
                if let Some(c) = counters.as_deref_mut() {
                    c.aborts += 1;
                }
                tune_observe(shared, tuner, p, Some(abort.reason));
            }
        }
        p.set_phase(Phase::OtherExec);
    }
}

/// Feeds one resolved attempt (`aborted.is_none()` = committed) to the
/// tuner and, when the observation completed a signal window, evaluates it
/// and applies any knob switches to `shared`'s configuration copy. The
/// single tuning emission point, mirroring how [`account_abort`] is the
/// single abort emission point: both executors and both execution styles
/// funnel through here.
pub(crate) fn tune_observe(
    shared: &mut StmShared,
    tuner: &mut Option<Tuner>,
    p: &mut dyn Platform,
    aborted: Option<AbortReason>,
) {
    let Some(t) = tuner.as_mut() else { return };
    let window_complete = match aborted {
        None => t.observe_commit(),
        Some(reason) => t.observe_abort(reason),
    };
    if let Some(knobs) = crate::tune::drive(t, window_complete, p) {
        knobs.apply_to(shared.config_mut());
    }
}

// The legacy exponential back-off now lives on the retry axis
// ([`crate::retry`], where `RetryPolicy::Fixed`/`Adaptive` sit next to it);
// re-exported here because `backoff` predates the axis as this module's API.
pub use crate::retry::backoff;

/// Per-tasklet transactional machinery: one STM algorithm plus the shared
/// metadata and this tasklet's descriptor, usable from both execution styles.
///
/// * **Closure style** — [`TxEngine::transaction`] runs a body through
///   [`run_retry_loop`]; the body receives a [`TxView`] and therefore the
///   whole typed [`crate::var::TxOps`] facade.
/// * **Step style** — workload state machines that must yield to the
///   discrete-event scheduler between operations drive
///   [`TxEngine::begin`] / [`TxEngine::read`] / [`TxEngine::write`] /
///   [`TxEngine::commit`] themselves and call [`TxEngine::on_abort`] to
///   rewind. [`TxEngine::ops`] briefly binds a platform to the engine so
///   even individual steps can use the typed facade.
pub struct TxEngine {
    shared: StmShared,
    slot: TxSlot,
    alg: &'static dyn TmAlgorithm,
    counters: TxCounters,
    /// The online tuner, present when the configuration's
    /// [`crate::tune::TunePolicy`] enables it. Owned per engine — i.e. per
    /// tasklet — like the descriptor, so tuning needs no cross-tasklet
    /// synchronisation (see [`crate::tune`]).
    tuner: Option<Tuner>,
}

impl TxEngine {
    /// Creates the machinery for one tasklet with an explicit algorithm.
    pub fn new(shared: StmShared, slot: TxSlot, alg: &'static dyn TmAlgorithm) -> Self {
        let tuner = Tuner::new(shared.config().tune, shared.config());
        TxEngine { shared, slot, alg, counters: TxCounters::default(), tuner }
    }

    /// Creates the machinery for one tasklet, picking the algorithm from the
    /// configuration recorded in `shared`.
    pub fn for_shared(shared: StmShared, slot: TxSlot) -> Self {
        let alg = algorithm_for(shared.config().kind);
        Self::new(shared, slot, alg)
    }

    /// Runs `body` as a transaction, retrying until it commits, and returns
    /// its result. Commits and aborts are tallied on this engine.
    pub fn transaction<R>(
        &mut self,
        p: &mut dyn Platform,
        body: impl FnMut(&mut TxView<'_>) -> Result<R, Abort>,
    ) -> R {
        run_tuned_retry_loop(
            self.alg,
            &mut self.shared,
            &mut self.slot,
            p,
            Some(&mut self.counters),
            &mut self.tuner,
            body,
        )
    }

    /// Binds `p` to this engine so one or more *individual* operations can go
    /// through the typed [`crate::var::TxOps`] facade between scheduler
    /// steps.
    pub fn ops<'a>(&'a mut self, p: &'a mut dyn Platform) -> EngineOps<'a> {
        EngineOps { engine: self, p }
    }

    /// Starts a transaction attempt (also used to restart after an abort).
    ///
    /// The first attempt since the last [`TxEngine::take_stamps`] harvest is
    /// stamped with the platform clock; retries keep the original stamp.
    pub fn begin(&mut self, p: &mut dyn Platform) {
        p.begin_attempt();
        self.slot.stamp_first_attempt(p.timestamp());
        self.alg.begin(&self.shared, &mut self.slot, p);
    }

    /// Transactional read of one word.
    ///
    /// # Errors
    ///
    /// Propagates [`Abort`] from the underlying algorithm.
    pub fn read(&mut self, p: &mut dyn Platform, addr: Addr) -> Result<u64, Abort> {
        self.alg.read(&self.shared, &mut self.slot, p, addr)
    }

    /// Transactional write of one word.
    ///
    /// # Errors
    ///
    /// Propagates [`Abort`] from the underlying algorithm.
    pub fn write(&mut self, p: &mut dyn Platform, addr: Addr, value: u64) -> Result<(), Abort> {
        self.alg.write(&self.shared, &mut self.slot, p, addr, value)
    }

    /// Transactional read of `out.len()` consecutive words (one MRAM DMA
    /// burst where the design allows it).
    ///
    /// # Errors
    ///
    /// Propagates [`Abort`] from the underlying algorithm.
    pub fn read_record(
        &mut self,
        p: &mut dyn Platform,
        addr: Addr,
        out: &mut [u64],
    ) -> Result<(), Abort> {
        self.alg.read_record(&self.shared, &mut self.slot, p, addr, out)
    }

    /// Transactional write of consecutive words (see
    /// [`TxEngine::read_record`]).
    ///
    /// # Errors
    ///
    /// Propagates [`Abort`] from the underlying algorithm.
    pub fn write_record(
        &mut self,
        p: &mut dyn Platform,
        addr: Addr,
        values: &[u64],
    ) -> Result<(), Abort> {
        self.alg.write_record(&self.shared, &mut self.slot, p, addr, values)
    }

    /// Attempts to commit; on success the attempt is accounted as committed.
    ///
    /// # Errors
    ///
    /// Propagates [`Abort`]; the caller must then call
    /// [`TxEngine::on_abort`] and restart the transaction body.
    pub fn commit(&mut self, p: &mut dyn Platform) -> Result<(), Abort> {
        self.alg.commit(&self.shared, &mut self.slot, p)?;
        self.slot.stamp_commit(p.timestamp());
        account_commit(&mut self.slot, p);
        self.counters.commits += 1;
        tune_observe(&mut self.shared, &mut self.tuner, p, None);
        Ok(())
    }

    /// Explicitly abandons the current attempt (releasing locks and undoing
    /// exposed writes) without the algorithm having detected a conflict.
    /// The caller must still call [`TxEngine::on_abort`] afterwards.
    pub fn cancel(&mut self, p: &mut dyn Platform) {
        self.alg.cancel(&self.shared, &mut self.slot, p);
    }

    /// Accounts an aborted attempt (the cycles it consumed become wasted
    /// time, `reason` feeds the profile's abort histogram) and applies
    /// bounded exponential back-off. Callers hold the reason because the
    /// step that failed returned it inside [`Abort`].
    pub fn on_abort(&mut self, p: &mut dyn Platform, reason: AbortReason) {
        account_abort(&mut self.slot, p, reason, self.shared.config().retry);
        self.counters.aborts += 1;
        tune_observe(&mut self.shared, &mut self.tuner, p, Some(reason));
    }

    /// Shared STM metadata handles.
    pub fn shared(&self) -> &StmShared {
        &self.shared
    }

    /// The design this engine runs.
    pub fn kind(&self) -> crate::config::StmKind {
        self.alg.kind()
    }

    /// Transactions committed by this tasklet.
    pub fn commits(&self) -> u64 {
        self.counters.commits
    }

    /// Attempts aborted by this tasklet.
    pub fn aborts(&self) -> u64 {
        self.counters.aborts
    }

    /// Both tallies at once.
    pub fn counters(&self) -> TxCounters {
        self.counters
    }

    /// The in-flight (or just-committed) transaction's platform-clock stamps
    /// (see [`crate::txslot::TxStamps`]).
    pub fn stamps(&self) -> crate::txslot::TxStamps {
        self.slot.stamps()
    }

    /// Harvests the last transaction's stamps and clears them so the next
    /// [`TxEngine::begin`] stamps a fresh first attempt. Service drivers
    /// call this once per committed request.
    pub fn take_stamps(&mut self) -> crate::txslot::TxStamps {
        self.slot.take_stamps()
    }

    /// The online tuner, when the configuration enables one.
    pub fn tuner(&self) -> Option<&Tuner> {
        self.tuner.as_ref()
    }

    /// Detaches the online tuner, leaving the knobs at their last tuned
    /// values. Round-based hosts (the fleet dispatcher) rebuild engines
    /// between rounds; taking the tuner out and re-installing it into the
    /// next round's engine preserves the decaying signal across rounds.
    pub fn take_tuner(&mut self) -> Option<Tuner> {
        self.tuner.take()
    }

    /// Installs (or re-installs) an online tuner, adopting its current knob
    /// values into this engine's configuration copy so the tuned state
    /// carries over seamlessly — the counterpart of [`TxEngine::take_tuner`].
    pub fn install_tuner(&mut self, tuner: Tuner) {
        tuner.knobs().apply_to(self.shared.config_mut());
        self.tuner = Some(tuner);
    }
}

impl std::fmt::Debug for TxEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxEngine")
            .field("kind", &self.alg.kind())
            .field("commits", &self.counters.commits)
            .field("aborts", &self.counters.aborts)
            .finish()
    }
}

/// A [`TxEngine`] with a platform bound for the duration of one or more
/// operations; this is what lets step-granular state machines use the typed
/// [`crate::var::TxOps`] facade.
pub struct EngineOps<'a> {
    engine: &'a mut TxEngine,
    p: &'a mut dyn Platform,
}

impl crate::var::TxOps for EngineOps<'_> {
    fn read_word(&mut self, addr: Addr) -> Result<u64, Abort> {
        self.engine.read(self.p, addr)
    }

    fn write_word(&mut self, addr: Addr, value: u64) -> Result<(), Abort> {
        self.engine.write(self.p, addr, value)
    }

    fn read_words(&mut self, addr: Addr, out: &mut [u64]) -> Result<(), Abort> {
        self.engine.read_record(self.p, addr, out)
    }

    fn write_words(&mut self, addr: Addr, values: &[u64]) -> Result<(), Abort> {
        self.engine.write_record(self.p, addr, values)
    }

    fn compute(&mut self, instructions: u64) {
        self.p.compute(instructions);
    }

    fn tasklet_id(&self) -> usize {
        self.p.tasklet_id()
    }

    fn cancel(&mut self) -> Abort {
        self.engine.cancel(self.p);
        Abort::new(crate::error::AbortReason::Explicit)
    }

    fn raw_load(&mut self, addr: Addr) -> u64 {
        self.p.load(addr)
    }

    fn raw_store(&mut self, addr: Addr, value: u64) {
        self.p.store(addr, value)
    }

    fn raw_copy(&mut self, src: Addr, dst: Addr, words: u32) {
        self.p.copy(src, dst, words)
    }
}
