//! # pim-bench — Criterion benchmark harness
//!
//! One bench target per figure of the PIM-STM paper. Each bench does two
//! things:
//!
//! 1. prints the corresponding figure's data (at a reduced workload scale, so
//!    `cargo bench` finishes in minutes — use the `pim-exp` binary with
//!    `--scale 1.0` for paper-sized runs), and
//! 2. registers Criterion measurements of representative configurations so
//!    regressions in the simulator or the STM algorithms show up as timing
//!    changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Workload scale factor used by the benches: keeps a full `cargo bench`
/// pass in the minutes range while preserving the relative ordering of the
/// STM designs.
pub const BENCH_SCALE: f64 = 0.05;

/// Tasklet counts swept when printing figure data from the benches.
pub const BENCH_TASKLETS: [usize; 3] = [1, 4, 8];

/// Seed used by all benches so printed figures are reproducible.
pub const BENCH_SEED: u64 = 42;

/// Whether the benches run in smoke mode (`PIM_BENCH_SMOKE=1`): minimal
/// sample counts and workload sizes, used by CI to keep `cargo bench` as a
/// fast correctness pass rather than a measurement run.
pub fn smoke() -> bool {
    std::env::var("PIM_BENCH_SMOKE").is_ok_and(|v| v != "0")
}

/// `full` normally, `smoke` under [`smoke`] mode — for sample counts and
/// iteration budgets.
pub fn smoke_or(full: usize, smoke_value: usize) -> usize {
    if smoke() {
        smoke_value
    } else {
        full
    }
}
