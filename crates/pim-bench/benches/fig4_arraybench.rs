//! Figure 4 (ArrayBench columns): throughput, abort rate and time breakdown
//! of every STM design on ArrayBench A and B with metadata in MRAM.

use criterion::{criterion_group, criterion_main, Criterion};
use pim_bench::{BENCH_SCALE, BENCH_SEED, BENCH_TASKLETS};
use pim_exp::design_space::DesignSpaceSweep;
use pim_stm::{MetadataPlacement, StmKind};
use pim_workloads::{RunSpec, Workload};
use std::time::Duration;

fn print_figure() {
    for workload in [Workload::ArrayA, Workload::ArrayB] {
        let sweep = DesignSpaceSweep::run(
            workload,
            MetadataPlacement::Mram,
            &BENCH_TASKLETS,
            BENCH_SCALE,
            BENCH_SEED,
        );
        eprintln!("{}", sweep.throughput_table());
        eprintln!("{}", sweep.abort_table());
        eprintln!("{}", sweep.breakdown_table());
        eprintln!("{}", sweep.abort_reason_table());
    }
}

fn bench(c: &mut Criterion) {
    print_figure();
    let mut group = c.benchmark_group("fig4_arraybench");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for workload in [Workload::ArrayA, Workload::ArrayB] {
        for kind in StmKind::ALL {
            group.bench_function(format!("{workload}/{kind}/11t"), |b| {
                b.iter(|| {
                    RunSpec::new(workload, kind, MetadataPlacement::Mram, 11)
                        .with_scale(0.02)
                        .run()
                        .total_commits()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
