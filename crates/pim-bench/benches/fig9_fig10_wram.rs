//! Figures 9 and 10 (appendix): the design-space study with STM metadata
//! hosted in WRAM instead of MRAM (ArrayBench, Linked-List and KMeans;
//! Labyrinth is excluded because its logs do not fit in WRAM).

use criterion::{criterion_group, criterion_main, Criterion};
use pim_bench::{BENCH_SCALE, BENCH_SEED, BENCH_TASKLETS};
use pim_exp::design_space::DesignSpaceSweep;
use pim_stm::{MetadataPlacement, StmKind};
use pim_workloads::{RunSpec, Workload};
use std::time::Duration;

fn print_figure() {
    for workload in [
        Workload::ArrayA,
        Workload::ArrayB,
        Workload::ListLc,
        Workload::ListHc,
        Workload::KmeansLc,
        Workload::KmeansHc,
    ] {
        let sweep = DesignSpaceSweep::run(
            workload,
            MetadataPlacement::Wram,
            &BENCH_TASKLETS,
            BENCH_SCALE,
            BENCH_SEED,
        );
        eprintln!("{}", sweep.throughput_table());
        eprintln!("{}", sweep.abort_table());
        eprintln!("{}", sweep.breakdown_table());
    }
}

fn bench(c: &mut Criterion) {
    print_figure();
    let mut group = c.benchmark_group("fig9_fig10_wram");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    // The WRAM-vs-MRAM speed-up of a transaction-heavy workload is the
    // headline number of §4.2.3; track both placements for the same designs.
    for placement in [MetadataPlacement::Wram, MetadataPlacement::Mram] {
        for kind in [StmKind::Norec, StmKind::TinyEtlWb] {
            group.bench_function(format!("array-b/{kind}/{placement}/11t"), |b| {
                b.iter(|| {
                    RunSpec::new(Workload::ArrayB, kind, placement, 11)
                        .with_scale(0.05)
                        .run()
                        .total_commits()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
