//! Figure 5 (Labyrinth columns): throughput, abort rate and time breakdown
//! of every STM design on the Lee router, small (16×16×3) and large
//! (128×128×3) grids, with metadata in MRAM.

use criterion::{criterion_group, criterion_main, Criterion};
use pim_bench::{BENCH_SEED, BENCH_TASKLETS};
use pim_exp::design_space::DesignSpaceSweep;
use pim_stm::{MetadataPlacement, StmKind};
use pim_workloads::{RunSpec, Workload};
use std::time::Duration;

fn print_figure() {
    // The large grid is simulated with a reduced path count (the per-path
    // cost is what matters for the figure's shape).
    for (workload, scale) in [(Workload::LabyrinthS, 0.3), (Workload::LabyrinthL, 0.12)] {
        let sweep = DesignSpaceSweep::run(
            workload,
            MetadataPlacement::Mram,
            &BENCH_TASKLETS,
            scale,
            BENCH_SEED,
        );
        eprintln!("{}", sweep.throughput_table());
        eprintln!("{}", sweep.abort_table());
        eprintln!("{}", sweep.breakdown_table());
    }
}

fn bench(c: &mut Criterion) {
    print_figure();
    let mut group = c.benchmark_group("fig5_labyrinth");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for kind in StmKind::ALL {
        group.bench_function(format!("labyrinth-s/{kind}/5t"), |b| {
            b.iter(|| {
                RunSpec::new(Workload::LabyrinthS, kind, MetadataPlacement::Mram, 5)
                    .with_scale(0.15)
                    .run()
                    .total_commits()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
