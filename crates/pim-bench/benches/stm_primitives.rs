//! Micro-benchmarks of the STM primitives themselves (not a paper figure,
//! but the ablation data behind the design-space discussion): per-design
//! cost of read-modify-write transactions on the simulator for both metadata
//! placements, commit write-back strategies (coalesced vs word-wise) on
//! ArrayBench-B, and the threaded executor under real concurrency.
//!
//! `PIM_BENCH_SMOKE=1` shrinks everything to a CI-sized correctness pass.

use criterion::{criterion_group, criterion_main, Criterion};
use pim_bench::{smoke_or, BENCH_SEED};
use pim_sim::{Dpu, DpuConfig, TaskletCtx, TaskletStats, Tier};
use pim_stm::threaded::ThreadedDpu;
use pim_stm::{
    algorithm_for, run_transaction, MetadataPlacement, ReadStrategy, StmConfig, StmKind, StmShared,
    WriteBackStrategy,
};
use pim_workloads::spec::Executor;
use pim_workloads::{RunSpec, Workload};
use std::time::Duration;

/// Runs `transactions` read-modify-write transactions over a 64-word
/// footprint on a single simulated tasklet and returns the committed count.
fn simulated_transactions(kind: StmKind, placement: MetadataPlacement, transactions: u32) -> u64 {
    let mut dpu = Dpu::new(DpuConfig::small());
    let config = StmConfig::new(kind, placement).with_lock_table_entries(256);
    let shared = StmShared::allocate(&mut dpu, config).expect("metadata fits");
    let mut slot = shared.register_tasklet(&mut dpu, 0).expect("slot fits");
    let data = dpu.alloc(Tier::Mram, 64).expect("data fits");
    let alg = algorithm_for(kind);
    let mut stats = TaskletStats::new();
    for i in 0..transactions {
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
        run_transaction(alg, &shared, &mut slot, &mut ctx, |tx| {
            let addr = data.offset(i % 64);
            let value = tx.read(addr)?;
            tx.write(addr, value + 1)?;
            Ok(())
        });
    }
    stats.commits
}

fn bench_simulated(c: &mut Criterion) {
    let mut group = c.benchmark_group("stm_primitives/simulated");
    group.sample_size(smoke_or(20, 2));
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let transactions = smoke_or(200, 20) as u32;
    for kind in StmKind::ALL {
        for placement in [MetadataPlacement::Wram, MetadataPlacement::Mram] {
            group.bench_function(format!("{kind}/{placement}/rmw"), |b| {
                b.iter(|| simulated_transactions(kind, placement, transactions))
            });
        }
    }
    group.finish();
}

/// Commit write-back comparison: the same seeded ArrayBench-B cell run with
/// word-wise and burst-coalesced redo-log publication. Prints the MRAM DMA
/// setup counts (the metric coalescing improves) alongside the wall-time
/// measurements.
fn bench_writeback(c: &mut Criterion) {
    let scale = if pim_bench::smoke() { 0.05 } else { pim_bench::BENCH_SCALE * 4.0 };
    let mut group = c.benchmark_group("stm_primitives/writeback");
    group.sample_size(smoke_or(10, 2));
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for kind in [StmKind::Norec, StmKind::TinyEtlWb, StmKind::VrCtlWb] {
        for strategy in WriteBackStrategy::ALL {
            let spec = RunSpec::new(Workload::ArrayB, kind, MetadataPlacement::Mram, 4)
                .with_scale(scale)
                .with_seed(BENCH_SEED)
                .with_write_back(strategy);
            let report = spec.run_on(Executor::Simulator);
            report.assert_invariants();
            let profile = report.merged_profile();
            println!(
                "writeback {kind}/{strategy}: {} MRAM DMA setups, {} words, {} commits",
                profile.dma_setups(),
                profile.dma_words(),
                profile.commits(),
            );
            group.bench_function(format!("{kind}/{strategy}/array-b"), |b| {
                b.iter(|| spec.run_on(Executor::Simulator).commits)
            });
        }
    }
    group.finish();
}

/// Record-read comparison: the read-dominated ArrayBench-A cell run with
/// word-wise and batched record reads. Prints MRAM DMA setups per commit
/// (the metric batching improves) alongside the wall-time measurements.
fn bench_read_batching(c: &mut Criterion) {
    let scale = if pim_bench::smoke() { 0.03 } else { pim_bench::BENCH_SCALE };
    let mut group = c.benchmark_group("stm_primitives/read_batching");
    group.sample_size(smoke_or(10, 2));
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for kind in [StmKind::Norec, StmKind::TinyEtlWb, StmKind::VrCtlWb] {
        for strategy in ReadStrategy::ALL {
            let spec = RunSpec::new(Workload::ArrayA, kind, MetadataPlacement::Mram, 4)
                .with_scale(scale)
                .with_seed(BENCH_SEED)
                .with_read_strategy(strategy);
            let report = spec.run_on(Executor::Simulator);
            report.assert_invariants();
            let profile = report.merged_profile();
            println!(
                "read {kind}/{strategy}: {:.1} MRAM DMA setups/commit, {:.1} words/commit",
                profile.dma_setups_per_commit(),
                profile.dma_words_per_commit(),
            );
            group.bench_function(format!("{kind}/{strategy}/array-a"), |b| {
                b.iter(|| spec.run_on(Executor::Simulator).commits)
            });
        }
    }
    group.finish();
}

fn bench_threaded(c: &mut Criterion) {
    let mut group = c.benchmark_group("stm_primitives/threaded");
    group.sample_size(smoke_or(10, 2));
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for kind in [StmKind::Norec, StmKind::TinyEtlWb, StmKind::VrEtlWt] {
        group.bench_function(format!("{kind}/4threads/counter"), |b| {
            b.iter(|| {
                let config =
                    StmConfig::new(kind, MetadataPlacement::Wram).with_lock_table_entries(128);
                let mut dpu = ThreadedDpu::new(config).expect("metadata fits");
                let counter = dpu.alloc(pim_stm::Tier::Mram, 1).expect("data fits");
                dpu.run(4, |mut tx| {
                    for _ in 0..100 {
                        tx.transaction(|view| {
                            let v = view.read(counter)?;
                            view.write(counter, v + 1)?;
                            Ok(())
                        });
                    }
                })
                .expect("4 tasklets is within the hardware limit");
                dpu.peek(counter)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulated, bench_writeback, bench_read_batching, bench_threaded);
criterion_main!(benches);
