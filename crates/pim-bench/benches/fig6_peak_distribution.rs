//! Figure 6: distribution, across workloads, of each design's peak
//! throughput normalised to the per-workload best — for MRAM and WRAM
//! metadata.

use criterion::{criterion_group, criterion_main, Criterion};
use pim_bench::{BENCH_SCALE, BENCH_SEED, BENCH_TASKLETS};
use pim_exp::peak::PeakDistribution;
use pim_stm::MetadataPlacement;
use pim_workloads::Workload;
use std::time::Duration;

fn print_figure() {
    for placement in [MetadataPlacement::Mram, MetadataPlacement::Wram] {
        let dist = PeakDistribution::run(
            placement,
            &Workload::FIGURE_4_5,
            &BENCH_TASKLETS,
            BENCH_SCALE,
            BENCH_SEED,
        );
        eprintln!("== Fig. 6 ({placement} metadata): best-to-design peak throughput ratio ==");
        eprintln!("{}", dist.table());
    }
}

fn bench(c: &mut Criterion) {
    print_figure();
    let mut group = c.benchmark_group("fig6_peak_distribution");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.bench_function("mram/array-b+list-hc", |b| {
        b.iter(|| {
            PeakDistribution::run(
                MetadataPlacement::Mram,
                &[Workload::ArrayB, Workload::ListHc],
                &[4],
                0.05,
                BENCH_SEED,
            )
            .ranking()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
