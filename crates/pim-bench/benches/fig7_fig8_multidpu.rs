//! Figures 7 and 8: multi-DPU speed-up over the CPU baseline and the
//! TDP-based energy comparison. The CPU baseline is genuinely executed on
//! this machine; the DPU side is simulated and extrapolated (see DESIGN.md).

use criterion::{criterion_group, criterion_main, Criterion};
use pim_bench::BENCH_SEED;
use pim_exp::multi_dpu::{figure8_table, MultiDpuBenchmark, MultiDpuStudy};
use std::time::Duration;

const DPU_COUNTS: [usize; 6] = [1, 250, 500, 1000, 1500, 2500];

fn print_figure() {
    let mut studies = Vec::new();
    for benchmark in MultiDpuBenchmark::ALL {
        let scale = match benchmark {
            MultiDpuBenchmark::LabyrinthL => 0.12,
            _ => 0.05,
        };
        let study = MultiDpuStudy::run(benchmark, &DPU_COUNTS, scale, BENCH_SEED);
        eprintln!("== Fig. 7: {benchmark} ==");
        eprintln!("{}", study.speedup_table());
        studies.push(study);
    }
    eprintln!("== Fig. 8: speed-up and energy gain at 2500 DPUs ==");
    eprintln!("{}", figure8_table(&studies));
}

fn bench(c: &mut Criterion) {
    print_figure();
    let mut group = c.benchmark_group("fig7_fig8_multidpu");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.bench_function("kmeans-hc/sweep", |b| {
        b.iter(|| MultiDpuStudy::run(MultiDpuBenchmark::KmeansHc, &[1, 2500], 0.02, BENCH_SEED))
    });
    group.bench_function("labyrinth-s/sweep", |b| {
        b.iter(|| MultiDpuStudy::run(MultiDpuBenchmark::LabyrinthS, &[1, 2500], 0.12, BENCH_SEED))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
