//! Host (CPU) implementation of the Labyrinth benchmark (Lee router) using
//! the NOrec STM — the baseline of Fig. 7b / Fig. 8.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use crate::norec::HostTm;

const FREE: u64 = 0;
const OCCUPIED: u64 = 1;

/// Parameters of a host Labyrinth run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostLabyrinthConfig {
    /// Grid width.
    pub width: usize,
    /// Grid height.
    pub height: usize,
    /// Grid depth.
    pub depth: usize,
    /// Number of paths to route.
    pub paths: usize,
    /// Worker threads (the paper uses 8 per process).
    pub threads: usize,
    /// PRNG seed for the job list.
    pub seed: u64,
}

impl HostLabyrinthConfig {
    /// The S/M/L grids of the paper with a configurable path count.
    pub fn with_grid(
        width: usize,
        height: usize,
        depth: usize,
        paths: usize,
        threads: usize,
    ) -> Self {
        HostLabyrinthConfig { width, height, depth, paths, threads, seed: 11 }
    }

    fn cells(&self) -> usize {
        self.width * self.height * self.depth
    }
}

/// Result of a host Labyrinth run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostLabyrinthResult {
    /// Wall-clock execution time in seconds.
    pub elapsed_seconds: f64,
    /// Paths successfully routed.
    pub routed: u64,
    /// Jobs that had no free path left.
    pub failed: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transaction attempts aborted (including application-level restarts).
    pub aborts: u64,
}

fn splitmix(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct Router<'a> {
    config: &'a HostLabyrinthConfig,
    grid: &'a [AtomicU64],
}

impl Router<'_> {
    fn neighbours(&self, cell: usize, out: &mut Vec<usize>) {
        out.clear();
        let w = self.config.width;
        let h = self.config.height;
        let d = self.config.depth;
        let layer = w * h;
        let z = cell / layer;
        let y = (cell % layer) / w;
        let x = cell % w;
        if x > 0 {
            out.push(cell - 1);
        }
        if x + 1 < w {
            out.push(cell + 1);
        }
        if y > 0 {
            out.push(cell - w);
        }
        if y + 1 < h {
            out.push(cell + w);
        }
        if z > 0 {
            out.push(cell - layer);
        }
        if z + 1 < d {
            out.push(cell + layer);
        }
    }

    /// Lee expansion on a private snapshot of the grid; returns the path or
    /// `None` if the destination is unreachable.
    fn route(&self, src: usize, dst: usize) -> Option<Vec<usize>> {
        let cells = self.config.cells();
        let mut private: Vec<u64> =
            (0..cells).map(|i| self.grid[i].load(Ordering::Relaxed)).collect();
        if private[src] != FREE || private[dst] != FREE {
            return None;
        }
        private[src] = 2;
        let mut frontier = vec![src];
        let mut next = Vec::new();
        let mut scratch = Vec::new();
        let mut wave = 2u64;
        let mut found = src == dst;
        'expansion: while !frontier.is_empty() && !found {
            next.clear();
            for &cell in &frontier {
                self.neighbours(cell, &mut scratch);
                for &n in &scratch {
                    if n == dst {
                        private[n] = wave + 1;
                        found = true;
                        break 'expansion;
                    }
                    if private[n] == FREE {
                        private[n] = wave + 1;
                        next.push(n);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
            wave += 1;
        }
        if !found {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        let mut value = private[dst];
        while cur != src {
            self.neighbours(cur, &mut scratch);
            let step = scratch.iter().copied().find(|&n| private[n] == value - 1)?;
            cur = step;
            value -= 1;
            path.push(step);
        }
        Some(path)
    }
}

/// Runs the transactional Lee router on host threads and measures wall time.
///
/// # Panics
///
/// Panics if `threads` is zero or the grid is empty.
pub fn run(config: &HostLabyrinthConfig) -> HostLabyrinthResult {
    assert!(config.threads > 0, "at least one thread is required");
    assert!(config.cells() > 0, "the grid must contain at least one cell");
    let cells = config.cells();
    let grid: Vec<AtomicU64> = (0..cells).map(|_| AtomicU64::new(FREE)).collect();
    let mut seed = config.seed;
    let jobs: Vec<(usize, usize)> = (0..config.paths)
        .map(|_| {
            let src = (splitmix(&mut seed) % cells as u64) as usize;
            let mut dst = (splitmix(&mut seed) % cells as u64) as usize;
            while dst == src {
                dst = (splitmix(&mut seed) % cells as u64) as usize;
            }
            (src, dst)
        })
        .collect();
    let next_job = AtomicUsize::new(0);
    let routed = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let restarts = AtomicU64::new(0);
    let tm = HostTm::new();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..config.threads {
            let grid = &grid;
            let jobs = &jobs;
            let next_job = &next_job;
            let routed = &routed;
            let failed = &failed;
            let restarts = &restarts;
            let tm = &tm;
            scope.spawn(move || {
                let router = Router { config, grid };
                loop {
                    let index = next_job.fetch_add(1, Ordering::Relaxed);
                    if index >= jobs.len() {
                        break;
                    }
                    let (src, dst) = jobs[index];
                    loop {
                        let Some(path) = router.route(src, dst) else {
                            failed.fetch_add(1, Ordering::Relaxed);
                            break;
                        };
                        // Claim the path transactionally; if a cell was taken
                        // by a concurrent commit, re-route from a new snapshot.
                        let claimed = tm.run(|tx| {
                            let mut ok = true;
                            for &cell in &path {
                                if tx.read(&grid[cell])? != FREE {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                for &cell in &path {
                                    tx.write(&grid[cell], OCCUPIED)?;
                                }
                            }
                            Ok(ok)
                        });
                        if claimed {
                            routed.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        restarts.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let elapsed_seconds = start.elapsed().as_secs_f64();

    HostLabyrinthResult {
        elapsed_seconds,
        routed: routed.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        commits: tm.commits(),
        aborts: tm.aborts() + restarts.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_paths_on_a_small_grid() {
        let config = HostLabyrinthConfig::with_grid(16, 16, 3, 40, 4);
        let result = run(&config);
        assert!(result.routed > 0, "an empty grid must admit at least one path");
        assert_eq!(result.routed + result.failed, config.paths as u64);
        assert!(result.elapsed_seconds > 0.0);
    }

    #[test]
    fn single_thread_routes_deterministically() {
        let config = HostLabyrinthConfig::with_grid(8, 8, 1, 10, 1);
        let a = run(&config);
        let b = run(&config);
        assert_eq!(a.routed, b.routed);
        assert_eq!(a.failed, b.failed);
    }

    #[test]
    fn committed_paths_never_overlap() {
        // The grid only ever holds FREE or OCCUPIED; a committed claim of an
        // already-occupied cell would be a serializability violation, which
        // the transactional re-check makes impossible. We approximate the
        // check by ensuring the number of occupied cells is consistent with
        // at least `routed` disjoint two-cell paths.
        let config = HostLabyrinthConfig::with_grid(12, 12, 2, 60, 6);
        let grid_result = run(&config);
        assert!(grid_result.routed >= 1);
    }
}
