//! A NOrec software transactional memory for host CPU threads.
//!
//! This is the algorithm the paper uses for its CPU baselines: a single
//! global sequence lock, invisible reads validated by value, and a redo log
//! applied at commit while the sequence lock is held. Transactional data is
//! any set of [`AtomicU64`] cells owned by the application.

use std::sync::atomic::{AtomicU64, Ordering};

/// Error returned when a transaction attempt must be retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostAbort;

impl std::fmt::Display for HostAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("host transaction aborted")
    }
}

impl std::error::Error for HostAbort {}

/// The shared state of the host STM: the NOrec sequence lock.
#[derive(Debug, Default)]
pub struct HostTm {
    seqlock: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
}

impl HostTm {
    /// Creates a new transactional-memory instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Transactions committed so far.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Transaction attempts aborted so far.
    pub fn aborts(&self) -> u64 {
        self.aborts.load(Ordering::Relaxed)
    }

    fn wait_until_even(&self) -> u64 {
        loop {
            let s = self.seqlock.load(Ordering::Acquire);
            if s.is_multiple_of(2) {
                return s;
            }
            std::hint::spin_loop();
        }
    }

    /// Runs `body` as a transaction, retrying until it commits, and returns
    /// its result. The body receives a [`HostTx`] through which all shared
    /// cells must be accessed; plain loads/stores of shared state inside the
    /// body would break atomicity.
    pub fn run<'env, R>(
        &'env self,
        mut body: impl FnMut(&mut HostTx<'env>) -> Result<R, HostAbort>,
    ) -> R {
        let mut backoff = 0u32;
        loop {
            let snapshot = self.wait_until_even();
            let mut tx = HostTx { tm: self, snapshot, read_set: Vec::new(), write_set: Vec::new() };
            match body(&mut tx).and_then(|value| tx.commit().map(|()| value)) {
                Ok(value) => {
                    self.commits.fetch_add(1, Ordering::Relaxed);
                    return value;
                }
                Err(HostAbort) => {
                    self.aborts.fetch_add(1, Ordering::Relaxed);
                    backoff = (backoff + 1).min(10);
                    for _ in 0..(1u32 << backoff) {
                        std::hint::spin_loop();
                    }
                }
            }
        }
    }
}

/// An in-flight host transaction.
#[derive(Debug)]
pub struct HostTx<'env> {
    tm: &'env HostTm,
    snapshot: u64,
    read_set: Vec<(&'env AtomicU64, u64)>,
    write_set: Vec<(&'env AtomicU64, u64)>,
}

impl<'env> HostTx<'env> {
    fn validate(&mut self) -> Result<u64, HostAbort> {
        loop {
            let time = self.tm.wait_until_even();
            for (cell, value) in &self.read_set {
                if cell.load(Ordering::Acquire) != *value {
                    return Err(HostAbort);
                }
            }
            if self.tm.seqlock.load(Ordering::Acquire) == time {
                return Ok(time);
            }
        }
    }

    /// Transactional read of a shared cell.
    ///
    /// # Errors
    ///
    /// Returns [`HostAbort`] if a concurrent commit invalidated this
    /// transaction's snapshot.
    pub fn read(&mut self, cell: &'env AtomicU64) -> Result<u64, HostAbort> {
        if let Some((_, value)) =
            self.write_set.iter().rev().find(|(written, _)| std::ptr::eq(*written, cell))
        {
            return Ok(*value);
        }
        let mut value = cell.load(Ordering::Acquire);
        while self.tm.seqlock.load(Ordering::Acquire) != self.snapshot {
            self.snapshot = self.validate()?;
            value = cell.load(Ordering::Acquire);
        }
        self.read_set.push((cell, value));
        Ok(value)
    }

    /// Transactional write of a shared cell (buffered until commit).
    ///
    /// # Errors
    ///
    /// Never fails under NOrec, but returns a `Result` for interface
    /// symmetry with the DPU-side library.
    pub fn write(&mut self, cell: &'env AtomicU64, value: u64) -> Result<(), HostAbort> {
        if let Some(entry) =
            self.write_set.iter_mut().find(|(written, _)| std::ptr::eq(*written, cell))
        {
            entry.1 = value;
        } else {
            self.write_set.push((cell, value));
        }
        Ok(())
    }

    fn commit(mut self) -> Result<(), HostAbort> {
        if self.write_set.is_empty() {
            return Ok(());
        }
        loop {
            match self.tm.seqlock.compare_exchange(
                self.snapshot,
                self.snapshot + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(_) => {
                    self.snapshot = self.validate()?;
                }
            }
        }
        for (cell, value) in &self.write_set {
            cell.store(*value, Ordering::Release);
        }
        self.tm.seqlock.store(self.snapshot + 2, Ordering::Release);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_read_write_roundtrip() {
        let tm = HostTm::new();
        let cell = AtomicU64::new(5);
        let observed = tm.run(|tx| {
            let v = tx.read(&cell)?;
            tx.write(&cell, v * 2)?;
            tx.read(&cell)
        });
        assert_eq!(observed, 10);
        assert_eq!(cell.load(Ordering::SeqCst), 10);
        assert_eq!(tm.commits(), 1);
        assert_eq!(tm.aborts(), 0);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let tm = HostTm::new();
        let counter = AtomicU64::new(0);
        let threads = 8;
        let per_thread = 500;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for _ in 0..per_thread {
                        tm.run(|tx| {
                            let v = tx.read(&counter)?;
                            tx.write(&counter, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), threads * per_thread);
        assert_eq!(tm.commits(), threads * per_thread);
    }

    #[test]
    fn transfers_preserve_the_total() {
        let tm = HostTm::new();
        let accounts: Vec<AtomicU64> = (0..16).map(|_| AtomicU64::new(100)).collect();
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let tm = &tm;
                let accounts = &accounts;
                scope.spawn(move || {
                    for i in 0..1_000usize {
                        let from = (t * 7 + i) % accounts.len();
                        let to = (t * 13 + i * 3) % accounts.len();
                        if from == to {
                            continue;
                        }
                        tm.run(|tx| {
                            let a = tx.read(&accounts[from])?;
                            let b = tx.read(&accounts[to])?;
                            tx.write(&accounts[from], a.wrapping_sub(1))?;
                            tx.write(&accounts[to], b.wrapping_add(1))
                        });
                    }
                });
            }
        });
        let total: u64 = accounts.iter().map(|a| a.load(Ordering::SeqCst)).sum();
        assert_eq!(total, 1600);
    }

    #[test]
    fn read_only_transactions_do_not_bump_the_lock() {
        let tm = HostTm::new();
        let cell = AtomicU64::new(3);
        let v = tm.run(|tx| tx.read(&cell));
        assert_eq!(v, 3);
        assert_eq!(tm.seqlock.load(Ordering::SeqCst), 0);
    }
}
