//! # host-stm — the CPU-side baseline of the PIM-vs-CPU study
//!
//! Section 4.3 of the PIM-STM paper compares the multi-DPU ports of KMeans
//! and Labyrinth against their original CPU implementations, which use the
//! NOrec STM on x86 threads. This crate provides that baseline:
//!
//! * [`HostTm`] — a word-based NOrec STM for ordinary `std::thread`
//!   concurrency over `AtomicU64` cells (single global sequence lock,
//!   invisible reads, value-based validation, commit-time write-back);
//! * [`kmeans`] — a multi-threaded transactional KMeans assignment round;
//! * [`labyrinth`] — a multi-threaded transactional Lee router.
//!
//! The experiment harness (`pim-exp`) runs these natively, measures wall
//! time, and compares against the simulated multi-DPU execution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kmeans;
pub mod labyrinth;
pub mod norec;

pub use norec::{HostAbort, HostTm, HostTx};
