//! Host (CPU) implementation of the KMeans assignment round, using the
//! NOrec STM for centroid updates — the baseline of Fig. 7a / Fig. 8.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::norec::HostTm;

/// Parameters of a host KMeans run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostKmeansConfig {
    /// Number of clusters (`k`).
    pub clusters: usize,
    /// Point dimensionality (`d`).
    pub dimensions: usize,
    /// Total number of input points.
    pub points: usize,
    /// Worker threads (the paper uses 4 for KMeans).
    pub threads: usize,
    /// Assignment rounds (the paper uses 3).
    pub rounds: usize,
    /// PRNG seed for the synthetic input points.
    pub seed: u64,
}

impl HostKmeansConfig {
    /// Low-contention configuration matching the DPU-side benchmark
    /// (k = 15, d = 14).
    pub fn low_contention(points: usize, threads: usize) -> Self {
        HostKmeansConfig { clusters: 15, dimensions: 14, points, threads, rounds: 3, seed: 42 }
    }

    /// High-contention configuration (k = 2, d = 14).
    pub fn high_contention(points: usize, threads: usize) -> Self {
        HostKmeansConfig { clusters: 2, ..Self::low_contention(points, threads) }
    }
}

/// Result of a host KMeans run.
#[derive(Debug, Clone, PartialEq)]
pub struct HostKmeansResult {
    /// Wall-clock execution time in seconds.
    pub elapsed_seconds: f64,
    /// Final per-cluster membership counts (summed over rounds).
    pub membership: Vec<u64>,
    /// Transactions committed.
    pub commits: u64,
    /// Transaction attempts aborted.
    pub aborts: u64,
}

fn splitmix(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs the transactional KMeans assignment rounds on host threads and
/// measures wall time.
///
/// # Panics
///
/// Panics if `threads` or `clusters` is zero.
pub fn run(config: &HostKmeansConfig) -> HostKmeansResult {
    assert!(config.threads > 0, "at least one thread is required");
    assert!(config.clusters > 0, "at least one cluster is required");
    let d = config.dimensions;
    let k = config.clusters;
    let mut seed = config.seed;
    let points: Vec<Vec<u64>> = (0..config.points)
        .map(|_| (0..d).map(|_| splitmix(&mut seed) % (1 << 16)).collect())
        .collect();
    let reference: Vec<u64> = (0..k * d).map(|_| splitmix(&mut seed) % (1 << 16)).collect();

    // Shared accumulators: per cluster, d running sums plus a count.
    let sums: Vec<AtomicU64> = (0..k * d).map(|_| AtomicU64::new(0)).collect();
    let counts: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
    let tm = HostTm::new();

    let start = Instant::now();
    for _ in 0..config.rounds {
        std::thread::scope(|scope| {
            for chunk in points.chunks(points.len().div_ceil(config.threads).max(1)) {
                let tm = &tm;
                let sums = &sums;
                let counts = &counts;
                let reference = &reference;
                scope.spawn(move || {
                    for point in chunk {
                        // Nearest centroid: non-transactional, like STAMP.
                        let mut best = 0usize;
                        let mut best_distance = u64::MAX;
                        for c in 0..k {
                            let distance: u64 = (0..d)
                                .map(|dim| {
                                    let diff = reference[c * d + dim].abs_diff(point[dim]);
                                    diff.saturating_mul(diff)
                                })
                                .fold(0, u64::saturating_add);
                            if distance < best_distance {
                                best_distance = distance;
                                best = c;
                            }
                        }
                        // Transactional fold into the chosen centroid.
                        tm.run(|tx| {
                            for dim in 0..d {
                                let cell = &sums[best * d + dim];
                                let sum = tx.read(cell)?;
                                tx.write(cell, sum.wrapping_add(point[dim]))?;
                            }
                            let count = tx.read(&counts[best])?;
                            tx.write(&counts[best], count + 1)
                        });
                    }
                });
            }
        });
    }
    let elapsed_seconds = start.elapsed().as_secs_f64();

    HostKmeansResult {
        elapsed_seconds,
        membership: counts.iter().map(|c| c.load(Ordering::SeqCst)).collect(),
        commits: tm.commits(),
        aborts: tm.aborts(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_point_is_assigned_each_round() {
        let config = HostKmeansConfig::high_contention(2_000, 4);
        let result = run(&config);
        let total: u64 = result.membership.iter().sum();
        assert_eq!(total, (config.points * config.rounds) as u64);
        assert_eq!(result.commits, (config.points * config.rounds) as u64);
        assert!(result.elapsed_seconds > 0.0);
    }

    #[test]
    fn low_contention_uses_all_clusters() {
        let config = HostKmeansConfig::low_contention(3_000, 2);
        let result = run(&config);
        let populated = result.membership.iter().filter(|&&c| c > 0).count();
        assert!(populated > 1, "synthetic points should spread over several clusters");
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_is_rejected() {
        let config = HostKmeansConfig { threads: 0, ..HostKmeansConfig::low_contention(10, 1) };
        let _ = run(&config);
    }
}
