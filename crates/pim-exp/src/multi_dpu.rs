//! Figures 7 and 8: speed-up and energy gains of the multi-DPU ports of
//! KMeans and Labyrinth with respect to their CPU implementations.
//!
//! Methodology (matching §4.3 of the paper, with the substitutions recorded
//! in DESIGN.md):
//!
//! * **DPU side** — one representative DPU is simulated at its best tasklet
//!   count with the NOrec STM (the configuration the paper uses), and its
//!   per-unit-of-work time is extrapolated linearly to the full per-DPU
//!   workload (200 k points per DPU for KMeans, one routing instance per DPU
//!   for Labyrinth). Host↔DPU transfers and the CPU merge step are added
//!   through [`pim_sim::MultiDpuPlan`]; DPUs work in parallel, so the DPU
//!   compute time does not grow with the DPU count while the total input
//!   does.
//! * **CPU side** — the `host-stm` NOrec baseline is *actually executed* on
//!   this machine with the paper's thread counts (4 for KMeans, 4 × 8 for
//!   Labyrinth), on a reference input, and its per-unit-of-work time is
//!   extrapolated linearly to the total input size (which grows with the
//!   number of DPUs, as in the paper).
//! * **Energy** — UPMEM energy is TDP (370 W) × time, exactly the paper's
//!   estimate; CPU energy is package+DRAM power × time (RAPL substitute).

use pim_fleet::baseline::{
    KMEANS_CPU_THREADS, KMEANS_POINTS_PER_DPU, KMEANS_ROUNDS, LABYRINTH_CPU_PROCESSES,
    LABYRINTH_CPU_THREADS,
};
use pim_sim::{CpuTransferModel, EnergyModel, MultiDpuPlan, RoundPlan};
use pim_stm::{MetadataPlacement, StmKind};
use pim_workloads::{RunSpec, Workload};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::cache::SimCache;
use crate::report::{fmt_f64, render_table};

/// The five workloads of the multi-DPU study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MultiDpuBenchmark {
    /// KMeans, low contention (k = 15).
    KmeansLc,
    /// KMeans, high contention (k = 2).
    KmeansHc,
    /// Labyrinth on the 16×16×3 grid.
    LabyrinthS,
    /// Labyrinth on the 32×32×3 grid.
    LabyrinthM,
    /// Labyrinth on the 128×128×3 grid.
    LabyrinthL,
}

impl MultiDpuBenchmark {
    /// All benchmarks, in the order of Fig. 8.
    pub const ALL: [MultiDpuBenchmark; 5] = [
        MultiDpuBenchmark::LabyrinthS,
        MultiDpuBenchmark::LabyrinthM,
        MultiDpuBenchmark::LabyrinthL,
        MultiDpuBenchmark::KmeansLc,
        MultiDpuBenchmark::KmeansHc,
    ];

    /// Short label used in Fig. 8.
    pub fn label(self) -> &'static str {
        match self {
            MultiDpuBenchmark::KmeansLc => "Kmeans LC",
            MultiDpuBenchmark::KmeansHc => "Kmeans HC",
            MultiDpuBenchmark::LabyrinthS => "Labyrinth S",
            MultiDpuBenchmark::LabyrinthM => "Labyrinth M",
            MultiDpuBenchmark::LabyrinthL => "Labyrinth L",
        }
    }

    /// Parses a CLI name such as `kmeans-lc` or `labyrinth-l`.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "kmeans-lc" => Some(MultiDpuBenchmark::KmeansLc),
            "kmeans-hc" => Some(MultiDpuBenchmark::KmeansHc),
            "labyrinth-s" => Some(MultiDpuBenchmark::LabyrinthS),
            "labyrinth-m" => Some(MultiDpuBenchmark::LabyrinthM),
            "labyrinth-l" => Some(MultiDpuBenchmark::LabyrinthL),
            _ => None,
        }
    }

    fn is_kmeans(self) -> bool {
        matches!(self, MultiDpuBenchmark::KmeansLc | MultiDpuBenchmark::KmeansHc)
    }

    fn single_dpu_workload(self) -> Workload {
        match self {
            MultiDpuBenchmark::KmeansLc => Workload::KmeansLc,
            MultiDpuBenchmark::KmeansHc => Workload::KmeansHc,
            MultiDpuBenchmark::LabyrinthS => Workload::LabyrinthS,
            MultiDpuBenchmark::LabyrinthM => Workload::LabyrinthM,
            MultiDpuBenchmark::LabyrinthL => Workload::LabyrinthL,
        }
    }

    fn grid_dims(self) -> Option<(usize, usize, usize)> {
        match self {
            MultiDpuBenchmark::LabyrinthS => Some((16, 16, 3)),
            MultiDpuBenchmark::LabyrinthM => Some((32, 32, 3)),
            MultiDpuBenchmark::LabyrinthL => Some((128, 128, 3)),
            _ => None,
        }
    }
}

impl fmt::Display for MultiDpuBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One DPU-count sample of the speed-up curve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SpeedupPoint {
    /// Number of DPUs used (and therefore the input-size multiplier).
    pub n_dpus: usize,
    /// End-to-end PIM execution time in seconds (DPU compute + transfers +
    /// host merge).
    pub pim_seconds: f64,
    /// CPU baseline execution time in seconds for the same total input.
    pub cpu_seconds: f64,
    /// `cpu_seconds / pim_seconds`.
    pub speedup: f64,
}

/// The speed-up/energy study for one benchmark (one curve of Fig. 7 plus its
/// Fig. 8 bar).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiDpuStudy {
    /// Which benchmark this study describes.
    pub benchmark: MultiDpuBenchmark,
    /// Speed-up samples over the swept DPU counts.
    pub points: Vec<SpeedupPoint>,
    /// Energy gain (CPU energy / PIM energy) at the largest DPU count.
    pub energy_gain: f64,
    /// Speed-up at the largest DPU count.
    pub peak_speedup: f64,
}

impl MultiDpuStudy {
    /// Runs the study for `benchmark`, sampling the DPU counts in
    /// `dpu_counts`. `scale` shrinks the reference workloads that are
    /// simulated/measured before linear extrapolation (1.0 reproduces the
    /// paper's sizes; benches use much smaller values).
    pub fn run(benchmark: MultiDpuBenchmark, dpu_counts: &[usize], scale: f64, seed: u64) -> Self {
        Self::run_with_cache(benchmark, dpu_counts, scale, seed, &SimCache::in_memory())
    }

    /// [`MultiDpuStudy::run`] with the invocation-wide [`SimCache`]: the
    /// analytic [`MultiDpuPlan`] cross-checks are memoized via
    /// [`SimCache::get_or_plan`], so repeated benchmark × DPU-count cells
    /// (e.g. fig7 and fig8 studies in one invocation, or overlapping
    /// `--dpus` ladders) evaluate the cost model once. The simulated and
    /// measured reference runs are *not* plan-cacheable and always execute.
    pub fn run_with_cache(
        benchmark: MultiDpuBenchmark,
        dpu_counts: &[usize],
        scale: f64,
        seed: u64,
        cache: &SimCache,
    ) -> Self {
        let transfer = CpuTransferModel::default();
        let energy = EnergyModel::default();
        let max_dpus = dpu_counts.iter().copied().max().unwrap_or(1);

        let (per_unit_dpu_seconds, per_unit_cpu_seconds, unit_bytes) = if benchmark.is_kmeans() {
            Self::kmeans_reference(benchmark, scale, seed)
        } else {
            Self::labyrinth_reference(benchmark, scale, seed)
        };

        let mut points = Vec::new();
        for &n_dpus in dpu_counts {
            let pim_seconds = if benchmark.is_kmeans() {
                let mut plan = MultiDpuPlan::new(n_dpus);
                let round_compute =
                    per_unit_dpu_seconds * KMEANS_POINTS_PER_DPU as f64 / KMEANS_ROUNDS as f64;
                for round in 0..KMEANS_ROUNDS {
                    let scatter = if round == 0 {
                        // Points are scattered once, before the first round.
                        unit_bytes * KMEANS_POINTS_PER_DPU * n_dpus as u64
                    } else {
                        0
                    } + 4096 * n_dpus as u64; // fresh centroids each round
                    plan.push_round(RoundPlan {
                        dpu_compute_seconds: round_compute,
                        bytes_to_dpus: scatter,
                        bytes_from_dpus: 4096 * n_dpus as u64,
                        cpu_merge_seconds: 2e-8 * n_dpus as f64 * 64.0,
                        ..RoundPlan::default()
                    });
                }
                cache.get_or_plan(&plan, &transfer).total_seconds()
            } else {
                let (w, h, d) = benchmark.grid_dims().expect("labyrinth benchmark");
                let grid_bytes = (w * h * d * 8) as u64;
                let mut plan = MultiDpuPlan::new(n_dpus);
                plan.push_round(RoundPlan {
                    dpu_compute_seconds: per_unit_dpu_seconds,
                    bytes_to_dpus: grid_bytes * n_dpus as u64,
                    bytes_from_dpus: grid_bytes * n_dpus as u64,
                    cpu_merge_seconds: 1e-6 * n_dpus as f64,
                    ..RoundPlan::default()
                });
                cache.get_or_plan(&plan, &transfer).total_seconds()
            };

            let cpu_seconds = if benchmark.is_kmeans() {
                per_unit_cpu_seconds * (KMEANS_POINTS_PER_DPU * n_dpus as u64) as f64
            } else {
                // n_dpus independent instances, solved by 4 parallel host
                // processes.
                per_unit_cpu_seconds * n_dpus as f64 / LABYRINTH_CPU_PROCESSES as f64
            };

            points.push(SpeedupPoint {
                n_dpus,
                pim_seconds,
                cpu_seconds,
                speedup: cpu_seconds / pim_seconds,
            });
        }

        let last =
            points.iter().find(|p| p.n_dpus == max_dpus).copied().expect("dpu_counts is not empty");
        MultiDpuStudy {
            benchmark,
            points,
            energy_gain: energy.energy_gain(last.cpu_seconds, last.pim_seconds, max_dpus),
            peak_speedup: last.speedup,
        }
    }

    /// Simulates/measures the KMeans references and returns
    /// `(dpu_seconds_per_point_over_all_rounds, cpu_seconds_per_point_over_all_rounds, bytes_per_point)`.
    fn kmeans_reference(benchmark: MultiDpuBenchmark, scale: f64, seed: u64) -> (f64, f64, u64) {
        // DPU reference: one DPU at its best tasklet count, NOrec, WRAM
        // metadata (the paper's §4.3 configuration for KMeans).
        let spec = RunSpec::new(
            benchmark.single_dpu_workload(),
            StmKind::Norec,
            MetadataPlacement::Wram,
            11,
        )
        .with_scale(scale)
        .with_seed(seed);
        let report = spec.run();
        let simulated_points = report.total_commits() as f64;
        let dpu_per_point = report.makespan_seconds() / simulated_points * KMEANS_ROUNDS as f64;

        // CPU reference: actually run the host baseline on a scaled input.
        let reference_points = ((50_000.0 * scale) as usize).max(2_000);
        let host_config = if benchmark == MultiDpuBenchmark::KmeansLc {
            host_stm::kmeans::HostKmeansConfig::low_contention(reference_points, KMEANS_CPU_THREADS)
        } else {
            host_stm::kmeans::HostKmeansConfig::high_contention(
                reference_points,
                KMEANS_CPU_THREADS,
            )
        };
        let host = host_stm::kmeans::run(&host_config);
        let cpu_per_point = host.elapsed_seconds / reference_points as f64;

        // 14 dimensions × 4 bytes per feature scattered to the DPUs.
        (dpu_per_point, cpu_per_point, 14 * 4)
    }

    /// Simulates/measures the Labyrinth references and returns
    /// `(dpu_seconds_per_instance, cpu_seconds_per_instance, 0)`.
    fn labyrinth_reference(benchmark: MultiDpuBenchmark, scale: f64, seed: u64) -> (f64, f64, u64) {
        let workload = benchmark.single_dpu_workload();
        // DPU reference: NOrec with MRAM metadata (WRAM cannot hold the
        // logs), at the paper's saturation point of ~5 tasklets.
        let spec = RunSpec::new(workload, StmKind::Norec, MetadataPlacement::Mram, 5)
            .with_scale(scale)
            .with_seed(seed);
        let report = spec.run();
        let simulated_paths = (100.0 * scale).round().max(12.0);
        let dpu_per_instance = report.makespan_seconds() * (100.0 / simulated_paths);

        let (w, h, d) = benchmark.grid_dims().expect("labyrinth benchmark");
        let host_paths = ((100.0 * scale) as usize).max(12);
        let host_config = host_stm::labyrinth::HostLabyrinthConfig::with_grid(
            w,
            h,
            d,
            host_paths,
            LABYRINTH_CPU_THREADS,
        );
        let host = host_stm::labyrinth::run(&host_config);
        let cpu_per_instance = host.elapsed_seconds * (100.0 / host_paths as f64);

        (dpu_per_instance, cpu_per_instance, 0)
    }

    /// Renders the Fig. 7 speed-up curve as a table.
    pub fn speedup_table(&self) -> String {
        let header =
            ["#DPUs", "PIM time (s)", "CPU time (s)", "speedup"].map(str::to_string).to_vec();
        let rows = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.n_dpus.to_string(),
                    fmt_f64(p.pim_seconds),
                    fmt_f64(p.cpu_seconds),
                    fmt_f64(p.speedup),
                ]
            })
            .collect::<Vec<_>>();
        format!("{}\n{}", self.benchmark, render_table(&header, &rows))
    }
}

/// Renders the Fig. 8 summary (speed-up and energy gain at the largest DPU
/// count) for a set of studies.
pub fn figure8_table(studies: &[MultiDpuStudy]) -> String {
    let header = ["benchmark", "speedup", "energy gain"].map(str::to_string).to_vec();
    let rows = studies
        .iter()
        .map(|s| {
            vec![s.benchmark.label().to_string(), fmt_f64(s.peak_speedup), fmt_f64(s.energy_gain)]
        })
        .collect::<Vec<_>>();
    render_table(&header, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_names_roundtrip() {
        for b in MultiDpuBenchmark::ALL {
            let name = b.label().to_ascii_lowercase().replace(' ', "-");
            assert_eq!(MultiDpuBenchmark::parse(&name), Some(b));
        }
        assert_eq!(MultiDpuBenchmark::parse("unknown"), None);
    }

    #[test]
    fn kmeans_speedup_grows_with_dpu_count() {
        let study = MultiDpuStudy::run(MultiDpuBenchmark::KmeansHc, &[1, 64, 512], 0.02, 5);
        assert_eq!(study.points.len(), 3);
        // A single DPU is far slower than the CPU; adding DPUs increases the
        // input on the CPU side while PIM time stays ~constant, so speed-up
        // must grow monotonically.
        assert!(study.points[0].speedup < study.points[2].speedup);
        assert!(study.points[0].speedup < 1.0, "one DPU must not beat a multicore CPU");
        assert!(study.peak_speedup > 0.0);
        assert!(study.energy_gain > 0.0);
        assert!(study.speedup_table().contains("#DPUs"));
    }

    #[test]
    fn labyrinth_speedup_grows_with_dpu_count() {
        let study = MultiDpuStudy::run(MultiDpuBenchmark::LabyrinthS, &[1, 256], 0.15, 5);
        assert!(study.points[0].speedup < study.points[1].speedup);
        let table = figure8_table(&[study]);
        assert!(table.contains("Labyrinth S"));
    }

    #[test]
    fn shared_cache_memoizes_repeated_plan_cells_with_identical_curves() {
        let cache = SimCache::in_memory();
        let dpus = [1, 64, 512];
        let cold =
            MultiDpuStudy::run_with_cache(MultiDpuBenchmark::KmeansHc, &dpus, 0.02, 5, &cache);
        let after_cold = cache.stats();
        assert_eq!(after_cold.plan_misses, dpus.len() as u64, "one plan per DPU count");
        assert_eq!(after_cold.plan_hits, 0);
        // A second study over the same curve answers every plan from the
        // memo and reproduces the exact same figure.
        let warm =
            MultiDpuStudy::run_with_cache(MultiDpuBenchmark::KmeansHc, &dpus, 0.02, 5, &cache);
        let after_warm = cache.stats();
        assert_eq!(after_warm.plan_misses, dpus.len() as u64);
        assert_eq!(after_warm.plan_hits, dpus.len() as u64);
        // Only the plan-derived PIM side is deterministic: the CPU baseline
        // is measured wall-clock, so `speedup` legitimately varies.
        for (c, w) in cold.points.iter().zip(&warm.points) {
            assert_eq!(c.pim_seconds.to_bits(), w.pim_seconds.to_bits());
        }
        // A different benchmark shares no plan cell.
        MultiDpuStudy::run_with_cache(
            MultiDpuBenchmark::LabyrinthS,
            &[1, 64, 512],
            0.15,
            5,
            &cache,
        );
        assert_eq!(cache.stats().plan_misses, 2 * dpus.len() as u64);
    }
}
