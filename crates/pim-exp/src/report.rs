//! Small plain-text table renderer shared by the experiment binaries.

/// Renders a table with a header row and aligned columns, suitable for
/// terminal output and for pasting into EXPERIMENTS.md.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let columns = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), columns, "row width must match the header");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&render_row(header, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Formats a floating point value with a sensible number of digits for
/// throughput/ratio tables.
pub fn fmt_f64(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 1000.0 {
        format!("{value:.0}")
    } else if value.abs() >= 10.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_complete() {
        let header = vec!["stm".to_string(), "tx/s".to_string()];
        let rows = vec![
            vec!["NOrec".to_string(), "12345".to_string()],
            vec!["Tiny ETLWB".to_string(), "7".to_string()],
        ];
        let table = render_table(&header, &rows);
        assert!(table.contains("NOrec"));
        assert!(table.contains("Tiny ETLWB"));
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].chars().filter(|&c| c == '-').count(), lines[1].len());
    }

    #[test]
    fn float_formatting_is_reasonable() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(42.25), "42.2");
        assert_eq!(fmt_f64(1.5), "1.500");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_are_rejected() {
        render_table(&["a".to_string()], &[vec!["1".to_string(), "2".to_string()]]);
    }
}
