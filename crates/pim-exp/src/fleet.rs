//! The `--fleet` experiment: a *measured* multi-DPU scaling study on the
//! [`pim_fleet`] sharded runtime.
//!
//! Where `--figure fig7` extrapolates one simulated DPU through the
//! analytic [`pim_sim::MultiDpuPlan`], this sweep actually runs N shard
//! simulators behind the fleet's host dispatcher and reports what they
//! measured:
//!
//! * **Scaling curve** — a weak-scaling sweep over DPU counts: every DPU
//!   owns the same keyspace slice and receives the same expected number of
//!   transactions, so the total workload grows with N and ideal throughput
//!   grows linearly. Each point carries the merged fleet
//!   [`pim_stm::ExecProfile`], the per-shard imbalance summary, the
//!   per-primitive transfer ledger and the analytic cross-check total.
//! * **Skew sweep** — the largest fleet of the curve re-run under
//!   increasingly skewed key popularity ([`KeyDist::Zipf`]); because a
//!   round ends when its slowest shard does, the hottest shard's commit
//!   share translates directly into lost fleet throughput, which the
//!   imbalance columns quantify.

use pim_fleet::{run, FleetConfig, FleetReport};
use pim_sim::KeyDist;
use pim_stm::{MetadataPlacement, StmKind};
use pim_workloads::{RoutingPolicy, ShardedWorkloadConfig};

use crate::report::{fmt_f64, render_table};

/// DPU counts of the default scaling curve (three points minimum, up to
/// 256 DPUs).
pub const DEFAULT_FLEET_DPUS: [usize; 4] = [4, 16, 64, 256];

/// Zipfian `theta` values of the default skew sweep (`0.0` = uniform).
pub const DEFAULT_SKEW_THETAS: [f64; 4] = [0.0, 0.6, 0.9, 1.2];

/// Keys every DPU owns at `--scale 1.0` (weak scaling: the keyspace grows
/// with the fleet).
const KEYS_PER_DPU_AT_FULL_SCALE: f64 = 1024.0;

/// Transactions dispatched per DPU at `--scale 1.0`.
const TXNS_PER_DPU_AT_FULL_SCALE: f64 = 256.0;

/// Knobs of one `--fleet` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSweepOptions {
    /// STM design every shard runs.
    pub kind: StmKind,
    /// Metadata placement on every shard.
    pub placement: MetadataPlacement,
    /// Cross-shard routing policy.
    pub routing: RoutingPolicy,
    /// Workload scale factor (`--scale`), shrinking the per-DPU work.
    pub scale: f64,
    /// Stream seed (`--seed`).
    pub seed: u64,
    /// Zipfian `theta` values of the skew sweep; empty skips it.
    pub thetas: Vec<f64>,
}

impl Default for FleetSweepOptions {
    fn default() -> Self {
        FleetSweepOptions {
            kind: StmKind::Norec,
            placement: MetadataPlacement::Mram,
            routing: RoutingPolicy::RouteToOwner,
            scale: 0.25,
            seed: 42,
            thetas: DEFAULT_SKEW_THETAS.to_vec(),
        }
    }
}

/// One point of the scaling curve: a full fleet report at one DPU count.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetScalingPoint {
    /// DPUs in this fleet.
    pub n_dpus: usize,
    /// The measured fleet report.
    pub report: FleetReport,
}

/// One point of the skew sweep: the largest fleet under one `theta`.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSkewPoint {
    /// Zipfian skew parameter (`0.0` = uniform).
    pub theta: f64,
    /// The measured fleet report.
    pub report: FleetReport,
}

/// The full `--fleet` sweep: scaling curve plus skew sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSweep {
    /// The knobs this sweep ran with.
    pub options: FleetSweepOptions,
    /// Keys each DPU owns (after scaling).
    pub keys_per_dpu: u32,
    /// Expected transactions per DPU (after scaling).
    pub txns_per_dpu: u32,
    /// Throughput-vs-DPU-count curve, in ascending DPU order.
    pub scaling: Vec<FleetScalingPoint>,
    /// Skew sweep at the curve's largest DPU count, in ascending `theta`
    /// order.
    pub skew: Vec<FleetSkewPoint>,
}

impl FleetSweep {
    /// Runs the scaling curve over `dpus` and the skew sweep at
    /// `dpus.iter().max()`.
    ///
    /// # Panics
    ///
    /// Panics if `dpus` is empty or contains a zero.
    pub fn run(dpus: &[usize], options: FleetSweepOptions) -> Self {
        assert!(!dpus.is_empty(), "--fleet needs at least one DPU count");
        let keys_per_dpu = (KEYS_PER_DPU_AT_FULL_SCALE * options.scale).round().max(32.0) as u32;
        let txns_per_dpu = (TXNS_PER_DPU_AT_FULL_SCALE * options.scale).round().max(16.0) as u32;
        let mut counts = dpus.to_vec();
        counts.sort_unstable();
        counts.dedup();
        let config = |n: usize, dist: KeyDist| {
            let workload =
                ShardedWorkloadConfig::new(keys_per_dpu * n as u32, txns_per_dpu * n as u32)
                    .with_dist(dist);
            FleetConfig {
                kind: options.kind,
                placement: options.placement,
                seed: options.seed,
                ..FleetConfig::new(n, workload)
            }
            .with_routing(options.routing)
        };
        let scaling = counts
            .iter()
            .map(|&n| FleetScalingPoint { n_dpus: n, report: run(&config(n, KeyDist::Uniform)) })
            .collect();
        let largest = *counts.last().expect("counts is non-empty");
        let skew = options
            .thetas
            .iter()
            .map(|&theta| {
                let dist = if theta == 0.0 { KeyDist::Uniform } else { KeyDist::Zipf { theta } };
                FleetSkewPoint { theta, report: run(&config(largest, dist)) }
            })
            .collect();
        FleetSweep { options, keys_per_dpu, txns_per_dpu, scaling, skew }
    }

    /// The throughput-vs-DPU-count curve with the imbalance summary and
    /// the analytic cross-check column.
    pub fn scaling_table(&self) -> String {
        let header: Vec<String> = [
            "DPUs",
            "txns",
            "sub-txns",
            "commits",
            "rejected",
            "rounds",
            "makespan [s]",
            "tx/s",
            "analytic [s]",
            "max/mean commits",
            "cv busy",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let rows: Vec<Vec<String>> = self
            .scaling
            .iter()
            .map(|p| {
                let r = &p.report;
                vec![
                    p.n_dpus.to_string(),
                    r.global_txns.to_string(),
                    r.dispatched_subtxns.to_string(),
                    r.total_commits.to_string(),
                    r.total_rejected.to_string(),
                    r.rounds.len().to_string(),
                    fmt_f64(r.makespan_seconds),
                    fmt_f64(r.throughput_tx_per_sec()),
                    fmt_f64(r.analytic_total_seconds()),
                    fmt_f64(r.imbalance.max_over_mean_commits),
                    fmt_f64(r.imbalance.cv_busy),
                ]
            })
            .collect();
        format!(
            "fleet scaling ({}, {}, {} keys + {} txns per DPU, seed {})\n{}",
            self.options.kind.name(),
            self.options.routing,
            self.keys_per_dpu,
            self.txns_per_dpu,
            self.options.seed,
            render_table(&header, &rows)
        )
    }

    /// The merged fleet execution profile at every DPU count (same schema
    /// as a single-DPU profile table, summed over the fleet).
    pub fn profile_table(&self) -> String {
        let header: Vec<String> = [
            "DPUs",
            "commits",
            "aborts",
            "abort rate",
            "DMA setups",
            "DMA words",
            "total [cyc]",
            "barrier [s]",
            "transfer [s]",
            "host [s]",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let rows: Vec<Vec<String>> = self
            .scaling
            .iter()
            .map(|p| {
                let r = &p.report;
                vec![
                    p.n_dpus.to_string(),
                    r.profile.commits().to_string(),
                    r.profile.aborts().to_string(),
                    fmt_f64(r.profile.abort_rate()),
                    r.profile.dma_setups().to_string(),
                    r.profile.dma_words().to_string(),
                    r.profile.total_time().to_string(),
                    fmt_f64(r.dpu_barrier_seconds()),
                    fmt_f64(r.ledger.total_seconds()),
                    fmt_f64(r.host_seconds()),
                ]
            })
            .collect();
        format!("fleet merged profiles\n{}", render_table(&header, &rows))
    }

    /// The skew sweep at the largest fleet: how zipfian key popularity
    /// concentrates commits and stretches the barrier.
    pub fn skew_table(&self) -> String {
        let n = self.scaling.last().map_or(0, |p| p.n_dpus);
        let header: Vec<String> = [
            "theta",
            "commits",
            "rejected",
            "makespan [s]",
            "tx/s",
            "hottest shard",
            "hottest share",
            "max/mean commits",
            "cv commits",
            "cv busy",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let rows: Vec<Vec<String>> = self
            .skew
            .iter()
            .map(|p| {
                let r = &p.report;
                vec![
                    fmt_f64(p.theta),
                    r.total_commits.to_string(),
                    r.total_rejected.to_string(),
                    fmt_f64(r.makespan_seconds),
                    fmt_f64(r.throughput_tx_per_sec()),
                    r.imbalance.hottest_shard.to_string(),
                    fmt_f64(r.imbalance.hottest_commit_share),
                    fmt_f64(r.imbalance.max_over_mean_commits),
                    fmt_f64(r.imbalance.cv_commits),
                    fmt_f64(r.imbalance.cv_busy),
                ]
            })
            .collect();
        format!("fleet skew sweep ({n} DPUs)\n{}", render_table(&header, &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> FleetSweepOptions {
        FleetSweepOptions { scale: 0.05, thetas: vec![0.0, 1.2], ..FleetSweepOptions::default() }
    }

    #[test]
    fn weak_scaling_grows_throughput_with_the_fleet() {
        let sweep = FleetSweep::run(&[2, 8], tiny_options());
        assert_eq!(sweep.scaling.len(), 2);
        let small = &sweep.scaling[0].report;
        let large = &sweep.scaling[1].report;
        // Weak scaling: four times the DPUs, four times the stream.
        assert_eq!(large.global_txns, 4 * small.global_txns);
        assert!(
            large.throughput_tx_per_sec() > small.throughput_tx_per_sec(),
            "more DPUs must commit more per modeled second ({} vs {})",
            large.throughput_tx_per_sec(),
            small.throughput_tx_per_sec()
        );
    }

    #[test]
    fn skew_points_run_at_the_largest_fleet() {
        let sweep = FleetSweep::run(&[8, 2], tiny_options());
        assert_eq!(sweep.skew.len(), 2);
        for point in &sweep.skew {
            assert_eq!(point.report.n_dpus, 8, "skew sweeps the largest count");
        }
        let uniform = &sweep.skew[0].report;
        let skewed = &sweep.skew[1].report;
        assert!(skewed.imbalance.cv_commits > uniform.imbalance.cv_commits);
    }

    #[test]
    fn tables_render_every_point() {
        let sweep = FleetSweep::run(&[2, 4], tiny_options());
        let scaling = sweep.scaling_table();
        assert!(scaling.contains("fleet scaling"));
        assert!(scaling.contains("analytic [s]"));
        let profile = sweep.profile_table();
        assert!(profile.contains("DMA setups"));
        let skew = sweep.skew_table();
        assert!(skew.contains("hottest share"));
        assert!(skew.contains("4 DPUs"));
    }

    #[test]
    #[should_panic(expected = "at least one DPU count")]
    fn an_empty_curve_is_rejected() {
        FleetSweep::run(&[], tiny_options());
    }
}
