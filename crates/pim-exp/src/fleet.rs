//! The `--fleet` experiment: a *measured* multi-DPU scaling study on the
//! [`pim_fleet`] sharded runtime.
//!
//! Where `--figure fig7` extrapolates one simulated DPU through the
//! analytic [`pim_sim::MultiDpuPlan`], this sweep actually runs N shard
//! simulators behind the fleet's host dispatcher and reports what they
//! measured:
//!
//! * **Scaling curve** — a weak-scaling sweep over DPU counts: every DPU
//!   owns the same keyspace slice and receives the same expected number of
//!   transactions, so the total workload grows with N and ideal throughput
//!   grows linearly. Each point carries the merged fleet
//!   [`pim_stm::ExecProfile`], the per-shard imbalance summary, the
//!   per-primitive transfer ledger and the analytic cross-check total.
//! * **Skew sweep** — the largest fleet of the curve re-run under
//!   increasingly skewed key popularity ([`KeyDist::Zipf`]); because a
//!   round ends when its slowest shard does, the hottest shard's commit
//!   share translates directly into lost fleet throughput, which the
//!   imbalance columns quantify. With `--rebalance` each skew point also
//!   runs the static-partition baseline, so the table shows the
//!   throughput the recut *recovered*; with `--overlap` the pipeline
//!   panel shows the barrier seconds the double-buffered rounds hid.
//!
//! `--repeat N` re-runs every fleet under seeds `seed..seed+N`, keeps the
//! (lower-)median-makespan run as the representative and reports
//! mean ± 95 % CI spread columns, the same statistic single-DPU cells
//! use.

use pim_fleet::{run, FleetConfig, FleetReport, RebalancePolicy};
use pim_sim::KeyDist;
use pim_stm::{MetadataPlacement, StmKind, TunePolicy};
use pim_workloads::{RoutingPolicy, ShardedWorkloadConfig};

use crate::design_space::{mean_ci95, repeat_seed};
use crate::pool::WorkerPool;
use crate::report::{fmt_f64, render_table};

/// DPU counts of the default scaling curve (three points minimum, up to
/// 256 DPUs).
pub const DEFAULT_FLEET_DPUS: [usize; 4] = [4, 16, 64, 256];

/// Zipfian `theta` values of the default skew sweep (`0.0` = uniform).
pub const DEFAULT_SKEW_THETAS: [f64; 4] = [0.0, 0.6, 0.9, 1.2];

/// Keys every DPU owns at `--scale 1.0` (weak scaling: the keyspace grows
/// with the fleet).
const KEYS_PER_DPU_AT_FULL_SCALE: f64 = 1024.0;

/// Transactions dispatched per DPU at `--scale 1.0`.
const TXNS_PER_DPU_AT_FULL_SCALE: f64 = 256.0;

/// Knobs of one `--fleet` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSweepOptions {
    /// STM design every shard runs.
    pub kind: StmKind,
    /// Metadata placement on every shard.
    pub placement: MetadataPlacement,
    /// Cross-shard routing policy.
    pub routing: RoutingPolicy,
    /// Workload scale factor (`--scale`), shrinking the per-DPU work.
    pub scale: f64,
    /// Stream seed (`--seed`).
    pub seed: u64,
    /// Zipfian `theta` values of the skew sweep; empty skips it.
    pub thetas: Vec<f64>,
    /// Rebalance policy every fleet runs under (`--rebalance`).
    pub rebalance: RebalancePolicy,
    /// Double-buffered round pipeline (`--overlap`).
    pub overlap: bool,
    /// Runs per point under consecutive seeds (`--repeat`); the
    /// median-makespan run is kept as the representative.
    pub repeat: usize,
    /// Phases of the skewed stream (`--skew-phases`): with more than one,
    /// the hot region rotates through the keyspace mid-stream, which is
    /// the moving target rebalancing exists to chase.
    pub phases: u32,
    /// Online-tuning policy every shard's tasklets run under (`--tune`;
    /// default static). Each shard DPU tunes independently and its tuner
    /// state persists across that shard's rounds.
    pub tune: TunePolicy,
}

impl Default for FleetSweepOptions {
    fn default() -> Self {
        FleetSweepOptions {
            kind: StmKind::Norec,
            placement: MetadataPlacement::Mram,
            routing: RoutingPolicy::RouteToOwner,
            scale: 0.25,
            seed: 42,
            thetas: DEFAULT_SKEW_THETAS.to_vec(),
            rebalance: RebalancePolicy::Off,
            overlap: false,
            repeat: 1,
            phases: 1,
            tune: TunePolicy::Static,
        }
    }
}

/// Mean ± 95 % CI spread over the repeated runs of one fleet point (the
/// fleet counterpart of the single-DPU `RepeatSpread`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSpread {
    /// How many seeds the point was run under.
    pub runs: usize,
    /// Smallest makespan across the runs, in seconds.
    pub min_makespan_seconds: f64,
    /// Mean makespan across the runs, in seconds.
    pub mean_makespan_seconds: f64,
    /// Largest makespan across the runs, in seconds.
    pub max_makespan_seconds: f64,
    /// Half-width of the 95 % CI of the mean makespan (Student's t).
    pub ci95_makespan_seconds: f64,
    /// Mean throughput across the runs, in committed tx/s.
    pub mean_tx_per_sec: f64,
    /// Half-width of the 95 % CI of the mean throughput.
    pub ci95_tx_per_sec: f64,
}

/// One point of the scaling curve: a full fleet report at one DPU count.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetScalingPoint {
    /// DPUs in this fleet.
    pub n_dpus: usize,
    /// The measured fleet report (median-makespan run under `--repeat`).
    pub report: FleetReport,
    /// Repeat spread; `None` for a single run.
    pub spread: Option<FleetSpread>,
}

/// One point of the skew sweep: the largest fleet under one `theta`.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSkewPoint {
    /// Zipfian skew parameter (`0.0` = uniform).
    pub theta: f64,
    /// The measured fleet report (median-makespan run under `--repeat`).
    pub report: FleetReport,
    /// Repeat spread; `None` for a single run.
    pub spread: Option<FleetSpread>,
    /// The static-partition baseline of the same point, run only when
    /// rebalancing is enabled — the "recovered throughput" reference.
    pub baseline: Option<FleetReport>,
}

impl FleetSkewPoint {
    /// Committed tx/s this point gained over its static baseline
    /// (`None` without a baseline).
    pub fn recovered_tx_per_sec(&self) -> Option<f64> {
        self.baseline
            .as_ref()
            .map(|b| self.report.throughput_tx_per_sec() - b.throughput_tx_per_sec())
    }

    /// First round whose cumulative throughput overtakes the static
    /// baseline's — the round where the migration paid for itself.
    /// `None` without a baseline or if the adaptive run never catches up.
    pub fn break_even_round(&self) -> Option<usize> {
        let baseline = self.baseline.as_ref()?;
        let adaptive = self.report.cumulative_throughput_series();
        let static_ = baseline.cumulative_throughput_series();
        adaptive.iter().zip(&static_).position(|(a, s)| a >= s)
    }
}

/// Collapses one fleet point's `repeat` runs (consecutive seeds, already
/// executed) into the (lower-)median-makespan run plus the spread
/// (`None` for one run).
fn collapse_runs(mut reports: Vec<FleetReport>) -> (FleetReport, Option<FleetSpread>) {
    let repeat = reports.len();
    let spread = (repeat > 1).then(|| {
        let makespans: Vec<f64> = reports.iter().map(|r| r.makespan_seconds).collect();
        let rates: Vec<f64> = reports.iter().map(FleetReport::throughput_tx_per_sec).collect();
        let (mean_makespan_seconds, ci95_makespan_seconds) = mean_ci95(&makespans);
        let (mean_tx_per_sec, ci95_tx_per_sec) = mean_ci95(&rates);
        FleetSpread {
            runs: repeat,
            min_makespan_seconds: makespans.iter().copied().fold(f64::INFINITY, f64::min),
            mean_makespan_seconds,
            max_makespan_seconds: makespans.iter().copied().fold(0.0, f64::max),
            ci95_makespan_seconds,
            mean_tx_per_sec,
            ci95_tx_per_sec,
        }
    });
    // Lower median, same convention as single-DPU cells: for an even
    // repeat count keep the faster middle run.
    let mut order: Vec<usize> = (0..reports.len()).collect();
    order.sort_by(|&a, &b| {
        reports[a]
            .makespan_seconds
            .partial_cmp(&reports[b].makespan_seconds)
            .expect("makespans are finite")
    });
    let keep = order[(order.len() - 1) / 2];
    (reports.swap_remove(keep), spread)
}

/// The full `--fleet` sweep: scaling curve plus skew sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSweep {
    /// The knobs this sweep ran with.
    pub options: FleetSweepOptions,
    /// Keys each DPU owns (after scaling).
    pub keys_per_dpu: u32,
    /// Expected transactions per DPU (after scaling).
    pub txns_per_dpu: u32,
    /// Throughput-vs-DPU-count curve, in ascending DPU order.
    pub scaling: Vec<FleetScalingPoint>,
    /// Skew sweep at the curve's largest DPU count, in ascending `theta`
    /// order.
    pub skew: Vec<FleetSkewPoint>,
}

impl FleetSweep {
    /// Runs the scaling curve over `dpus` and the skew sweep at
    /// `dpus.iter().max()`.
    ///
    /// # Panics
    ///
    /// Panics if `dpus` is empty or contains a zero.
    pub fn run(dpus: &[usize], options: FleetSweepOptions) -> Self {
        Self::run_with(dpus, options, &WorkerPool::default())
    }

    /// Runs the sweep on an explicit worker pool (the `--workers` entry
    /// point): every fleet run — each scaling point, each skew point, the
    /// static baselines, every `--repeat` iteration — fans out as one
    /// independent job, and results regroup in enumeration order, so the
    /// sweep is bit-identical for any worker count.
    ///
    /// The pool's thread budget is shared with the shard workers *inside*
    /// each point: every job's [`FleetConfig::with_host_workers`] quota is
    /// [`WorkerPool::inner_budget`], so concurrent points × shard workers
    /// never exceed `pool.workers()` (`host_workers` affects wall-clock
    /// only, never results).
    ///
    /// # Panics
    ///
    /// Panics as [`FleetSweep::run`] does.
    pub fn run_with(dpus: &[usize], options: FleetSweepOptions, pool: &WorkerPool) -> Self {
        assert!(!dpus.is_empty(), "--fleet needs at least one DPU count");
        let keys_per_dpu = (KEYS_PER_DPU_AT_FULL_SCALE * options.scale).round().max(32.0) as u32;
        let txns_per_dpu = (TXNS_PER_DPU_AT_FULL_SCALE * options.scale).round().max(16.0) as u32;
        let mut counts = dpus.to_vec();
        counts.sort_unstable();
        counts.dedup();
        let config = |n: usize, dist: KeyDist| {
            let workload =
                ShardedWorkloadConfig::new(keys_per_dpu * n as u32, txns_per_dpu * n as u32)
                    .with_dist(dist)
                    .with_phases(options.phases);
            FleetConfig {
                kind: options.kind,
                placement: options.placement,
                seed: options.seed,
                ..FleetConfig::new(n, workload)
            }
            .with_routing(options.routing)
            .with_rebalance(options.rebalance)
            .with_overlap(options.overlap)
            .with_tune(options.tune)
        };
        let repeat = options.repeat.max(1);
        let largest = *counts.last().expect("counts is non-empty");
        // Flatten every fleet run into one job list: scaling points, then
        // per-theta adaptive runs and (with rebalancing) their static
        // baselines, each × `repeat` consecutive seeds. Seeds come from
        // the job spec, never from execution order.
        let mut jobs: Vec<FleetConfig> = Vec::new();
        let push_repeats = |jobs: &mut Vec<FleetConfig>, base: FleetConfig| {
            jobs.extend(
                (0..repeat).map(|i| FleetConfig { seed: repeat_seed(base.seed, i), ..base }),
            );
        };
        for &n in &counts {
            push_repeats(&mut jobs, config(n, KeyDist::Uniform));
        }
        for &theta in &options.thetas {
            let dist = if theta == 0.0 { KeyDist::Uniform } else { KeyDist::Zipf { theta } };
            let adaptive = config(largest, dist);
            push_repeats(&mut jobs, adaptive);
            if options.rebalance.is_enabled() {
                push_repeats(&mut jobs, adaptive.with_rebalance(RebalancePolicy::Off));
            }
        }
        // One thread budget: concurrent points × per-point shard workers
        // stays within the pool.
        let host_workers = pool.inner_budget(jobs.len());
        let mut reports =
            pool.run(jobs, |_, job| run(&job.with_host_workers(host_workers))).into_iter();
        let next_group = |reports: &mut std::vec::IntoIter<FleetReport>| -> Vec<FleetReport> {
            reports.by_ref().take(repeat).collect()
        };
        let scaling = counts
            .iter()
            .map(|&n| {
                let (report, spread) = collapse_runs(next_group(&mut reports));
                FleetScalingPoint { n_dpus: n, report, spread }
            })
            .collect();
        let skew = options
            .thetas
            .iter()
            .map(|&theta| {
                let (report, spread) = collapse_runs(next_group(&mut reports));
                let baseline = options
                    .rebalance
                    .is_enabled()
                    .then(|| collapse_runs(next_group(&mut reports)).0);
                FleetSkewPoint { theta, report, spread, baseline }
            })
            .collect();
        FleetSweep { options, keys_per_dpu, txns_per_dpu, scaling, skew }
    }

    /// Whether the sweep carries repeat spreads.
    pub fn has_spread(&self) -> bool {
        self.scaling.iter().any(|p| p.spread.is_some())
            || self.skew.iter().any(|p| p.spread.is_some())
    }

    /// The throughput-vs-DPU-count curve with the imbalance summary and
    /// the analytic cross-check column. With `--repeat`, mean ± 95 % CI
    /// spread columns are appended.
    pub fn scaling_table(&self) -> String {
        let mut header: Vec<String> = [
            "DPUs",
            "txns",
            "sub-txns",
            "commits",
            "rejected",
            "rounds",
            "makespan [s]",
            "tx/s",
            "analytic [s]",
            "max/mean commits",
            "cv busy",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        if self.has_spread() {
            header.extend(
                ["mean tx/s", "ci95 tx/s", "mean makespan [s]", "ci95 [s]"]
                    .iter()
                    .map(|s| s.to_string()),
            );
        }
        let rows: Vec<Vec<String>> = self
            .scaling
            .iter()
            .map(|p| {
                let r = &p.report;
                let mut row = vec![
                    p.n_dpus.to_string(),
                    r.global_txns.to_string(),
                    r.dispatched_subtxns.to_string(),
                    r.total_commits.to_string(),
                    r.total_rejected.to_string(),
                    r.rounds.len().to_string(),
                    fmt_f64(r.makespan_seconds),
                    fmt_f64(r.throughput_tx_per_sec()),
                    fmt_f64(r.analytic_total_seconds()),
                    fmt_f64(r.imbalance.max_over_mean_commits),
                    fmt_f64(r.imbalance.cv_busy),
                ];
                if self.has_spread() {
                    match &p.spread {
                        Some(s) => row.extend([
                            fmt_f64(s.mean_tx_per_sec),
                            fmt_f64(s.ci95_tx_per_sec),
                            fmt_f64(s.mean_makespan_seconds),
                            fmt_f64(s.ci95_makespan_seconds),
                        ]),
                        None => row.extend(["-"; 4].map(String::from)),
                    }
                }
                row
            })
            .collect();
        format!(
            "fleet scaling ({}, {}, {} keys + {} txns per DPU, seed {}{}{})\n{}",
            self.options.kind.name(),
            self.options.routing,
            self.keys_per_dpu,
            self.txns_per_dpu,
            self.options.seed,
            if self.options.repeat > 1 {
                format!(", repeat {}", self.options.repeat)
            } else {
                String::new()
            },
            if self.options.tune != TunePolicy::Static {
                format!(", tune {}", self.options.tune)
            } else {
                String::new()
            },
            render_table(&header, &rows)
        )
    }

    /// The online-tuning panel (`--tune`): per scaling point, how many
    /// signal windows the fleet's tasklets evaluated, how many knob
    /// switches they applied, and a representative shard's settled knob
    /// values. Rendered only when tuning is on.
    pub fn tuning_table(&self) -> String {
        let header: Vec<String> =
            ["DPUs", "tune windows", "switches", "settled knobs (hottest shard)"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let rows: Vec<Vec<String>> = self
            .scaling
            .iter()
            .map(|p| {
                let r = &p.report;
                let knobs = r
                    .shards
                    .get(r.imbalance.hottest_shard as usize)
                    .and_then(|s| s.tuned_knobs)
                    .map_or_else(
                        || "-".to_string(),
                        |k| {
                            format!(
                                "retry={} read={} burst={} order={}",
                                k.retry.name(),
                                k.read_strategy.name(),
                                k.max_burst_words,
                                k.lock_order.name()
                            )
                        },
                    );
                vec![
                    p.n_dpus.to_string(),
                    r.profile.core.tune_windows.to_string(),
                    r.profile.core.tune_switches.to_string(),
                    knobs,
                ]
            })
            .collect();
        format!("fleet online tuning ({})\n{}", self.options.tune, render_table(&header, &rows))
    }

    /// The merged fleet execution profile at every DPU count (same schema
    /// as a single-DPU profile table, summed over the fleet).
    pub fn profile_table(&self) -> String {
        let header: Vec<String> = [
            "DPUs",
            "commits",
            "aborts",
            "abort rate",
            "DMA setups",
            "DMA words",
            "total [cyc]",
            "barrier [s]",
            "transfer [s]",
            "host [s]",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let rows: Vec<Vec<String>> = self
            .scaling
            .iter()
            .map(|p| {
                let r = &p.report;
                vec![
                    p.n_dpus.to_string(),
                    r.profile.commits().to_string(),
                    r.profile.aborts().to_string(),
                    fmt_f64(r.profile.abort_rate()),
                    r.profile.dma_setups().to_string(),
                    r.profile.dma_words().to_string(),
                    r.profile.total_time().to_string(),
                    fmt_f64(r.dpu_barrier_seconds()),
                    fmt_f64(r.ledger.total_seconds()),
                    fmt_f64(r.host_seconds()),
                ]
            })
            .collect();
        format!("fleet merged profiles\n{}", render_table(&header, &rows))
    }

    /// The skew sweep at the largest fleet: how zipfian key popularity
    /// concentrates commits and stretches the barrier. With `--rebalance`
    /// each row also shows the static-partition baseline and the
    /// throughput the recut recovered; with `--repeat`, the tx/s
    /// mean ± 95 % CI.
    pub fn skew_table(&self) -> String {
        let n = self.scaling.last().map_or(0, |p| p.n_dpus);
        let rebalancing = self.options.rebalance.is_enabled();
        let mut header: Vec<String> = [
            "theta",
            "commits",
            "rejected",
            "makespan [s]",
            "tx/s",
            "hottest shard",
            "hottest share",
            "max/mean commits",
            "cv commits",
            "cv busy",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        if rebalancing {
            header.extend(
                ["rebalances", "migrated keys", "static tx/s", "recovered tx/s", "break-even rnd"]
                    .iter()
                    .map(|s| s.to_string()),
            );
        }
        if self.has_spread() {
            header.extend(["mean tx/s", "ci95 tx/s"].iter().map(|s| s.to_string()));
        }
        let rows: Vec<Vec<String>> =
            self.skew
                .iter()
                .map(|p| {
                    let r = &p.report;
                    let mut row = vec![
                        fmt_f64(p.theta),
                        r.total_commits.to_string(),
                        r.total_rejected.to_string(),
                        fmt_f64(r.makespan_seconds),
                        fmt_f64(r.throughput_tx_per_sec()),
                        r.imbalance.hottest_shard.to_string(),
                        fmt_f64(r.imbalance.hottest_commit_share),
                        fmt_f64(r.imbalance.max_over_mean_commits),
                        fmt_f64(r.imbalance.cv_commits),
                        fmt_f64(r.imbalance.cv_busy),
                    ];
                    if rebalancing {
                        row.push(r.rebalance.rebalances.to_string());
                        row.push(r.rebalance.migrated_keys.to_string());
                        row.push(p.baseline.as_ref().map_or_else(
                            || "-".to_string(),
                            |b| fmt_f64(b.throughput_tx_per_sec()),
                        ));
                        row.push(p.recovered_tx_per_sec().map_or_else(|| "-".to_string(), fmt_f64));
                        row.push(
                            p.break_even_round().map_or_else(|| "-".to_string(), |r| r.to_string()),
                        );
                    }
                    if self.has_spread() {
                        match &p.spread {
                            Some(s) => {
                                row.extend([fmt_f64(s.mean_tx_per_sec), fmt_f64(s.ci95_tx_per_sec)])
                            }
                            None => row.extend(["-"; 2].map(String::from)),
                        }
                    }
                    row
                })
                .collect();
        format!("fleet skew sweep ({n} DPUs)\n{}", render_table(&header, &rows))
    }

    /// The pipeline panel: per scaling point, how many rounds overlapped
    /// and how many transfer seconds the double buffering hid vs exposed.
    pub fn pipeline_table(&self) -> String {
        let header: Vec<String> = [
            "DPUs",
            "rounds",
            "overlapped",
            "stalled",
            "hidden [s]",
            "exposed pre [s]",
            "makespan [s]",
            "analytic [s]",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let rows: Vec<Vec<String>> = self
            .scaling
            .iter()
            .map(|p| {
                let r = &p.report;
                vec![
                    p.n_dpus.to_string(),
                    r.rounds.len().to_string(),
                    r.pipeline.overlapped_rounds.to_string(),
                    r.pipeline.stalled_rounds.to_string(),
                    fmt_f64(r.pipeline.hidden_seconds),
                    fmt_f64(r.pipeline.exposed_pre_seconds),
                    fmt_f64(r.makespan_seconds),
                    fmt_f64(r.analytic_total_seconds()),
                ]
            })
            .collect();
        format!("fleet round pipeline (overlap on)\n{}", render_table(&header, &rows))
    }

    /// The rebalance break-even panel: the per-round cumulative
    /// throughput of the most skewed point, adaptive vs static — making
    /// the round where the migration paid for itself visible.
    pub fn rebalance_rounds_table(&self) -> Option<String> {
        let point = self
            .skew
            .iter()
            .filter(|p| p.baseline.is_some())
            .max_by(|a, b| a.theta.partial_cmp(&b.theta).expect("thetas are finite"))?;
        let baseline = point.baseline.as_ref()?;
        let adaptive = point.report.cumulative_throughput_series();
        let static_ = baseline.cumulative_throughput_series();
        let header: Vec<String> = ["round", "migrated keys", "adaptive tx/s", "static tx/s"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let rows: Vec<Vec<String>> = adaptive
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                vec![
                    i.to_string(),
                    point.report.rounds[i].migrated_keys.to_string(),
                    fmt_f64(a),
                    static_.get(i).map_or_else(|| "-".to_string(), |&s| fmt_f64(s)),
                ]
            })
            .collect();
        Some(format!(
            "rebalance break-even at theta {} ({} migrations, {} keys, {} bytes; break-even round {})\n{}",
            point.theta,
            point.report.rebalance.rebalances,
            point.report.rebalance.migrated_keys,
            point.report.rebalance.migration_bytes,
            point.break_even_round().map_or_else(|| "-".to_string(), |r| r.to_string()),
            render_table(&header, &rows)
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> FleetSweepOptions {
        FleetSweepOptions { scale: 0.05, thetas: vec![0.0, 1.2], ..FleetSweepOptions::default() }
    }

    #[test]
    fn weak_scaling_grows_throughput_with_the_fleet() {
        let sweep = FleetSweep::run(&[2, 8], tiny_options());
        assert_eq!(sweep.scaling.len(), 2);
        let small = &sweep.scaling[0].report;
        let large = &sweep.scaling[1].report;
        // Weak scaling: four times the DPUs, four times the stream.
        assert_eq!(large.global_txns, 4 * small.global_txns);
        assert!(
            large.throughput_tx_per_sec() > small.throughput_tx_per_sec(),
            "more DPUs must commit more per modeled second ({} vs {})",
            large.throughput_tx_per_sec(),
            small.throughput_tx_per_sec()
        );
    }

    #[test]
    fn skew_points_run_at_the_largest_fleet() {
        let sweep = FleetSweep::run(&[8, 2], tiny_options());
        assert_eq!(sweep.skew.len(), 2);
        for point in &sweep.skew {
            assert_eq!(point.report.n_dpus, 8, "skew sweeps the largest count");
        }
        let uniform = &sweep.skew[0].report;
        let skewed = &sweep.skew[1].report;
        assert!(skewed.imbalance.cv_commits > uniform.imbalance.cv_commits);
    }

    /// The `--workers` acceptance criterion for the fleet: the whole sweep
    /// — scaling points, skew points, repeats — is equal report for report
    /// under any worker count, even though the inner per-shard host-worker
    /// quota differs between the two pools.
    #[test]
    fn fleet_sweeps_are_bit_identical_for_any_worker_count() {
        let options = FleetSweepOptions { repeat: 2, ..tiny_options() };
        let serial = FleetSweep::run_with(&[2, 4], options.clone(), &WorkerPool::serial());
        let wide = FleetSweep::run_with(&[2, 4], options, &WorkerPool::new(8));
        assert_eq!(serial, wide, "worker count must never change a measured fleet number");
    }

    /// The oversubscription regression: a fleet point running as one of
    /// the pool's jobs must get a shard-worker quota that keeps
    /// `concurrent points × shard workers ≤ pool budget` — the arithmetic
    /// `run_with` applies, pinned here against every awkward shape,
    /// including the quota's pass-through into [`pim_fleet`]'s resolver.
    #[test]
    fn fleet_points_under_the_pool_never_oversubscribe_the_budget() {
        for (workers, jobs) in [(8, 3), (8, 16), (4, 1), (1, 5), (6, 4), (16, 2)] {
            let pool = WorkerPool::new(workers);
            let inner = pool.inner_budget(jobs);
            assert!(inner >= 1, "every point gets at least one shard worker");
            let concurrent = pool.workers().min(jobs);
            assert!(
                concurrent * inner <= pool.workers(),
                "{workers} workers × {jobs} jobs: {concurrent} concurrent points × \
                 {inner} shard workers would oversubscribe"
            );
            // The quota reaches the fleet runtime verbatim — an explicit
            // (non-zero) host_workers is never re-widened to all cores.
            assert_eq!(pim_fleet::resolve_host_workers(inner), inner);
        }
        // The unpooled default stays "all cores".
        assert!(pim_fleet::resolve_host_workers(0) >= 1);
    }

    #[test]
    fn tables_render_every_point() {
        let sweep = FleetSweep::run(&[2, 4], tiny_options());
        let scaling = sweep.scaling_table();
        assert!(scaling.contains("fleet scaling"));
        assert!(scaling.contains("analytic [s]"));
        let profile = sweep.profile_table();
        assert!(profile.contains("DMA setups"));
        let skew = sweep.skew_table();
        assert!(skew.contains("hottest share"));
        assert!(skew.contains("4 DPUs"));
    }

    #[test]
    #[should_panic(expected = "at least one DPU count")]
    fn an_empty_curve_is_rejected() {
        FleetSweep::run(&[], tiny_options());
    }

    #[test]
    fn repeat_produces_spread_columns_and_a_median_representative() {
        let sweep = FleetSweep::run(&[2], FleetSweepOptions { repeat: 3, ..tiny_options() });
        assert!(sweep.has_spread());
        let point = &sweep.scaling[0];
        let spread = point.spread.expect("repeat > 1 must carry a spread");
        assert_eq!(spread.runs, 3);
        assert!(spread.min_makespan_seconds <= spread.mean_makespan_seconds);
        assert!(spread.mean_makespan_seconds <= spread.max_makespan_seconds);
        assert!(spread.ci95_makespan_seconds >= 0.0);
        // The representative is one of the actual runs (its makespan lies
        // inside the spread).
        assert!(point.report.makespan_seconds >= spread.min_makespan_seconds);
        assert!(point.report.makespan_seconds <= spread.max_makespan_seconds);
        assert!(sweep.scaling_table().contains("ci95 tx/s"));
        assert!(sweep.skew_table().contains("mean tx/s"));
        // A single-run sweep has no spread and no spread columns.
        let single = FleetSweep::run(&[2], tiny_options());
        assert!(!single.has_spread());
        assert!(single.scaling[0].spread.is_none());
        assert!(!single.scaling_table().contains("ci95"));
    }

    #[test]
    fn rebalancing_skew_points_carry_a_baseline_and_recovery() {
        let sweep = FleetSweep::run(
            &[8],
            FleetSweepOptions {
                rebalance: RebalancePolicy::Threshold { max_over_mean: 1.25 },
                ..tiny_options()
            },
        );
        let skewed = sweep.skew.last().expect("theta 1.2 point");
        let baseline = skewed.baseline.as_ref().expect("rebalance points run a static baseline");
        assert_eq!(baseline.rebalance.rebalances, 0);
        assert!(skewed.report.rebalance.rebalances > 0);
        assert_eq!(skewed.report.fingerprint, baseline.fingerprint, "same results either way");
        assert!(
            skewed.recovered_tx_per_sec().expect("baseline present") > 0.0,
            "recut must beat the static partition under skew"
        );
        assert!(sweep.skew_table().contains("recovered tx/s"));
        let rounds = sweep.rebalance_rounds_table().expect("baseline present");
        assert!(rounds.contains("break-even"));
        // Without rebalancing there is no baseline and no rounds panel.
        let plain = FleetSweep::run(&[2], tiny_options());
        assert!(plain.skew.iter().all(|p| p.baseline.is_none()));
        assert!(plain.rebalance_rounds_table().is_none());
        assert!(!plain.skew_table().contains("recovered"));
    }

    #[test]
    fn overlap_fills_the_pipeline_panel() {
        let sweep = FleetSweep::run(&[4], FleetSweepOptions { overlap: true, ..tiny_options() });
        let report = &sweep.scaling[0].report;
        assert!(report.pipeline.enabled);
        assert!(report.pipeline.hidden_seconds > 0.0);
        let panel = sweep.pipeline_table();
        assert!(panel.contains("hidden [s]"));
        assert!(panel.contains("overlapped"));
    }

    #[test]
    fn phased_streams_move_the_hot_shard() {
        let options = FleetSweepOptions { thetas: vec![1.2], ..tiny_options() };
        let stationary = FleetSweep::run(&[8], options.clone());
        let phased = FleetSweep::run(&[8], FleetSweepOptions { phases: 2, ..options });
        // Phase 1 rotates the zipf head to mid-keyspace, so the commit
        // mass no longer concentrates on shard 0 alone.
        assert_eq!(stationary.skew[0].report.imbalance.hottest_shard, 0);
        assert!(
            phased.skew[0].report.imbalance.hottest_commit_share
                < stationary.skew[0].report.imbalance.hottest_commit_share,
            "rotating the hot region must spread commits over more shards"
        );
    }

    /// The acceptance win: under skew with a rotating hot region, turning
    /// the online tuner on strictly beats the static defaults — and pays
    /// for its window evaluations and switch costs out of the improvement,
    /// without changing what commits.
    #[test]
    fn tuned_fleet_strictly_beats_the_static_defaults_under_moving_skew() {
        let base = FleetSweepOptions {
            scale: 1.0,
            thetas: vec![1.2],
            phases: 3,
            ..FleetSweepOptions::default()
        };
        let static_run = FleetSweep::run(&[4], base.clone());
        let tuned_run = FleetSweep::run(
            &[4],
            FleetSweepOptions { tune: TunePolicy::Windowed { window: 8 }, ..base },
        );
        let s = &static_run.skew[0].report;
        let t = &tuned_run.skew[0].report;
        // Tuning reshapes *when* work retries, never *what* commits.
        assert_eq!(t.fingerprint, s.fingerprint, "tuning must not change the final state");
        assert_eq!(t.total_commits, s.total_commits);
        // The tuner actually ran and paid its decision costs.
        assert!(t.profile.core.tune_windows > 0, "the tuner must evaluate windows");
        assert!(t.profile.core.tune_switches > 0, "moving skew must force knob switches");
        assert_eq!(s.profile.core.tune_windows, 0, "the static run must not tune");
        // The strict win, cycle costs included.
        assert!(
            t.makespan_seconds < s.makespan_seconds,
            "tuned makespan ({}) must strictly beat static ({})",
            t.makespan_seconds,
            s.makespan_seconds
        );
        assert!(
            t.throughput_tx_per_sec() > s.throughput_tx_per_sec(),
            "tuned throughput ({:.0}) must strictly beat static ({:.0})",
            t.throughput_tx_per_sec(),
            s.throughput_tx_per_sec()
        );
        let panel = tuned_run.tuning_table();
        assert!(panel.contains("tune windows"));
        assert!(panel.contains("settled knobs"));
    }
}
