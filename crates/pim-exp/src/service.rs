//! The `--service` mode: latency under offered load.
//!
//! Every other pim-exp mode measures *capacity* — closed-loop tasklets that
//! fire the next transaction the moment the previous one commits. This
//! module drives the [`pim_service`] layer instead: an open-loop arrival
//! process offers a fixed request rate, and the report is the latency the
//! client sees at that rate, split into queueing delay (waiting for a free
//! tasklet) and STM service time (including every aborted retry).
//!
//! The sweep runs one service cell per offered rate of the `--rate` ladder:
//!
//! * **single-DPU** — on each requested executor (simulator cycles and/or
//!   threaded wall-clock), via [`run_service`];
//! * **fleet** (`--fleet`) — the same stream sharded across `--dpus` DPUs
//!   with arrivals routed by key ownership, via [`run_service_fleet`];
//!   `--rebalance` and `--overlap` exercise the shard-rebalancing and
//!   round-pipelining machinery under open-loop load.
//!
//! `--repeat N` reruns every cell under `repeat_seed(seed, i)`, keeps the
//! run with the **lower-median sojourn p99** (the same collapse convention
//! as the fleet sweep), and reports the mean ± CI95 spread of the p99
//! sojourn and achieved rate over the runs.

use pim_fleet::RebalancePolicy;
use pim_service::{
    run_service, run_service_fleet, ArrivalProcess, LatencyPanel, PanelComponent, RequestMix,
    ServiceConfig, ServiceFleetConfig, ServiceFleetReport, ServiceReport,
};
use pim_sim::KeyDist;
use pim_stm::{MetadataPlacement, StmConfig, StmKind};
use pim_workloads::spec::Executor;

use crate::design_space::{mean_ci95, repeat_seed};
use crate::report::{fmt_f64, render_table};

/// The default offered-rate ladder (requests/second) when `--rate` is not
/// given: from comfortably below a single DPU's capacity to above it, so
/// the latency-vs-load curve shows both the flat region and the knee.
pub const DEFAULT_SERVICE_RATES: [f64; 4] = [25_000.0, 50_000.0, 100_000.0, 200_000.0];

/// Knobs of one `--service` sweep (shared by the single-DPU and fleet
/// variants).
#[derive(Debug, Clone)]
pub struct ServiceSweepOptions {
    /// Arrival-process shape text (`poisson`, `bursty[:burst[:duty]]`,
    /// `closed-loop`), instantiated per rate via [`ArrivalProcess::parse`].
    pub arrival: String,
    /// Offered rates in requests/second (ignored for closed-loop).
    pub rates: Vec<f64>,
    /// Get/put/transfer weights.
    pub mix: RequestMix,
    /// Key skew of the request stream.
    pub dist: KeyDist,
    /// STM design serving the requests.
    pub kind: StmKind,
    /// STM metadata placement.
    pub placement: MetadataPlacement,
    /// Tasklets serving the admission queue.
    pub tasklets: usize,
    /// Stream-size multiplier (scales the 2048-request default stream).
    pub scale: f64,
    /// Base PRNG seed; repeat iteration `i` runs under
    /// `repeat_seed(seed, i)`.
    pub seed: u64,
    /// Runs per cell (lower-median collapse, CI95 spread).
    pub repeat: usize,
    /// Executors of the single-DPU variant (the fleet always runs on the
    /// simulator).
    pub executors: Vec<Executor>,
}

impl Default for ServiceSweepOptions {
    fn default() -> Self {
        ServiceSweepOptions {
            arrival: "poisson".to_string(),
            rates: DEFAULT_SERVICE_RATES.to_vec(),
            mix: RequestMix::read_mostly(),
            dist: KeyDist::Uniform,
            kind: StmKind::TinyEtlWb,
            placement: MetadataPlacement::Wram,
            tasklets: 11,
            scale: 0.25,
            seed: 42,
            repeat: 1,
            executors: vec![Executor::Simulator],
        }
    }
}

impl ServiceSweepOptions {
    /// Requests per stream: the 2048-request default scaled by `--scale`,
    /// floored so even tiny scales exercise the queue.
    pub fn requests(&self) -> u64 {
        ((2048.0 * self.scale) as u64).max(64)
    }

    /// The per-rate service configuration (seed applied per repeat).
    fn config(&self, arrival: ArrivalProcess) -> ServiceConfig {
        ServiceConfig::new(arrival)
            .with_stm(
                StmConfig::new(self.kind, self.placement)
                    .with_lock_table_entries(256)
                    .with_read_set_capacity(64)
                    .with_write_set_capacity(32),
            )
            .with_tasklets(self.tasklets)
            .with_mix(self.mix)
            .with_dist(self.dist)
            .with_requests(self.requests())
    }

    /// The effective rate ladder: closed-loop arrivals have no offered
    /// rate, so the ladder degenerates to one unconstrained point.
    pub fn effective_rates(&self) -> Vec<f64> {
        if self.arrival.trim() == "closed-loop" {
            vec![0.0]
        } else {
            self.rates.clone()
        }
    }
}

/// Fleet-variant knobs of a `--service --fleet` sweep.
#[derive(Debug, Clone)]
pub struct ServiceFleetKnobs {
    /// Number of shard DPUs.
    pub shards: u32,
    /// Shard-rebalancing policy.
    pub rebalance: RebalancePolicy,
    /// Whether rounds are double-buffered (scatter hidden behind compute).
    pub overlap: bool,
}

/// Mean ± CI95 spread over the `--repeat` runs of one cell.
#[derive(Debug, Clone, Copy)]
pub struct ServiceSpread {
    /// Number of runs behind the spread.
    pub runs: usize,
    /// Mean p99 sojourn over the runs, in seconds.
    pub mean_p99_sojourn_seconds: f64,
    /// CI95 half-width of the p99 sojourn, in seconds.
    pub ci95_p99_sojourn_seconds: f64,
    /// Mean achieved rate over the runs, in requests/second.
    pub mean_achieved_rate: f64,
    /// CI95 half-width of the achieved rate.
    pub ci95_achieved_rate: f64,
}

/// One single-DPU cell of the sweep: the lower-median run plus its spread.
#[derive(Debug, Clone)]
pub struct ServicePoint {
    /// The executor that produced the report.
    pub executor: Executor,
    /// The kept (lower-median by sojourn p99) run.
    pub report: ServiceReport,
    /// Spread over the repeats (`None` when `--repeat 1`).
    pub spread: Option<ServiceSpread>,
}

/// One fleet cell of the sweep.
#[derive(Debug, Clone)]
pub struct ServiceFleetPoint {
    /// The kept (lower-median by sojourn p99) run.
    pub report: ServiceFleetReport,
    /// Spread over the repeats (`None` when `--repeat 1`).
    pub spread: Option<ServiceSpread>,
}

/// The full `--service` sweep: one latency-under-load curve per executor
/// (single-DPU) or one for the fleet.
#[derive(Debug, Clone)]
pub struct ServiceSweep {
    /// The options that produced the sweep.
    pub options: ServiceSweepOptions,
    /// The fleet knobs, when this is a `--fleet` service sweep.
    pub fleet: Option<ServiceFleetKnobs>,
    /// Single-DPU cells, rate-major then executor order (empty on fleet
    /// sweeps).
    pub points: Vec<ServicePoint>,
    /// Fleet cells, one per rate (empty on single-DPU sweeps).
    pub fleet_points: Vec<ServiceFleetPoint>,
}

/// A panel quantile in seconds (shared by both report flavours, which
/// carry the same panel + tick-rate pair).
fn quantile_seconds(
    panel: &LatencyPanel,
    ticks_per_second: f64,
    which: PanelComponent,
    q: f64,
) -> f64 {
    let hist = match which {
        PanelComponent::Queueing => &panel.queueing,
        PanelComponent::Service => &panel.service,
        PanelComponent::Sojourn => &panel.sojourn,
    };
    hist.seconds(hist.quantile(q), ticks_per_second)
}

/// Index of the kept run: lower median by sojourn p99 ticks (deterministic
/// tie-break on the run index, exactly like the fleet sweep's collapse).
fn lower_median_index(p99_ticks: &[u64]) -> usize {
    let mut order: Vec<usize> = (0..p99_ticks.len()).collect();
    order.sort_by_key(|&i| (p99_ticks[i], i));
    order[(order.len() - 1) / 2]
}

/// The spread statistics over one cell's repeats (`None` for one run).
fn spread_of(p99_seconds: &[f64], achieved: &[f64]) -> Option<ServiceSpread> {
    if p99_seconds.len() < 2 {
        return None;
    }
    let (mean_p99, ci95_p99) = mean_ci95(p99_seconds);
    let (mean_rate, ci95_rate) = mean_ci95(achieved);
    Some(ServiceSpread {
        runs: p99_seconds.len(),
        mean_p99_sojourn_seconds: mean_p99,
        ci95_p99_sojourn_seconds: ci95_p99,
        mean_achieved_rate: mean_rate,
        ci95_achieved_rate: ci95_rate,
    })
}

impl ServiceSweep {
    /// Runs the sweep. With `fleet` knobs the stream is sharded across the
    /// fleet (simulator only); otherwise every executor in the options runs
    /// the single-DPU service loop.
    ///
    /// # Errors
    ///
    /// Returns a message when the arrival shape does not parse at a rate of
    /// the ladder.
    pub fn run(
        options: ServiceSweepOptions,
        fleet: Option<ServiceFleetKnobs>,
    ) -> Result<ServiceSweep, String> {
        let mut points = Vec::new();
        let mut fleet_points = Vec::new();
        for rate in options.effective_rates() {
            let arrival = ArrivalProcess::parse(&options.arrival, rate)?;
            match &fleet {
                None => {
                    for &executor in &options.executors {
                        points.push(Self::run_single_cell(&options, arrival, executor));
                    }
                }
                Some(knobs) => {
                    fleet_points.push(Self::run_fleet_cell(&options, arrival, knobs));
                }
            }
        }
        Ok(ServiceSweep { options, fleet, points, fleet_points })
    }

    fn run_single_cell(
        options: &ServiceSweepOptions,
        arrival: ArrivalProcess,
        executor: Executor,
    ) -> ServicePoint {
        let runs: Vec<ServiceReport> = (0..options.repeat)
            .map(|i| {
                let config = options.config(arrival).with_seed(repeat_seed(options.seed, i));
                run_service(&config, executor)
            })
            .collect();
        let p99_ticks: Vec<u64> = runs.iter().map(|r| r.panel.sojourn.quantile(0.99)).collect();
        let p99_seconds: Vec<f64> =
            runs.iter().map(|r| r.quantile_seconds(PanelComponent::Sojourn, 0.99)).collect();
        let achieved: Vec<f64> = runs.iter().map(ServiceReport::achieved_rate).collect();
        let kept = lower_median_index(&p99_ticks);
        ServicePoint {
            executor,
            spread: spread_of(&p99_seconds, &achieved),
            report: runs.into_iter().nth(kept).expect("kept index in range"),
        }
    }

    fn run_fleet_cell(
        options: &ServiceSweepOptions,
        arrival: ArrivalProcess,
        knobs: &ServiceFleetKnobs,
    ) -> ServiceFleetPoint {
        let runs: Vec<ServiceFleetReport> = (0..options.repeat)
            .map(|i| {
                let service = options.config(arrival).with_seed(repeat_seed(options.seed, i));
                let config = ServiceFleetConfig::new(service, knobs.shards)
                    .with_rebalance(knobs.rebalance)
                    .with_overlap(knobs.overlap);
                run_service_fleet(&config)
            })
            .collect();
        let p99_ticks: Vec<u64> = runs.iter().map(|r| r.panel.sojourn.quantile(0.99)).collect();
        let p99_seconds: Vec<f64> = runs
            .iter()
            .map(|r| quantile_seconds(&r.panel, r.ticks_per_second, PanelComponent::Sojourn, 0.99))
            .collect();
        let achieved: Vec<f64> = runs.iter().map(ServiceFleetReport::achieved_rate).collect();
        let kept = lower_median_index(&p99_ticks);
        ServiceFleetPoint {
            spread: spread_of(&p99_seconds, &achieved),
            report: runs.into_iter().nth(kept).expect("kept index in range"),
        }
    }

    /// Whether any cell carries a `--repeat` spread.
    pub fn has_spread(&self) -> bool {
        self.points.iter().any(|p| p.spread.is_some())
            || self.fleet_points.iter().any(|p| p.spread.is_some())
    }

    /// The single-DPU latency-vs-offered-load table (µs quantiles).
    pub fn latency_table(&self) -> String {
        let header = [
            "executor",
            "offered/s",
            "achieved/s",
            "abort%",
            "done",
            "queue p50",
            "queue p99",
            "svc p50",
            "svc p99",
            "sojourn p50",
            "sojourn p99",
            "sojourn max",
        ]
        .map(str::to_string)
        .to_vec();
        let rows = self
            .points
            .iter()
            .map(|p| {
                let r = &p.report;
                let micros = |which, q| fmt_f64(r.quantile_seconds(which, q) * 1e6);
                let sojourn_max =
                    r.panel.sojourn.seconds(r.panel.sojourn.hist.max(), r.ticks_per_second);
                vec![
                    p.executor.name().to_string(),
                    fmt_f64(r.offered_rate()),
                    fmt_f64(r.achieved_rate()),
                    format!("{:.1}", r.abort_rate() * 100.0),
                    r.completed.to_string(),
                    micros(PanelComponent::Queueing, 0.50),
                    micros(PanelComponent::Queueing, 0.99),
                    micros(PanelComponent::Service, 0.50),
                    micros(PanelComponent::Service, 0.99),
                    micros(PanelComponent::Sojourn, 0.50),
                    micros(PanelComponent::Sojourn, 0.99),
                    fmt_f64(sojourn_max * 1e6),
                ]
            })
            .collect::<Vec<_>>();
        format!("latency under load (quantiles in µs)\n{}", render_table(&header, &rows))
    }

    /// The fleet latency-under-load table (µs quantiles).
    pub fn fleet_table(&self) -> String {
        let header = [
            "shards",
            "offered/s",
            "achieved/s",
            "abort%",
            "done",
            "rounds",
            "rebal",
            "moved",
            "queue p99",
            "svc p99",
            "sojourn p99",
        ]
        .map(str::to_string)
        .to_vec();
        let rows = self
            .fleet_points
            .iter()
            .map(|p| {
                let r = &p.report;
                let micros = |which, q| {
                    fmt_f64(quantile_seconds(&r.panel, r.ticks_per_second, which, q) * 1e6)
                };
                vec![
                    r.shards.to_string(),
                    fmt_f64(r.offered_rate()),
                    fmt_f64(r.achieved_rate()),
                    format!("{:.1}", r.abort_rate() * 100.0),
                    r.completed.to_string(),
                    r.rounds.to_string(),
                    r.rebalances.to_string(),
                    r.migrated_keys.to_string(),
                    micros(PanelComponent::Queueing, 0.99),
                    micros(PanelComponent::Service, 0.99),
                    micros(PanelComponent::Sojourn, 0.99),
                ]
            })
            .collect::<Vec<_>>();
        format!("fleet latency under load (quantiles in µs)\n{}", render_table(&header, &rows))
    }

    /// The `--repeat` spread table: mean ± CI95 of the p99 sojourn and the
    /// achieved rate per cell.
    pub fn spread_table(&self) -> String {
        let header =
            ["cell", "offered/s", "runs", "p99 sojourn µs (mean±ci95)", "achieved/s (mean±ci95)"]
                .map(str::to_string)
                .to_vec();
        let mut rows = Vec::new();
        for p in &self.points {
            if let Some(s) = &p.spread {
                rows.push(spread_row(p.executor.name(), p.report.offered_rate(), s));
            }
        }
        for p in &self.fleet_points {
            if let Some(s) = &p.spread {
                rows.push(spread_row("fleet", p.report.offered_rate(), s));
            }
        }
        format!(
            "repeat spread over {} run(s)\n{}",
            self.options.repeat,
            render_table(&header, &rows)
        )
    }
}

fn spread_row(cell: &str, offered: f64, s: &ServiceSpread) -> Vec<String> {
    vec![
        cell.to_string(),
        fmt_f64(offered),
        s.runs.to_string(),
        format!(
            "{} ± {}",
            fmt_f64(s.mean_p99_sojourn_seconds * 1e6),
            fmt_f64(s.ci95_p99_sojourn_seconds * 1e6)
        ),
        format!("{} ± {}", fmt_f64(s.mean_achieved_rate), fmt_f64(s.ci95_achieved_rate)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> ServiceSweepOptions {
        ServiceSweepOptions {
            rates: vec![50_000.0],
            tasklets: 4,
            scale: 0.05,
            ..ServiceSweepOptions::default()
        }
    }

    #[test]
    fn single_sweep_produces_one_point_per_rate_and_executor() {
        let sweep = ServiceSweep::run(
            ServiceSweepOptions { rates: vec![25_000.0, 100_000.0], ..tiny_options() },
            None,
        )
        .unwrap();
        assert_eq!(sweep.points.len(), 2);
        assert!(sweep.fleet_points.is_empty());
        for point in &sweep.points {
            let r = &point.report;
            assert!(r.completed > 0);
            assert!(
                r.quantile_seconds(PanelComponent::Sojourn, 0.99)
                    >= r.quantile_seconds(PanelComponent::Sojourn, 0.50)
            );
            assert!(point.spread.is_none(), "--repeat 1 has no spread");
        }
        // Deeper queues at 4× the offered load: p99 sojourn is monotone
        // non-decreasing in the rate for the same stream.
        let slow = sweep.points[0].report.panel.sojourn.quantile(0.99);
        let fast = sweep.points[1].report.panel.sojourn.quantile(0.99);
        assert!(fast >= slow, "higher offered load cannot shrink sojourn p99 ({slow} -> {fast})");
        assert!(sweep.latency_table().contains("sojourn p99"));
    }

    #[test]
    fn closed_loop_collapses_the_ladder_and_zeroes_queueing() {
        let sweep = ServiceSweep::run(
            ServiceSweepOptions { arrival: "closed-loop".into(), ..tiny_options() },
            None,
        )
        .unwrap();
        assert_eq!(sweep.points.len(), 1, "closed-loop has no offered-rate ladder");
        let r = &sweep.points[0].report;
        assert_eq!(r.offered_rate(), 0.0);
        assert_eq!(r.panel.queueing.hist.max(), 0, "closed-loop queueing is identically zero");
    }

    #[test]
    fn repeat_collapses_to_the_lower_median_and_reports_spread() {
        let sweep =
            ServiceSweep::run(ServiceSweepOptions { repeat: 3, ..tiny_options() }, None).unwrap();
        let point = &sweep.points[0];
        let spread = point.spread.as_ref().expect("3 runs must carry a spread");
        assert_eq!(spread.runs, 3);
        assert!(spread.mean_p99_sojourn_seconds > 0.0);
        assert!(spread.ci95_p99_sojourn_seconds >= 0.0);
        assert!(sweep.has_spread());
        assert!(sweep.spread_table().contains("±"));
        // The simulator repeats differ only by seed; the kept run is one of
        // them, so its p99 is within the observed min..=max.
        assert!(point.report.completed > 0);
    }

    #[test]
    fn fleet_sweep_runs_per_shard_and_routes_every_request() {
        let knobs = ServiceFleetKnobs { shards: 4, rebalance: RebalancePolicy::Off, overlap: true };
        let sweep = ServiceSweep::run(tiny_options(), Some(knobs)).unwrap();
        assert!(sweep.points.is_empty());
        assert_eq!(sweep.fleet_points.len(), 1);
        let r = &sweep.fleet_points[0].report;
        assert_eq!(r.shards, 4);
        assert_eq!(r.completed, sweep.options.requests(), "every request must commit somewhere");
        assert_eq!(r.per_shard_completed.iter().sum::<u64>(), r.completed);
        assert!(r.rounds > 0);
        assert!(sweep.fleet_table().contains("shards"));
    }

    #[test]
    fn lower_median_matches_the_fleet_convention() {
        assert_eq!(lower_median_index(&[5]), 0);
        assert_eq!(lower_median_index(&[5, 3]), 1, "even count keeps the lower middle");
        assert_eq!(lower_median_index(&[9, 1, 5]), 2);
        assert_eq!(lower_median_index(&[4, 4, 4]), 1, "ties break on run index");
    }

    #[test]
    fn bad_arrival_shapes_are_reported() {
        let err = ServiceSweep::run(
            ServiceSweepOptions { arrival: "fractal".into(), ..tiny_options() },
            None,
        )
        .unwrap_err();
        assert!(err.contains("fractal"), "{err}");
    }
}
