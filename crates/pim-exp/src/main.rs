//! Command-line entry point of the experiment harness.
//!
//! ```text
//! pim-exp --figure fig4            # ArrayBench + Linked-List, MRAM metadata
//! pim-exp --figure fig5            # KMeans + Labyrinth, MRAM metadata
//! pim-exp --figure fig6            # normalised peak-throughput distribution
//! pim-exp --figure fig9            # ArrayBench + Linked-List, WRAM metadata
//! pim-exp --figure fig10           # KMeans, WRAM metadata
//! pim-exp --figure fig7            # multi-DPU speed-up curves
//! pim-exp --figure fig8            # speed-up + energy gain at 2500 DPUs
//! pim-exp --figure latency         # local vs CPU-mediated read latency
//! pim-exp --workload array-a --tier wram --tasklets 1,3,5,7,9,11
//! pim-exp --workload array-b --stm norec --executor both   # profile tables
//!                                          # on the simulator AND on threads
//! ```
//!
//! `--scale` (default 0.25) shrinks every workload proportionally so a full
//! figure regenerates in minutes; use `--scale 1.0` for the paper-sized
//! runs.

use pim_exp::cache::SimCache;
use pim_exp::design_space::{BurstSweep, DesignSpaceSweep, SweepOptions};
use pim_exp::fleet::{FleetSweep, FleetSweepOptions, DEFAULT_FLEET_DPUS, DEFAULT_SKEW_THETAS};
use pim_exp::grid::{GridOptions, GridSearch};
use pim_exp::json::{fleet_to_json, grid_to_json, service_to_json, sweeps_to_json};
use pim_exp::latency::LatencyComparison;
use pim_exp::multi_dpu::{figure8_table, MultiDpuBenchmark, MultiDpuStudy};
use pim_exp::peak::PeakDistribution;
use pim_exp::pool::WorkerPool;
use pim_exp::service::{
    ServiceFleetKnobs, ServiceSweep, ServiceSweepOptions, DEFAULT_SERVICE_RATES,
};
use pim_fleet::RebalancePolicy;
use pim_service::RequestMix;
use pim_sim::KeyDist;
use pim_stm::{MetadataPlacement, ReadStrategy, RetryPolicy, StmKind, TmComposition, TunePolicy};
use pim_workloads::spec::Executor;
use pim_workloads::{RoutingPolicy, Workload};
use std::process::ExitCode;

#[derive(Debug, Clone)]
struct Options {
    figure: Option<String>,
    fleet: bool,
    grid: bool,
    service: bool,
    /// `--arrival`: the service arrival-process shape.
    arrival: Option<String>,
    /// `--rate`: the service offered-rate ladder (requests/second).
    rates: Option<Vec<f64>>,
    /// `--mix`: the service get:put:transfer weights.
    mix: Option<RequestMix>,
    /// `--skew`: the service key distribution.
    skew: Option<KeyDist>,
    workload: Option<Workload>,
    stm: Option<StmKind>,
    placement: MetadataPlacement,
    /// Whether `--tier` was given explicitly (the service mode defaults to
    /// WRAM metadata, unlike the figures' MRAM default).
    tier_set: bool,
    executors: Vec<Executor>,
    tasklets: Vec<usize>,
    /// `--dpus`, when given; the analytic figures and the fleet sweep have
    /// different defaults.
    dpus: Option<Vec<usize>>,
    routing: Option<RoutingPolicy>,
    skew_thetas: Option<Vec<f64>>,
    rebalance: Option<RebalancePolicy>,
    overlap: bool,
    skew_phases: Option<u32>,
    scale: f64,
    seed: u64,
    repeat: usize,
    read_strategy: ReadStrategy,
    retry: RetryPolicy,
    tune: TunePolicy,
    record_words: Option<u32>,
    burst_words: Option<Vec<u32>>,
    json_out: Option<String>,
    /// `--workers`: the one worker budget shared by the outer experiment
    /// fan-out and the fleet's inner per-shard host workers (0 = all
    /// available cores).
    workers: usize,
    cache_dir: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            figure: None,
            fleet: false,
            grid: false,
            service: false,
            arrival: None,
            rates: None,
            mix: None,
            skew: None,
            workload: None,
            stm: None,
            placement: MetadataPlacement::Mram,
            tier_set: false,
            executors: vec![Executor::Simulator],
            tasklets: vec![1, 3, 5, 7, 9, 11],
            dpus: None,
            routing: None,
            skew_thetas: None,
            rebalance: None,
            overlap: false,
            skew_phases: None,
            scale: 0.25,
            seed: 42,
            repeat: 1,
            read_strategy: ReadStrategy::default(),
            retry: RetryPolicy::default(),
            tune: TunePolicy::Static,
            record_words: None,
            burst_words: None,
            json_out: None,
            workers: 0,
            cache_dir: None,
        }
    }
}

impl Options {
    /// DPU counts of the analytic multi-DPU figures (fig7/fig8).
    fn analytic_dpus(&self) -> Vec<usize> {
        self.dpus.clone().unwrap_or_else(|| vec![1, 250, 500, 1000, 1500, 2000, 2500])
    }

    /// DPU counts of the measured `--fleet` scaling curve.
    fn fleet_dpus(&self) -> Vec<usize> {
        self.dpus.clone().unwrap_or_else(|| DEFAULT_FLEET_DPUS.to_vec())
    }

    /// The sweep knobs shared by every design-space run of this invocation.
    fn sweep_options(&self, executor: Executor) -> SweepOptions {
        SweepOptions {
            scale: self.scale,
            seed: self.seed,
            executor,
            repeat: self.repeat,
            read_strategy: self.read_strategy,
            retry: self.retry,
            tune: self.tune,
            record_words: self.record_words,
            ..SweepOptions::default()
        }
    }

    /// The worker pool fanning out this invocation's independent jobs.
    fn worker_pool(&self) -> WorkerPool {
        WorkerPool::new(self.workers)
    }

    /// The simulation cache of this invocation: in-memory always, plus the
    /// `--cache-dir` on-disk tier when requested.
    fn sim_cache(&self) -> Result<SimCache, String> {
        match &self.cache_dir {
            Some(dir) => {
                SimCache::with_dir(dir).map_err(|e| format!("cannot open --cache-dir {dir}: {e}"))
            }
            None => Ok(SimCache::in_memory()),
        }
    }
}

fn parse_executors(value: &str) -> Result<Vec<Executor>, String> {
    match value {
        "sim" | "simulator" => Ok(vec![Executor::Simulator]),
        "threaded" => Ok(vec![Executor::Threaded]),
        "both" => Ok(vec![Executor::Simulator, Executor::Threaded]),
        other => Err(format!("unknown executor {other} (expected simulator|threaded|both)")),
    }
}

fn parse_list<T: std::str::FromStr>(value: &str) -> Result<Vec<T>, String>
where
    T::Err: std::fmt::Display,
{
    value
        .split(',')
        .map(|part| part.trim().parse::<T>().map_err(|e| format!("bad list entry {part:?}: {e}")))
        .collect()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = || iter.next().cloned().ok_or_else(|| format!("missing value after {arg}"));
        match arg.as_str() {
            "--figure" => options.figure = Some(value()?),
            "--workload" => {
                let name = value()?;
                options.workload =
                    Some(Workload::parse(&name).ok_or_else(|| format!("unknown workload {name}"))?);
            }
            "--stm" => {
                let name = value()?;
                options.stm = Some(parse_stm(&name)?);
            }
            "--tier" => {
                let name = value()?;
                options.placement = match name.as_str() {
                    "wram" => MetadataPlacement::Wram,
                    "mram" => MetadataPlacement::Mram,
                    other => return Err(format!("unknown tier {other} (expected wram|mram)")),
                };
                options.tier_set = true;
            }
            "--executor" => options.executors = parse_executors(&value()?)?,
            "--tasklets" => options.tasklets = parse_list(&value()?)?,
            "--dpus" => options.dpus = Some(parse_list(&value()?)?),
            "--fleet" => options.fleet = true,
            "--grid" => options.grid = true,
            "--service" => options.service = true,
            "--arrival" => options.arrival = Some(value()?),
            "--rate" => {
                let rates: Vec<f64> = parse_list(&value()?)?;
                if rates.is_empty() {
                    return Err("--rate needs at least one offered rate".to_string());
                }
                if rates.iter().any(|r| !r.is_finite() || *r <= 0.0) {
                    return Err("--rate values must be finite and positive".to_string());
                }
                options.rates = Some(rates);
            }
            "--mix" => options.mix = Some(RequestMix::parse(&value()?)?),
            "--skew" => options.skew = Some(KeyDist::parse(&value()?)?),
            "--tune" => options.tune = TunePolicy::windowed(),
            "--tune-window" => {
                let window: u32 =
                    value()?.parse().map_err(|e| format!("bad --tune-window value: {e}"))?;
                if window == 0 {
                    return Err("--tune-window needs at least one transaction".to_string());
                }
                options.tune = TunePolicy::Windowed { window };
            }
            "--routing" => options.routing = Some(RoutingPolicy::parse(&value()?)?),
            "--skew-thetas" => {
                let thetas: Vec<f64> = parse_list(&value()?)?;
                if thetas.iter().any(|t| *t < 0.0 || !t.is_finite()) {
                    return Err("--skew-thetas values must be finite and >= 0".to_string());
                }
                options.skew_thetas = Some(thetas);
            }
            "--rebalance" => options.rebalance = Some(RebalancePolicy::parse(&value()?)?),
            "--overlap" => options.overlap = true,
            "--skew-phases" => {
                let phases: u32 =
                    value()?.parse().map_err(|e| format!("bad --skew-phases value: {e}"))?;
                if phases == 0 {
                    return Err("--skew-phases needs at least one phase".to_string());
                }
                options.skew_phases = Some(phases);
            }
            "--scale" => {
                options.scale = value()?.parse().map_err(|e| format!("bad --scale value: {e}"))?
            }
            "--seed" => {
                options.seed = value()?.parse().map_err(|e| format!("bad --seed value: {e}"))?
            }
            "--repeat" => {
                options.repeat =
                    value()?.parse().map_err(|e| format!("bad --repeat value: {e}"))?;
                if options.repeat == 0 {
                    return Err("--repeat needs at least one run per cell".to_string());
                }
            }
            "--read-strategy" => {
                let name = value()?;
                options.read_strategy = ReadStrategy::parse(&name).ok_or_else(|| {
                    format!("unknown read strategy {name} (expected word-wise|batched)")
                })?;
            }
            "--retry" => {
                let name = value()?;
                options.retry = RetryPolicy::parse(&name).ok_or_else(|| {
                    format!("unknown retry policy {name} (expected fixed|exponential|adaptive)")
                })?;
            }
            "--record-words" => {
                let words =
                    value()?.parse().map_err(|e| format!("bad --record-words value: {e}"))?;
                if words == 0 {
                    return Err("--record-words needs at least one word per record".to_string());
                }
                // The flag only affects ArrayBench, whose read budget is a
                // compile-time constant — validate here so an out-of-range
                // value fails as a usage error, not a mid-sweep panic.
                let limit = pim_workloads::array_bench::ArrayBenchConfig::workload_a().reads_per_tx;
                if words > limit {
                    return Err(format!(
                        "--record-words {words} exceeds ArrayBench's read budget of {limit} \
                         entries per transaction (records must tile the read phase)"
                    ));
                }
                options.record_words = Some(words);
            }
            "--burst-words" => {
                let caps: Vec<u32> = parse_list(&value()?)?;
                if caps.is_empty() {
                    return Err("--burst-words needs at least one cap".to_string());
                }
                if caps.contains(&0) {
                    return Err("--burst-words caps must be at least one word".to_string());
                }
                let limit = pim_stm::config::HARDWARE_MAX_BURST_WORDS;
                if let Some(&bad) = caps.iter().find(|&&cap| cap > limit) {
                    return Err(format!(
                        "--burst-words cap {bad} exceeds the hardware DMA transfer limit \
                         of {limit} words"
                    ));
                }
                options.burst_words = Some(caps);
            }
            "--json-out" => options.json_out = Some(value()?),
            "--workers" => {
                options.workers =
                    value()?.parse().map_err(|e| format!("bad --workers value: {e}"))?;
            }
            "--cache-dir" => options.cache_dir = Some(value()?),
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument {other}\n{}", usage())),
        }
    }
    Ok(options)
}

fn usage() -> String {
    "usage: pim-exp [--figure fig4|fig5|fig6|fig7|fig8|fig9|fig10|latency]\n\
     \x20              [--fleet] [--routing route-to-owner|abort-retry]\n\
     \x20              [--skew-thetas 0.0,0.9,...] [--skew-phases <n>]\n\
     \x20              [--rebalance off|threshold[:f]|periodic[:k]] [--overlap]\n\
     \x20              [--grid] [--tune] [--tune-window <n>]\n\
     \x20              [--service] [--arrival poisson|bursty[:b[:d]]|closed-loop]\n\
     \x20              [--rate 25000,50000,...] [--mix g:p:t] [--skew uniform|zipf:t]\n\
     \x20              [--workload <name>] [--stm <kind>] [--tier wram|mram]\n\
     \x20              [--executor simulator|threaded|both] [--repeat <n>]\n\
     \x20              [--read-strategy word-wise|batched] [--record-words <n>]\n\
     \x20              [--retry fixed|exponential|adaptive]\n\
     \x20              [--burst-words 8,16,64,...] [--json-out <path>]\n\
     \x20              [--tasklets 1,3,5,...] [--dpus 1,500,...]\n\
     \x20              [--scale <f>] [--seed <n>]\n\
     \x20              [--workers <n>] [--cache-dir <path>]\n\
     \x20 --fleet runs the measured multi-DPU sharded runtime instead of a\n\
     \x20 figure: a weak-scaling curve over --dpus (default 4,16,64,256)\n\
     \x20 plus a key-skew sweep at the largest fleet (--skew-thetas,\n\
     \x20 default 0,0.6,0.9,1.2), honouring --stm, --tier, --routing,\n\
     \x20 --scale, --seed, --repeat and --json-out. --rebalance recuts the\n\
     \x20 range partition toward the observed key load (each skew point\n\
     \x20 then also runs the static baseline and reports the recovered\n\
     \x20 throughput), --overlap double-buffers rounds so scatter/routing\n\
     \x20 hides behind the previous round's compute, and --skew-phases\n\
     \x20 rotates the hot region mid-stream so rebalancing has a moving\n\
     \x20 target to chase.\n\
     \x20 --service measures latency under offered load instead of\n\
     \x20 capacity: an open-loop --arrival process (poisson, bursty with\n\
     \x20 optional burst size and duty cycle, or the closed-loop baseline)\n\
     \x20 offers each --rate of the ladder (default 25k,50k,100k,200k\n\
     \x20 req/s) against the STM-backed hashmap + journal-queue service\n\
     \x20 structures, under a --mix of get:put:transfer weights (default\n\
     \x20 80:15:5) and a --skew key distribution (uniform or zipf:theta).\n\
     \x20 Every committed request is stamped arrival -> dispatch -> first\n\
     \x20 attempt -> commit, so the report separates queueing delay from\n\
     \x20 STM service time (p50/p95/p99/max, in the executor's native\n\
     \x20 unit). Honours --stm, --tier (default wram), --tasklets (the\n\
     \x20 largest count), --executor, --scale, --seed, --repeat (lower-\n\
     \x20 median collapse + CI95 spread) and --json-out. With --fleet the\n\
     \x20 same stream is sharded across --dpus DPUs (largest count,\n\
     \x20 default 4) with arrivals routed by key ownership; --rebalance\n\
     \x20 and --overlap exercise shard rebalancing and round pipelining\n\
     \x20 under load.\n\
     \x20 A --workload/--stm pair reruns a single cell of the design-space\n\
     \x20 grid (e.g. --workload array-b --stm norec --tasklets 4). --stm\n\
     \x20 accepts legacy names (norec, tiny-etlwb, vr-ctlwb, ...) and\n\
     \x20 grid names composing the policy axes <read>-<timing>-<write>,\n\
     \x20 e.g. orec-etl-wb, vr-ctl-wb, norec-ctl-wb. --retry selects the\n\
     \x20 retry axis: fixed window, exponential (default), or adaptive\n\
     \x20 back-off tuned from the per-reason abort histogram.\n\
     \x20 --executor threaded|both pipes the same profile tables (phase\n\
     \x20 breakdown, abort reasons) through the threaded executor, and\n\
     \x20 --repeat N keeps the median-of-N run per cell and reports the\n\
     \x20 min/median/max spread over the runs (for noisy wall-clock\n\
     \x20 cells). --burst-words sweeps the DMA burst cap and reports MRAM\n\
     \x20 DMA setups per commit under each cap; --json-out dumps every\n\
     \x20 swept cell's execution profile as JSON.\n\
     \x20 --record-words overrides ArrayBench's read-phase record grouping\n\
     \x20 (1 = the paper's original scattered single-entry reads; other\n\
     \x20 workloads ignore it).\n\
     \x20 --grid runs the full-grid offline search: every coherent STM\n\
     \x20 composition x retry x read-strategy x write-back x lock-order x\n\
     \x20 burst-cap combination of one --workload (default array-b) and\n\
     \x20 --tier, ranked by throughput, with the static defaults' gap to\n\
     \x20 the per-workload best called out. It honours --scale, --seed,\n\
     \x20 --tasklets (largest count), --burst-words (the cap ladder),\n\
     \x20 --record-words and --json-out.\n\
     \x20 --tune turns on the online self-tuner (windowed, one decision\n\
     \x20 per abort-histogram window; --tune-window overrides the window\n\
     \x20 size) on sweeps and on the fleet, where every shard DPU tunes\n\
     \x20 its own knobs independently. Tuner decisions appear as\n\
     \x20 cycle-stamped simulator events and in the JSON dump.\n\
     \x20 --workers N caps the one worker budget shared by the experiment\n\
     \x20 fan-out (grid cells, sweep cells, --repeat iterations, fleet\n\
     \x20 points) and the fleet's inner per-shard host workers (0 = all\n\
     \x20 cores, the default); any N yields bit-identical output. Sweeps\n\
     \x20 on the threaded executor stay serial regardless (wall-clock\n\
     \x20 cells must not contend for cores). --cache-dir adds an on-disk\n\
     \x20 tier to the content-addressed simulation cache so repeated\n\
     \x20 identical cells are read back instead of re-simulated; it\n\
     \x20 applies to --grid and to the design-space sweeps, never to the\n\
     \x20 measured --fleet runtime."
        .to_string()
}

/// Parses `--stm`: legacy kind names and grid-style composition names both
/// resolve; a *parseable but incoherent* grid cell (a struck-out cell of
/// Fig. 2) is rejected with the reason it is struck out.
fn parse_stm(name: &str) -> Result<StmKind, String> {
    if let Some(kind) = StmKind::parse(name) {
        return Ok(kind);
    }
    if let Some(composition) = TmComposition::parse(name) {
        let reason = composition.rejection_reason().unwrap_or("not a coherent design");
        return Err(format!("--stm {name} names a struck-out cell of the policy grid: {reason}"));
    }
    Err(format!(
        "unknown STM design {name} (legacy: norec, tiny-etlwb, vr-ctlwb, ...; \
         grid: orec-etl-wb, vr-ctl-wb, norec-ctl-wb, ...)"
    ))
}

fn print_sweep(
    workload: Workload,
    placement: MetadataPlacement,
    options: &Options,
    pool: &WorkerPool,
    cache: &SimCache,
    collected: &mut Vec<DesignSpaceSweep>,
) {
    let kinds = match options.stm {
        Some(kind) => vec![kind],
        None => pim_stm::StmKind::ALL.to_vec(),
    };
    for &executor in &options.executors {
        println!("== {workload} ({} metadata, {}, {executor}) ==", placement, workload.figure());
        let sweep = DesignSpaceSweep::run_with_pool(
            workload,
            placement,
            &kinds,
            &options.tasklets,
            options.sweep_options(executor),
            pool,
            cache,
        );
        if executor == Executor::Simulator {
            println!("{}", sweep.throughput_table());
        }
        println!("{}", sweep.abort_table());
        println!("{}", sweep.breakdown_table());
        println!("{}", sweep.abort_reason_table());
        println!("{}", sweep.profile_table());
        if sweep.has_spread() {
            println!("{}", sweep.repeat_spread_table());
        }
        if let Some(caps) = &options.burst_words {
            let tasklets = sweep.points.iter().map(|p| p.tasklets).max().unwrap_or(1);
            // A cap equal to the base sweep's hits the shared simulation
            // cache cell-for-cell instead of re-running.
            let burst = BurstSweep::run(
                workload,
                placement,
                &kinds,
                tasklets,
                caps,
                options.sweep_options(executor),
                pool,
                cache,
            );
            println!("{}", burst.table());
            // The per-cap cells are full sweeps; --json-out dumps them too —
            // except a cap equal to the base sweep's, whose cells would be
            // indistinguishable duplicates of rows the base sweep already
            // contributes.
            collected.extend(
                burst.sweeps.into_iter().filter(|s| s.max_burst_words != sweep.max_burst_words),
            );
        }
        collected.push(sweep);
    }
}

/// Writes every swept cell's profile as JSON to `path`.
fn write_json(path: &str, sweeps: &[DesignSpaceSweep]) -> Result<(), String> {
    let json = sweeps_to_json(sweeps).to_string();
    std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!(
        "[json-out] wrote {} cell profile(s) to {path}",
        sweeps.iter().map(|s| s.points.len()).sum::<usize>()
    );
    Ok(())
}

/// Runs the `--fleet` sweep and prints its three panels; returns the sweep
/// for `--json-out`.
fn run_fleet(options: &Options) -> Result<FleetSweep, String> {
    for (flag, set) in [
        ("--figure", options.figure.is_some()),
        ("--workload", options.workload.is_some()),
        ("--executor", options.executors != [Executor::Simulator]),
        ("--burst-words", options.burst_words.is_some()),
        ("--record-words", options.record_words.is_some()),
        ("--read-strategy", options.read_strategy != ReadStrategy::default()),
        ("--retry", options.retry != RetryPolicy::default()),
        // The fleet is a measured runtime, not a memoisable pure function
        // of its spec — its cells never enter the simulation cache.
        ("--cache-dir", options.cache_dir.is_some()),
    ] {
        if set {
            return Err(format!("{flag} does not apply to the --fleet sweep"));
        }
    }
    let fleet_options = FleetSweepOptions {
        kind: options.stm.unwrap_or(StmKind::Norec),
        placement: options.placement,
        routing: options.routing.unwrap_or(RoutingPolicy::RouteToOwner),
        scale: options.scale,
        seed: options.seed,
        thetas: options.skew_thetas.clone().unwrap_or_else(|| DEFAULT_SKEW_THETAS.to_vec()),
        rebalance: options.rebalance.unwrap_or(RebalancePolicy::Off),
        overlap: options.overlap,
        repeat: options.repeat,
        phases: options.skew_phases.unwrap_or(1),
        tune: options.tune,
    };
    let dpus = options.fleet_dpus();
    if dpus.is_empty() || dpus.contains(&0) {
        return Err("--fleet needs a non-empty --dpus list of positive counts".to_string());
    }
    println!("== fleet: measured multi-DPU sharded runtime ==");
    let sweep = FleetSweep::run_with(&dpus, fleet_options, &options.worker_pool());
    println!("{}", sweep.scaling_table());
    println!("{}", sweep.profile_table());
    if sweep.options.tune != TunePolicy::Static {
        println!("{}", sweep.tuning_table());
    }
    if sweep.options.overlap {
        println!("{}", sweep.pipeline_table());
    }
    if !sweep.skew.is_empty() {
        println!("{}", sweep.skew_table());
    }
    if let Some(rounds) = sweep.rebalance_rounds_table() {
        println!("{rounds}");
    }
    Ok(sweep)
}

/// Runs the `--grid` full-grid search and prints its two panels; returns
/// the search for `--json-out`.
fn run_grid(options: &Options) -> Result<GridSearch, String> {
    for (flag, set) in [
        ("--figure", options.figure.is_some()),
        ("--fleet", options.fleet),
        ("--executor", options.executors != [Executor::Simulator]),
        ("--repeat", options.repeat > 1),
        ("--routing", options.routing.is_some()),
        ("--skew-thetas", options.skew_thetas.is_some()),
        ("--skew-phases", options.skew_phases.is_some()),
        ("--rebalance", options.rebalance.is_some()),
        ("--overlap", options.overlap),
        // The grid enumerates these axes itself; a filter would silently
        // shrink the space the mode exists to cover.
        ("--stm", options.stm.is_some()),
        ("--read-strategy", options.read_strategy != ReadStrategy::default()),
        ("--retry", options.retry != RetryPolicy::default()),
        ("--tune", options.tune != TunePolicy::Static),
    ] {
        if set {
            return Err(format!("{flag} does not apply to the --grid search"));
        }
    }
    let workload = options.workload.unwrap_or(Workload::ArrayB);
    let defaults = GridOptions::default();
    let grid_options = GridOptions {
        scale: options.scale,
        seed: options.seed,
        // One tasklet count per grid; the largest requested is the
        // contended end where the knobs matter most.
        tasklets: options.tasklets.iter().copied().max().unwrap_or(defaults.tasklets),
        caps: options.burst_words.clone().unwrap_or(defaults.caps),
        record_words: options.record_words,
    };
    println!("== grid: full design-space search ==");
    let cache = options.sim_cache()?;
    let search = GridSearch::run_with(
        workload,
        options.placement,
        grid_options,
        &options.worker_pool(),
        &cache,
    );
    println!("{}", search.ranked_table(12));
    println!("{}", search.defaults_table());
    println!("{}", search.cache_table());
    Ok(search)
}

/// Runs the `--service` latency-under-load sweep and prints its tables;
/// returns the sweep for `--json-out`.
fn run_service_mode(options: &Options) -> Result<ServiceSweep, String> {
    for (flag, set) in [
        ("--figure", options.figure.is_some()),
        ("--workload", options.workload.is_some()),
        ("--grid", options.grid),
        ("--burst-words", options.burst_words.is_some()),
        ("--record-words", options.record_words.is_some()),
        ("--read-strategy", options.read_strategy != ReadStrategy::default()),
        ("--retry", options.retry != RetryPolicy::default()),
        ("--tune", options.tune != TunePolicy::Static),
        ("--routing", options.routing.is_some()),
        ("--skew-thetas", options.skew_thetas.is_some()),
        ("--skew-phases", options.skew_phases.is_some()),
        ("--workers", options.workers != 0),
        // A latency cell is measured end to end — queueing delay depends on
        // the whole stream's interleaving — so it is never memoised.
        ("--cache-dir", options.cache_dir.is_some()),
    ] {
        if set {
            return Err(format!("{flag} does not apply to the --service mode"));
        }
    }
    let fleet = if options.fleet {
        if options.executors != [Executor::Simulator] {
            return Err(
                "--executor does not apply to --service --fleet (shards run on the simulator)"
                    .to_string(),
            );
        }
        let shards = match &options.dpus {
            None => 4,
            Some(dpus) => match dpus.iter().copied().max() {
                Some(n) if n >= 1 && n <= u32::MAX as usize => n as u32,
                _ => return Err("--dpus needs a positive shard count".to_string()),
            },
        };
        Some(ServiceFleetKnobs {
            shards,
            rebalance: options.rebalance.unwrap_or(RebalancePolicy::Off),
            overlap: options.overlap,
        })
    } else {
        for (flag, set) in [
            ("--dpus", options.dpus.is_some()),
            ("--rebalance", options.rebalance.is_some()),
            ("--overlap", options.overlap),
        ] {
            if set {
                return Err(format!(
                    "{flag} applies to --service --fleet, not to single-DPU --service"
                ));
            }
        }
        None
    };
    let defaults = ServiceSweepOptions::default();
    let sweep_options = ServiceSweepOptions {
        arrival: options.arrival.clone().unwrap_or(defaults.arrival),
        rates: options.rates.clone().unwrap_or_else(|| DEFAULT_SERVICE_RATES.to_vec()),
        mix: options.mix.unwrap_or(defaults.mix),
        dist: options.skew.unwrap_or(defaults.dist),
        kind: options.stm.unwrap_or(defaults.kind),
        // The service layer defaults to WRAM metadata (the low-latency
        // placement); --tier overrides.
        placement: if options.tier_set { options.placement } else { defaults.placement },
        tasklets: options.tasklets.iter().copied().max().unwrap_or(defaults.tasklets),
        scale: options.scale,
        seed: options.seed,
        repeat: options.repeat,
        executors: options.executors.clone(),
    };
    println!("== service: latency under offered load ==");
    let sweep = ServiceSweep::run(sweep_options, fleet)?;
    if sweep.fleet.is_some() {
        println!("{}", sweep.fleet_table());
    } else {
        println!("{}", sweep.latency_table());
    }
    if sweep.has_spread() {
        println!("{}", sweep.spread_table());
    }
    Ok(sweep)
}

fn run_figure(
    figure: &str,
    options: &Options,
    collected: &mut Vec<DesignSpaceSweep>,
) -> Result<(), String> {
    let is_sweep_figure = matches!(figure, "fig4" | "fig5" | "fig9" | "fig10");
    // The fleet-only flags belong to --fleet, not to any figure.
    for (flag, set) in [
        ("--routing", options.routing.is_some()),
        ("--skew-thetas", options.skew_thetas.is_some()),
        ("--skew-phases", options.skew_phases.is_some()),
        ("--rebalance", options.rebalance.is_some()),
        ("--overlap", options.overlap),
    ] {
        if set {
            return Err(format!("{flag} applies to the --fleet sweep, not to {figure}"));
        }
    }
    // Only the per-design sweep figures can honour the sweep-level flags;
    // error out instead of silently ignoring them.
    if options.stm.is_some() && !is_sweep_figure {
        return Err(format!(
            "--stm applies to the design-space sweeps (fig4/fig5/fig9/fig10 or --workload), \
             not to {figure}"
        ));
    }
    if options.executors != [Executor::Simulator] && !is_sweep_figure {
        return Err(format!(
            "--executor applies to the design-space sweeps (fig4/fig5/fig9/fig10 or \
             --workload), not to {figure}"
        ));
    }
    for (flag, set) in [
        ("--burst-words", options.burst_words.is_some()),
        ("--json-out", options.json_out.is_some()),
        ("--repeat", options.repeat > 1),
        ("--read-strategy", options.read_strategy != ReadStrategy::default()),
        ("--retry", options.retry != RetryPolicy::default()),
        ("--tune", options.tune != TunePolicy::Static),
        ("--record-words", options.record_words.is_some()),
        ("--cache-dir", options.cache_dir.is_some()),
    ] {
        if set && !is_sweep_figure {
            return Err(format!(
                "{flag} applies to the design-space sweeps (fig4/fig5/fig9/fig10 or \
                 --workload), not to {figure}"
            ));
        }
    }
    // One pool and one cache span the whole figure, so its workloads run
    // under a single worker budget and repeated cells (e.g. a burst cap
    // equal to the base sweep's) hit instead of re-simulating.
    let pool = options.worker_pool();
    let cache = options.sim_cache()?;
    match figure {
        "fig4" => {
            for workload in [Workload::ArrayA, Workload::ArrayB, Workload::ListLc, Workload::ListHc]
            {
                print_sweep(workload, MetadataPlacement::Mram, options, &pool, &cache, collected);
            }
        }
        "fig5" => {
            for workload in
                [Workload::KmeansLc, Workload::KmeansHc, Workload::LabyrinthS, Workload::LabyrinthL]
            {
                print_sweep(workload, MetadataPlacement::Mram, options, &pool, &cache, collected);
            }
        }
        "fig9" => {
            for workload in [Workload::ArrayA, Workload::ArrayB, Workload::ListLc, Workload::ListHc]
            {
                print_sweep(workload, MetadataPlacement::Wram, options, &pool, &cache, collected);
            }
        }
        "fig10" => {
            for workload in [Workload::KmeansLc, Workload::KmeansHc] {
                print_sweep(workload, MetadataPlacement::Wram, options, &pool, &cache, collected);
            }
        }
        "fig6" => {
            for placement in [MetadataPlacement::Mram, MetadataPlacement::Wram] {
                println!("== Fig. 6: normalised peak throughput ({placement} metadata) ==");
                let dist = PeakDistribution::run(
                    placement,
                    &Workload::FIGURE_4_5,
                    &options.tasklets,
                    options.scale,
                    options.seed,
                );
                println!("{}", dist.table());
            }
        }
        "fig7" => {
            for benchmark in [
                MultiDpuBenchmark::KmeansLc,
                MultiDpuBenchmark::KmeansHc,
                MultiDpuBenchmark::LabyrinthS,
                MultiDpuBenchmark::LabyrinthM,
                MultiDpuBenchmark::LabyrinthL,
            ] {
                println!("== Fig. 7: speed-up vs CPU ({benchmark}) ==");
                let study = MultiDpuStudy::run_with_cache(
                    benchmark,
                    &options.analytic_dpus(),
                    options.scale,
                    options.seed,
                    &cache,
                );
                println!("{}", study.speedup_table());
            }
        }
        "fig8" => {
            println!("== Fig. 8: speed-up and energy gain at {} DPUs ==", 2500);
            let studies: Vec<MultiDpuStudy> = MultiDpuBenchmark::ALL
                .into_iter()
                .map(|b| {
                    MultiDpuStudy::run_with_cache(b, &[2500], options.scale, options.seed, &cache)
                })
                .collect();
            println!("{}", figure8_table(&studies));
        }
        "latency" => {
            println!("== §3.1: local vs CPU-mediated word read ==");
            println!("{}", LatencyComparison::measure().table());
        }
        other => return Err(format!("unknown figure {other}\n{}", usage())),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if !options.service {
        for (flag, set) in [
            ("--arrival", options.arrival.is_some()),
            ("--rate", options.rates.is_some()),
            ("--mix", options.mix.is_some()),
            ("--skew", options.skew.is_some()),
        ] {
            if set {
                eprintln!("{flag} applies to the --service mode");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut collected = Vec::new();
    let result = if options.service {
        run_service_mode(&options).and_then(|sweep| match &options.json_out {
            Some(path) => {
                let json = service_to_json(&sweep).to_string();
                std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!(
                    "[json-out] wrote {} service point(s) to {path}",
                    sweep.points.len() + sweep.fleet_points.len()
                );
                Ok(())
            }
            None => Ok(()),
        })
    } else if options.grid {
        run_grid(&options).and_then(|search| match &options.json_out {
            Some(path) => {
                let json = grid_to_json(&search).to_string();
                std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("[json-out] wrote {} grid cell(s) to {path}", search.cells.len());
                Ok(())
            }
            None => Ok(()),
        })
    } else if options.fleet {
        run_fleet(&options).and_then(|sweep| match &options.json_out {
            Some(path) => {
                let json = fleet_to_json(&sweep).to_string();
                std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!(
                    "[json-out] wrote {} fleet point(s) to {path}",
                    sweep.scaling.len() + sweep.skew.len()
                );
                Ok(())
            }
            None => Ok(()),
        })
    } else {
        let result = if let Some(figure) = &options.figure {
            run_figure(figure, &options, &mut collected)
        } else if let Some(workload) = options.workload {
            for (flag, set) in [
                ("--routing", options.routing.is_some()),
                ("--skew-thetas", options.skew_thetas.is_some()),
                ("--skew-phases", options.skew_phases.is_some()),
                ("--rebalance", options.rebalance.is_some()),
                ("--overlap", options.overlap),
            ] {
                if set {
                    eprintln!("{flag} applies to the --fleet sweep, not to a workload sweep");
                    return ExitCode::FAILURE;
                }
            }
            match options.sim_cache() {
                Ok(cache) => {
                    let pool = options.worker_pool();
                    print_sweep(
                        workload,
                        options.placement,
                        &options,
                        &pool,
                        &cache,
                        &mut collected,
                    );
                }
                Err(message) => {
                    eprintln!("{message}");
                    return ExitCode::FAILURE;
                }
            }
            Ok(())
        } else {
            Err(usage())
        };
        result.and_then(|()| match &options.json_out {
            Some(path) if !collected.is_empty() => write_json(path, &collected),
            _ => Ok(()),
        })
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argument_parsing_covers_the_main_flags() {
        let args: Vec<String> = [
            "--figure",
            "fig4",
            "--tier",
            "wram",
            "--tasklets",
            "1,2,3",
            "--scale",
            "0.5",
            "--seed",
            "7",
            "--dpus",
            "1,10",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let options = parse_args(&args).unwrap();
        assert_eq!(options.figure.as_deref(), Some("fig4"));
        assert_eq!(options.stm, None);
        assert_eq!(options.placement, MetadataPlacement::Wram);
        assert_eq!(options.tasklets, vec![1, 2, 3]);
        assert_eq!(options.dpus, Some(vec![1, 10]));
        assert!((options.scale - 0.5).abs() < 1e-12);
        assert_eq!(options.seed, 7);
    }

    #[test]
    fn bad_arguments_are_rejected() {
        assert!(parse_args(&["--tier".into(), "sram".into()]).is_err());
        assert!(parse_args(&["--workload".into(), "nope".into()]).is_err());
        assert!(parse_args(&["--stm".into(), "nope".into()]).is_err());
        assert!(parse_args(&["--bogus".into()]).is_err());
        assert!(parse_args(&["--scale".into()]).is_err());
    }

    #[test]
    fn stm_filter_parses_cli_kind_names() {
        let args: Vec<String> = ["--workload", "array-b", "--stm", "tiny-etlwb"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let options = parse_args(&args).unwrap();
        assert_eq!(options.workload, Some(Workload::ArrayB));
        assert_eq!(options.stm, Some(StmKind::TinyEtlWb));
    }

    #[test]
    fn stm_filter_accepts_grid_names_and_explains_struck_cells() {
        let args: Vec<String> = ["--workload", "array-b", "--stm", "orec-etl-wb"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_args(&args).unwrap().stm, Some(StmKind::TinyEtlWb));
        // A parseable but incoherent cell gets a "why" message, not a bare
        // "unknown".
        let err = parse_args(&["--stm".into(), "norec-etl-wb".into()]).unwrap_err();
        assert!(err.contains("struck-out"), "{err}");
        assert!(err.contains("commit-time"), "{err}");
        let err = parse_args(&["--stm".into(), "orec-ctl-wt".into()]).unwrap_err();
        assert!(err.contains("encounter-time"), "{err}");
        // Garbage still reads as unknown, naming both grammars.
        let err = parse_args(&["--stm".into(), "bogus".into()]).unwrap_err();
        assert!(err.contains("grid:"), "{err}");
    }

    #[test]
    fn retry_flag_parses_and_is_rejected_for_non_sweep_figures() {
        let args: Vec<String> = ["--workload", "array-b", "--retry", "adaptive"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_args(&args).unwrap().retry, RetryPolicy::Adaptive);
        assert_eq!(
            parse_args(&["--retry".into(), "exp".into()]).unwrap().retry,
            RetryPolicy::Exponential
        );
        assert!(parse_args(&["--retry".into(), "bogus".into()]).is_err());
        let options = Options { retry: RetryPolicy::Fixed, ..Options::default() };
        let err = run_figure("fig6", &options, &mut Vec::new()).unwrap_err();
        assert!(err.contains("--retry"), "{err}");
    }

    #[test]
    fn unknown_figures_are_rejected() {
        let options = Options::default();
        assert!(run_figure("fig99", &options, &mut Vec::new()).is_err());
    }

    #[test]
    fn sweep_only_flags_parse_and_are_rejected_elsewhere() {
        let args: Vec<String> = [
            "--workload",
            "array-a",
            "--burst-words",
            "8,16,64",
            "--json-out",
            "/tmp/cells.json",
            "--repeat",
            "3",
            "--read-strategy",
            "word-wise",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let options = parse_args(&args).unwrap();
        assert_eq!(options.burst_words, Some(vec![8, 16, 64]));
        assert_eq!(options.json_out.as_deref(), Some("/tmp/cells.json"));
        assert_eq!(options.repeat, 3);
        assert_eq!(options.read_strategy, ReadStrategy::WordWise);
        // Zero repeats, zero-word caps/records and bad lists are rejected
        // at parse time (a zero cap would otherwise panic deep inside
        // StmConfig).
        assert!(parse_args(&["--repeat".into(), "0".into()]).is_err());
        assert!(parse_args(&["--burst-words".into(), "8,x".into()]).is_err());
        assert!(parse_args(&["--burst-words".into(), "8,0".into()]).is_err());
        assert!(parse_args(&["--burst-words".into(), "8,500".into()]).is_err());
        assert!(parse_args(&["--record-words".into(), "0".into()]).is_err());
        assert!(parse_args(&["--record-words".into(), "150".into()]).is_err());
        assert!(parse_args(&["--read-strategy".into(), "bogus".into()]).is_err());
        assert_eq!(
            parse_args(&["--record-words".into(), "1".into()]).unwrap().record_words,
            Some(1)
        );
        // The flags only make sense for design-space sweeps.
        for (figure, options) in [
            ("fig6", Options { burst_words: Some(vec![8]), ..Options::default() }),
            ("fig7", Options { json_out: Some("x.json".into()), ..Options::default() }),
            ("latency", Options { repeat: 5, ..Options::default() }),
            ("fig8", Options { read_strategy: ReadStrategy::WordWise, ..Options::default() }),
            ("fig6", Options { record_words: Some(1), ..Options::default() }),
        ] {
            let err = run_figure(figure, &options, &mut Vec::new()).unwrap_err();
            assert!(err.contains("design-space sweeps"), "{figure}: {err}");
        }
    }

    #[test]
    fn fleet_flags_parse_and_default_sensibly() {
        let options = parse_args(&["--fleet".into()]).unwrap();
        assert!(options.fleet);
        assert_eq!(options.fleet_dpus(), DEFAULT_FLEET_DPUS.to_vec());
        assert_eq!(
            options.analytic_dpus(),
            vec![1, 250, 500, 1000, 1500, 2000, 2500],
            "fig7/fig8 keep their own default curve"
        );
        let args: Vec<String> =
            ["--fleet", "--dpus", "2,8", "--routing", "abort-retry", "--skew-thetas", "0.0,0.9"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let options = parse_args(&args).unwrap();
        assert_eq!(options.fleet_dpus(), vec![2, 8]);
        assert_eq!(options.routing, Some(RoutingPolicy::AbortAndRetry));
        assert_eq!(options.skew_thetas, Some(vec![0.0, 0.9]));
        assert!(parse_args(&["--routing".into(), "bogus".into()]).is_err());
        assert!(parse_args(&["--skew-thetas".into(), "-1.0".into()]).is_err());
        assert!(parse_args(&["--skew-thetas".into(), "x".into()]).is_err());
        let args: Vec<String> =
            ["--fleet", "--rebalance", "threshold:2.0", "--overlap", "--skew-phases", "2"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let options = parse_args(&args).unwrap();
        assert_eq!(options.rebalance, Some(RebalancePolicy::Threshold { max_over_mean: 2.0 }));
        assert!(options.overlap);
        assert_eq!(options.skew_phases, Some(2));
        assert!(parse_args(&["--rebalance".into(), "bogus".into()]).is_err());
        assert!(parse_args(&["--rebalance".into(), "threshold:0.5".into()]).is_err());
        assert!(parse_args(&["--skew-phases".into(), "0".into()]).is_err());
    }

    #[test]
    fn fleet_mode_rejects_sweep_only_flags() {
        for options in [
            Options { figure: Some("fig4".into()), ..Options::default() },
            Options { workload: Some(Workload::ArrayB), ..Options::default() },
            Options { burst_words: Some(vec![8]), ..Options::default() },
            Options { executors: vec![Executor::Threaded], ..Options::default() },
            Options { retry: RetryPolicy::Fixed, ..Options::default() },
        ] {
            let options = Options { fleet: true, ..options };
            assert!(run_fleet(&options).is_err());
        }
        // And figures reject the fleet-only flags.
        let options = Options { routing: Some(RoutingPolicy::RouteToOwner), ..Options::default() };
        let err = run_figure("fig6", &options, &mut Vec::new()).unwrap_err();
        assert!(err.contains("--fleet"), "{err}");
        let options = Options { skew_thetas: Some(vec![0.9]), ..Options::default() };
        let err = run_figure("fig7", &options, &mut Vec::new()).unwrap_err();
        assert!(err.contains("--skew-thetas"), "{err}");
        let options = Options {
            rebalance: Some(RebalancePolicy::parse("threshold").unwrap()),
            ..Options::default()
        };
        let err = run_figure("fig6", &options, &mut Vec::new()).unwrap_err();
        assert!(err.contains("--rebalance"), "{err}");
        let options = Options { overlap: true, ..Options::default() };
        let err = run_figure("latency", &options, &mut Vec::new()).unwrap_err();
        assert!(err.contains("--overlap"), "{err}");
        let options = Options { skew_phases: Some(2), ..Options::default() };
        let err = run_figure("fig7", &options, &mut Vec::new()).unwrap_err();
        assert!(err.contains("--skew-phases"), "{err}");
    }

    #[test]
    fn grid_and_tune_flags_parse_and_are_scoped() {
        assert!(parse_args(&["--grid".into()]).unwrap().grid);
        assert_eq!(parse_args(&["--tune".into()]).unwrap().tune, TunePolicy::windowed());
        assert_eq!(
            parse_args(&["--tune-window".into(), "16".into()]).unwrap().tune,
            TunePolicy::Windowed { window: 16 }
        );
        assert!(parse_args(&["--tune-window".into(), "0".into()]).is_err());
        assert!(parse_args(&["--tune-window".into(), "x".into()]).is_err());
        // --grid owns the knob axes it enumerates, and runs cells exactly
        // once on the simulator.
        for options in [
            Options { stm: Some(StmKind::Norec), ..Options::default() },
            Options { retry: RetryPolicy::Fixed, ..Options::default() },
            Options { read_strategy: ReadStrategy::WordWise, ..Options::default() },
            Options { tune: TunePolicy::windowed(), ..Options::default() },
            Options { fleet: true, ..Options::default() },
            Options { repeat: 2, ..Options::default() },
            Options { executors: vec![Executor::Threaded], ..Options::default() },
            Options { overlap: true, ..Options::default() },
        ] {
            let options = Options { grid: true, ..options };
            assert!(run_grid(&options).is_err());
        }
        // --tune is rejected by figures that cannot honour it.
        let options = Options { tune: TunePolicy::windowed(), ..Options::default() };
        let err = run_figure("fig6", &options, &mut Vec::new()).unwrap_err();
        assert!(err.contains("--tune"), "{err}");
    }

    #[test]
    fn workers_and_cache_dir_flags_parse_and_are_scoped() {
        assert_eq!(parse_args(&[]).unwrap().workers, 0, "default = every available core");
        let args: Vec<String> = ["--workers", "4", "--cache-dir", "/tmp/pim-cache"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let options = parse_args(&args).unwrap();
        assert_eq!(options.workers, 4);
        assert_eq!(options.cache_dir.as_deref(), Some("/tmp/pim-cache"));
        assert_eq!(options.worker_pool().workers(), 4);
        // 0 stays the explicit spelling of "all cores".
        assert_eq!(parse_args(&["--workers".into(), "0".into()]).unwrap().workers, 0);
        assert!(parse_args(&["--workers".into(), "x".into()]).is_err());
        assert!(parse_args(&["--workers".into()]).is_err());
        // The measured fleet never enters the simulation cache, and the
        // non-sweep figures have no simulator cells to memoise.
        let options =
            Options { fleet: true, cache_dir: Some("/tmp/c".into()), ..Options::default() };
        let err = run_fleet(&options).unwrap_err();
        assert!(err.contains("--cache-dir"), "{err}");
        let options = Options { cache_dir: Some("/tmp/c".into()), ..Options::default() };
        let err = run_figure("fig6", &options, &mut Vec::new()).unwrap_err();
        assert!(err.contains("--cache-dir"), "{err}");
    }

    #[test]
    fn executor_flag_parses_all_forms() {
        assert_eq!(parse_executors("simulator").unwrap(), vec![Executor::Simulator]);
        assert_eq!(parse_executors("sim").unwrap(), vec![Executor::Simulator]);
        assert_eq!(parse_executors("threaded").unwrap(), vec![Executor::Threaded]);
        assert_eq!(parse_executors("both").unwrap(), vec![Executor::Simulator, Executor::Threaded]);
        assert!(parse_executors("gpu").is_err());
        let args: Vec<String> =
            ["--workload", "array-b", "--executor", "both"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_args(&args).unwrap().executors.len(), 2);
    }

    #[test]
    fn executor_filter_is_rejected_for_figures_that_cannot_honour_it() {
        let options = Options { executors: vec![Executor::Threaded], ..Options::default() };
        for figure in ["fig6", "fig7", "fig8", "latency"] {
            let err = run_figure(figure, &options, &mut Vec::new()).unwrap_err();
            assert!(err.contains("--executor"), "{figure}: {err}");
        }
    }

    #[test]
    fn stm_filter_is_rejected_for_figures_that_cannot_honour_it() {
        let options = Options { stm: Some(StmKind::Norec), ..Options::default() };
        for figure in ["fig6", "fig7", "fig8", "latency"] {
            let err = run_figure(figure, &options, &mut Vec::new()).unwrap_err();
            assert!(err.contains("--stm"), "{figure}: {err}");
        }
    }

    #[test]
    fn service_flags_parse_with_defaults_and_validation() {
        let args: Vec<String> = [
            "--service",
            "--arrival",
            "bursty:32:0.5",
            "--rate",
            "1000,2000",
            "--mix",
            "60:30:10",
            "--skew",
            "zipf:0.9",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let options = parse_args(&args).unwrap();
        assert!(options.service);
        assert_eq!(options.arrival.as_deref(), Some("bursty:32:0.5"));
        assert_eq!(options.rates, Some(vec![1000.0, 2000.0]));
        assert_eq!(options.mix, Some(RequestMix { get: 60, put: 30, transfer: 10 }));
        assert_eq!(options.skew, Some(KeyDist::Zipf { theta: 0.9 }));
        // Bad values are usage errors, not mid-run panics.
        assert!(parse_args(&["--rate".into(), "0".into()]).is_err());
        assert!(parse_args(&["--rate".into(), "-5".into()]).is_err());
        assert!(parse_args(&["--rate".into(), "x".into()]).is_err());
        assert!(parse_args(&["--mix".into(), "0:0:0".into()]).is_err());
        assert!(parse_args(&["--skew".into(), "zipf:-1".into()]).is_err());
        assert!(parse_args(&["--skew".into(), "pareto".into()]).is_err());
    }

    #[test]
    fn service_mode_rejects_foreign_flags() {
        for options in [
            Options { figure: Some("fig4".into()), ..Options::default() },
            Options { workload: Some(Workload::ArrayB), ..Options::default() },
            Options { grid: true, ..Options::default() },
            Options { burst_words: Some(vec![8]), ..Options::default() },
            Options { record_words: Some(1), ..Options::default() },
            Options { read_strategy: ReadStrategy::WordWise, ..Options::default() },
            Options { retry: RetryPolicy::Fixed, ..Options::default() },
            Options { tune: TunePolicy::windowed(), ..Options::default() },
            Options { routing: Some(RoutingPolicy::RouteToOwner), ..Options::default() },
            Options { skew_thetas: Some(vec![0.9]), ..Options::default() },
            Options { skew_phases: Some(2), ..Options::default() },
            Options { workers: 4, ..Options::default() },
            Options { cache_dir: Some("/tmp/c".into()), ..Options::default() },
        ] {
            let options = Options { service: true, ..options };
            assert!(run_service_mode(&options).is_err());
        }
        // The fleet-only knobs need --fleet even under --service.
        for options in [
            Options { dpus: Some(vec![4]), ..Options::default() },
            Options { rebalance: Some(RebalancePolicy::Off), ..Options::default() },
            Options { overlap: true, ..Options::default() },
        ] {
            let options = Options { service: true, ..options };
            let err = run_service_mode(&options).unwrap_err();
            assert!(err.contains("--service --fleet"), "{err}");
        }
        // And the fleet variant runs on the simulator only.
        let options = Options {
            service: true,
            fleet: true,
            executors: vec![Executor::Threaded],
            ..Options::default()
        };
        let err = run_service_mode(&options).unwrap_err();
        assert!(err.contains("--executor"), "{err}");
    }

    #[test]
    fn service_mode_runs_and_honours_the_tier_default() {
        // Small stream, one rate: the smoke path of both variants.
        let base = Options {
            service: true,
            rates: Some(vec![50_000.0]),
            tasklets: vec![4],
            scale: 0.05,
            ..Options::default()
        };
        let sweep = run_service_mode(&base).unwrap();
        assert_eq!(sweep.points.len(), 1);
        assert_eq!(
            sweep.options.placement,
            MetadataPlacement::Wram,
            "the service mode defaults to WRAM metadata"
        );
        let mram = Options { placement: MetadataPlacement::Mram, tier_set: true, ..base.clone() };
        assert_eq!(run_service_mode(&mram).unwrap().options.placement, MetadataPlacement::Mram);
        let fleet = Options { fleet: true, dpus: Some(vec![2]), ..base };
        let sweep = run_service_mode(&fleet).unwrap();
        assert_eq!(sweep.fleet_points.len(), 1);
        assert_eq!(sweep.fleet_points[0].report.shards, 2);
    }
}
