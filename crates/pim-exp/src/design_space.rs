//! Figures 4, 5, 9 and 10: throughput, abort rate and time breakdown of
//! every STM design as the number of tasklets grows, for one workload and
//! one metadata placement — on either executor.
//!
//! Every point carries the unified [`ExecProfile`], so the same tables
//! (phase breakdown, abort-reason histogram, DMA/back-off summary) render
//! for simulator runs (cycle domain) and threaded runs (wall-clock domain);
//! the header names the [`TimeDomain`] so the units are never confused.
//! Cycle-only metrics (throughput, makespan) are simply absent from
//! threaded sweeps.
//!
//! # Seeding contract
//!
//! Every cell of a sweep (and of the [`crate::grid`] full-grid search) runs
//! under the *same* seed sequence: iteration `i` of a `--repeat N` cell runs
//! with [`repeat_seed`]`(base, i)`, and iteration 0 is always the base seed
//! itself. Because the sequence depends only on the base seed — never on the
//! cell's design, knobs or position in the sweep — any two cells are
//! comparable run-for-run: they saw identical workloads in the same order.
//! The fleet's `--repeat` path derives its per-iteration seeds the same way.

use pim_sim::Phase;
use pim_stm::{
    AbortReason, ExecProfile, MetadataPlacement, ReadStrategy, RetryPolicy, StmKind, TimeDomain,
    TunePolicy,
};
use pim_workloads::spec::Executor;
use pim_workloads::{RunSpec, Workload};
use serde::{Deserialize, Serialize};

use crate::cache::{CachedRun, SimCache};
use crate::pool::WorkerPool;
use crate::report::{fmt_f64, render_table};

/// Tuning knobs of a design-space sweep beyond the workload × design ×
/// tasklet grid itself.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SweepOptions {
    /// Scale factor applied to the workload size.
    pub scale: f64,
    /// PRNG seed.
    pub seed: u64,
    /// Which executor runs the sweep.
    pub executor: Executor,
    /// Median-of-N aggregation: run every cell `repeat` times and keep the
    /// run with the median merged total time. `1` (the default) runs each
    /// cell once; larger values make the noisy wall-clock cells of threaded
    /// sweeps sturdy enough for A/B comparisons (simulator cells are
    /// deterministic, so repeating them only re-confirms the same numbers).
    pub repeat: usize,
    /// How record reads move their data (A/B knob; default batched).
    pub read_strategy: ReadStrategy,
    /// How aborted attempts back off before retrying (the retry axis of
    /// the policy grid; default exponential, the legacy behaviour).
    pub retry: RetryPolicy,
    /// DMA burst cap shared by coalesced write-back and batched reads.
    pub max_burst_words: u32,
    /// Override for ArrayBench's read-phase record grouping; `Some(1)`
    /// restores the paper's original scattered single-entry reads. Ignored
    /// by other workloads.
    pub record_words: Option<u32>,
    /// Online-tuning policy every cell runs under (default static — no
    /// tuning; see [`pim_stm::tune`]).
    pub tune: TunePolicy,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            scale: 1.0,
            seed: 42,
            executor: Executor::Simulator,
            repeat: 1,
            read_strategy: ReadStrategy::default(),
            retry: RetryPolicy::default(),
            max_burst_words: pim_stm::config::DEFAULT_BURST_WORDS,
            record_words: None,
            tune: TunePolicy::Static,
        }
    }
}

/// The seed iteration `i` of a `--repeat N` cell runs under: iteration 0 is
/// the base seed itself (so `--repeat 1` reproduces a plain run exactly),
/// later iterations step deterministically. The sequence depends only on the
/// base seed, never on the cell — see the module-level seeding contract.
pub fn repeat_seed(base: u64, iteration: usize) -> u64 {
    base.wrapping_add(iteration as u64)
}

/// One configuration: a workload run with one STM design and one tasklet
/// count on one executor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesignSpacePoint {
    /// The STM design.
    pub kind: StmKind,
    /// Number of tasklets.
    pub tasklets: usize,
    /// Committed transactions per simulated second (simulator runs only —
    /// the threaded executor has no cycle model).
    pub throughput_tx_per_sec: Option<f64>,
    /// Aborted attempts / all attempts, in `[0, 1]`.
    pub abort_rate: f64,
    /// Total committed transactions.
    pub commits: u64,
    /// Total aborted attempts.
    pub aborts: u64,
    /// The unified execution profile, merged over all tasklets (phase
    /// times in the executor's native unit, abort-reason histogram, DMA and
    /// back-off counters).
    pub profile: ExecProfile,
    /// Simulated makespan in seconds (simulator runs only).
    pub makespan_seconds: Option<f64>,
    /// Spread over the `--repeat N` runs of this cell (`None` when the cell
    /// ran once — including every simulator cell, which is deterministic).
    /// The point's own numbers come from the run with the *median* total
    /// time; the spread is what turns a threaded A/B comparison into a
    /// confidence call: if two cells' `[min, max]` total-time ranges
    /// overlap, the median difference is noise.
    pub spread: Option<RepeatSpread>,
}

/// Min/median/max spread plus a mean ± 95 % confidence interval over the
/// repeated runs of one cell.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RepeatSpread {
    /// How many runs the cell was repeated for.
    pub runs: usize,
    /// Smallest merged total time across the runs (executor-native unit).
    pub min_total_time: u64,
    /// The kept (median) run's merged total time.
    pub median_total_time: u64,
    /// Largest merged total time across the runs.
    pub max_total_time: u64,
    /// Mean merged total time across the runs (executor-native unit).
    pub mean_total_time: f64,
    /// Half-width of the 95 % confidence interval of the mean total time
    /// (Student's t on `runs - 1` degrees of freedom, executor-native
    /// unit): the true mean lies in `mean ± ci95` with 95 % confidence.
    /// `0.0` for a single run, where no interval exists. Two cells whose
    /// intervals do not overlap differ significantly — the statistical
    /// grounding behind fleet and threaded A/B comparisons.
    pub ci95_total_time: f64,
    /// Fewest aborted attempts across the runs.
    pub min_aborts: u64,
    /// Most aborted attempts across the runs.
    pub max_aborts: u64,
}

impl RepeatSpread {
    /// `mean ± ci95` of the total time, computed from the per-run merged
    /// totals. With fewer than two runs the interval half-width is zero.
    pub fn mean_ci95(totals: &[u64]) -> (f64, f64) {
        mean_ci95(&totals.iter().map(|&t| t as f64).collect::<Vec<_>>())
    }
}

/// `mean ± ci95` of arbitrary repeated samples (Student's t on `n - 1`
/// degrees of freedom). With fewer than two samples the interval
/// half-width is zero. Shared by single-DPU cell spreads and fleet
/// makespan spreads so both report the same statistic.
pub fn mean_ci95(samples: &[f64]) -> (f64, f64) {
    let n = samples.len().max(1) as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    // Sample variance (n - 1 denominator) → standard error of the mean.
    let var = samples.iter().map(|&t| (t - mean).powi(2)).sum::<f64>() / (n - 1.0);
    let se = (var / n).sqrt();
    (mean, t_critical_95(samples.len() - 1) * se)
}

/// Two-sided 95 % critical value of Student's t distribution with `df`
/// degrees of freedom; the normal approximation (1.96) beyond 30.
fn t_critical_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        // No interval exists; callers return 0 width before reaching here.
        f64::INFINITY
    } else if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        1.96
    }
}

/// The full sweep for one workload/placement/executor: the data behind one
/// column of Fig. 4/5 (MRAM metadata) or Fig. 9/10 (WRAM metadata), or its
/// threaded-executor counterpart.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesignSpaceSweep {
    /// The workload that was run.
    pub workload: Workload,
    /// Where the STM metadata lived.
    pub placement: MetadataPlacement,
    /// Which executor ran the sweep.
    pub executor: Executor,
    /// Scale factor applied to the workload size.
    pub scale: f64,
    /// PRNG seed every cell ran under.
    pub seed: u64,
    /// How record reads moved their data in every cell.
    pub read_strategy: ReadStrategy,
    /// The retry policy every cell ran under.
    pub retry: RetryPolicy,
    /// The DMA burst cap every cell ran under.
    pub max_burst_words: u32,
    /// ArrayBench record-grouping override in force (`None` = the
    /// workload's default).
    pub record_words: Option<u32>,
    /// The online-tuning policy every cell ran under.
    pub tune: TunePolicy,
    /// All points.
    pub points: Vec<DesignSpacePoint>,
}

impl DesignSpaceSweep {
    /// Runs the sweep on the simulator: every STM design × every tasklet
    /// count in `tasklet_counts`.
    ///
    /// # Panics
    ///
    /// Panics if the workload cannot host its metadata in the requested tier
    /// (e.g. Labyrinth with WRAM metadata).
    pub fn run(
        workload: Workload,
        placement: MetadataPlacement,
        tasklet_counts: &[usize],
        scale: f64,
        seed: u64,
    ) -> Self {
        Self::run_kinds(workload, placement, &StmKind::ALL, tasklet_counts, scale, seed)
    }

    /// Runs the sweep on the simulator restricted to `kinds` — a single cell
    /// (or row) of the design-space grid, for quick reruns via
    /// `pim-exp --stm <kind>`.
    ///
    /// # Panics
    ///
    /// Panics as [`DesignSpaceSweep::run`] does, or if `kinds` is empty.
    pub fn run_kinds(
        workload: Workload,
        placement: MetadataPlacement,
        kinds: &[StmKind],
        tasklet_counts: &[usize],
        scale: f64,
        seed: u64,
    ) -> Self {
        Self::run_kinds_on(
            workload,
            placement,
            kinds,
            tasklet_counts,
            scale,
            seed,
            Executor::Simulator,
        )
    }

    /// Runs the sweep on an explicit executor (`pim-exp --executor
    /// threaded`). Threaded points carry the full wall-clock profile but no
    /// cycle-domain throughput/makespan.
    ///
    /// # Panics
    ///
    /// Panics as [`DesignSpaceSweep::run`] does, or if `kinds` is empty.
    pub fn run_kinds_on(
        workload: Workload,
        placement: MetadataPlacement,
        kinds: &[StmKind],
        tasklet_counts: &[usize],
        scale: f64,
        seed: u64,
        executor: Executor,
    ) -> Self {
        let options = SweepOptions { scale, seed, executor, ..SweepOptions::default() };
        Self::run_with(workload, placement, kinds, tasklet_counts, options)
    }

    /// Runs the sweep with the full option set ([`SweepOptions`]): executor
    /// choice, median-of-N repetition and the DMA knobs (read strategy and
    /// burst cap).
    ///
    /// # Panics
    ///
    /// Panics as [`DesignSpaceSweep::run`] does, if `kinds` is empty, or if
    /// `options.repeat` is zero.
    pub fn run_with(
        workload: Workload,
        placement: MetadataPlacement,
        kinds: &[StmKind],
        tasklet_counts: &[usize],
        options: SweepOptions,
    ) -> Self {
        Self::run_with_pool(
            workload,
            placement,
            kinds,
            tasklet_counts,
            options,
            &WorkerPool::default(),
            &SimCache::in_memory(),
        )
    }

    /// Runs the sweep on an explicit worker pool and simulation cache (the
    /// `--workers` / `--cache-dir` entry point): every cell × `--repeat`
    /// iteration fans out as one independent job, and results are
    /// regrouped in cell order, so the sweep — points, tables, JSON — is
    /// bit-identical for any worker count.
    ///
    /// Threaded-executor sweeps force [`WorkerPool::serial`]: their cells
    /// time real OS threads, and running two at once would contend for
    /// the cores being measured. They also bypass the cache (see
    /// [`SimCache::get_or_run`]).
    ///
    /// # Panics
    ///
    /// Panics as [`DesignSpaceSweep::run_with`] does.
    pub fn run_with_pool(
        workload: Workload,
        placement: MetadataPlacement,
        kinds: &[StmKind],
        tasklet_counts: &[usize],
        options: SweepOptions,
        pool: &WorkerPool,
        cache: &SimCache,
    ) -> Self {
        assert!(!kinds.is_empty(), "design-space sweep needs at least one STM design");
        assert!(options.repeat >= 1, "median-of-N needs at least one run per cell");
        let executor = options.executor;
        // Simulator cells are deterministic — every repeat provably returns
        // identical results — so they run (and report) once regardless.
        let repeat = if executor == Executor::Simulator { 1 } else { options.repeat };
        let serial = WorkerPool::serial();
        let pool = if executor == Executor::Simulator { pool } else { &serial };
        let mut jobs = Vec::new();
        for &kind in kinds {
            for &tasklets in tasklet_counts {
                for iteration in 0..repeat {
                    jobs.push((kind, tasklets, iteration));
                }
            }
        }
        let runs = pool.run(jobs, |_, (kind, tasklets, iteration)| {
            if iteration == 0 {
                eprintln!(
                    "[design-space] {} {} {} {} tasklets={}{}",
                    workload,
                    placement.name(),
                    executor.name(),
                    kind.name(),
                    tasklets,
                    if repeat > 1 { format!(" (median of {repeat})") } else { String::new() }
                );
            }
            let mut spec = RunSpec::new(workload, kind, placement, tasklets)
                .with_scale(options.scale)
                .with_seed(repeat_seed(options.seed, iteration))
                .with_read_strategy(options.read_strategy)
                .with_retry(options.retry)
                .with_max_burst_words(options.max_burst_words)
                .with_tune(options.tune);
            if let Some(words) = options.record_words {
                spec = spec.with_record_words(words);
            }
            cache.get_or_run(&spec, executor, || {
                let report = spec.run_on(executor);
                report.assert_invariants();
                report
            })
        });
        let points = runs
            .chunks(repeat)
            .zip(kinds.iter().flat_map(|&kind| tasklet_counts.iter().map(move |&t| (kind, t))))
            .map(|(cell_runs, (kind, tasklets))| {
                Self::point_from_runs(kind, tasklets, cell_runs.to_vec())
            })
            .collect();
        DesignSpaceSweep {
            workload,
            placement,
            executor,
            scale: options.scale,
            seed: options.seed,
            read_strategy: options.read_strategy,
            retry: options.retry,
            max_burst_words: options.max_burst_words,
            record_words: options.record_words,
            tune: options.tune,
            points,
        }
    }

    /// Builds one point from a cell's `repeat` runs (already clamped to 1
    /// for deterministic simulator cells by the caller), keeping the run
    /// with the median merged total time (commit/abort counts and the
    /// whole profile come from that run, so the point stays internally
    /// consistent). With `repeat > 1` the min/median/max spread over the
    /// runs rides along so the report carries confidence information, not
    /// just a midpoint.
    ///
    /// Iteration `i` ran under [`repeat_seed`]`(base, i)` — the same
    /// derived sequence for every cell (see the module-level seeding
    /// contract), so repeated runs sample workload variation instead of
    /// re-measuring one workload instance, and cells stay comparable.
    fn point_from_runs(
        kind: StmKind,
        tasklets: usize,
        mut runs: Vec<CachedRun>,
    ) -> DesignSpacePoint {
        let repeat = runs.len();
        runs.sort_by_cached_key(|r| r.profile.total_time());
        let spread = (repeat > 1).then(|| {
            let totals: Vec<u64> = runs.iter().map(|r| r.profile.total_time()).collect();
            let (mean_total_time, ci95_total_time) = RepeatSpread::mean_ci95(&totals);
            RepeatSpread {
                runs: repeat,
                min_total_time: totals.first().copied().unwrap_or(0),
                median_total_time: totals[(totals.len() - 1) / 2],
                max_total_time: totals.last().copied().unwrap_or(0),
                mean_total_time,
                ci95_total_time,
                min_aborts: runs.iter().map(|r| r.aborts).min().unwrap_or(0),
                max_aborts: runs.iter().map(|r| r.aborts).max().unwrap_or(0),
            }
        });
        // Lower median: for an even repeat count this keeps the *faster*
        // middle run rather than degenerating to worst-of-N (repeat = 2
        // would otherwise always keep the slower run).
        let run = runs.swap_remove((runs.len() - 1) / 2);
        DesignSpacePoint {
            kind,
            tasklets,
            throughput_tx_per_sec: run.throughput_tx_per_sec,
            abort_rate: run.abort_rate(),
            commits: run.commits,
            aborts: run.aborts,
            profile: run.profile,
            makespan_seconds: run.makespan_seconds,
            spread,
        }
    }

    /// The point for a specific design and tasklet count, if it was swept.
    pub fn point(&self, kind: StmKind, tasklets: usize) -> Option<&DesignSpacePoint> {
        self.points.iter().find(|p| p.kind == kind && p.tasklets == tasklets)
    }

    /// The designs this sweep actually ran, in taxonomy order.
    pub fn swept_kinds(&self) -> Vec<StmKind> {
        StmKind::ALL.into_iter().filter(|k| self.points.iter().any(|p| p.kind == *k)).collect()
    }

    /// The time domain of every profile in this sweep.
    pub fn time_domain(&self) -> TimeDomain {
        self.executor.time_domain()
    }

    /// Peak throughput (over the swept tasklet counts) of one design; 0.0
    /// on the threaded executor, which has no cycle model.
    pub fn peak_throughput(&self, kind: StmKind) -> f64 {
        self.points
            .iter()
            .filter(|p| p.kind == kind)
            .filter_map(|p| p.throughput_tx_per_sec)
            .fold(0.0, f64::max)
    }

    /// The design with the highest peak throughput in this sweep.
    pub fn best_design(&self) -> StmKind {
        StmKind::ALL
            .into_iter()
            .max_by(|a, b| {
                self.peak_throughput(*a)
                    .partial_cmp(&self.peak_throughput(*b))
                    .expect("throughputs are finite")
            })
            .expect("at least one design")
    }

    /// Renders the throughput panel (tx/s per design and tasklet count),
    /// matching the top rows of Fig. 4/5. Threaded cells render as `-`.
    pub fn throughput_table(&self) -> String {
        self.metric_table("throughput (tx/s)", |p| {
            p.throughput_tx_per_sec.map(fmt_f64).unwrap_or_else(|| "-".into())
        })
    }

    /// Renders the abort-rate panel (%), matching the middle rows of
    /// Fig. 4/5.
    pub fn abort_table(&self) -> String {
        self.metric_table("abort rate (%)", |p| fmt_f64(p.abort_rate * 100.0))
    }

    fn metric_table(&self, metric: &str, value: impl Fn(&DesignSpacePoint) -> String) -> String {
        let mut tasklet_counts: Vec<usize> =
            self.points.iter().map(|p| p.tasklets).collect::<Vec<_>>();
        tasklet_counts.sort_unstable();
        tasklet_counts.dedup();
        let mut header = vec![format!("{} [{}, {}]", self.workload, metric, self.executor)];
        header.extend(tasklet_counts.iter().map(|t| format!("{t} taskl.")));
        let rows = self
            .swept_kinds()
            .iter()
            .map(|&kind| {
                let mut row = vec![kind.name().to_string()];
                for &t in &tasklet_counts {
                    row.push(self.point(kind, t).map(&value).unwrap_or_else(|| "-".into()));
                }
                row
            })
            .collect::<Vec<_>>();
        render_table(&header, &rows)
    }

    /// The largest swept tasklet count (the column the per-phase tables
    /// report).
    fn max_tasklets(&self) -> usize {
        self.points.iter().map(|p| p.tasklets).max().expect("sweep is not empty")
    }

    /// Rows of `(kind, point)` at the largest swept tasklet count.
    fn max_tasklet_points(&self) -> Vec<(StmKind, &DesignSpacePoint)> {
        let max_tasklets = self.max_tasklets();
        StmKind::ALL
            .iter()
            .filter_map(|&kind| self.point(kind, max_tasklets).map(|p| (kind, p)))
            .collect()
    }

    /// Renders the time-breakdown panel (fraction of time per phase at the
    /// largest swept tasklet count), matching the bottom rows of Fig. 4/5.
    /// The same table renders for both executors; the header names the
    /// native unit (cycles vs wall-clock nanoseconds).
    pub fn breakdown_table(&self) -> String {
        let mut header = vec![format!(
            "{} phases @{} tasklets [{}]",
            self.workload,
            self.max_tasklets(),
            self.time_domain().unit()
        )];
        header.extend(Phase::ALL.iter().map(|p| p.label().to_string()));
        let rows = self
            .max_tasklet_points()
            .into_iter()
            .map(|(kind, point)| {
                let mut row = vec![kind.name().to_string()];
                for phase in Phase::ALL {
                    row.push(format!("{:.1}%", point.profile.phases().fraction(phase) * 100.0));
                }
                row
            })
            .collect::<Vec<_>>();
        render_table(&header, &rows)
    }

    /// Renders the abort-reason histogram (at the largest swept tasklet
    /// count): why attempts aborted, per design. The histogram always sums
    /// to the abort count — the shared retry core tags every abort.
    pub fn abort_reason_table(&self) -> String {
        let mut header =
            vec![format!("{} aborts by reason @{} tasklets", self.workload, self.max_tasklets())];
        header.extend(AbortReason::ALL.iter().map(|r| r.label().to_string()));
        header.push("total".to_string());
        let rows = self
            .max_tasklet_points()
            .into_iter()
            .map(|(kind, point)| {
                let mut row = vec![kind.name().to_string()];
                for reason in AbortReason::ALL {
                    row.push(point.profile.aborts_for(reason).to_string());
                }
                row.push(point.profile.aborts().to_string());
                row
            })
            .collect::<Vec<_>>();
        render_table(&header, &rows)
    }

    /// Whether any cell of this sweep carries a `--repeat` spread.
    pub fn has_spread(&self) -> bool {
        self.points.iter().any(|p| p.spread.is_some())
    }

    /// Renders the `--repeat` spread panel (at the largest swept tasklet
    /// count): min/median/max total time and the abort range over the
    /// repeated runs of each cell, in the executor's native unit. Rendered
    /// only when [`DesignSpaceSweep::has_spread`].
    pub fn repeat_spread_table(&self) -> String {
        let unit = self.time_domain().unit();
        let header = vec![
            format!("{} repeat spread @{} tasklets [{}]", self.workload, self.max_tasklets(), unit),
            "runs".to_string(),
            format!("min total ({unit})"),
            format!("median total ({unit})"),
            format!("max total ({unit})"),
            format!("mean ± CI95 ({unit})"),
            "aborts (min..max)".to_string(),
        ];
        let rows = self
            .max_tasklet_points()
            .into_iter()
            .map(|(kind, point)| match &point.spread {
                Some(s) => vec![
                    kind.name().to_string(),
                    s.runs.to_string(),
                    s.min_total_time.to_string(),
                    s.median_total_time.to_string(),
                    s.max_total_time.to_string(),
                    format!("{} ± {}", fmt_f64(s.mean_total_time), fmt_f64(s.ci95_total_time)),
                    format!("{}..{}", s.min_aborts, s.max_aborts),
                ],
                None => vec![
                    kind.name().to_string(),
                    "1".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ],
            })
            .collect::<Vec<_>>();
        render_table(&header, &rows)
    }

    /// Renders the profile summary (at the largest swept tasklet count):
    /// attempts, memory movement — absolute and per commit, the
    /// DMA-efficiency metric the burst knobs move — and back-off/lock-wait
    /// time, in the executor's native unit.
    pub fn profile_table(&self) -> String {
        let unit = self.time_domain().unit();
        let header = vec![
            format!("{} profile @{} tasklets [{}]", self.workload, self.max_tasklets(), unit),
            "attempts".to_string(),
            "commits".to_string(),
            "aborts".to_string(),
            "DMA setups".to_string(),
            "DMA words".to_string(),
            "setups/commit".to_string(),
            "words/commit".to_string(),
            format!("backoff ({unit})"),
            format!("total ({unit})"),
        ];
        let rows = self
            .max_tasklet_points()
            .into_iter()
            .map(|(kind, point)| {
                let p = &point.profile;
                vec![
                    kind.name().to_string(),
                    p.attempts().to_string(),
                    p.commits().to_string(),
                    p.aborts().to_string(),
                    p.dma_setups().to_string(),
                    p.dma_words().to_string(),
                    fmt_f64(p.dma_setups_per_commit()),
                    fmt_f64(p.dma_words_per_commit()),
                    p.backoff_time().to_string(),
                    p.total_time().to_string(),
                ]
            })
            .collect::<Vec<_>>();
        render_table(&header, &rows)
    }
}

/// The `--burst-words` study: the same cell run under a ladder of DMA
/// burst caps, reporting MRAM DMA setups per commit for each cap. This
/// ties the Fig. 9/10 WRAM/staging-pressure discussion to the
/// [`pim_stm::StmConfig::max_burst_words`] knob — a tight cap splits the
/// batched-read and coalesced-write-back bursts into more transfers, a
/// roomy one amortises more setups, and the words moved stay constant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BurstSweep {
    /// The workload that was run.
    pub workload: Workload,
    /// Where the STM metadata lived.
    pub placement: MetadataPlacement,
    /// Which executor ran the cells.
    pub executor: Executor,
    /// Tasklet count of every cell.
    pub tasklets: usize,
    /// The burst caps swept, in the order they were run.
    pub caps: Vec<u32>,
    /// One full design-space sweep per cap (same order as `caps`), so the
    /// per-cap cells can be dumped or inspected like any other sweep.
    pub sweeps: Vec<DesignSpaceSweep>,
}

impl BurstSweep {
    /// Runs `kinds` × `caps` at one tasklet count; everything else
    /// (executor, repeat, read strategy) comes from `options` —
    /// `options.max_burst_words` is overridden by each cap in turn. Cells
    /// an earlier sweep already ran under the same knobs (e.g. the main
    /// design-space sweep sharing `cache`, or a warm `--cache-dir`) are
    /// replayed from the cache instead of re-simulated — the
    /// content-addressed generalisation of the old ad-hoc base-sweep
    /// reuse.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` or `caps` is empty, or as
    /// [`DesignSpaceSweep::run_with`] does.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        workload: Workload,
        placement: MetadataPlacement,
        kinds: &[StmKind],
        tasklets: usize,
        caps: &[u32],
        options: SweepOptions,
        pool: &WorkerPool,
        cache: &SimCache,
    ) -> Self {
        assert!(!caps.is_empty(), "the burst-cap sweep needs at least one cap");
        let sweeps = caps
            .iter()
            .map(|&cap| {
                DesignSpaceSweep::run_with_pool(
                    workload,
                    placement,
                    kinds,
                    &[tasklets],
                    SweepOptions { max_burst_words: cap, ..options },
                    pool,
                    cache,
                )
            })
            .collect();
        BurstSweep {
            workload,
            placement,
            executor: options.executor,
            tasklets,
            caps: caps.to_vec(),
            sweeps,
        }
    }

    /// The merged profile of one design under each cap, in cap order.
    fn profiles_for(&self, kind: StmKind) -> Vec<&ExecProfile> {
        self.sweeps
            .iter()
            .map(|sweep| &sweep.point(kind, self.tasklets).expect("cell was swept").profile)
            .collect()
    }

    /// Renders MRAM DMA setups per commit under each cap, plus the words
    /// moved per commit for context. Words are usually cap-invariant (the
    /// same data moves either way), but contention can perturb them (extra
    /// re-issued bursts, word-wise fallbacks), so the column shows the
    /// range across caps whenever they diverge.
    pub fn table(&self) -> String {
        let mut header = vec![format!(
            "{} DMA setups/commit @{} tasklets ({}, {})",
            self.workload,
            self.tasklets,
            self.placement.name(),
            self.executor
        )];
        header.extend(self.caps.iter().map(|cap| format!("cap {cap}")));
        header.push("words/commit".to_string());
        let kinds = self.sweeps.first().map(DesignSpaceSweep::swept_kinds).unwrap_or_default();
        let rows = kinds
            .into_iter()
            .map(|kind| {
                let profiles = self.profiles_for(kind);
                let mut row = vec![kind.name().to_string()];
                row.extend(profiles.iter().map(|p| fmt_f64(p.dma_setups_per_commit())));
                let words: Vec<f64> = profiles.iter().map(|p| p.dma_words_per_commit()).collect();
                let lo = words.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = words.iter().copied().fold(0.0, f64::max);
                row.push(if fmt_f64(lo) == fmt_f64(hi) {
                    fmt_f64(hi)
                } else {
                    format!("{}..{}", fmt_f64(lo), fmt_f64(hi))
                });
                row
            })
            .collect::<Vec<_>>();
        render_table(&header, &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep(workload: Workload, placement: MetadataPlacement) -> DesignSpaceSweep {
        DesignSpaceSweep::run(workload, placement, &[1, 4], 0.05, 9)
    }

    /// The documented seeding contract: iteration 0 runs the base seed
    /// itself (so `--repeat 1` and an unrepeated run are the same run), and
    /// iteration `i` runs `base + i` — a sequence that depends only on the
    /// base seed, so every cell of a sweep sees the same seeds.
    #[test]
    fn repeat_iterations_follow_the_documented_seed_sequence() {
        assert_eq!(repeat_seed(42, 0), 42);
        assert_eq!(repeat_seed(42, 3), 45);
        assert_eq!(repeat_seed(u64::MAX, 1), 0, "the sequence wraps instead of panicking");
        let seeds: Vec<u64> = (0..4).map(|i| repeat_seed(7, i)).collect();
        assert_eq!(seeds, vec![7, 8, 9, 10]);
    }

    #[test]
    fn sweep_covers_every_design_and_tasklet_count() {
        let sweep = tiny_sweep(Workload::ArrayB, MetadataPlacement::Mram);
        assert_eq!(sweep.points.len(), StmKind::ALL.len() * 2);
        assert_eq!(sweep.executor, Executor::Simulator);
        assert_eq!(sweep.time_domain(), TimeDomain::Cycles);
        for kind in StmKind::ALL {
            assert!(sweep.point(kind, 1).is_some());
            assert!(sweep.peak_throughput(kind) > 0.0, "{kind} produced no throughput");
        }
        let _ = sweep.best_design();
    }

    #[test]
    fn tables_render_for_all_metrics() {
        let sweep = tiny_sweep(Workload::KmeansHc, MetadataPlacement::Wram);
        for table in [
            sweep.throughput_table(),
            sweep.abort_table(),
            sweep.breakdown_table(),
            sweep.abort_reason_table(),
            sweep.profile_table(),
        ] {
            assert!(table.contains("NOrec"));
            assert!(table.contains("VR CTLWB"));
        }
        assert!(sweep.breakdown_table().contains("[cyc]"), "cycle domain must be named");
    }

    #[test]
    fn filtered_sweeps_run_a_single_design() {
        let sweep = DesignSpaceSweep::run_kinds(
            Workload::ArrayB,
            MetadataPlacement::Mram,
            &[StmKind::Norec],
            &[2],
            0.05,
            9,
        );
        assert_eq!(sweep.points.len(), 1);
        assert_eq!(sweep.swept_kinds(), vec![StmKind::Norec]);
        let table = sweep.throughput_table();
        assert!(table.contains("NOrec"));
        assert!(!table.contains("VR CTLWB"), "unswept designs must not render as rows");
    }

    #[test]
    fn threaded_sweeps_share_the_schema_but_not_the_cycle_metrics() {
        let sweep = DesignSpaceSweep::run_kinds_on(
            Workload::ArrayB,
            MetadataPlacement::Mram,
            &[StmKind::Norec, StmKind::TinyEtlWb],
            &[2],
            0.05,
            9,
            Executor::Threaded,
        );
        assert_eq!(sweep.executor, Executor::Threaded);
        assert_eq!(sweep.time_domain(), TimeDomain::WallNanos);
        for point in &sweep.points {
            assert_eq!(point.throughput_tx_per_sec, None);
            assert_eq!(point.makespan_seconds, None);
            assert_eq!(point.profile.time_domain, TimeDomain::WallNanos);
            assert!(point.commits > 0);
            assert_eq!(point.profile.commits(), point.commits);
            assert_eq!(point.profile.histogram_total(), point.aborts);
            assert!(point.profile.total_time() > 0, "wall-clock time must accrue");
        }
        assert!(sweep.breakdown_table().contains("[ns]"), "wall-clock domain must be named");
        assert!(sweep.throughput_table().contains('-'), "no cycle throughput on threads");
        let _ = sweep.abort_reason_table();
    }

    #[test]
    fn repeated_threaded_cells_carry_a_min_median_max_spread() {
        let sweep = DesignSpaceSweep::run_with(
            Workload::ArrayB,
            MetadataPlacement::Mram,
            &[StmKind::Norec],
            &[2],
            SweepOptions { executor: Executor::Threaded, repeat: 3, ..SweepOptions::default() },
        );
        assert!(sweep.has_spread());
        let point = sweep.point(StmKind::Norec, 2).unwrap();
        let spread = point.spread.as_ref().expect("repeat > 1 must record a spread");
        assert_eq!(spread.runs, 3);
        assert!(spread.min_total_time <= spread.median_total_time);
        assert!(spread.median_total_time <= spread.max_total_time);
        assert!(spread.min_aborts <= spread.max_aborts);
        // The mean lies inside the observed range and the interval is a
        // well-formed half-width.
        assert!(spread.mean_total_time >= spread.min_total_time as f64);
        assert!(spread.mean_total_time <= spread.max_total_time as f64);
        assert!(spread.ci95_total_time >= 0.0);
        assert!(spread.ci95_total_time.is_finite());
        // The kept point *is* the median run.
        assert_eq!(point.profile.total_time(), spread.median_total_time);
        let table = sweep.repeat_spread_table();
        assert!(table.contains("repeat spread"));
        assert!(table.contains("NOrec"));
        assert!(table.contains("CI95"), "the spread panel must show the interval");
        assert!(table.contains("[ns]"), "spread times are in the executor's native unit");
    }

    #[test]
    fn confidence_intervals_follow_student_t() {
        // Two runs (df = 1): mean 150, sample sd ≈ 70.71, se = 50,
        // t(1) = 12.706 → half-width 635.3.
        let (mean, ci) = RepeatSpread::mean_ci95(&[100, 200]);
        assert!((mean - 150.0).abs() < 1e-9);
        assert!((ci - 12.706 * 50.0).abs() < 1e-6, "got {ci}");
        // Identical runs: zero-width interval.
        let (mean, ci) = RepeatSpread::mean_ci95(&[42, 42, 42, 42]);
        assert_eq!(mean, 42.0);
        assert_eq!(ci, 0.0);
        // A single run has no interval.
        let (mean, ci) = RepeatSpread::mean_ci95(&[7]);
        assert_eq!(mean, 7.0);
        assert_eq!(ci, 0.0);
        // Large df falls back to the normal critical value.
        assert_eq!(t_critical_95(100), 1.96);
        assert_eq!(t_critical_95(30), 2.042);
        assert!(t_critical_95(0).is_infinite());
    }

    #[test]
    fn simulator_cells_are_deterministic_and_carry_no_spread() {
        let sweep = DesignSpaceSweep::run_with(
            Workload::ArrayB,
            MetadataPlacement::Mram,
            &[StmKind::Norec],
            &[2],
            SweepOptions { repeat: 5, ..SweepOptions::default() },
        );
        assert!(!sweep.has_spread(), "simulator repeats are clamped to one run");
        assert!(sweep.point(StmKind::Norec, 2).unwrap().spread.is_none());
    }

    /// The `--workers` acceptance criterion for sweeps, including the
    /// flattened `--repeat` iterations: any worker count produces the same
    /// JSON dump byte for byte.
    #[test]
    fn sweep_results_are_bit_identical_for_any_worker_count() {
        use crate::cache::SimCache;
        use crate::pool::WorkerPool;
        let options = SweepOptions { scale: 0.05, seed: 9, repeat: 2, ..SweepOptions::default() };
        let run = |pool: &WorkerPool| {
            DesignSpaceSweep::run_with_pool(
                Workload::ArrayB,
                MetadataPlacement::Mram,
                &[StmKind::Norec, StmKind::TinyEtlWb],
                &[1, 4],
                options,
                pool,
                &SimCache::in_memory(),
            )
        };
        let serial = run(&WorkerPool::serial());
        let wide = run(&WorkerPool::new(8));
        assert_eq!(
            crate::json::sweeps_to_json(&[serial]).to_string(),
            crate::json::sweeps_to_json(&[wide]).to_string(),
            "worker count must never change a single swept number"
        );
    }

    /// A burst ladder sharing the base sweep's cache replays the cells the
    /// base already ran: the cap equal to the base's is pure hits — the
    /// content-addressed form of the old ad-hoc base-sweep reuse.
    #[test]
    fn burst_sweeps_reuse_base_cells_through_the_cache() {
        use crate::cache::SimCache;
        use crate::pool::WorkerPool;
        let cache = SimCache::in_memory();
        let pool = WorkerPool::serial();
        let options = SweepOptions { scale: 0.05, seed: 9, ..SweepOptions::default() };
        let base = DesignSpaceSweep::run_with_pool(
            Workload::ArrayB,
            MetadataPlacement::Mram,
            &[StmKind::TinyEtlWb],
            &[4],
            options,
            &pool,
            &cache,
        );
        let before = cache.stats();
        assert_eq!(before.misses, 1, "the base sweep simulates its one cell");
        let burst = BurstSweep::run(
            Workload::ArrayB,
            MetadataPlacement::Mram,
            &[StmKind::TinyEtlWb],
            4,
            &[base.max_burst_words, 8],
            options,
            &pool,
            &cache,
        );
        let delta = cache.stats().since(&before);
        assert_eq!(delta.hits, 1, "the base-cap cell must replay from the cache");
        assert_eq!(delta.misses, 1, "only the new cap simulates");
        let reused = burst
            .sweeps
            .iter()
            .find(|s| s.max_burst_words == base.max_burst_words)
            .expect("the base cap was swept");
        let (a, b) = (
            reused.point(StmKind::TinyEtlWb, 4).unwrap(),
            base.point(StmKind::TinyEtlWb, 4).unwrap(),
        );
        assert_eq!(a.commits, b.commits);
        assert_eq!(a.profile.total_time(), b.profile.total_time());
        assert_eq!(a.throughput_tx_per_sec, b.throughput_tx_per_sec);
    }

    #[test]
    fn retry_policy_threads_into_the_cells() {
        // An adaptive-retry sweep is a *new* sweepable cell (same design
        // axes, different retry axis): it must run, conserve its
        // invariants, and record the policy it ran under.
        let sweep = DesignSpaceSweep::run_with(
            Workload::ArrayB,
            MetadataPlacement::Mram,
            &[StmKind::TinyEtlWb],
            &[4],
            SweepOptions { retry: RetryPolicy::Adaptive, scale: 0.05, ..SweepOptions::default() },
        );
        assert_eq!(sweep.retry, RetryPolicy::Adaptive);
        let point = sweep.point(StmKind::TinyEtlWb, 4).unwrap();
        assert!(point.commits > 0);
        // The default-retry run of the same cell is the legacy behaviour;
        // under contention the two back-off schedules diverge, which is
        // exactly what makes the axis sweepable (deterministic check: the
        // simulator reproduces each policy's schedule bit-for-bit).
        let default_sweep = DesignSpaceSweep::run_with(
            Workload::ArrayB,
            MetadataPlacement::Mram,
            &[StmKind::TinyEtlWb],
            &[4],
            SweepOptions { scale: 0.05, ..SweepOptions::default() },
        );
        let default_point = default_sweep.point(StmKind::TinyEtlWb, 4).unwrap();
        assert_eq!(point.commits, default_point.commits, "same workload, same commits");
    }

    #[test]
    fn more_tasklets_do_not_reduce_total_commits() {
        let sweep = tiny_sweep(Workload::ArrayB, MetadataPlacement::Mram);
        for kind in StmKind::ALL {
            let one = sweep.point(kind, 1).unwrap().commits;
            let four = sweep.point(kind, 4).unwrap().commits;
            assert!(four >= one, "{kind}: commits shrank with more tasklets");
        }
    }

    #[test]
    fn profiles_agree_with_the_point_counters_on_the_simulator() {
        let sweep = DesignSpaceSweep::run_kinds(
            Workload::ArrayB,
            MetadataPlacement::Mram,
            &[StmKind::VrEtlWb],
            &[4],
            0.05,
            9,
        );
        let point = sweep.point(StmKind::VrEtlWb, 4).unwrap();
        assert_eq!(point.profile.commits(), point.commits);
        assert_eq!(point.profile.aborts(), point.aborts);
        assert_eq!(point.profile.histogram_total(), point.aborts);
    }
}
