//! Figures 4, 5, 9 and 10: throughput, abort rate and time breakdown of
//! every STM design as the number of tasklets grows, for one workload and
//! one metadata placement.

use pim_sim::{Phase, PhaseBreakdown};
use pim_stm::{MetadataPlacement, StmKind};
use pim_workloads::spec::Executor;
use pim_workloads::{RunSpec, Workload};
use serde::{Deserialize, Serialize};

use crate::report::{fmt_f64, render_table};

/// One simulated configuration: a workload run with one STM design and one
/// tasklet count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesignSpacePoint {
    /// The STM design.
    pub kind: StmKind,
    /// Number of tasklets.
    pub tasklets: usize,
    /// Committed transactions per simulated second.
    pub throughput_tx_per_sec: f64,
    /// Aborted attempts / all attempts, in `[0, 1]`.
    pub abort_rate: f64,
    /// Total committed transactions.
    pub commits: u64,
    /// Total aborted attempts.
    pub aborts: u64,
    /// Per-phase cycle breakdown summed over tasklets.
    pub breakdown: PhaseBreakdown,
    /// Simulated makespan in seconds.
    pub makespan_seconds: f64,
}

/// The full sweep for one workload/placement: the data behind one column of
/// Fig. 4/5 (MRAM metadata) or Fig. 9/10 (WRAM metadata).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesignSpaceSweep {
    /// The workload that was run.
    pub workload: Workload,
    /// Where the STM metadata lived.
    pub placement: MetadataPlacement,
    /// Scale factor applied to the workload size.
    pub scale: f64,
    /// All simulated points.
    pub points: Vec<DesignSpacePoint>,
}

impl DesignSpaceSweep {
    /// Runs the sweep: every STM design × every tasklet count in
    /// `tasklet_counts`.
    ///
    /// # Panics
    ///
    /// Panics if the workload cannot host its metadata in the requested tier
    /// (e.g. Labyrinth with WRAM metadata).
    pub fn run(
        workload: Workload,
        placement: MetadataPlacement,
        tasklet_counts: &[usize],
        scale: f64,
        seed: u64,
    ) -> Self {
        Self::run_kinds(workload, placement, &StmKind::ALL, tasklet_counts, scale, seed)
    }

    /// Runs the sweep restricted to `kinds` — a single cell (or row) of the
    /// design-space grid, for quick reruns via `pim-exp --stm <kind>`.
    ///
    /// # Panics
    ///
    /// Panics as [`DesignSpaceSweep::run`] does, or if `kinds` is empty.
    pub fn run_kinds(
        workload: Workload,
        placement: MetadataPlacement,
        kinds: &[StmKind],
        tasklet_counts: &[usize],
        scale: f64,
        seed: u64,
    ) -> Self {
        assert!(!kinds.is_empty(), "design-space sweep needs at least one STM design");
        let mut points = Vec::new();
        for &kind in kinds {
            for &tasklets in tasklet_counts {
                eprintln!(
                    "[design-space] {} {} {} tasklets={}",
                    workload,
                    placement.name(),
                    kind.name(),
                    tasklets
                );
                let report = RunSpec::new(workload, kind, placement, tasklets)
                    .with_scale(scale)
                    .with_seed(seed)
                    .run_on(Executor::Simulator);
                report.assert_invariants();
                let sim = report.sim.as_ref().expect("simulator runs carry the cycle report");
                points.push(DesignSpacePoint {
                    kind,
                    tasklets,
                    throughput_tx_per_sec: sim.throughput_tx_per_sec(),
                    abort_rate: report.abort_rate(),
                    commits: report.commits,
                    aborts: report.aborts,
                    breakdown: sim.breakdown(),
                    makespan_seconds: sim.makespan_seconds(),
                });
            }
        }
        DesignSpaceSweep { workload, placement, scale, points }
    }

    /// The point for a specific design and tasklet count, if it was swept.
    pub fn point(&self, kind: StmKind, tasklets: usize) -> Option<&DesignSpacePoint> {
        self.points.iter().find(|p| p.kind == kind && p.tasklets == tasklets)
    }

    /// The designs this sweep actually ran, in taxonomy order.
    pub fn swept_kinds(&self) -> Vec<StmKind> {
        StmKind::ALL.into_iter().filter(|k| self.points.iter().any(|p| p.kind == *k)).collect()
    }

    /// Peak throughput (over the swept tasklet counts) of one design.
    pub fn peak_throughput(&self, kind: StmKind) -> f64 {
        self.points
            .iter()
            .filter(|p| p.kind == kind)
            .map(|p| p.throughput_tx_per_sec)
            .fold(0.0, f64::max)
    }

    /// The design with the highest peak throughput in this sweep.
    pub fn best_design(&self) -> StmKind {
        StmKind::ALL
            .into_iter()
            .max_by(|a, b| {
                self.peak_throughput(*a)
                    .partial_cmp(&self.peak_throughput(*b))
                    .expect("throughputs are finite")
            })
            .expect("at least one design")
    }

    /// Renders the throughput panel (tx/s per design and tasklet count),
    /// matching the top rows of Fig. 4/5.
    pub fn throughput_table(&self) -> String {
        self.metric_table("throughput (tx/s)", |p| fmt_f64(p.throughput_tx_per_sec))
    }

    /// Renders the abort-rate panel (%), matching the middle rows of
    /// Fig. 4/5.
    pub fn abort_table(&self) -> String {
        self.metric_table("abort rate (%)", |p| fmt_f64(p.abort_rate * 100.0))
    }

    fn metric_table(&self, metric: &str, value: impl Fn(&DesignSpacePoint) -> String) -> String {
        let mut tasklet_counts: Vec<usize> =
            self.points.iter().map(|p| p.tasklets).collect::<Vec<_>>();
        tasklet_counts.sort_unstable();
        tasklet_counts.dedup();
        let mut header = vec![format!("{} [{}]", self.workload, metric)];
        header.extend(tasklet_counts.iter().map(|t| format!("{t} taskl.")));
        let rows = self
            .swept_kinds()
            .iter()
            .map(|&kind| {
                let mut row = vec![kind.name().to_string()];
                for &t in &tasklet_counts {
                    row.push(self.point(kind, t).map(&value).unwrap_or_else(|| "-".into()));
                }
                row
            })
            .collect::<Vec<_>>();
        render_table(&header, &rows)
    }

    /// Renders the time-breakdown panel (fraction of cycles per phase at the
    /// largest swept tasklet count), matching the bottom rows of Fig. 4/5.
    pub fn breakdown_table(&self) -> String {
        let max_tasklets =
            self.points.iter().map(|p| p.tasklets).max().expect("sweep is not empty");
        let mut header = vec![format!("{} phases @{} tasklets", self.workload, max_tasklets)];
        header.extend(Phase::ALL.iter().map(|p| p.label().to_string()));
        let rows = StmKind::ALL
            .iter()
            .filter_map(|&kind| self.point(kind, max_tasklets).map(|p| (kind, p)))
            .map(|(kind, point)| {
                let mut row = vec![kind.name().to_string()];
                for phase in Phase::ALL {
                    row.push(format!("{:.1}%", point.breakdown.fraction(phase) * 100.0));
                }
                row
            })
            .collect::<Vec<_>>();
        render_table(&header, &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep(workload: Workload, placement: MetadataPlacement) -> DesignSpaceSweep {
        DesignSpaceSweep::run(workload, placement, &[1, 4], 0.05, 9)
    }

    #[test]
    fn sweep_covers_every_design_and_tasklet_count() {
        let sweep = tiny_sweep(Workload::ArrayB, MetadataPlacement::Mram);
        assert_eq!(sweep.points.len(), StmKind::ALL.len() * 2);
        for kind in StmKind::ALL {
            assert!(sweep.point(kind, 1).is_some());
            assert!(sweep.peak_throughput(kind) > 0.0, "{kind} produced no throughput");
        }
        let _ = sweep.best_design();
    }

    #[test]
    fn tables_render_for_all_metrics() {
        let sweep = tiny_sweep(Workload::KmeansHc, MetadataPlacement::Wram);
        for table in [sweep.throughput_table(), sweep.abort_table(), sweep.breakdown_table()] {
            assert!(table.contains("NOrec"));
            assert!(table.contains("VR CTLWB"));
        }
    }

    #[test]
    fn filtered_sweeps_run_a_single_design() {
        let sweep = DesignSpaceSweep::run_kinds(
            Workload::ArrayB,
            MetadataPlacement::Mram,
            &[StmKind::Norec],
            &[2],
            0.05,
            9,
        );
        assert_eq!(sweep.points.len(), 1);
        assert_eq!(sweep.swept_kinds(), vec![StmKind::Norec]);
        let table = sweep.throughput_table();
        assert!(table.contains("NOrec"));
        assert!(!table.contains("VR CTLWB"), "unswept designs must not render as rows");
    }

    #[test]
    fn more_tasklets_do_not_reduce_total_commits() {
        let sweep = tiny_sweep(Workload::ArrayB, MetadataPlacement::Mram);
        for kind in StmKind::ALL {
            let one = sweep.point(kind, 1).unwrap().commits;
            let four = sweep.point(kind, 4).unwrap().commits;
            assert!(four >= one, "{kind}: commits shrank with more tasklets");
        }
    }
}
