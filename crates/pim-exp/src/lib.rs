//! # pim-exp — the experiment harness
//!
//! One module per experiment of the PIM-STM paper. Each function builds the
//! workloads, sweeps the requested parameter space on the simulator (and, for
//! §4.3, measures the host CPU baseline natively), and returns plain data
//! structures that the `pim-exp` binary prints as the same series/rows the
//! paper plots:
//!
//! * [`design_space`] — Fig. 4, 5, 9 and 10: throughput, abort rate and time
//!   breakdown for every STM design as the tasklet count grows, with STM
//!   metadata in MRAM or WRAM;
//! * [`peak`] — Fig. 6: distribution across workloads of each design's peak
//!   throughput normalised to the per-workload best;
//! * [`multi_dpu`] — Fig. 7 and 8: multi-DPU KMeans/Labyrinth speed-up over
//!   the CPU baseline and the TDP-based energy comparison;
//! * [`fleet`] — the `--fleet` sweep: a *measured* weak-scaling curve and
//!   skew sweep on the [`pim_fleet`] sharded multi-DPU runtime, with the
//!   analytic multi-DPU plan as a cross-check column;
//! * [`grid`] — the `--grid` full-grid design-space search: every coherent
//!   composition × knob combination of one workload×placement cell, ranked,
//!   with the static defaults' slowdown-vs-best called out;
//! * [`latency`] — the §3.1 measurement that motivates DPU-local
//!   transactions (local MRAM read vs CPU-mediated remote read);
//! * [`service`] — the `--service` mode: open-loop latency under offered
//!   load on the [`pim_service`] layer, single-DPU (both executors) and
//!   sharded across the fleet, reported as queueing / STM-service /
//!   sojourn quantiles per offered rate.
//!
//! Two infrastructure modules make the harness fast without changing a
//! single reported number:
//!
//! * [`pool`] — a deterministic bounded worker pool (`--workers N`) that
//!   fans out grid cells, sweep cells, `--repeat` iterations and fleet
//!   points as independent jobs and collects results by index, so every
//!   table and JSON dump is bit-identical for any worker count; it also
//!   owns the one thread budget shared with [`pim_fleet`]'s per-shard
//!   host workers (see [`pool::WorkerPool::inner_budget`]);
//! * [`cache`] — a content-addressed memo of completed simulator runs
//!   (canonical key = workload spec + every knob + seed + executor +
//!   schema version) with an optional `--cache-dir` on-disk tier, so the
//!   defaults-gap pass, bracket comparisons, overlapping burst ladders
//!   and repeated CI invocations skip cells that already ran.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod design_space;
pub mod fleet;
pub mod grid;
pub mod json;
pub mod latency;
pub mod multi_dpu;
pub mod peak;
pub mod pool;
pub mod report;
pub mod service;

pub use cache::{CacheStats, CachedRun, SimCache, CACHE_SCHEMA_VERSION};
pub use design_space::{BurstSweep, DesignSpacePoint, DesignSpaceSweep, SweepOptions};
pub use fleet::{FleetScalingPoint, FleetSkewPoint, FleetSweep, FleetSweepOptions};
pub use grid::{GridCell, GridOptions, GridSearch};
pub use latency::LatencyComparison;
pub use multi_dpu::{MultiDpuBenchmark, MultiDpuStudy, SpeedupPoint};
pub use peak::PeakDistribution;
pub use pool::WorkerPool;
pub use report::render_table;
pub use service::{
    ServiceFleetKnobs, ServiceFleetPoint, ServicePoint, ServiceSpread, ServiceSweep,
    ServiceSweepOptions, DEFAULT_SERVICE_RATES,
};
