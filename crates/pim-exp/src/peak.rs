//! Figure 6: for each STM design, the distribution — across all workloads —
//! of the ratio between the best design's peak throughput and that design's
//! peak throughput (1.0 means "this design is the best for that workload";
//! lower is better).

use pim_stm::{MetadataPlacement, StmKind};
use pim_workloads::Workload;
use serde::{Deserialize, Serialize};

use crate::design_space::DesignSpaceSweep;
use crate::report::{fmt_f64, render_table};

/// The normalised peak-throughput distribution of one metadata placement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PeakDistribution {
    /// Metadata placement the distribution was computed for.
    pub placement: MetadataPlacement,
    /// `(workload, design, best_peak / design_peak)` for every combination.
    pub ratios: Vec<(Workload, StmKind, f64)>,
}

impl PeakDistribution {
    /// Runs the underlying sweeps and computes the distribution.
    ///
    /// Workloads whose metadata cannot live in the requested tier (Labyrinth
    /// with WRAM) are skipped, as in the paper.
    pub fn run(
        placement: MetadataPlacement,
        workloads: &[Workload],
        tasklet_counts: &[usize],
        scale: f64,
        seed: u64,
    ) -> Self {
        let mut ratios = Vec::new();
        for &workload in workloads {
            if placement == MetadataPlacement::Wram && !workload.supports_wram_metadata() {
                continue;
            }
            let sweep = DesignSpaceSweep::run(workload, placement, tasklet_counts, scale, seed);
            let best = sweep.peak_throughput(sweep.best_design());
            for kind in StmKind::ALL {
                let peak = sweep.peak_throughput(kind);
                if peak > 0.0 {
                    ratios.push((workload, kind, best / peak));
                }
            }
        }
        PeakDistribution { placement, ratios }
    }

    /// All ratios of one design, sorted ascending.
    pub fn ratios_for(&self, kind: StmKind) -> Vec<f64> {
        let mut r: Vec<f64> =
            self.ratios.iter().filter(|(_, k, _)| *k == kind).map(|(_, _, v)| *v).collect();
        r.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
        r
    }

    /// Arithmetic mean of one design's ratios (the paper ranks designs by
    /// this).
    pub fn mean_ratio(&self, kind: StmKind) -> f64 {
        let r = self.ratios_for(kind);
        if r.is_empty() {
            f64::NAN
        } else {
            r.iter().sum::<f64>() / r.len() as f64
        }
    }

    /// Median of one design's ratios.
    pub fn median_ratio(&self, kind: StmKind) -> f64 {
        let r = self.ratios_for(kind);
        if r.is_empty() {
            f64::NAN
        } else {
            r[r.len() / 2]
        }
    }

    /// Designs ordered from most to least competitive (ascending mean ratio)
    /// — the left-to-right order of the paper's box plot.
    pub fn ranking(&self) -> Vec<StmKind> {
        let mut kinds: Vec<StmKind> = StmKind::ALL.to_vec();
        kinds.sort_by(|a, b| {
            self.mean_ratio(*a).partial_cmp(&self.mean_ratio(*b)).expect("means are finite")
        });
        kinds
    }

    /// Renders the distribution as a table (min / median / mean / max per
    /// design, best-ranked first).
    pub fn table(&self) -> String {
        let header = ["design", "min", "median", "mean", "max"].map(str::to_string).to_vec();
        let rows = self
            .ranking()
            .into_iter()
            .map(|kind| {
                let r = self.ratios_for(kind);
                vec![
                    kind.name().to_string(),
                    fmt_f64(r.first().copied().unwrap_or(f64::NAN)),
                    fmt_f64(self.median_ratio(kind)),
                    fmt_f64(self.mean_ratio(kind)),
                    fmt_f64(r.last().copied().unwrap_or(f64::NAN)),
                ]
            })
            .collect::<Vec<_>>();
        render_table(&header, &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_skips_infeasible_workloads_and_ranks_designs() {
        let dist = PeakDistribution::run(
            MetadataPlacement::Wram,
            &[Workload::ArrayB, Workload::LabyrinthS],
            &[2],
            0.05,
            3,
        );
        // Labyrinth is skipped for WRAM, leaving exactly one workload and one
        // ratio per design.
        for kind in StmKind::ALL {
            assert_eq!(dist.ratios_for(kind).len(), 1, "{kind}");
            assert!(dist.mean_ratio(kind) >= 1.0, "{kind}: ratios are normalised to the best");
        }
        // Exactly one design is the per-workload best (ratio 1.0).
        let best = dist.ranking()[0];
        assert!((dist.mean_ratio(best) - 1.0).abs() < 1e-9);
        let table = dist.table();
        assert!(table.contains("median"));
    }
}
