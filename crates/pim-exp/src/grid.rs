//! The `--grid` full-grid design-space search: "the engine picks its own
//! STM", offline half.
//!
//! For one workload × metadata placement, this enumerates the *entire*
//! coherent composition × knob space —
//!
//! * the R × L × W composition grid ([`TmComposition::all`]), pruned to the
//!   paper's seven sound designs by [`TmComposition::is_coherent`];
//! * × retry policy ([`RetryPolicy::ALL`]);
//! * × record-read strategy ([`ReadStrategy::ALL`]);
//! * × commit write-back strategy ([`WriteBackStrategy::ALL`], only for
//!   write-back designs — write-through commits publish nothing, so the
//!   axis is degenerate there and enumerating it would double-count cells);
//! * × multi-ORec lock order ([`LockOrder::ALL`], only for encounter-time
//!   designs — commit-time designs acquire inside their commit protocol and
//!   never consult the knob);
//! * × a ladder of DMA burst caps —
//!
//! runs every cell once on the deterministic simulator under one seed, and
//! ranks the cells by committed throughput. The report names the best cell,
//! each cell's slowdown-vs-best, and — the actionable number — how far the
//! *static defaults* (the knobs a `pim-exp` run uses when nothing is
//! overridden) sit from the per-workload optimum. The online tuner
//! ([`pim_stm::tune`]) exists to close exactly that gap at run time; the
//! `grid_beats_tuned_beats_default` regression below pins the bracket
//! `best ≥ tuned ≥ default`.
//!
//! Axis collapsing is an *honesty* device, not a shortcut: a collapsed axis
//! is one the design provably never reads, so the enumerated set still
//! covers every distinguishable configuration. The
//! `enumeration_is_exactly_the_coherent_grid` test pins both directions —
//! no coherent composition is skipped, no incoherent one runs.

use pim_stm::config::DEFAULT_BURST_WORDS;
use pim_stm::{
    LockOrder, LockTiming, MetadataPlacement, ReadStrategy, RetryPolicy, StmKind, TmComposition,
    WriteBackStrategy, WritePolicy,
};
use pim_workloads::spec::Executor;
use pim_workloads::{RunSpec, Workload};
use serde::{Deserialize, Serialize};

use crate::cache::{CacheStats, SimCache};
use crate::pool::WorkerPool;
use crate::report::{fmt_f64, render_table};

/// Knobs of one `--grid` search beyond the workload × placement cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridOptions {
    /// Scale factor applied to the workload size.
    pub scale: f64,
    /// PRNG seed every cell runs under (one run per cell — the simulator is
    /// deterministic, so repeats would re-measure the same numbers).
    pub seed: u64,
    /// Tasklet count of every cell.
    pub tasklets: usize,
    /// The burst-cap ladder (the eighth axis); each cap multiplies the
    /// knob grid.
    pub caps: Vec<u32>,
    /// ArrayBench record-grouping override (see
    /// [`crate::SweepOptions::record_words`]).
    pub record_words: Option<u32>,
}

impl Default for GridOptions {
    fn default() -> Self {
        GridOptions {
            scale: 1.0,
            seed: 42,
            tasklets: 8,
            caps: vec![16, DEFAULT_BURST_WORDS],
            record_words: None,
        }
    }
}

/// One enumerated configuration of the full grid (before it is run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridCellSpec {
    /// The coherent composition, as the paper's design name.
    pub kind: StmKind,
    /// Retry/back-off policy.
    pub retry: RetryPolicy,
    /// Record-read strategy.
    pub read_strategy: ReadStrategy,
    /// Commit write-back strategy (pinned to the default for write-through
    /// designs, which never consult it).
    pub write_back: WriteBackStrategy,
    /// Multi-ORec acquisition order (pinned to the default for commit-time
    /// designs, which never consult it).
    pub lock_order: LockOrder,
    /// DMA burst cap in words.
    pub max_burst_words: u32,
}

impl GridCellSpec {
    /// Whether this cell runs the static default knob values — the
    /// configuration a plain `pim-exp` run (no overrides, no tuner) uses.
    /// The default burst cap is [`DEFAULT_BURST_WORDS`] when the ladder
    /// includes it, otherwise the ladder's largest cap.
    pub fn is_default(&self, caps: &[u32]) -> bool {
        self.retry == RetryPolicy::default()
            && self.read_strategy == ReadStrategy::default()
            && self.write_back == WriteBackStrategy::default()
            && self.lock_order == LockOrder::default()
            && self.max_burst_words == default_cap(caps)
    }
}

/// The burst cap the static defaults run under: [`DEFAULT_BURST_WORDS`] if
/// the ladder carries it, else the ladder's largest cap.
fn default_cap(caps: &[u32]) -> u32 {
    if caps.contains(&DEFAULT_BURST_WORDS) {
        DEFAULT_BURST_WORDS
    } else {
        caps.iter().copied().max().unwrap_or(DEFAULT_BURST_WORDS)
    }
}

/// One measured cell of the grid, ranked.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    /// The configuration that ran.
    pub spec: GridCellSpec,
    /// 1-based rank by committed throughput (1 = best).
    pub rank: usize,
    /// Committed transactions per simulated second.
    pub throughput_tx_per_sec: f64,
    /// Simulated makespan in seconds.
    pub makespan_seconds: f64,
    /// Merged total time over all tasklets, in cycles.
    pub total_time: u64,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted attempts.
    pub aborts: u64,
    /// Aborted attempts / all attempts.
    pub abort_rate: f64,
    /// How much slower this cell is than the grid best
    /// (`best tx/s ÷ this tx/s`, ≥ 1.0; 1.0 for the best cell itself).
    pub slowdown_vs_best: f64,
    /// Whether this cell is the static-defaults configuration
    /// ([`GridCellSpec::is_default`]).
    pub is_default: bool,
}

/// The full-grid search result for one workload × placement cell: every
/// coherent composition × knob combination, ranked best-first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSearch {
    /// The workload that was run.
    pub workload: Workload,
    /// Where the STM metadata lived.
    pub placement: MetadataPlacement,
    /// Tasklet count of every cell.
    pub tasklets: usize,
    /// Scale factor applied to the workload size.
    pub scale: f64,
    /// PRNG seed every cell ran under.
    pub seed: u64,
    /// The burst-cap ladder that was swept.
    pub caps: Vec<u32>,
    /// All measured cells, ranked best-first (rank 1 first).
    pub cells: Vec<GridCell>,
    /// Simulation-cache movement attributable to *this* search (hits,
    /// misses, disk bytes) — the report panel behind `--cache-dir`.
    pub cache: CacheStats,
}

/// Enumerates the full coherent grid for one burst-cap ladder: every
/// coherent cell of [`TmComposition::all`] × the knob axes that design
/// actually reads (see the module docs for the collapsing rules) × `caps`.
pub fn enumerate_cells(caps: &[u32]) -> Vec<GridCellSpec> {
    let mut cells = Vec::new();
    for composition in TmComposition::all().filter(|c| c.is_coherent()) {
        let kind = composition
            .kind()
            .expect("every coherent composition maps onto one of the paper's seven designs");
        let write_backs: &[WriteBackStrategy] = match composition.write {
            WritePolicy::WriteBack => &WriteBackStrategy::ALL,
            WritePolicy::WriteThrough => &[WriteBackStrategy::Coalesced],
        };
        let lock_orders: &[LockOrder] = match composition.timing {
            LockTiming::Encounter => &LockOrder::ALL,
            LockTiming::Commit => &[LockOrder::AddressSorted],
        };
        for &retry in &RetryPolicy::ALL {
            for &read_strategy in &ReadStrategy::ALL {
                for &write_back in write_backs {
                    for &lock_order in lock_orders {
                        for &max_burst_words in caps {
                            cells.push(GridCellSpec {
                                kind,
                                retry,
                                read_strategy,
                                write_back,
                                lock_order,
                                max_burst_words,
                            });
                        }
                    }
                }
            }
        }
    }
    cells
}

impl GridSearch {
    /// Runs the full grid for one workload × placement on the simulator.
    ///
    /// # Panics
    ///
    /// Panics if `options.caps` is empty, or if the workload cannot host
    /// its metadata in the requested tier.
    pub fn run(workload: Workload, placement: MetadataPlacement, options: GridOptions) -> Self {
        Self::run_with(workload, placement, options, &WorkerPool::default(), &SimCache::in_memory())
    }

    /// Runs the full grid on an explicit worker pool and simulation cache
    /// (the `--workers` / `--cache-dir` entry point). Cells fan out as
    /// independent jobs; the result — ranking, defaults gap, JSON — is
    /// bit-identical for any worker count, and cells the cache has
    /// already seen (defaults-gap passes, overlapping burst ladders,
    /// warm `--cache-dir` runs) are replayed instead of re-simulated.
    ///
    /// # Panics
    ///
    /// Panics as [`GridSearch::run`] does.
    pub fn run_with(
        workload: Workload,
        placement: MetadataPlacement,
        options: GridOptions,
        pool: &WorkerPool,
        cache: &SimCache,
    ) -> Self {
        assert!(!options.caps.is_empty(), "--grid needs at least one burst cap");
        let stats_before = cache.stats();
        let specs = enumerate_cells(&options.caps);
        let total = specs.len();
        let mut cells: Vec<GridCell> = pool.run(specs, |i, spec| {
            eprintln!(
                "[grid {}/{}] {} {} retry={} read={} wb={} order={} cap={}",
                i + 1,
                total,
                workload,
                spec.kind.name(),
                spec.retry.name(),
                spec.read_strategy.name(),
                spec.write_back.name(),
                spec.lock_order.name(),
                spec.max_burst_words,
            );
            Self::run_cell(workload, placement, spec, &options, cache)
        });
        // Rank by throughput, best first; ties break toward fewer aborted
        // attempts (less wasted work for the same committed rate), then
        // stay in enumeration order, which is deterministic.
        cells.sort_by(|a, b| {
            b.throughput_tx_per_sec
                .partial_cmp(&a.throughput_tx_per_sec)
                .expect("throughputs are finite")
                .then(a.aborts.cmp(&b.aborts))
        });
        let best = cells.first().map_or(0.0, |c| c.throughput_tx_per_sec);
        for (i, cell) in cells.iter_mut().enumerate() {
            cell.rank = i + 1;
            cell.slowdown_vs_best = if cell.throughput_tx_per_sec > 0.0 {
                best / cell.throughput_tx_per_sec
            } else {
                f64::INFINITY
            };
        }
        GridSearch {
            workload,
            placement,
            tasklets: options.tasklets,
            scale: options.scale,
            seed: options.seed,
            caps: options.caps,
            cells,
            cache: cache.stats().since(&stats_before),
        }
    }

    fn run_cell(
        workload: Workload,
        placement: MetadataPlacement,
        spec: GridCellSpec,
        options: &GridOptions,
        cache: &SimCache,
    ) -> GridCell {
        let mut run = RunSpec::new(workload, spec.kind, placement, options.tasklets)
            .with_scale(options.scale)
            .with_seed(options.seed)
            .with_retry(spec.retry)
            .with_read_strategy(spec.read_strategy)
            .with_write_back(spec.write_back)
            .with_lock_order(spec.lock_order)
            .with_max_burst_words(spec.max_burst_words);
        if let Some(words) = options.record_words {
            run = run.with_record_words(words);
        }
        let cached = cache.get_or_run(&run, Executor::Simulator, || {
            let report = run.run_on(Executor::Simulator);
            report.assert_invariants();
            report
        });
        GridCell {
            spec,
            rank: 0, // filled in after ranking
            throughput_tx_per_sec: cached
                .throughput_tx_per_sec
                .expect("simulator runs carry the full report"),
            makespan_seconds: cached.makespan_seconds.expect("simulator runs carry a makespan"),
            total_time: cached.profile.total_time(),
            commits: cached.commits,
            aborts: cached.aborts,
            abort_rate: cached.abort_rate(),
            slowdown_vs_best: 1.0, // filled in after ranking
            is_default: spec.is_default(&options.caps),
        }
    }

    /// The best cell of the grid (rank 1).
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty (it never is after [`GridSearch::run`]).
    pub fn best(&self) -> &GridCell {
        self.cells.first().expect("a grid search always measures at least one cell")
    }

    /// The static-defaults cell of one design, if that design was swept
    /// with the default knob values.
    pub fn default_cell(&self, kind: StmKind) -> Option<&GridCell> {
        self.cells.iter().find(|c| c.is_default && c.spec.kind == kind)
    }

    /// The best-ranked cell of one design (how far *any* knob setting can
    /// carry that composition).
    pub fn best_cell_of(&self, kind: StmKind) -> Option<&GridCell> {
        self.cells.iter().find(|c| c.spec.kind == kind)
    }

    /// Renders the ranked-cells panel: the top `limit` cells with their
    /// full knob vector, throughput and slowdown-vs-best.
    pub fn ranked_table(&self, limit: usize) -> String {
        let header: Vec<String> = [
            "rank",
            "stm",
            "retry",
            "read",
            "write-back",
            "lock order",
            "cap",
            "tx/s",
            "aborts",
            "x best",
            "default",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .take(limit)
            .map(|c| {
                vec![
                    c.rank.to_string(),
                    c.spec.kind.grid_name().to_string(),
                    c.spec.retry.name().to_string(),
                    c.spec.read_strategy.name().to_string(),
                    c.spec.write_back.name().to_string(),
                    c.spec.lock_order.name().to_string(),
                    c.spec.max_burst_words.to_string(),
                    fmt_f64(c.throughput_tx_per_sec),
                    c.aborts.to_string(),
                    fmt_f64(c.slowdown_vs_best),
                    if c.is_default { "*" } else { "" }.to_string(),
                ]
            })
            .collect();
        format!(
            "full-grid search: {} ({}, {} tasklets, seed {}, {} cells)\n{}",
            self.workload,
            self.placement.name(),
            self.tasklets,
            self.seed,
            self.cells.len(),
            render_table(&header, &rows)
        )
    }

    /// Renders the defaults panel: per design, where the static defaults
    /// rank, their slowdown-vs-best, and what the best knob vector for that
    /// design looks like — the gap the online tuner exists to close.
    pub fn defaults_table(&self) -> String {
        let header: Vec<String> = [
            "stm",
            "default rank",
            "default x best",
            "best-of-design rank",
            "best-of-design knobs",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let rows: Vec<Vec<String>> = StmKind::ALL
            .iter()
            .filter_map(|&kind| {
                let default = self.default_cell(kind)?;
                let best = self.best_cell_of(kind)?;
                Some(vec![
                    kind.grid_name().to_string(),
                    default.rank.to_string(),
                    fmt_f64(default.slowdown_vs_best),
                    best.rank.to_string(),
                    format!(
                        "retry={} read={} wb={} order={} cap={}",
                        best.spec.retry.name(),
                        best.spec.read_strategy.name(),
                        best.spec.write_back.name(),
                        best.spec.lock_order.name(),
                        best.spec.max_burst_words
                    ),
                ])
            })
            .collect();
        format!(
            "static defaults vs grid best (best cell: {} retry={} read={} wb={} order={} cap={})\n{}",
            self.best().spec.kind.grid_name(),
            self.best().spec.retry.name(),
            self.best().spec.read_strategy.name(),
            self.best().spec.write_back.name(),
            self.best().spec.lock_order.name(),
            self.best().spec.max_burst_words,
            render_table(&header, &rows)
        )
    }

    /// Renders the simulation-cache panel: how many of this search's cells
    /// were replayed from the cache vs simulated fresh, and the
    /// `--cache-dir` traffic. All zeros reads as "cold cache, nothing
    /// persisted".
    pub fn cache_table(&self) -> String {
        let header: Vec<String> =
            ["cells", "cache hits", "misses", "disk hits", "read B", "written B"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let rows = vec![vec![
            self.cells.len().to_string(),
            self.cache.hits.to_string(),
            self.cache.misses.to_string(),
            self.cache.disk_hits.to_string(),
            self.cache.bytes_read.to_string(),
            self.cache.bytes_written.to_string(),
        ]];
        format!("simulation cache\n{}", render_table(&header, &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_stm::TunePolicy;

    /// The exhaustiveness check of the enumeration ↔ coherence contract,
    /// run over *every* cell of the 3 × 2 × 2 composition grid: every
    /// coherent composition appears (no cell skipped), no incoherent
    /// composition appears (no struck cell runs), and each composition's
    /// multiplicity is exactly the product of the knob axes that design
    /// reads — the collapsing rules of the module docs, pinned.
    #[test]
    fn enumeration_is_exactly_the_coherent_grid() {
        let caps = [8, 64];
        let cells = enumerate_cells(&caps);
        for composition in TmComposition::all() {
            let matching: Vec<&GridCellSpec> =
                cells.iter().filter(|c| c.kind.composition() == composition).collect();
            if !composition.is_coherent() {
                assert!(
                    matching.is_empty(),
                    "incoherent cell {} must never run ({})",
                    composition.grid_name(),
                    composition.rejection_reason().unwrap(),
                );
                continue;
            }
            let write_back_axis = if composition.write == WritePolicy::WriteBack { 2 } else { 1 };
            let lock_order_axis = if composition.timing == LockTiming::Encounter { 2 } else { 1 };
            let expected = RetryPolicy::ALL.len()
                * ReadStrategy::ALL.len()
                * write_back_axis
                * lock_order_axis
                * caps.len();
            assert_eq!(
                matching.len(),
                expected,
                "coherent cell {} must enumerate exactly its readable knob product",
                composition.grid_name(),
            );
            // Collapsed axes are pinned to the defaults, not dropped.
            for cell in matching {
                if write_back_axis == 1 {
                    assert_eq!(cell.write_back, WriteBackStrategy::Coalesced);
                }
                if lock_order_axis == 1 {
                    assert_eq!(cell.lock_order, LockOrder::AddressSorted);
                }
            }
        }
        // The seven coherent designs, 108 cells per cap: 2 × 24 (ETL+WB:
        // all four axes) + 3 × 12 (CTL+WB) + 2 × 12 (ETL+WT).
        assert_eq!(cells.len(), 108 * caps.len());
        // Exactly one enumerated cell per design is the static default.
        for kind in StmKind::ALL {
            let defaults = cells.iter().filter(|c| c.kind == kind && c.is_default(&caps)).count();
            assert_eq!(defaults, 1, "{kind} must have exactly one static-defaults cell");
        }
    }

    #[test]
    fn grid_ranks_cells_and_pins_the_defaults_gap() {
        let grid = GridSearch::run(
            Workload::ArrayB,
            MetadataPlacement::Mram,
            GridOptions { scale: 0.05, tasklets: 4, caps: vec![64], ..GridOptions::default() },
        );
        assert_eq!(grid.cells.len(), 108);
        // Ranks are 1..=n in order and slowdowns grow monotonically.
        for (i, cell) in grid.cells.iter().enumerate() {
            assert_eq!(cell.rank, i + 1);
            assert!(cell.slowdown_vs_best >= 1.0 - 1e-12);
            assert!(cell.commits > 0, "every coherent cell must commit");
        }
        for pair in grid.cells.windows(2) {
            assert!(pair[0].throughput_tx_per_sec >= pair[1].throughput_tx_per_sec);
        }
        assert!((grid.best().slowdown_vs_best - 1.0).abs() < 1e-12);
        // Every design has its defaults cell, ranked at or behind the
        // design's best cell.
        for kind in StmKind::ALL {
            let default = grid.default_cell(kind).expect("defaults cell was swept");
            let best = grid.best_cell_of(kind).expect("design was swept");
            assert!(best.rank <= default.rank, "{kind}: defaults cannot beat the design's best");
        }
        let ranked = grid.ranked_table(10);
        assert!(ranked.contains("x best"));
        assert!(ranked.contains("rank"));
        let defaults = grid.defaults_table();
        assert!(defaults.contains("default rank"));
        assert!(defaults.contains("norec-ctl-wb"));
    }

    /// The `--workers` acceptance criterion: a grid search is bit-identical
    /// for any worker count — same cells, same ranking, same JSON — because
    /// cells are independent jobs collected by index.
    #[test]
    fn grid_results_are_bit_identical_for_any_worker_count() {
        let options =
            GridOptions { scale: 0.02, tasklets: 2, caps: vec![64], ..GridOptions::default() };
        let serial = GridSearch::run_with(
            Workload::ArrayB,
            MetadataPlacement::Mram,
            options.clone(),
            &WorkerPool::serial(),
            &SimCache::in_memory(),
        );
        let wide = GridSearch::run_with(
            Workload::ArrayB,
            MetadataPlacement::Mram,
            options,
            &WorkerPool::new(8),
            &SimCache::in_memory(),
        );
        assert_eq!(serial, wide, "worker count must never change a single reported number");
        assert_eq!(
            crate::json::grid_to_json(&serial).to_string(),
            crate::json::grid_to_json(&wide).to_string(),
            "and the JSON dumps must be byte-identical"
        );
    }

    /// The cache acceptance criterion: repeating an identical search over a
    /// shared cache replays every cell (hits == cells, zero duplicate
    /// simulations) and returns bit-identical cells.
    #[test]
    fn warm_grid_reruns_hit_every_cell_and_change_nothing() {
        let options =
            GridOptions { scale: 0.02, tasklets: 2, caps: vec![64], ..GridOptions::default() };
        let cache = SimCache::in_memory();
        let cold = GridSearch::run_with(
            Workload::ArrayB,
            MetadataPlacement::Mram,
            options.clone(),
            &WorkerPool::serial(),
            &cache,
        );
        assert_eq!(cold.cache.misses, cold.cells.len() as u64, "a cold search simulates all");
        assert_eq!(cold.cache.hits, 0);
        let warm = GridSearch::run_with(
            Workload::ArrayB,
            MetadataPlacement::Mram,
            options,
            &WorkerPool::serial(),
            &cache,
        );
        assert_eq!(warm.cache.hits, warm.cells.len() as u64, "a warm search replays all");
        assert_eq!(warm.cache.misses, 0, "zero duplicate simulations");
        assert_eq!(warm.cells, cold.cells, "replayed cells are bit-identical");
        assert!(warm.cache_table().contains("simulation cache"));
    }

    #[test]
    fn grid_searches_are_deterministic_for_a_fixed_seed() {
        let options =
            GridOptions { scale: 0.05, tasklets: 4, caps: vec![64], ..GridOptions::default() };
        let a = GridSearch::run(Workload::ArrayB, MetadataPlacement::Mram, options.clone());
        let b = GridSearch::run(Workload::ArrayB, MetadataPlacement::Mram, options);
        assert_eq!(a, b, "same seed, same grid — cell for cell, rank for rank");
    }

    /// The acceptance bracket: the grid's best cell is at least as good as
    /// the tuned run, which is at least as good as the static defaults —
    /// the offline search bounds the online tuner from above, and the tuner
    /// pays for itself against the defaults it starts from.
    #[test]
    fn grid_best_bounds_tuned_bounds_default() {
        let options =
            GridOptions { scale: 0.1, tasklets: 8, caps: vec![64], ..GridOptions::default() };
        let grid = GridSearch::run(Workload::ArrayB, MetadataPlacement::Mram, options);
        let base = RunSpec::new(Workload::ArrayB, StmKind::Norec, MetadataPlacement::Mram, 8)
            .with_scale(0.1);
        let tuned = base
            .with_tune(TunePolicy::windowed())
            .run_on(Executor::Simulator)
            .sim
            .expect("simulator run")
            .throughput_tx_per_sec();
        let default = grid
            .default_cell(StmKind::Norec)
            .expect("defaults cell was swept")
            .throughput_tx_per_sec;
        let best = grid.best().throughput_tx_per_sec;
        assert!(
            best >= tuned,
            "the offline grid best ({best:.0} tx/s) must bound the online tuner ({tuned:.0} tx/s)"
        );
        assert!(
            tuned >= default,
            "the tuner ({tuned:.0} tx/s) must not lose to the static defaults it starts from \
             ({default:.0} tx/s)"
        );
    }
}
