//! Content-addressed cache of completed simulator runs.
//!
//! The experiment harness re-simulates identical cells all the time: the
//! grid's defaults panel re-reads cells the ranked pass already ran, the
//! `grid best ≥ tuned ≥ static` comparisons re-run the defaults cell, and
//! overlapping burst-cap ladders share most of their grid. Every one of
//! those runs is a pure function of its [`RunSpec`] — the simulator is
//! deterministic under a seed — so a completed run can be memoized under a
//! **canonical key** and replayed bit for bit.
//!
//! ## The canonical key
//!
//! [`SimCache::key`] renders every field that can change a simulator
//! result: the workload spec (workload, composition/design, metadata
//! placement, tasklets, scale, record grouping), every knob (retry,
//! read strategy, write-back strategy, lock order, burst cap, tune
//! policy), the PRNG seed, the executor, and [`CACHE_SCHEMA_VERSION`].
//! Changing *any* of those fields — including the schema version — yields
//! a different key and therefore a miss; there is no partial matching and
//! no time-based expiry. Bumping [`CACHE_SCHEMA_VERSION`] is the
//! invalidation policy: do it whenever the simulator, an STM algorithm or
//! the cached summary shape changes semantics, and every stale entry
//! (memory and disk) silently misses.
//!
//! ## Tiers
//!
//! The first tier is a process-wide in-memory map shared across every
//! search and sweep of one invocation. The optional `--cache-dir` second
//! tier persists entries as JSON files (written and re-read with the
//! [`crate::json`] writer/parser — no external serializer), so repeated CI
//! and sweep invocations skip warm cells. A disk entry that fails to
//! parse, carries the wrong schema version, or does not match its key is
//! **discarded, never trusted**: the cell re-simulates and the entry is
//! rewritten.
//!
//! Only deterministic simulator runs are cacheable. Threaded-executor
//! runs measure wall-clock on live OS threads; replaying one would report
//! a stale measurement as a fresh one, so [`SimCache::get_or_run`] always
//! executes those and touches neither tier nor the hit/miss statistics.
//!
//! ## The analytic plan memo
//!
//! The multi-DPU figures cross-check the sharded runtime against the
//! analytic [`MultiDpuPlan`] cost model. Evaluating a plan is a pure
//! function of the plan and the [`CpuTransferModel`], so
//! [`SimCache::get_or_plan`] memoizes the [`MultiDpuReport`] under a
//! canonical key that renders **every** input float through
//! [`f64::to_bits`] (exact — no formatting round-off can alias two
//! different models). The memo is memory-only: an analytic evaluation
//! costs microseconds, so the disk tier would be slower than recomputing;
//! the memo's value is deduplicating repeated cross-checks inside one
//! invocation and *proving* the model is replay-stable. Its counters
//! ([`CacheStats::plan_hits`] / [`CacheStats::plan_misses`]) are separate
//! from the simulator-run counters, so the grid's exact hit/miss pins are
//! unaffected.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use pim_sim::{
    CpuTransferModel, MultiDpuPlan, MultiDpuReport, Phase, ProfileCore, ABORT_CODE_SLOTS,
};
use pim_stm::{ExecProfile, TimeDomain};
use pim_workloads::spec::Executor;
use pim_workloads::{RunSpec, WorkloadReport};
use serde::{Deserialize, Serialize};

use crate::json::Json;

/// Version of the cached-entry semantics. Part of every canonical key:
/// bump it whenever the simulator's cycle model, an STM algorithm, or the
/// [`CachedRun`] shape changes meaning, and all previously cached entries
/// (in memory and on disk) stop matching.
pub const CACHE_SCHEMA_VERSION: u32 = 1;

/// The memoized summary of one completed simulator run: exactly the
/// fields the grid/sweep consumers read from a [`WorkloadReport`], so a
/// cache hit reconstructs a bit-identical cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedRun {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted attempts.
    pub aborts: u64,
    /// Deterministic fingerprint of the final memory state.
    pub fingerprint: u64,
    /// The execution profile merged over all tasklets.
    pub profile: ExecProfile,
    /// Committed transactions per simulated second (`None` only for the
    /// never-cached threaded executor).
    pub throughput_tx_per_sec: Option<f64>,
    /// Simulated makespan in seconds (`None` only for the threaded
    /// executor).
    pub makespan_seconds: Option<f64>,
}

impl CachedRun {
    /// Summarizes a finished report. The caller has already gated on
    /// [`WorkloadReport::assert_invariants`], so cached entries are
    /// invariant-clean by construction.
    pub fn from_report(report: &WorkloadReport) -> Self {
        CachedRun {
            commits: report.commits,
            aborts: report.aborts,
            fingerprint: report.fingerprint,
            profile: report.merged_profile(),
            throughput_tx_per_sec: report.throughput_tx_per_sec(),
            makespan_seconds: report.sim.as_ref().map(|s| s.makespan_seconds()),
        }
    }

    /// Aborted attempts / all attempts — the same statistic as
    /// [`WorkloadReport::abort_rate`].
    pub fn abort_rate(&self) -> f64 {
        if self.commits + self.aborts == 0 {
            0.0
        } else {
            self.aborts as f64 / (self.commits + self.aborts) as f64
        }
    }
}

/// Hit/miss/byte counters of one [`SimCache`], as a plain snapshot
/// (rendered in the grid report panel and the JSON schema).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from either tier without simulating.
    pub hits: u64,
    /// Lookups that had to simulate (includes discarded disk entries).
    pub misses: u64,
    /// The subset of `hits` answered by reading a `--cache-dir` file.
    pub disk_hits: u64,
    /// Bytes of cache files read (successfully parsed entries only).
    pub bytes_read: u64,
    /// Bytes of cache files written.
    pub bytes_written: u64,
    /// Analytic-plan lookups answered from the memo (separate from `hits`
    /// so the simulator-run pins stay exact).
    pub plan_hits: u64,
    /// Analytic-plan lookups that had to evaluate the cost model.
    pub plan_misses: u64,
}

impl CacheStats {
    /// The counter movement from `before` to `self` — the per-search
    /// delta a report panel shows when one cache serves many searches.
    pub fn since(&self, before: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(before.hits),
            misses: self.misses.saturating_sub(before.misses),
            disk_hits: self.disk_hits.saturating_sub(before.disk_hits),
            bytes_read: self.bytes_read.saturating_sub(before.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(before.bytes_written),
            plan_hits: self.plan_hits.saturating_sub(before.plan_hits),
            plan_misses: self.plan_misses.saturating_sub(before.plan_misses),
        }
    }
}

/// A two-tier content-addressed cache of simulator runs. Internally
/// synchronised: pool workers share one instance by reference.
#[derive(Debug)]
pub struct SimCache {
    memory: Mutex<HashMap<String, CachedRun>>,
    /// Memory-only memo of analytic plan evaluations (see the module
    /// documentation) — never spilled to the disk tier.
    plans: Mutex<HashMap<String, MultiDpuReport>>,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
}

impl Default for SimCache {
    fn default() -> Self {
        SimCache::in_memory()
    }
}

impl SimCache {
    /// A memory-only cache (no `--cache-dir` tier).
    pub fn in_memory() -> Self {
        SimCache {
            memory: Mutex::new(HashMap::new()),
            plans: Mutex::new(HashMap::new()),
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
        }
    }

    /// A cache backed by an on-disk tier at `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the directory cannot be created.
    pub fn with_dir(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut cache = SimCache::in_memory();
        cache.dir = Some(dir);
        Ok(cache)
    }

    /// Whether this cache persists entries to disk.
    pub fn has_disk_tier(&self) -> bool {
        self.dir.is_some()
    }

    /// The canonical key of one run: every result-bearing field of the
    /// spec, the executor, and the schema version. Two specs collide on a
    /// key exactly when the simulator provably returns the same report
    /// for both.
    pub fn key(spec: &RunSpec, executor: Executor) -> String {
        format!(
            "v{}|{}|{}|{}|tasklets={}|seed={}|scale={}|retry={}|read={}|wb={}|order={}|cap={}|tune={}|rw={}|{}",
            CACHE_SCHEMA_VERSION,
            spec.workload.name(),
            spec.kind.grid_name(),
            spec.placement.name(),
            spec.tasklets,
            spec.seed,
            spec.scale,
            spec.retry.name(),
            spec.read_strategy.name(),
            spec.write_back.name(),
            spec.lock_order.name(),
            spec.max_burst_words,
            spec.tune,
            match spec.record_words {
                Some(w) => w.to_string(),
                None => "default".to_string(),
            },
            executor.name(),
        )
    }

    /// Returns the memoized summary for `spec` × `executor`, simulating
    /// via `run` only on a miss. Hits return a bit-identical summary —
    /// the stored entry came from the same deterministic run the miss
    /// path would repeat.
    ///
    /// Threaded-executor specs always execute (wall-clock measurements
    /// must be measured, not replayed) and leave the statistics untouched.
    ///
    /// Two pool workers racing on the *same* key may both simulate; both
    /// compute the identical summary, so the winner of the final insert
    /// is irrelevant (the stats then count an extra miss, never a wrong
    /// cell).
    pub fn get_or_run(
        &self,
        spec: &RunSpec,
        executor: Executor,
        run: impl FnOnce() -> WorkloadReport,
    ) -> CachedRun {
        if executor != Executor::Simulator {
            return CachedRun::from_report(&run());
        }
        let key = Self::key(spec, executor);
        if let Some(found) = self.memory.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return found.clone();
        }
        if let Some(found) = self.load_disk(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.memory.lock().expect("cache poisoned").insert(key, found.clone());
            return found;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let cached = CachedRun::from_report(&run());
        self.store_disk(&key, &cached);
        self.memory.lock().expect("cache poisoned").insert(key, cached.clone());
        cached
    }

    /// The canonical key of one analytic plan evaluation. Every float goes
    /// through [`f64::to_bits`], so two plans share a key exactly when
    /// every input bit is identical — no formatting round-off, no epsilon.
    pub fn plan_key(plan: &MultiDpuPlan, transfer: &CpuTransferModel) -> String {
        use std::fmt::Write as _;
        let mut key = format!(
            "plan-v{}|n={}|transfer={:016x},{:016x},{:016x},{:016x}|rounds=",
            CACHE_SCHEMA_VERSION,
            plan.n_dpus,
            transfer.mediated_word_latency_s.to_bits(),
            transfer.bulk_bandwidth_bytes_per_s.to_bits(),
            transfer.bulk_overhead_s.to_bits(),
            transfer.local_word_latency_s.to_bits(),
        );
        for round in &plan.rounds {
            write!(
                key,
                "[c={:016x},to={},from={},route={:016x},merge={:016x},ov={}]",
                round.dpu_compute_seconds.to_bits(),
                round.bytes_to_dpus,
                round.bytes_from_dpus,
                round.cpu_route_seconds.to_bits(),
                round.cpu_merge_seconds.to_bits(),
                round.overlappable,
            )
            .expect("writing to a String cannot fail");
        }
        key
    }

    /// Returns the memoized [`MultiDpuReport`] of evaluating `plan` under
    /// `transfer`, calling [`MultiDpuPlan::execute`] only on a miss. The
    /// evaluation is a pure function of both inputs, so a hit is
    /// bit-identical to a fresh evaluation.
    ///
    /// Counted in [`CacheStats::plan_hits`] / [`CacheStats::plan_misses`],
    /// never in the simulator-run counters, and never persisted to the
    /// disk tier (see the module documentation).
    pub fn get_or_plan(&self, plan: &MultiDpuPlan, transfer: &CpuTransferModel) -> MultiDpuReport {
        let key = Self::plan_key(plan, transfer);
        if let Some(found) = self.plans.lock().expect("plan memo poisoned").get(&key) {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            return *found;
        }
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        let report = plan.execute(transfer);
        self.plans.lock().expect("plan memo poisoned").insert(key, report);
        report
    }

    /// A snapshot of the hit/miss/byte counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
        }
    }

    /// The disk-tier path of `key`: an FNV-1a hash names the file, and the
    /// full key stored *inside* the file guards both hash collisions and
    /// corruption.
    fn disk_path(&self, key: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|dir| dir.join(format!("{:016x}.json", fnv1a(key))))
    }

    fn load_disk(&self, key: &str) -> Option<CachedRun> {
        let path = self.disk_path(key)?;
        let text = std::fs::read_to_string(&path).ok()?;
        match parse_entry(&text, key) {
            Some(cached) => {
                self.bytes_read.fetch_add(text.len() as u64, Ordering::Relaxed);
                Some(cached)
            }
            None => {
                // Corrupt, stale-schema or mismatched entry: discard it —
                // the re-simulated run overwrites the file below.
                eprintln!("[cache] discarding unreadable entry {}", path.display());
                None
            }
        }
    }

    fn store_disk(&self, key: &str, cached: &CachedRun) {
        let Some(path) = self.disk_path(key) else { return };
        let text = entry_to_json(key, cached).to_string();
        match std::fs::write(&path, &text) {
            Ok(()) => {
                self.bytes_written.fetch_add(text.len() as u64, Ordering::Relaxed);
            }
            Err(err) => eprintln!("[cache] cannot write {}: {err}", path.display()),
        }
    }
}

/// FNV-1a, the repo-standard cheap stable hash (same construction as the
/// workload fingerprints) — names disk-tier files.
fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serializes one disk-tier entry with the [`crate::json`] writer.
fn entry_to_json(key: &str, cached: &CachedRun) -> Json {
    let core = &cached.profile.core;
    Json::Obj(vec![
        ("schema_version".into(), Json::UInt(CACHE_SCHEMA_VERSION as u64)),
        ("key".into(), Json::Str(key.to_string())),
        ("commits".into(), Json::UInt(cached.commits)),
        ("aborts".into(), Json::UInt(cached.aborts)),
        // Hex string, not a number: the strict parser reads numbers as
        // f64, which cannot carry a full 64-bit hash exactly.
        ("fingerprint".into(), Json::Str(format!("{:016x}", cached.fingerprint))),
        (
            "throughput_tx_per_sec".into(),
            cached.throughput_tx_per_sec.map_or(Json::Null, Json::Num),
        ),
        ("makespan_seconds".into(), cached.makespan_seconds.map_or(Json::Null, Json::Num)),
        (
            "profile".into(),
            Json::Obj(vec![
                (
                    "time_domain".into(),
                    Json::Str(
                        match cached.profile.time_domain {
                            TimeDomain::Cycles => "cycles",
                            TimeDomain::WallNanos => "wall-nanos",
                        }
                        .into(),
                    ),
                ),
                ("commits".into(), Json::UInt(core.commits)),
                ("aborts".into(), Json::UInt(core.aborts)),
                (
                    "abort_codes".into(),
                    Json::Arr(core.abort_codes.iter().map(|&c| Json::UInt(c)).collect()),
                ),
                (
                    "breakdown".into(),
                    Json::Arr(
                        Phase::ALL.iter().map(|&p| Json::UInt(core.breakdown.get(p))).collect(),
                    ),
                ),
                (
                    "attempt".into(),
                    Json::Arr(
                        Phase::ALL.iter().map(|&p| Json::UInt(core.attempt.get(p))).collect(),
                    ),
                ),
                ("mram_dma_setups".into(), Json::UInt(core.mram_dma_setups)),
                ("mram_dma_words".into(), Json::UInt(core.mram_dma_words)),
                ("backoff_time".into(), Json::UInt(core.backoff_time)),
                ("tune_windows".into(), Json::UInt(core.tune_windows)),
                ("tune_switches".into(), Json::UInt(core.tune_switches)),
            ]),
        ),
    ])
}

/// Parses and validates one disk-tier entry. `None` on *any* deviation —
/// unparseable text, wrong schema version, key mismatch, missing or
/// ill-typed field — so corrupt entries are discarded, never trusted.
fn parse_entry(text: &str, expected_key: &str) -> Option<CachedRun> {
    let json = crate::json::parse(text).ok()?;
    if as_u64(json.get("schema_version")?)? != CACHE_SCHEMA_VERSION as u64 {
        return None;
    }
    if as_str(json.get("key")?)? != expected_key {
        return None;
    }
    let profile = json.get("profile")?;
    let time_domain = match as_str(profile.get("time_domain")?)? {
        "cycles" => TimeDomain::Cycles,
        "wall-nanos" => TimeDomain::WallNanos,
        _ => return None,
    };
    let mut core = ProfileCore::new();
    core.commits = as_u64(profile.get("commits")?)?;
    core.aborts = as_u64(profile.get("aborts")?)?;
    let codes = parse_u64_array(profile.get("abort_codes")?, ABORT_CODE_SLOTS)?;
    core.abort_codes.copy_from_slice(&codes);
    for (breakdown, field) in [(&mut core.breakdown, "breakdown"), (&mut core.attempt, "attempt")] {
        let cycles = parse_u64_array(profile.get(field)?, Phase::ALL.len())?;
        for (&phase, &value) in Phase::ALL.iter().zip(&cycles) {
            breakdown.charge(phase, value);
        }
    }
    core.mram_dma_setups = as_u64(profile.get("mram_dma_setups")?)?;
    core.mram_dma_words = as_u64(profile.get("mram_dma_words")?)?;
    core.backoff_time = as_u64(profile.get("backoff_time")?)?;
    core.tune_windows = as_u64(profile.get("tune_windows")?)?;
    core.tune_switches = as_u64(profile.get("tune_switches")?)?;
    Some(CachedRun {
        commits: as_u64(json.get("commits")?)?,
        aborts: as_u64(json.get("aborts")?)?,
        fingerprint: u64::from_str_radix(as_str(json.get("fingerprint")?)?, 16).ok()?,
        profile: ExecProfile { time_domain, core },
        throughput_tx_per_sec: parse_opt_f64(json.get("throughput_tx_per_sec")?)?,
        makespan_seconds: parse_opt_f64(json.get("makespan_seconds")?)?,
    })
}

/// Reads an unsigned integer back out of a parsed number. The strict
/// parser returns every number as `f64`; values beyond 2^53 cannot have
/// round-tripped exactly, so they reject the entry rather than smuggle a
/// rounded counter in.
fn as_u64(json: &Json) -> Option<u64> {
    const EXACT: f64 = (1u64 << 53) as f64;
    match json {
        Json::UInt(n) => Some(*n),
        Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n < EXACT => Some(*n as u64),
        _ => None,
    }
}

/// The string payload, or `None` for non-strings.
fn as_str(json: &Json) -> Option<&str> {
    match json {
        Json::Str(text) => Some(text),
        _ => None,
    }
}

/// An exactly-`len` array of unsigned integers, or `None`.
fn parse_u64_array(json: &Json, len: usize) -> Option<Vec<u64>> {
    let Json::Arr(items) = json else { return None };
    if items.len() != len {
        return None;
    }
    items.iter().map(as_u64).collect()
}

/// `null` → `Some(None)`, a number → `Some(Some(n))`, anything else →
/// `None` (reject the entry).
fn parse_opt_f64(json: &Json) -> Option<Option<f64>> {
    match json {
        Json::Null => Some(None),
        Json::Num(n) => Some(Some(*n)),
        Json::UInt(n) => Some(Some(*n as f64)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_stm::{MetadataPlacement, RetryPolicy, StmKind};
    use pim_workloads::Workload;
    use std::sync::atomic::AtomicUsize;

    fn tiny_spec() -> RunSpec {
        RunSpec::new(Workload::ArrayA, StmKind::Norec, MetadataPlacement::Mram, 2)
            .with_scale(0.05)
            .with_seed(9)
    }

    /// A scratch directory unique to one test (std-only stand-in for a
    /// tempdir crate); removed best-effort on drop.
    struct ScratchDir(PathBuf);
    impl ScratchDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("pim-exp-cache-test-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            ScratchDir(dir)
        }
    }
    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn run_counted(cache: &SimCache, spec: &RunSpec, runs: &AtomicUsize) -> CachedRun {
        cache.get_or_run(spec, Executor::Simulator, || {
            runs.fetch_add(1, Ordering::SeqCst);
            let report = spec.run_on(Executor::Simulator);
            report.assert_invariants();
            report
        })
    }

    #[test]
    fn repeated_identical_cells_hit_and_return_the_bit_identical_summary() {
        let cache = SimCache::in_memory();
        let spec = tiny_spec();
        let runs = AtomicUsize::new(0);
        let first = run_counted(&cache, &spec, &runs);
        let second = run_counted(&cache, &spec, &runs);
        assert_eq!(first, second, "a hit must replay the run bit for bit");
        assert_eq!(runs.load(Ordering::SeqCst), 1, "the second lookup must not simulate");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.disk_hits), (1, 1, 0));
        assert_eq!(stats.bytes_written, 0, "no disk tier, no bytes");
    }

    #[test]
    fn every_result_bearing_field_is_part_of_the_key() {
        let base = tiny_spec();
        let base_key = SimCache::key(&base, Executor::Simulator);
        assert!(
            base_key.starts_with(&format!("v{CACHE_SCHEMA_VERSION}|")),
            "the schema version must prefix the key: {base_key}"
        );
        let variants = [
            base.with_seed(10),
            base.with_retry(RetryPolicy::Adaptive),
            base.with_max_burst_words(8),
        ];
        for variant in &variants {
            assert_ne!(
                SimCache::key(variant, Executor::Simulator),
                base_key,
                "changing a knob must change the key"
            );
        }
        assert_ne!(SimCache::key(&base, Executor::Threaded), base_key);
        // A seed change misses even with the base cell already cached.
        let cache = SimCache::in_memory();
        let runs = AtomicUsize::new(0);
        run_counted(&cache, &base, &runs);
        run_counted(&cache, &base.with_seed(10), &runs);
        assert_eq!(runs.load(Ordering::SeqCst), 2);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn threaded_runs_always_execute_and_touch_no_statistics() {
        let cache = SimCache::in_memory();
        let spec = tiny_spec();
        let runs = AtomicUsize::new(0);
        for _ in 0..2 {
            cache.get_or_run(&spec, Executor::Threaded, || {
                runs.fetch_add(1, Ordering::SeqCst);
                spec.run_on(Executor::Threaded)
            });
        }
        assert_eq!(runs.load(Ordering::SeqCst), 2, "wall-clock cells are measured, not replayed");
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn disk_entries_round_trip_bit_identically_into_a_fresh_process() {
        let scratch = ScratchDir::new("roundtrip");
        let spec = tiny_spec();
        let runs = AtomicUsize::new(0);
        let warm = SimCache::with_dir(&scratch.0).unwrap();
        assert!(warm.has_disk_tier());
        let first = run_counted(&warm, &spec, &runs);
        assert!(warm.stats().bytes_written > 0, "the miss must persist its entry");
        // A fresh cache over the same directory models a new process.
        let cold = SimCache::with_dir(&scratch.0).unwrap();
        let second = cold.get_or_run(&spec, Executor::Simulator, || {
            unreachable!("a valid disk entry must be read back, not re-simulated")
        });
        assert_eq!(first, second, "the disk tier must replay the run bit for bit");
        let stats = cold.stats();
        assert_eq!((stats.hits, stats.misses, stats.disk_hits), (1, 0, 1));
        assert!(stats.bytes_read > 0);
        // Promotion: the same lookup now hits memory, not disk.
        let third = cold.get_or_run(&spec, Executor::Simulator, || unreachable!());
        assert_eq!(first, third);
        assert_eq!(cold.stats().disk_hits, 1);
    }

    #[test]
    fn corrupt_or_stale_disk_entries_are_discarded_and_rewritten() {
        let scratch = ScratchDir::new("corrupt");
        let spec = tiny_spec();
        let runs = AtomicUsize::new(0);
        let first = run_counted(&SimCache::with_dir(&scratch.0).unwrap(), &spec, &runs);
        let key = SimCache::key(&spec, Executor::Simulator);
        let path = scratch.0.join(format!("{:016x}.json", fnv1a(&key)));
        let good = std::fs::read_to_string(&path).unwrap();
        let stale_version = good.replace(
            &format!("\"schema_version\":{CACHE_SCHEMA_VERSION}"),
            "\"schema_version\":999",
        );
        let wrong_key = good.replace("array-a", "array-x");
        for (tag, bad) in
            [("garbage", "{not json".to_string()), ("stale", stale_version), ("key", wrong_key)]
        {
            std::fs::write(&path, &bad).unwrap();
            let cache = SimCache::with_dir(&scratch.0).unwrap();
            let replayed = run_counted(&cache, &spec, &runs);
            assert_eq!(first, replayed, "{tag}: the re-simulated cell must match");
            let stats = cache.stats();
            assert_eq!(
                (stats.hits, stats.misses),
                (0, 1),
                "{tag}: a discarded entry is a miss, never a hit"
            );
            assert!(stats.bytes_written > 0, "{tag}: the entry must be rewritten");
            assert_eq!(
                std::fs::read_to_string(&path).unwrap(),
                good,
                "{tag}: the rewritten entry must be the valid one again"
            );
        }
    }

    #[test]
    fn entry_parser_rejects_every_structural_deviation() {
        let spec = tiny_spec();
        let cached = CachedRun::from_report(&spec.run_on(Executor::Simulator));
        let key = SimCache::key(&spec, Executor::Simulator);
        let good = entry_to_json(&key, &cached).to_string();
        assert_eq!(parse_entry(&good, &key).as_ref(), Some(&cached), "round trip must be exact");
        // Counters above 2^53 cannot round-trip through the f64 parser;
        // the hex-string fingerprint can.
        assert!(cached.fingerprint > 0);
        for bad in [
            good.replace("\"commits\"", "\"commitz\""),
            good.replace("\"time_domain\":\"cycles\"", "\"time_domain\":\"eons\""),
            good.replace("\"fingerprint\":\"", "\"fingerprint\":\"zz"),
            format!("{good} trailing"),
        ] {
            assert!(parse_entry(&bad, &key).is_none(), "must reject: {bad:.80}");
        }
        assert!(parse_entry(&good, "some-other-key").is_none());
        assert_eq!(as_u64(&Json::UInt(u64::MAX)), Some(u64::MAX));
        assert_eq!(
            as_u64(&Json::Num((1u64 << 53) as f64)),
            None,
            "counters at or beyond 2^53 cannot have round-tripped exactly"
        );
        assert_eq!(as_u64(&Json::Num(-1.0)), None);
        assert_eq!(as_u64(&Json::Num(1.5)), None);
    }

    fn tiny_plan(n_dpus: usize) -> MultiDpuPlan {
        let mut plan = MultiDpuPlan::new(n_dpus);
        plan.push_round(pim_sim::RoundPlan {
            dpu_compute_seconds: 1e-3,
            bytes_to_dpus: 4096,
            bytes_from_dpus: 1024,
            cpu_merge_seconds: 5e-6,
            ..pim_sim::RoundPlan::default()
        });
        plan
    }

    #[test]
    fn analytic_plans_memoize_bit_identically_under_separate_counters() {
        let cache = SimCache::in_memory();
        let transfer = CpuTransferModel::default();
        let plan = tiny_plan(8);
        let first = cache.get_or_plan(&plan, &transfer);
        let second = cache.get_or_plan(&plan, &transfer);
        assert_eq!(first, second, "a plan hit must replay the evaluation bit for bit");
        assert_eq!(first, plan.execute(&transfer));
        let stats = cache.stats();
        assert_eq!((stats.plan_hits, stats.plan_misses), (1, 1));
        assert_eq!(
            (stats.hits, stats.misses, stats.disk_hits),
            (0, 0, 0),
            "the plan memo must not move the simulator-run counters"
        );
    }

    #[test]
    fn every_plan_input_is_part_of_the_plan_key() {
        let transfer = CpuTransferModel::default();
        let base_key = SimCache::plan_key(&tiny_plan(8), &transfer);
        assert!(base_key.starts_with(&format!("plan-v{CACHE_SCHEMA_VERSION}|")));
        // A different DPU count, round shape or transfer model each miss.
        assert_ne!(SimCache::plan_key(&tiny_plan(9), &transfer), base_key);
        let mut two_rounds = tiny_plan(8);
        two_rounds.push_round(pim_sim::RoundPlan::default());
        assert_ne!(SimCache::plan_key(&two_rounds, &transfer), base_key);
        let mut nudged = tiny_plan(8);
        nudged.rounds[0].dpu_compute_seconds += f64::EPSILON;
        assert_ne!(
            SimCache::plan_key(&nudged, &transfer),
            base_key,
            "a one-ulp compute change must change the key"
        );
        let slow_bus = CpuTransferModel {
            bulk_bandwidth_bytes_per_s: transfer.bulk_bandwidth_bytes_per_s / 2.0,
            ..transfer
        };
        assert_ne!(SimCache::plan_key(&tiny_plan(8), &slow_bus), base_key);
        let cache = SimCache::in_memory();
        cache.get_or_plan(&tiny_plan(8), &transfer);
        cache.get_or_plan(&tiny_plan(8), &slow_bus);
        assert_eq!(cache.stats().plan_misses, 2);
        assert_eq!(cache.stats().plan_hits, 0);
    }

    #[test]
    fn plan_memo_never_touches_the_disk_tier() {
        let scratch = ScratchDir::new("plans");
        let cache = SimCache::with_dir(&scratch.0).unwrap();
        let transfer = CpuTransferModel::default();
        cache.get_or_plan(&tiny_plan(8), &transfer);
        cache.get_or_plan(&tiny_plan(8), &transfer);
        let stats = cache.stats();
        assert_eq!((stats.plan_hits, stats.plan_misses), (1, 1));
        assert_eq!(stats.bytes_written, 0, "analytic evaluations must stay memory-only");
        assert_eq!(std::fs::read_dir(&scratch.0).unwrap().count(), 0);
    }
}
