//! The §3.1 micro-measurement that motivates restricting transactions to a
//! single DPU: the latency of a local MRAM read versus a CPU-mediated read
//! of a word held by another DPU (the paper reports 231 ns vs 331 µs — three
//! orders of magnitude).

use pim_sim::{CpuTransferModel, LatencyModel};
use serde::{Deserialize, Serialize};

use crate::report::render_table;

/// Local vs remote word-access latency under the simulator's cost model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LatencyComparison {
    /// Latency of a 64-bit read from the local MRAM bank, in seconds.
    pub local_mram_read_seconds: f64,
    /// Latency of a CPU-mediated 64-bit read from another DPU, in seconds.
    pub mediated_read_seconds: f64,
}

impl LatencyComparison {
    /// Computes the comparison from the default cost models.
    pub fn measure() -> Self {
        let latency = LatencyModel::default();
        let transfer = CpuTransferModel::default();
        LatencyComparison {
            local_mram_read_seconds: latency.local_mram_read_seconds(),
            mediated_read_seconds: transfer.mediated_read_seconds(1),
        }
    }

    /// How many times slower the mediated read is.
    pub fn ratio(&self) -> f64 {
        self.mediated_read_seconds / self.local_mram_read_seconds
    }

    /// Renders the comparison as a table.
    pub fn table(&self) -> String {
        let header = ["access", "latency", "vs local"].map(str::to_string).to_vec();
        let rows = vec![
            vec![
                "local MRAM 64-bit read".to_string(),
                format!("{:.0} ns", self.local_mram_read_seconds * 1e9),
                "1x".to_string(),
            ],
            vec![
                "CPU-mediated remote read".to_string(),
                format!("{:.0} us", self.mediated_read_seconds * 1e6),
                format!("{:.0}x", self.ratio()),
            ],
        ];
        render_table(&header, &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_reads_are_about_three_orders_of_magnitude_slower() {
        let cmp = LatencyComparison::measure();
        assert!((200e-9..300e-9).contains(&cmp.local_mram_read_seconds));
        assert!((300e-6..400e-6).contains(&cmp.mediated_read_seconds));
        assert!((1000.0..2000.0).contains(&cmp.ratio()));
        assert!(cmp.table().contains("CPU-mediated"));
    }
}
